//! # InFrame
//!
//! A full reproduction of **InFrame: Multiflexing Full-Frame Visible
//! Communication Channel for Humans and Devices** (HotNets-XIII, 2014) in
//! Rust — the dual-mode screen–camera channel that hides device-readable
//! data inside ordinary video using complementary frames and the flicker
//! fusion of human vision.
//!
//! This crate is a facade: it re-exports the workspace's subsystem crates
//! under one roof so applications can depend on a single `inframe`.
//!
//! ```
//! use inframe::core::sender::{PrbsPayload, Sender};
//! use inframe::core::InFrameConfig;
//! use inframe::video::synth::SolidClip;
//! use inframe::video::FrameRate;
//!
//! // A small configuration (the full paper setup is
//! // `InFrameConfig::paper()`).
//! let config = InFrameConfig::small_test();
//! let video = SolidClip::new(
//!     config.display_w,
//!     config.display_h,
//!     127.0,
//!     FrameRate(config.refresh_hz / 4.0),
//! );
//! let mut sender = Sender::new(config, video, PrbsPayload::new(42));
//! let frame = sender.next_frame().expect("solid clips never end");
//! assert_eq!(frame.plane.shape(), (config.display_w, config.display_h));
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `inframe-core` | the InFrame system: multiplexer, chessboard coding, receiver |
//! | [`frame`] | `inframe-frame` | planes, color, filters, geometry, image I/O |
//! | [`dsp`] | `inframe-dsp` | envelopes, filters, FFT, spectra |
//! | [`video`] | `inframe-video` | video sources, synthetic clips, raw container |
//! | [`display`] | `inframe-display` | 120 Hz panel model (LCD response, strobed backlight) |
//! | [`camera`] | `inframe-camera` | rolling-shutter camera model |
//! | [`hvs`] | `inframe-hvs` | flicker fusion / phantom array perception model |
//! | [`code`] | `inframe-code` | parity, CRC, Reed–Solomon, interleaving, PRBS |
//! | [`link`] | `inframe-link` | rateless transport: fountain-coded carousel, receiver sessions, δ/τ control |
//! | [`net`] | `inframe-net` | network layer: addressed MAC frames, multi-stream QoS, spatial sub-channels |
//! | [`obs`] | `inframe-obs` | telemetry spine: counters, histograms, events, flight recorder, exporters |
//! | [`sim`] | `inframe-sim` | end-to-end channel simulation and every paper experiment |
//!
//! ## Reproduced experiments
//!
//! Every figure of the paper has a runner in [`sim`] and a Criterion bench
//! in `inframe-bench`; see `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use inframe_camera as camera;
pub use inframe_code as code;
pub use inframe_core as core;
pub use inframe_display as display;
pub use inframe_dsp as dsp;
pub use inframe_frame as frame;
pub use inframe_hvs as hvs;
pub use inframe_link as link;
pub use inframe_net as net;
pub use inframe_obs as obs;
pub use inframe_sim as sim;
pub use inframe_video as video;
