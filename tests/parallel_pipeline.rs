//! The parallel zero-copy pipeline must be invisible: band-sliced rendering
//! and fanned-out block scoring produce **bit-identical** results for every
//! worker count, and the steady-state sender performs zero heap
//! allocations once its frame pool is warm.

use inframe::core::dataframe::DataFrame;
use inframe::core::demux::{Demultiplexer, RegionCache};
use inframe::core::parallel::ParallelEngine;
use inframe::core::pattern::{self, Complementation};
use inframe::core::sender::{PrbsPayload, Sender};
use inframe::core::{DataLayout, InFrameConfig};
use inframe::frame::geometry::Homography;
use inframe::frame::Plane;
use inframe::video::synth::MovingBarsClip;
use inframe::video::FrameRate;
use proptest::prelude::*;
use std::sync::Arc;

fn textured_video(cfg: &InFrameConfig, seed: u64) -> Plane<f32> {
    Plane::from_fn(cfg.display_w, cfg.display_h, |x, y| {
        let h = (x as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB));
        40.0 + ((h >> 7) % 176) as f32
    })
}

fn bars(cfg: &InFrameConfig) -> MovingBarsClip {
    MovingBarsClip::new(
        cfg.display_w,
        cfg.display_h,
        17,
        1.5,
        70.0,
        210.0,
        FrameRate(cfg.refresh_hz / 4.0),
    )
}

/// Sender frames over two full data cycles are bit-identical for worker
/// counts 1, 2, 3 and 5 (including the sequential engine itself).
#[test]
fn sender_frames_bit_identical_across_worker_counts() {
    let cfg = InFrameConfig::small_test();
    let frames = 2 * cfg.tau as usize + 3;
    let mut reference = Sender::with_engine(
        cfg,
        bars(&cfg),
        PrbsPayload::new(9),
        Arc::new(ParallelEngine::new(1)),
    );
    let reference_frames: Vec<_> = (0..frames)
        .map(|_| reference.next_frame().expect("endless clip"))
        .collect();
    for workers in [2usize, 3, 5] {
        let engine = Arc::new(ParallelEngine::new(workers));
        let mut sender = Sender::with_engine(cfg, bars(&cfg), PrbsPayload::new(9), engine);
        for (i, want) in reference_frames.iter().enumerate() {
            let got = sender.next_frame().expect("endless clip");
            assert_eq!(got.slot, want.slot);
            assert_eq!(
                got.plane.samples(),
                want.plane.samples(),
                "frame {i} differs at {workers} workers"
            );
        }
    }
}

/// Decoded data frames (and the sequential score path) agree for every
/// worker count, sharing one RegionCache across all receivers.
#[test]
fn demux_decodes_identically_across_worker_counts() {
    let cfg = InFrameConfig::small_test();
    let layout = DataLayout::from_config(&cfg);
    let video = textured_video(&cfg, 3);
    let payload: Vec<bool> = (0..layout.payload_bits_parity())
        .map(|i| i % 3 != 0)
        .collect();
    let frame = DataFrame::encode(&layout, &payload, cfg.coding);
    let (plus, minus) = pattern::complementary_pair(
        &layout,
        &video,
        &frame,
        cfg.delta,
        Complementation::Code,
        |bx, by| if frame.bit(bx, by) { 1.0 } else { 0.0 },
    );

    let cache = RegionCache::build(&cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
    let run = |workers: usize| {
        let engine = Arc::new(ParallelEngine::new(workers));
        let mut demux = Demultiplexer::with_cache(cfg, Arc::clone(&cache), engine);
        let d = demux.cycle_duration();
        demux.push_capture(&plus, 0.2 * d);
        demux.push_capture(&minus, 0.4 * d);
        let scores = demux.score_capture(&plus);
        (demux.finish().expect("one cycle accumulated"), scores)
    };

    let (reference, reference_scores) = run(1);
    assert_eq!(reference.captures_used, 2);
    for workers in [2usize, 3, 5] {
        let (decoded, scores) = run(workers);
        assert_eq!(decoded, reference, "decode differs at {workers} workers");
        assert_eq!(
            scores, reference_scores,
            "scores differ at {workers} workers"
        );
    }
}

/// After the first frame warms the pool, the sender's render loop performs
/// zero heap allocations in the frame path: every subsequent checkout is
/// served from the free list as long as emitted frames are dropped.
#[test]
fn sender_steady_state_allocates_no_frames() {
    let cfg = InFrameConfig::small_test();
    let mut sender = Sender::new(cfg, bars(&cfg), PrbsPayload::new(4));
    drop(sender.next_frame().expect("endless clip")); // warm-up
    let warm = sender.pool().stats();
    assert_eq!(warm.allocated, 1);
    let frames = 3 * cfg.tau as u64;
    for _ in 0..frames {
        drop(sender.next_frame().expect("endless clip"));
    }
    let steady = sender.pool().stats();
    assert_eq!(
        steady.allocated, warm.allocated,
        "steady-state render must not allocate: {steady:?}"
    );
    assert_eq!(steady.reused, warm.reused + frames);
    assert_eq!(steady.live, 0);
    assert_eq!(sender.meter().frames(), frames + 1);
}

/// Holding several frames at once grows the pool to the high-water mark,
/// then reuse takes over again.
#[test]
fn pool_grows_to_high_water_mark_then_reuses() {
    let cfg = InFrameConfig::small_test();
    let mut sender = Sender::new(cfg, bars(&cfg), PrbsPayload::new(4));
    let held: Vec<_> = (0..3)
        .map(|_| sender.next_frame().expect("endless clip"))
        .collect();
    assert_eq!(sender.pool().stats().allocated, 3);
    assert_eq!(sender.pool().stats().live, 3);
    drop(held);
    assert_eq!(sender.pool().stats().live, 0);
    for _ in 0..6 {
        drop(sender.next_frame().expect("endless clip"));
    }
    let stats = sender.pool().stats();
    assert_eq!(
        stats.allocated, 3,
        "high-water pool must satisfy steady state"
    );
    assert_eq!(stats.returned, 9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: banded parallel offset rendering is bit-identical to the
    /// sequential renderer for random videos, amplitudes, deltas, both
    /// complementation rules and worker counts 1–6.
    #[test]
    fn pair_offsets_parallel_matches_sequential(
        seed in 0u64..1_000_000,
        delta in 1.0f32..45.0,
        luminance in any::<bool>(),
        workers in 1usize..7,
    ) {
        let cfg = InFrameConfig::small_test();
        let layout = DataLayout::from_config(&cfg);
        let video = textured_video(&cfg, seed);
        let payload: Vec<bool> =
            (0..layout.payload_bits_parity()).map(|i| (i as u64 ^ seed).is_multiple_of(2)).collect();
        let frame = DataFrame::encode(&layout, &payload, cfg.coding);
        let comp = if luminance { Complementation::Luminance } else { Complementation::Code };
        // Per-block fractional amplitudes exercise the envelope path.
        let amp = |bx: usize, by: usize| {
            if frame.bit(bx, by) {
                1.0 - ((bx * 31 + by * 17 + seed as usize) % 10) as f32 / 20.0
            } else {
                0.0
            }
        };
        let (want_plus, want_minus) =
            pattern::pair_offsets(&layout, &video, &frame, delta, comp, amp);
        let engine = ParallelEngine::new(workers);
        let mut got_plus = Plane::filled(cfg.display_w, cfg.display_h, f32::NAN);
        let mut got_minus = Plane::filled(cfg.display_w, cfg.display_h, f32::NAN);
        pattern::pair_offsets_into(
            &layout, &video, &frame, delta, comp, amp, &engine,
            &mut got_plus, &mut got_minus,
        );
        prop_assert!(got_plus.samples() == want_plus.samples(), "plus differs at {} workers", workers);
        prop_assert!(got_minus.samples() == want_minus.samples(), "minus differs at {} workers", workers);
    }
}
