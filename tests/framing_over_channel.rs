//! End-to-end application messaging: the framing layer + scrambler from
//! `inframe-code` riding the full simulated channel.

use inframe::code::framing;
use inframe::code::scramble::Scrambler;
use inframe::core::sender::PayloadSource;
use inframe::core::DecodedDataFrame;
use inframe::link::session::CompletionTarget;
use inframe::sim::pipeline::SimulationConfig;
use inframe::sim::{Link, Scale, Scenario};

/// Fraction of payload bits recovered across decoded cycles.
fn recovery_ratio(decoded: &[DecodedDataFrame]) -> f64 {
    let (mut known, mut total) = (0usize, 0usize);
    for d in decoded {
        total += d.payload.len();
        known += d.payload.iter().filter(|b| b.is_some()).count();
    }
    if total == 0 {
        return 0.0;
    }
    known as f64 / total as f64
}

/// Streams framed messages, scrambled per data cycle.
struct FramedSource {
    scrambler: Scrambler,
    queue: Vec<bool>,
    cycle: u64,
}

impl FramedSource {
    fn new(messages: &[&[u8]], seed: u64) -> Self {
        // Repeat the message block enough times to outlast the run.
        let one_pass = framing::encode_stream(messages);
        let mut queue = Vec::new();
        while queue.len() < 50_000 {
            queue.extend_from_slice(&one_pass);
        }
        Self {
            scrambler: Scrambler::new(seed),
            queue,
            cycle: 0,
        }
    }
}

impl PayloadSource for FramedSource {
    fn next_payload(&mut self, bits: usize) -> Vec<bool> {
        let take: Vec<bool> = self.queue.drain(..bits.min(self.queue.len())).collect();
        let mut padded = take;
        padded.resize(bits, false);
        let out = self.scrambler.apply(&padded, self.cycle);
        self.cycle += 1;
        out
    }
}

#[test]
fn framed_messages_survive_the_gray_channel() {
    let s = Scale::Quick;
    let config = SimulationConfig {
        inframe: s.inframe(),
        display: s.display(),
        camera: s.camera(),
        geometry: s.geometry(),
        cycles: 12,
        seed: 17,
    };
    let messages: Vec<&[u8]> = vec![b"status:nominal", b"temp:23.4C", b"seq:0042"];
    let scramble_seed = 0xBEEF;
    let link = Link::new(config);
    let session = link.run_session(
        Scenario::Gray.source(config.inframe.display_w, config.inframe.display_h, 17),
        FramedSource::new(&messages, scramble_seed),
        4,
        link.session(CompletionTarget::Never),
    );
    let ratio = recovery_ratio(session.decoded());
    assert!(ratio > 0.9, "{ratio}");

    // Receiver: descramble per decoded cycle, concatenate, scan for frames.
    let descrambler = Scrambler::new(scramble_seed);
    let mut bits = Vec::new();
    for d in session.decoded() {
        let cycle_bits: Vec<bool> = d.payload.iter().map(|b| b.unwrap_or(false)).collect();
        bits.extend(descrambler.apply(&cycle_bits, d.cycle));
    }
    let frames = framing::scan(&bits);
    let recovered: std::collections::BTreeSet<Vec<u8>> =
        frames.into_iter().map(|f| f.payload).collect();
    for msg in &messages {
        assert!(
            recovered.contains(*msg),
            "message {:?} must be recovered; got {} distinct frames",
            std::str::from_utf8(msg).unwrap(),
            recovered.len()
        );
    }
}

#[test]
fn scrambling_keeps_idle_frames_decodable() {
    // An all-zero application payload without scrambling produces empty
    // data frames (score 0 everywhere — fine but carries no sync energy);
    // with scrambling the frames stay balanced and availability matches
    // random data.
    let s = Scale::Quick;
    let config = SimulationConfig {
        inframe: s.inframe(),
        display: s.display(),
        camera: s.camera(),
        geometry: s.geometry(),
        cycles: 6,
        seed: 23,
    };
    struct Zeros;
    impl PayloadSource for Zeros {
        fn next_payload(&mut self, bits: usize) -> Vec<bool> {
            vec![false; bits]
        }
    }
    let link = Link::new(config);
    let idle = link.run_session(
        Scenario::Gray.source(config.inframe.display_w, config.inframe.display_h, 23),
        Zeros,
        8,
        link.session(CompletionTarget::Never),
    );
    let scrambled = link.run_session(
        Scenario::Gray.source(config.inframe.display_w, config.inframe.display_h, 23),
        FramedSource::new(&[b""], 0x5EED),
        8,
        link.session(CompletionTarget::Never),
    );
    // Both decode fine; the scrambled stream has ~50% ones in its sent
    // frames (verified at the source), the idle one none.
    assert!(idle.stats().available_ratio() > 0.9);
    assert!(scrambled.stats().available_ratio() > 0.9);
    let ones = |src: &mut dyn PayloadSource| {
        let bits = src.next_payload(1024);
        bits.iter().filter(|&&b| b).count()
    };
    assert_eq!(ones(&mut Zeros), 0);
    let mut fs = FramedSource::new(&[b""], 0x5EED);
    let n = ones(&mut fs);
    assert!((380..=640).contains(&n), "scrambled ones {n}");
}
