//! The quantized kernel layer must be invisible to the link: on the whole
//! test corpus the Q8.7 backend decodes **exactly the same bits** as the
//! f32 reference, its raw block scores stay within one Q8.7 LSB (1/128
//! code value) of the reference scores, and — like the reference — its
//! output is bit-identical for every worker count (`INFRAME_WORKERS`
//! 1–6 equivalents), because all of its integer reductions are exact.

use inframe::core::config::KernelBackend;
use inframe::core::dataframe::DataFrame;
use inframe::core::demux::{BlockScore, DecodedDataFrame, Demultiplexer, RegionCache};
use inframe::core::parallel::ParallelEngine;
use inframe::core::pattern::{self, Complementation};
use inframe::core::sender::{PrbsPayload, Sender};
use inframe::core::{DataLayout, InFrameConfig};
use inframe::frame::geometry::Homography;
use inframe::frame::qplane;
use inframe::frame::resample::downsample_area;
use inframe::frame::simd;
use inframe::frame::Plane;
use inframe::video::synth::MovingBarsClip;
use inframe::video::FrameRate;
use proptest::prelude::*;
use std::sync::Arc;

fn textured_video(cfg: &InFrameConfig, seed: u64) -> Plane<f32> {
    Plane::from_fn(cfg.display_w, cfg.display_h, |x, y| {
        let h = (x as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB));
        40.0 + ((h >> 7) % 176) as f32
    })
}

fn bars(cfg: &InFrameConfig) -> MovingBarsClip {
    MovingBarsClip::new(
        cfg.display_w,
        cfg.display_h,
        17,
        1.5,
        70.0,
        210.0,
        FrameRate(cfg.refresh_hz / 4.0),
    )
}

/// One corpus entry: a set of captures for one data cycle, plus the
/// registration/sensor geometry they were captured under.
struct Scenario {
    name: &'static str,
    registration: Homography,
    sensor_w: usize,
    sensor_h: usize,
    captures: Vec<Plane<f32>>,
}

/// The equivalence corpus: clean solid-video captures, textured video,
/// minus frames, fractional envelope amplitudes, and a 2/3-resolution
/// sensor (non-integer capture values through the area downsample).
fn corpus(cfg: &InFrameConfig) -> Vec<Scenario> {
    let layout = DataLayout::from_config(cfg);
    let frame_for = |key: usize| {
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % key == 0)
            .collect();
        DataFrame::encode(&layout, &payload, cfg.coding)
    };
    let full = |frame: &DataFrame| {
        let f = frame.clone();
        move |bx: usize, by: usize| if f.bit(bx, by) { 1.0 } else { 0.0 }
    };
    let mut scenarios = Vec::new();

    let f3 = frame_for(3);
    let solid = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
    let (plus, minus) = pattern::complementary_pair(
        &layout,
        &solid,
        &f3,
        cfg.delta,
        Complementation::Code,
        full(&f3),
    );
    scenarios.push(Scenario {
        name: "solid-code-pair",
        registration: Homography::identity(),
        sensor_w: cfg.display_w,
        sensor_h: cfg.display_h,
        captures: vec![plus, minus],
    });

    let f2 = frame_for(2);
    let textured = textured_video(cfg, 11);
    let (plus, _) = pattern::complementary_pair(
        &layout,
        &textured,
        &f2,
        cfg.delta,
        Complementation::Luminance,
        full(&f2),
    );
    scenarios.push(Scenario {
        name: "textured-luminance",
        registration: Homography::identity(),
        sensor_w: cfg.display_w,
        sensor_h: cfg.display_h,
        captures: vec![plus, textured.clone()],
    });

    let f4 = frame_for(4);
    let faint = pattern::complementary_pair(
        &layout,
        &solid,
        &f4,
        cfg.delta,
        Complementation::Code,
        |bx, by| if f4.bit(bx, by) { 0.6 } else { 0.0 },
    )
    .0;
    scenarios.push(Scenario {
        name: "fractional-amplitude",
        registration: Homography::identity(),
        sensor_w: cfg.display_w,
        sensor_h: cfg.display_h,
        captures: vec![faint],
    });

    // 2/3-resolution sensor: captures carry non-integer values, so the
    // Q8.7 quantizer actually rounds.
    let sw = cfg.display_w * 2 / 3;
    let sh = cfg.display_h * 2 / 3;
    let (plus, _) = pattern::complementary_pair(
        &layout,
        &textured,
        &f3,
        cfg.delta,
        Complementation::Code,
        full(&f3),
    );
    scenarios.push(Scenario {
        name: "downscaled-sensor",
        registration: Homography::scale(
            sw as f64 / cfg.display_w as f64,
            sh as f64 / cfg.display_h as f64,
        ),
        sensor_w: sw,
        sensor_h: sh,
        captures: vec![downsample_area(&plus, sw, sh)],
    });

    scenarios
}

fn run_backend(
    cfg: &InFrameConfig,
    backend: KernelBackend,
    workers: usize,
    scenario: &Scenario,
) -> (DecodedDataFrame, Vec<Vec<BlockScore>>) {
    let cfg = InFrameConfig {
        kernel: backend,
        ..*cfg
    };
    let cache = RegionCache::build(
        &cfg,
        &scenario.registration,
        scenario.sensor_w,
        scenario.sensor_h,
    );
    let engine = Arc::new(ParallelEngine::new(workers));
    let mut demux = Demultiplexer::with_cache(cfg, cache, engine);
    let d = demux.cycle_duration();
    let mut scores = Vec::new();
    for (i, capture) in scenario.captures.iter().enumerate() {
        // All captures land in the scored first half of cycle 0.
        demux.push_capture(capture, (0.05 + 0.1 * i as f64) * d);
        scores.push(demux.last_scores().to_vec());
    }
    (demux.finish().expect("one cycle accumulated"), scores)
}

/// Acceptance: decoded bits are identical across backends on the entire
/// corpus (stats and all).
#[test]
fn decoded_bits_identical_across_backends_on_corpus() {
    let cfg = InFrameConfig::small_test();
    for scenario in corpus(&cfg) {
        let (reference, _) = run_backend(&cfg, KernelBackend::Reference, 1, &scenario);
        let (quantized, _) = run_backend(&cfg, KernelBackend::Quantized, 1, &scenario);
        assert_eq!(
            quantized, reference,
            "decode differs on scenario {}",
            scenario.name
        );
    }
}

/// Acceptance: raw per-capture block scores of the quantized backend stay
/// within one Q8.7 LSB of the reference, and readability agrees exactly.
#[test]
fn quantized_scores_within_one_lsb_of_reference() {
    let cfg = InFrameConfig::small_test();
    for scenario in corpus(&cfg) {
        let (_, ref_scores) = run_backend(&cfg, KernelBackend::Reference, 1, &scenario);
        let (_, q_scores) = run_backend(&cfg, KernelBackend::Quantized, 1, &scenario);
        for (c, (rs, qs)) in ref_scores.iter().zip(&q_scores).enumerate() {
            assert_eq!(rs.len(), qs.len());
            for (b, (r, q)) in rs.iter().zip(qs).enumerate() {
                match (r.value(), q.value()) {
                    (Some(rv), Some(qv)) => assert!(
                        (rv - qv).abs() <= qplane::LSB,
                        "{} capture {c} block {b}: {qv} vs {rv}",
                        scenario.name
                    ),
                    (None, None) => {}
                    _ => panic!(
                        "{} capture {c} block {b}: readability disagrees ({r:?} vs {q:?})",
                        scenario.name
                    ),
                }
            }
        }
    }
}

/// The quantized demux is bit-identical for every worker count 1–6: its
/// reductions are exact integer sums over a fixed partition.
#[test]
fn quantized_decode_identical_across_worker_counts() {
    let cfg = InFrameConfig::small_test();
    for scenario in corpus(&cfg) {
        let (reference, ref_scores) = run_backend(&cfg, KernelBackend::Quantized, 1, &scenario);
        for workers in 2..=6usize {
            let (decoded, scores) = run_backend(&cfg, KernelBackend::Quantized, workers, &scenario);
            assert_eq!(
                decoded, reference,
                "{} decode differs at {workers} workers",
                scenario.name
            );
            assert_eq!(
                scores, ref_scores,
                "{} scores differ at {workers} workers",
                scenario.name
            );
        }
    }
}

/// The quantized sender (LUT render) is bit-identical for every worker
/// count, and stays within the documented amplitude-snap + Q8.7 bound of
/// the reference sender on real moving video.
#[test]
fn quantized_sender_bit_identical_across_worker_counts() {
    let cfg = InFrameConfig {
        kernel: KernelBackend::Quantized,
        ..InFrameConfig::small_test()
    };
    let frames = 2 * cfg.tau as usize + 3;
    let mut reference = Sender::with_engine(
        cfg,
        bars(&cfg),
        PrbsPayload::new(9),
        Arc::new(ParallelEngine::new(1)),
    );
    let reference_frames: Vec<_> = (0..frames)
        .map(|_| reference.next_frame().expect("endless clip"))
        .collect();
    for workers in 2..=6usize {
        let engine = Arc::new(ParallelEngine::new(workers));
        let mut sender = Sender::with_engine(cfg, bars(&cfg), PrbsPayload::new(9), engine);
        for (i, want) in reference_frames.iter().enumerate() {
            let got = sender.next_frame().expect("endless clip");
            assert_eq!(got.slot, want.slot);
            assert_eq!(
                got.plane.samples(),
                want.plane.samples(),
                "frame {i} differs at {workers} workers"
            );
        }
    }
}

/// End-to-end: a quantized sender feeding a quantized receiver recovers
/// the same payload a reference/reference link does.
#[test]
fn quantized_link_decodes_same_payload_as_reference_link() {
    let run = |backend: KernelBackend| {
        let cfg = InFrameConfig {
            kernel: backend,
            ..InFrameConfig::small_test()
        };
        let mut sender = Sender::with_engine(
            cfg,
            bars(&cfg),
            PrbsPayload::new(21),
            Arc::new(ParallelEngine::new(2)),
        );
        let mut demux = Demultiplexer::with_cache(
            cfg,
            RegionCache::build(&cfg, &Homography::identity(), cfg.display_w, cfg.display_h),
            Arc::new(ParallelEngine::new(2)),
        );
        let mut decoded = Vec::new();
        // Camera at 30 FPS over 120 Hz display: every 4th displayed frame.
        for _ in 0..(4 * cfg.tau as usize) {
            let f = sender.next_frame().expect("endless clip");
            if f.slot.display_index.is_multiple_of(4) {
                let t_mid = f.slot.t_start + 0.5 / cfg.refresh_hz;
                if let Some(d) = demux.push_capture(&f.plane, t_mid) {
                    decoded.push(d);
                }
            }
        }
        decoded.extend(demux.finish());
        assert!(!decoded.is_empty(), "{backend:?}: no cycles decoded");
        decoded
    };
    let reference = run(KernelBackend::Reference);
    let quantized = run(KernelBackend::Quantized);
    assert_eq!(reference.len(), quantized.len());
    for (r, q) in reference.iter().zip(&quantized) {
        assert_eq!(q.cycle, r.cycle);
        assert_eq!(q.payload, r.payload, "cycle {}", r.cycle);
    }
}

/// Restores environment/CPU SIMD dispatch when a forced-level test exits
/// (including on panic), so test order cannot leak a pinned level.
struct SimdGuard;

impl Drop for SimdGuard {
    fn drop(&mut self) {
        simd::force_level(None);
    }
}

/// Tentpole acceptance: on every corpus case, every supported SIMD level
/// (`INFRAME_SIMD=off|sse2|avx2` equivalents, skipping levels this CPU
/// lacks) decodes the same bits and produces bit-identical raw scores as
/// the scalar oracle — at multiple worker counts, so the vector kernels
/// are also exercised across band boundaries.
#[test]
fn quantized_decode_identical_across_simd_levels() {
    let _restore = SimdGuard;
    let cfg = InFrameConfig::small_test();
    for scenario in corpus(&cfg) {
        simd::force_level(Some(simd::SimdLevel::Scalar));
        let (oracle, oracle_scores) = run_backend(&cfg, KernelBackend::Quantized, 1, &scenario);
        for level in simd::SimdLevel::supported() {
            simd::force_level(Some(level));
            for workers in [1usize, 3] {
                let (decoded, scores) =
                    run_backend(&cfg, KernelBackend::Quantized, workers, &scenario);
                assert_eq!(
                    decoded,
                    oracle,
                    "{} decode differs at {} × {workers} workers",
                    scenario.name,
                    level.name()
                );
                assert_eq!(
                    scores,
                    oracle_scores,
                    "{} scores differ at {} × {workers} workers",
                    scenario.name,
                    level.name()
                );
            }
        }
    }
}

/// The quantized sender renders bit-identical display frames at every
/// supported SIMD level (the LUT-apply kernel is part of the oracle
/// contract, not just the demux side).
#[test]
fn quantized_sender_bit_identical_across_simd_levels() {
    let _restore = SimdGuard;
    let cfg = InFrameConfig {
        kernel: KernelBackend::Quantized,
        ..InFrameConfig::small_test()
    };
    let frames = 2 * cfg.tau as usize + 3;
    simd::force_level(Some(simd::SimdLevel::Scalar));
    let mut oracle = Sender::with_engine(
        cfg,
        bars(&cfg),
        PrbsPayload::new(9),
        Arc::new(ParallelEngine::new(1)),
    );
    let oracle_frames: Vec<_> = (0..frames)
        .map(|_| oracle.next_frame().expect("endless clip"))
        .collect();
    for level in simd::SimdLevel::supported() {
        simd::force_level(Some(level));
        let mut sender = Sender::with_engine(
            cfg,
            bars(&cfg),
            PrbsPayload::new(9),
            Arc::new(ParallelEngine::new(1)),
        );
        for (i, want) in oracle_frames.iter().enumerate() {
            let got = sender.next_frame().expect("endless clip");
            assert_eq!(got.slot, want.slot);
            assert_eq!(
                got.plane.samples(),
                want.plane.samples(),
                "frame {i} differs at {}",
                level.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: across random textures, amplitudes, and worker counts,
    /// the quantized demux scores identically for every worker count and
    /// within one LSB of the reference.
    #[test]
    fn quantized_scoring_is_deterministic_and_close(
        seed in 0u64..1_000_000,
        workers in 1usize..7,
    ) {
        let cfg = InFrameConfig::small_test();
        let layout = DataLayout::from_config(&cfg);
        let video = textured_video(&cfg, seed);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| (i as u64 ^ seed).is_multiple_of(2))
            .collect();
        let frame = DataFrame::encode(&layout, &payload, cfg.coding);
        let (plus, _) = pattern::complementary_pair(
            &layout, &video, &frame, cfg.delta, Complementation::Code,
            |bx, by| if frame.bit(bx, by) { 1.0 } else { 0.0 },
        );
        let scenario = Scenario {
            name: "prop",
            registration: Homography::identity(),
            sensor_w: cfg.display_w,
            sensor_h: cfg.display_h,
            captures: vec![plus],
        };
        let (_, base) = run_backend(&cfg, KernelBackend::Quantized, 1, &scenario);
        let (_, multi) = run_backend(&cfg, KernelBackend::Quantized, workers, &scenario);
        prop_assert_eq!(&multi, &base, "worker-count dependence at {} workers", workers);
        let (_, reference) = run_backend(&cfg, KernelBackend::Reference, 1, &scenario);
        for (r, q) in reference[0].iter().zip(&base[0]) {
            match (r.value(), q.value()) {
                (Some(rv), Some(qv)) => prop_assert!((rv - qv).abs() <= qplane::LSB),
                (None, None) => {}
                _ => prop_assert!(false, "readability disagrees"),
            }
        }
    }
}
