//! Acceptance tests for the `inframe-net` subsystem over the real PHY:
//! addressed datagrams pushed through the full pixel chain — net sender
//! as the multiplexed payload source, rendered complementary frames,
//! 30 FPS captures, demultiplexer — must deliver **bit-identically** on
//! both kernel backends, at every supported SIMD dispatch level, and at
//! worker counts 1–4. Plus payload-level checks that streams are
//! isolated from each other's corruption and that a spatially occluded
//! receiver still completes in comparable time.

use inframe::core::config::KernelBackend;
use inframe::core::demux::{Demultiplexer, RegionCache};
use inframe::core::parallel::ParallelEngine;
use inframe::core::region::RegionMap;
use inframe::core::sender::Sender;
use inframe::core::{DataLayout, InFrameConfig};
use inframe::frame::geometry::Homography;
use inframe::frame::simd;
use inframe::net::stream::DeadlineClass;
use inframe::net::{AddressFilter, MacAddr, NetReceiver, NetSender, StreamQos};
use inframe::video::synth::SolidClip;
use std::sync::Arc;

/// Restores SIMD dispatch when the test exits (including on panic).
struct SimdGuard;

impl Drop for SimdGuard {
    fn drop(&mut self) {
        simd::force_level(None);
    }
}

/// Everything delivery-order-and-content dependent that one run
/// produces; two runs agree iff the stacks behaved bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Ledger {
    unicast_digest: u64,
    broadcast_digest: u64,
    unicast_bytes: u64,
    broadcast_bytes: u64,
    unicast_cycle: Option<u32>,
    broadcast_cycle: Option<u32>,
    frames_rx: u64,
}

/// Runs the full pixel chain — net sender as the multiplexed payload
/// source, rendered complementary data frames over a gray clip, camera
/// captures every 4th displayed frame (30 FPS over the 120 Hz display),
/// demultiplexer (given backend/workers) → net receiver — and returns
/// the delivery ledger.
fn run_stack(backend: KernelBackend, workers: usize, max_cycles: u32) -> Ledger {
    let cfg = InFrameConfig {
        kernel: backend,
        ..InFrameConfig::small_test()
    };
    let layout = DataLayout::from_config(&cfg);
    // 2×2 tiling of the small-test 8×6 GOB grid: four spatial
    // sub-channels, the acceptance floor.
    let map = RegionMap::new(&layout, 2, 2);

    let mut tx = NetSender::new(map.clone(), MacAddr::new(0x0001));
    tx.open_stream(0, StreamQos::bulk(), 32);
    tx.open_stream(
        1,
        StreamQos {
            priority: 2,
            weight: 1,
            deadline: DeadlineClass::Interactive,
        },
        16,
    );
    let unicast: Vec<u8> = (0..48u32).map(|i| (i * 13 + 1) as u8).collect();
    tx.send_datagram(0, MacAddr::new(0x0042), &unicast);
    tx.send_datagram(1, MacAddr::BROADCAST, b"tick 1");

    let mut rx = NetReceiver::new(map.clone(), AddressFilter::new(MacAddr::new(0x0042)));
    rx.open_stream(0, 64, 32, 4096);
    rx.open_stream(1, 64, 16, 4096);

    let video = SolidClip::paper_gray(cfg.display_w, cfg.display_h);
    let engine = Arc::new(ParallelEngine::new(workers));
    // `NetSender` is a `PayloadSource`: the sender pulls one multiplexed
    // cycle payload from the network stack per data cycle.
    let mut sender = Sender::with_engine(cfg, video, tx, Arc::clone(&engine));
    let cache = RegionCache::build(&cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
    let mut demux = Demultiplexer::with_cache(cfg, cache, engine);

    let mut out = Vec::new();
    let (mut uni_cycle, mut bc_cycle) = (None, None);
    let mut cycle: u32 = 0;
    'chain: for _ in 0..max_cycles as u64 * cfg.tau as u64 {
        let f = sender.next_frame().expect("endless clip");
        if !f.slot.display_index.is_multiple_of(4) {
            continue;
        }
        let t_mid = f.slot.t_start + 0.5 / cfg.refresh_hz;
        let Some(decoded) = demux.push_capture(&f.plane, t_mid) else {
            continue;
        };
        rx.push_cycle(&decoded.payload);
        if uni_cycle.is_none() && rx.pop_datagram(0, &mut out) {
            assert_eq!(out, unicast, "unicast corrupted in flight");
            uni_cycle = Some(cycle);
        }
        if bc_cycle.is_none() && rx.pop_datagram(1, &mut out) {
            assert_eq!(out, b"tick 1", "broadcast corrupted in flight");
            bc_cycle = Some(cycle);
        }
        if uni_cycle.is_some() && bc_cycle.is_some() {
            break 'chain;
        }
        cycle += 1;
    }

    let lane = |stream: u8, dst: MacAddr| rx.stream_lane(stream, dst).expect("lane open");
    Ledger {
        unicast_digest: lane(0, MacAddr::new(0x0042)).digest(),
        broadcast_digest: lane(1, MacAddr::BROADCAST).digest(),
        unicast_bytes: lane(0, MacAddr::new(0x0042)).delivered_bytes(),
        broadcast_bytes: lane(1, MacAddr::BROADCAST).delivered_bytes(),
        unicast_cycle: uni_cycle,
        broadcast_cycle: bc_cycle,
        frames_rx: rx.frames_rx(),
    }
}

/// Acceptance: addressed delivery through the real PHY is bit-identical
/// on both kernel backends × every supported SIMD level × workers 1–4.
#[test]
fn addressed_delivery_bit_identical_across_backends_simd_and_workers() {
    let _restore = SimdGuard;
    let mut reference: Option<Ledger> = None;
    for level in simd::SimdLevel::supported() {
        simd::force_level(Some(level));
        for backend in [KernelBackend::Reference, KernelBackend::Quantized] {
            for workers in 1..=4 {
                let ledger = run_stack(backend, workers, 200);
                assert!(
                    ledger.unicast_cycle.is_some() && ledger.broadcast_cycle.is_some(),
                    "{backend:?}/{}/{workers}w: delivery incomplete: {ledger:?}",
                    level.name(),
                );
                match &reference {
                    None => reference = Some(ledger),
                    Some(r) => assert_eq!(
                        r,
                        &ledger,
                        "{backend:?}/{}/{workers}w diverged",
                        level.name(),
                    ),
                }
            }
        }
    }
}

/// Corruption inside one stream's frames must not perturb another
/// stream sharing the same object bundles: the intact stream delivers,
/// the damaged frame is dropped by CRC, and the damaged stream recovers
/// at its next intact datagram.
#[test]
fn stream_corruption_is_isolated() {
    use inframe::net::mac::{encode_frame_into, FLAG_LAST, HEADER_BYTES};
    let layout = DataLayout::from_config(&InFrameConfig::paper());
    let map = RegionMap::new(&layout, 5, 3);
    let mut rx = NetReceiver::new(map, AddressFilter::new(MacAddr::new(0x0042)));
    rx.open_stream(0, 64, 64, 4096);
    rx.open_stream(1, 64, 64, 4096);

    let dst = MacAddr::new(0x0042);
    let src = MacAddr::new(0x0001);
    let mut bundle = Vec::new();
    encode_frame_into(dst, src, 0, FLAG_LAST, 0, &[0xAA; 40], &mut bundle);
    let corrupt_at = bundle.len() + HEADER_BYTES + 5;
    encode_frame_into(dst, src, 1, FLAG_LAST, 0, &[0xBB; 40], &mut bundle);
    encode_frame_into(dst, src, 0, FLAG_LAST, 1, &[0xCC; 40], &mut bundle);
    bundle[corrupt_at] ^= 0x40; // flip a bit inside stream 1's frame

    rx.ingest_bytes(&bundle);
    let mut out = Vec::new();
    // Stream 0 delivers both datagrams despite its neighbour's damage.
    assert!(rx.pop_datagram(0, &mut out));
    assert_eq!(out, [0xAA; 40]);
    assert!(rx.pop_datagram(0, &mut out));
    assert_eq!(out, [0xCC; 40]);
    // Stream 1's corrupted datagram is gone, not wrong.
    assert!(!rx.pop_datagram(1, &mut out));
    assert!(rx.frames_rejected() > 0, "corruption must be counted");

    // Stream 1 recovers at its next datagram: seq 1 follows the lost
    // seq 0... which never releases, so the sender's next datagram must
    // reuse the window. Re-sending seq 0 intact heals the lane.
    let mut repair = Vec::new();
    encode_frame_into(dst, src, 1, FLAG_LAST, 0, &[0xBB; 40], &mut repair);
    encode_frame_into(dst, src, 1, FLAG_LAST, 1, b"next", &mut repair);
    rx.ingest_bytes(&repair);
    assert!(rx.pop_datagram(1, &mut out));
    assert_eq!(out, [0xBB; 40]);
    assert!(rx.pop_datagram(1, &mut out));
    assert_eq!(out, b"next");
}

/// A receiver with one of 15 spatial tiles occluded for the whole run
/// still completes, within 2× the clean receiver's cycle count — the
/// carousel shards are striped so any 14 tiles carry a full repair set.
#[test]
fn occluded_receiver_completes_within_twice_clean() {
    let layout = DataLayout::from_config(&InFrameConfig::paper());
    let map = RegionMap::new(&layout, 5, 3);
    let mut tx = NetSender::new(map.clone(), MacAddr::new(0x0001));
    tx.open_stream(0, StreamQos::bulk(), 64);
    let data: Vec<u8> = (0..800u32).map(|i| (i * 31 + 7) as u8).collect();
    tx.send_datagram(0, MacAddr::new(0x0042), &data);

    let station = || {
        let mut rx = NetReceiver::new(map.clone(), AddressFilter::new(MacAddr::new(0x0042)));
        rx.open_stream(0, 64, 64, 4096);
        rx
    };
    let (mut clean, mut occluded) = (station(), station());

    let occluded_region = 7usize;
    let bits = map.region_payload_bits() / map.gobs_per_region();
    let (mut clean_cycle, mut occ_cycle) = (None, None);
    let mut out = Vec::new();
    for cycle in 0..1200u32 {
        let payload = tx.next_cycle_payload();
        let seen: Vec<Option<bool>> = payload.iter().map(|&b| Some(b)).collect();
        let mut masked = seen.clone();
        for &g in map.region_gobs(occluded_region) {
            let lo = g as usize * bits;
            masked[lo..lo + bits].fill(None);
        }
        if clean_cycle.is_none() {
            clean.push_cycle(&seen);
            if clean.pop_datagram(0, &mut out) {
                assert_eq!(out, data);
                clean_cycle = Some(cycle);
            }
        }
        if occ_cycle.is_none() {
            occluded.push_cycle(&masked);
            if occluded.pop_datagram(0, &mut out) {
                assert_eq!(out, data);
                occ_cycle = Some(cycle);
            }
        }
        if clean_cycle.is_some() && occ_cycle.is_some() {
            break;
        }
    }
    let clean_cycle = clean_cycle.expect("clean receiver completed");
    let occ_cycle = occ_cycle.expect("occluded receiver completed");
    assert!(
        occ_cycle < 2 * (clean_cycle + 1),
        "occlusion overhead too high: occluded {occ_cycle} vs clean {clean_cycle}"
    );
}
