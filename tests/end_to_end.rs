//! Cross-crate integration tests: the full sender → display → camera →
//! receiver chain under configurations the unit tests don't combine.

use inframe::core::{CodingMode, InFrameConfig};
use inframe::sim::pipeline::{Simulation, SimulationConfig};
use inframe::sim::{Scale, Scenario};

fn base() -> SimulationConfig {
    let s = Scale::Quick;
    SimulationConfig {
        inframe: s.inframe(),
        display: s.display(),
        camera: s.camera(),
        geometry: s.geometry(),
        cycles: 6,
        seed: 101,
    }
}

#[test]
fn gray_channel_delivers_bits_end_to_end() {
    let config = base();
    let out = Simulation::new(config).run(Scenario::Gray.source(
        config.inframe.display_w,
        config.inframe.display_h,
        101,
    ));
    let r = out.report();
    assert!(
        r.available_ratio > 0.85,
        "availability {}",
        r.available_ratio
    );
    assert!(out.bit_accuracy() > 0.99, "accuracy {}", out.bit_accuracy());
    assert!(r.goodput_kbps() > 0.5 * r.raw_kbps());
}

#[test]
fn reed_solomon_mode_survives_video_content() {
    let mut config = base();
    config.inframe.coding = CodingMode::ReedSolomon { parity_bytes: 6 };
    config.cycles = 8;
    let out = Simulation::new(config).run(Scenario::Video.source(
        config.inframe.display_w,
        config.inframe.display_h,
        101,
    ));
    // RS turns missing Blocks into corrected payloads: whatever is
    // recovered must be correct.
    assert!(out.bits_compared > 0, "some codewords must decode");
    assert!(
        out.bit_accuracy() > 0.99,
        "RS-recovered bits must be correct, accuracy {}",
        out.bit_accuracy()
    );
}

#[test]
fn all_tau_settings_decode() {
    for tau in [10u32, 12, 14] {
        let mut config = base();
        config.inframe.tau = tau;
        config.cycles = 5;
        let out = Simulation::new(config).run(Scenario::Gray.source(
            config.inframe.display_w,
            config.inframe.display_h,
            7,
        ));
        assert!(
            out.report().available_ratio > 0.8,
            "tau={tau} availability {}",
            out.report().available_ratio
        );
        // Raw rate scales as 120/τ.
        let expected = out.payload_bits as f64 * 120.0 / tau as f64 / 1000.0;
        assert!((out.report().raw_kbps() - expected).abs() < 1e-9);
    }
}

#[test]
fn camera_phase_offset_does_not_break_decoding() {
    // An unsynchronized camera: arbitrary phase against the display.
    for phase in [0.003, 0.011, 0.017] {
        let mut config = base();
        config.camera.phase_s = phase;
        config.cycles = 5;
        let out = Simulation::new(config).run(Scenario::Gray.source(
            config.inframe.display_w,
            config.inframe.display_h,
            5,
        ));
        assert!(
            out.report().available_ratio > 0.6,
            "phase {phase}: availability {}",
            out.report().available_ratio
        );
        assert!(
            out.bit_accuracy() > 0.97,
            "phase {phase}: accuracy {}",
            out.bit_accuracy()
        );
    }
}

#[test]
fn higher_delta_does_not_hurt_gray_throughput() {
    let run = |delta: f32| {
        let mut config = base();
        config.inframe.delta = delta;
        config.cycles = 5;
        Simulation::new(config)
            .run(Scenario::Gray.source(config.inframe.display_w, config.inframe.display_h, 9))
            .report()
            .available_ratio
    };
    let d20 = run(20.0);
    let d30 = run(30.0);
    assert!(d30 >= d20 - 0.05, "δ=30 ({d30}) vs δ=20 ({d20})");
}

#[test]
fn dark_gray_performs_on_par_with_gray() {
    let config = base();
    let gray = Simulation::new(config).run(Scenario::Gray.source(
        config.inframe.display_w,
        config.inframe.display_h,
        3,
    ));
    let dark = Simulation::new(config).run(Scenario::DarkGray.source(
        config.inframe.display_w,
        config.inframe.display_h,
        3,
    ));
    let (g, d) = (gray.report().available_ratio, dark.report().available_ratio);
    assert!((g - d).abs() < 0.15, "gray {g} vs dark-gray {d}");
}

#[test]
fn paper_config_validates_and_reports_expected_capacity() {
    let cfg = InFrameConfig::paper();
    cfg.validate();
    let layout = inframe::core::DataLayout::from_config(&cfg);
    assert_eq!(layout.payload_bits_parity(), 1125);
    // τ=10 → 13.5 kbps raw: the arithmetic behind the 12.8 kbps headline.
    let raw: f64 = 1125.0 * 120.0 / 10.0 / 1000.0;
    assert!((raw - 13.5).abs() < 1e-12);
}
