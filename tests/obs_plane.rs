//! Integration proofs for the live operations plane: the mergeable
//! quantile sketch behind [`HistogramSnapshot`], the binary
//! flight-recorder wire format, and the out-of-process tail path.
//!
//! * Snapshot merge is **associative and commutative** — the fold order
//!   of a fleet's shards can never change a rollup.
//! * Merging per-shard sketches (≥ 8 shards, arbitrary order) yields
//!   exactly the whole-population sketch, and its p50/p90/p99 land
//!   within the sketch's guaranteed relative error of the exact
//!   rank statistics.
//! * A ring written by a live spine and decoded by [`TailReader`] is
//!   lossless, ordered, and bit-identical to the in-process
//!   [`Telemetry::recorder_dump`]; the JSONL converter over the same
//!   ring passes the strict schema validator line for line.

use inframe::obs::event::{CommandCause, Event, EventRecord, FaultClass, PhaseState};
use inframe::obs::export::{binary_to_jsonl, validate_jsonl};
use inframe::obs::metrics::HistogramSnapshot;
use inframe::obs::sketch::RELATIVE_ERROR;
use inframe::obs::{ObsConfig, RingConfig, RingWriter, TailReader, Telemetry};
use proptest::prelude::*;

/// Sketch snapshot of a value population, built through the public
/// histogram API.
fn snap(values: &[u64]) -> HistogramSnapshot {
    let tele = Telemetry::new();
    let h = tele.histogram("test.population");
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(parts: &[HistogramSnapshot]) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::default();
    for p in parts {
        out.merge(p);
    }
    out
}

/// Exact rank statistic matching the sketch's rank convention
/// (`rank = ceil(q·count)`, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: snapshot merge is associative and commutative, so any
    /// fold order over fleet shards produces the same aggregate.
    #[test]
    fn snapshot_merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000_000, 1..80),
        b in proptest::collection::vec(0u64..1_000_000_000, 1..80),
        c in proptest::collection::vec(0u64..1_000_000_000, 1..80),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge is not associative");
        // a ⊕ b == b ⊕ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "merge is not commutative");
    }

    /// Property: sharding a population across 8 spines and merging the
    /// snapshots in an arbitrary order reproduces the whole-population
    /// sketch exactly, and its quantiles track the exact rank statistics
    /// within the sketch's guaranteed relative error.
    #[test]
    fn sharded_merge_equals_whole_population(
        values in proptest::collection::vec(0u64..1_000_000_000, 16..300),
        order_seed in 0u64..1_000_000,
    ) {
        const SHARDS: usize = 8;
        let whole = snap(&values);
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
        for (i, &v) in values.iter().enumerate() {
            shards[i % SHARDS].push(v);
        }
        let mut parts: Vec<HistogramSnapshot> =
            shards.iter().map(|s| snap(s)).collect();
        // Fisher–Yates off a SplitMix64 stream: merge order is arbitrary.
        let mut state = order_seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..parts.len()).rev() {
            parts.swap(i, next() as usize % (i + 1));
        }
        let folded = merged(&parts);
        prop_assert_eq!(&folded, &whole, "sharded merge diverged from the population");

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.90, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = folded.quantile(q);
            let tol = (exact as f64 * RELATIVE_ERROR).max(0.5);
            prop_assert!(
                (est as f64 - exact as f64).abs() <= tol,
                "p{} estimate {} vs exact {} (tol {:.1})",
                (q * 100.0) as u32, est, exact, tol
            );
            // The one-sided bound really bounds the rank statistic.
            prop_assert!(folded.quantile_bound(q) >= exact, "quantile_bound below exact");
        }
    }
}

/// Fires a deterministic mix of every event shape at a spine.
fn emit_events(tele: &Telemetry, n: u64) {
    for cycle in 0..n {
        tele.event(Event::CycleRendered { cycle });
        tele.event(Event::CycleDecoded {
            cycle,
            ok: 700 + cycle as u32,
            erroneous: (cycle % 5) as u32,
            unavailable: 40,
            captures: 9,
        });
        match cycle % 4 {
            0 => tele.event(Event::SyncTransition {
                from: PhaseState::Locked,
                to: PhaseState::Suspect,
                in_state_us: 10_000 + cycle,
            }),
            1 => tele.event(Event::Command {
                cycle,
                delta: 2.0 + cycle as f32 * 0.25,
                tau: 10,
                cause: CommandCause::Backoff,
            }),
            2 => tele.event(Event::FaultStart {
                kind: FaultClass::Desync,
                from_cycle: cycle,
                until_cycle: cycle + 1,
            }),
            _ => tele.event(Event::ObjectComplete {
                object: 7,
                cycle,
                eps_milli: 125 + cycle as u32,
            }),
        }
    }
}

#[test]
fn ring_round_trip_is_bit_identical_to_the_recorder() {
    let dir = std::env::temp_dir().join(format!("inframe_obs_plane_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.ring");

    let tele = Telemetry::with_config(ObsConfig {
        recorder_capacity: 4096,
    });
    tele.attach_ring(
        RingWriter::create(
            &path,
            RingConfig {
                frame_size: 512,
                frame_count: 256,
            },
        )
        .expect("create ring"),
    );
    emit_events(&tele, 120);
    tele.publish_snapshot();
    // Taken while the ring is still attached, so the registry carries
    // the same `obs.ring.*` drop counters the snapshot embedded.
    let summary = tele.summary();
    tele.detach_ring().expect("ring was attached");

    let mut tail = TailReader::open(&path).expect("open ring");
    let mut events: Vec<EventRecord> = Vec::new();
    let mut snapshots = Vec::new();
    tail.poll(&mut events, &mut snapshots).expect("poll ring");

    // Lossless and ordered: exactly what the in-process recorder holds,
    // record for record.
    let dump = tele.recorder_dump();
    assert_eq!(events.len(), dump.len(), "tailer lost or invented events");
    assert_eq!(events, dump, "tailer records differ from the recorder");
    assert!(
        events.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
        "sequence numbers are not contiguous"
    );
    let stats = tail.stats();
    assert_eq!(stats.frames_lost, 0);
    assert_eq!(stats.frames_corrupt, 0);
    assert!(stats.schema_drift.is_none(), "schema drifted in-process");

    // The embedded registry snapshot round-trips the summary.
    assert_eq!(snapshots.len(), 1);
    assert_eq!(snapshots[0].events_recorded, summary.events_recorded);
    assert_eq!(snapshots[0].counters, summary.counters);

    // The offline converter's JSONL passes the strict validator with
    // every event accounted for.
    let jsonl = binary_to_jsonl(&path).expect("convert ring");
    let validated = validate_jsonl(&jsonl).unwrap_or_else(|e| panic!("schema violation: {e}"));
    assert_eq!(validated, dump.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrapped_ring_yields_the_ordered_suffix() {
    let dir = std::env::temp_dir().join(format!("inframe_obs_wrap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("wrap.ring");

    let tele = Telemetry::with_config(ObsConfig {
        recorder_capacity: 4096,
    });
    // A tiny ring (4 slots × 256 B) that hundreds of events must lap.
    tele.attach_ring(
        RingWriter::create(
            &path,
            RingConfig {
                frame_size: 256,
                frame_count: 4,
            },
        )
        .expect("create ring"),
    );
    emit_events(&tele, 200);
    tele.detach_ring();

    let mut tail = TailReader::open(&path).expect("open ring");
    let mut events: Vec<EventRecord> = Vec::new();
    let mut snapshots = Vec::new();
    tail.poll(&mut events, &mut snapshots).expect("poll ring");

    // The survivors are a contiguous, in-order suffix of the stream.
    assert!(!events.is_empty(), "nothing survived the wrap");
    assert!(
        events.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
        "suffix is not contiguous"
    );
    let dump = tele.recorder_dump();
    let tail_of_dump = &dump[dump.len() - events.len()..];
    assert_eq!(events, tail_of_dump, "suffix diverged from the recorder");
    assert!(tail.stats().frames_lost > 0, "the ring never wrapped");

    let _ = std::fs::remove_dir_all(&dir);
}
