//! The batched fleet seam must be invisible: scoring N perturbed views
//! of one capture through [`BatchScorer`] — shared sweeps, per-class
//! accumulator folds, assignment fan-out — must produce **bit-identical**
//! decode decisions to the reference fleet, which materializes each
//! receiver's perturbed capture as a real plane and runs it through its
//! own streaming [`Demultiplexer`]. Proven for the perturbation corpus
//! (identity, pure AWB shift, AE gain step, occlusion, the combination)
//! on both kernel backends, at every supported SIMD dispatch level, and
//! at worker counts 1–4.

use inframe::core::batch::{BatchScorer, ScoreClass, SKIP, UNREADABLE};
use inframe::core::config::KernelBackend;
use inframe::core::dataframe::{self, DataFrame};
use inframe::core::demux::{Demultiplexer, RegionCache};
use inframe::core::parallel::ParallelEngine;
use inframe::core::pattern::{self, Complementation};
use inframe::core::{DataLayout, InFrameConfig};
use inframe::frame::geometry::Homography;
use inframe::frame::perturb::{materialized, CaptureTransform, OcclusionRect};
use inframe::frame::simd;
use inframe::frame::Plane;
use std::sync::Arc;

/// Restores SIMD dispatch when the test exits (including on panic).
struct SimdGuard;

impl Drop for SimdGuard {
    fn drop(&mut self) {
        simd::force_level(None);
    }
}

fn textured_video(cfg: &InFrameConfig, seed: u64) -> Plane<f32> {
    Plane::from_fn(cfg.display_w, cfg.display_h, |x, y| {
        let h = (x as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((y as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB));
        40.0 + ((h >> 7) % 176) as f32
    })
}

/// Two in-cycle captures (the complementary pair of one textured data
/// frame) — enough to exercise the per-cycle max-merge.
fn captures(cfg: &InFrameConfig) -> Vec<Plane<f32>> {
    let layout = DataLayout::from_config(cfg);
    let payload: Vec<bool> = (0..layout.payload_bits_parity())
        .map(|i| i % 3 == 0)
        .collect();
    let frame = DataFrame::encode(&layout, &payload, cfg.coding);
    let video = textured_video(cfg, 23);
    let (plus, minus) = pattern::complementary_pair(
        &layout,
        &video,
        &frame,
        cfg.delta,
        Complementation::Code,
        |bx, by| if frame.bit(bx, by) { 1.0 } else { 0.0 },
    );
    vec![plus, minus]
}

/// The receiver-perturbation corpus: every axis alone plus the combined
/// case. All classes are noise-free — the streaming reference has no
/// noise-class notion, and bit-identity is only claimed for the shared
/// part of the algebra.
fn corpus(cfg: &InFrameConfig) -> Vec<(&'static str, CaptureTransform)> {
    let occ = OcclusionRect {
        x0: cfg.display_w / 4,
        y0: cfg.display_h / 3,
        w: cfg.display_w / 3,
        h: cfg.display_h / 4,
        level_raw: 128 * 128,
    };
    vec![
        ("identity", CaptureTransform::IDENTITY),
        (
            "awb-shift",
            CaptureTransform {
                awb_raw: 96,
                ..CaptureTransform::IDENTITY
            },
        ),
        (
            "gain-step",
            CaptureTransform {
                gain_q12: 4352, // ×1.0625
                ..CaptureTransform::IDENTITY
            },
        ),
        (
            "occlusion",
            CaptureTransform {
                occlusion: Some(occ),
                ..CaptureTransform::IDENTITY
            },
        ),
        (
            "combo",
            CaptureTransform {
                gain_q12: 3840, // ×0.9375
                awb_raw: -64,
                occlusion: Some(occ),
            },
        ),
    ]
}

/// Runs one backend × worker count and asserts batch == sequential for
/// every receiver in the corpus.
fn assert_fleet_equivalence(backend: KernelBackend, workers: usize, label: &str) {
    let cfg = InFrameConfig {
        kernel: backend,
        ..InFrameConfig::small_test()
    };
    let corpus = corpus(&cfg);
    let caps = captures(&cfg);
    let layout = DataLayout::from_config(&cfg);
    let cache = RegionCache::build(&cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
    let engine = Arc::new(ParallelEngine::new(workers));
    let mut scorer = BatchScorer::new(cfg, Arc::clone(&cache), Arc::clone(&engine));
    let nb = scorer.num_blocks();

    let transforms: Vec<CaptureTransform> = corpus.iter().map(|(_, t)| *t).collect();
    let classes: Vec<ScoreClass> = (0..transforms.len() as u32)
        .map(ScoreClass::clean)
        .collect();
    // One receiver per corpus entry, plus one SKIP receiver that must
    // stay untouched through every merge.
    let receivers = transforms.len() + 1;
    let assign: Vec<u32> = (0..transforms.len() as u32)
        .map(Some)
        .chain([None])
        .map(|c| c.unwrap_or(SKIP))
        .collect();
    let mut best = vec![UNREADABLE; receivers * nb];
    for capture in &caps {
        scorer.score_classes(capture, &transforms, &classes);
        scorer.merge_assigned(&assign, &mut best);
    }

    let mut verdicts = Vec::new();
    for (r, (name, transform)) in corpus.iter().enumerate() {
        // Reference: materialize this receiver's perturbed planes and run
        // them through a fresh streaming demultiplexer.
        let mut demux = Demultiplexer::with_cache(cfg, Arc::clone(&cache), Arc::clone(&engine));
        let d = demux.cycle_duration();
        let mut seq_best = vec![UNREADABLE; nb];
        for (i, capture) in caps.iter().enumerate() {
            let perturbed = materialized(capture, transform);
            demux.push_capture(&perturbed, (0.05 + 0.1 * i as f64) * d);
            for (slot, score) in seq_best.iter_mut().zip(demux.last_scores()) {
                if let Some(v) = score.value() {
                    *slot = slot.max(v);
                }
            }
        }
        let decoded = demux.finish().expect("one cycle accumulated");

        // Merged scores must agree bit-for-bit.
        let batch_row = &best[r * nb..(r + 1) * nb];
        assert_eq!(
            batch_row,
            &seq_best[..],
            "{label}: merged scores differ for {name}"
        );

        // And so must the decode decisions end to end: verdict rows fed
        // through the real PHY decode reproduce the streaming payload.
        scorer.verdicts_into(batch_row, &mut verdicts);
        let (bits, stats) = dataframe::decode(&layout, &verdicts, cfg.coding);
        assert_eq!(bits, decoded.payload, "{label}: payload differs for {name}");
        assert_eq!(stats, decoded.stats, "{label}: stats differ for {name}");
    }
    // The unassigned receiver's row never left the UNREADABLE floor.
    let idle = &best[transforms.len() * nb..];
    assert!(
        idle.iter().all(|&v| v == UNREADABLE),
        "{label}: SKIP receiver row was written"
    );
}

/// Acceptance: batched fleet scoring is bit-identical to the looping
/// single-receiver reference on both backends, every supported SIMD
/// level, workers 1–4.
#[test]
fn batched_fleet_scoring_matches_sequential_reference() {
    let _restore = SimdGuard;
    for level in simd::SimdLevel::supported() {
        simd::force_level(Some(level));
        for backend in [KernelBackend::Reference, KernelBackend::Quantized] {
            for workers in 1..=4 {
                assert_fleet_equivalence(
                    backend,
                    workers,
                    &format!("{backend:?}/{}/{workers}w", level.name()),
                );
            }
        }
    }
}
