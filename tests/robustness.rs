//! Robustness integration tests: scene cuts, blind synchronization and
//! ISP processing through the full channel.

use inframe::core::sync::CycleSynchronizer;
use inframe::sim::pipeline::{Simulation, SimulationConfig};
use inframe::sim::{Link, Scale, Scenario};
use inframe::video::source::Limited;
use inframe::video::synth::SolidClip;
use inframe::video::transform::Concat;
use inframe::video::FrameRate;

fn base(cycles: u32) -> SimulationConfig {
    let s = Scale::Quick;
    SimulationConfig {
        inframe: s.inframe(),
        display: s.display(),
        camera: s.camera(),
        geometry: s.geometry(),
        cycles,
        seed: 31,
    }
}

#[test]
fn scene_cut_does_not_corrupt_in_flight_cycles() {
    // A hard cut from dark to bright mid-stream: because both frames of a
    // complementary pair use the same video frame, the cut cannot break
    // pair cancellation, and decoding continues across it.
    let c = base(6);
    let (w, h) = (c.inframe.display_w, c.inframe.display_h);
    let cut = Concat::new(
        Limited::new(SolidClip::new(w, h, 90.0, FrameRate::VIDEO_30), 9),
        SolidClip::new(w, h, 170.0, FrameRate::VIDEO_30),
    );
    let out = Simulation::new(c).run(cut);
    let r = out.report();
    assert!(
        r.available_ratio > 0.85,
        "availability across the cut: {}",
        r.available_ratio
    );
    assert!(out.bit_accuracy() > 0.98, "accuracy {}", out.bit_accuracy());
}

#[test]
fn blind_sync_recovers_unknown_camera_phase() {
    // Run the channel with a camera whose phase the receiver does NOT
    // know; recover the cycle phase from block scores alone and check it
    // against the truth.
    use inframe::camera::Camera;
    use inframe::core::sender::{PrbsPayload, Sender};
    use inframe::core::Demultiplexer;
    use inframe::display::DisplayStream;
    use std::collections::VecDeque;

    let mut c = base(16);
    // τ = 10: the 33.3 ms capture period is not an integer fraction of the
    // 83.3 ms cycle, so capture times fold onto five distinct positions
    // per cycle — enough coverage for the phase estimator. (At τ = 12 the
    // ratio is exactly 3 and some camera phases never sample the
    // transition window.)
    c.inframe.tau = 10;
    let true_phase = 0.0137; // unknown to the receiver
    c.camera.phase_s = true_phase;
    let (w, h) = (c.inframe.display_w, c.inframe.display_h);

    let mut sender = Sender::new(
        c.inframe,
        SolidClip::new(w, h, 127.0, FrameRate::VIDEO_30),
        PrbsPayload::new(3),
    );
    let mut display = DisplayStream::new(c.display);
    let mut camera = Camera::new(c.camera, c.geometry, 3);
    let registration = c
        .geometry
        .display_to_sensor(w, h, c.camera.width, c.camera.height);
    let mut demux = Demultiplexer::new(c.inframe, &registration, c.camera.width, c.camera.height);
    let mut sync = CycleSynchronizer::new(&c.inframe);

    let mut window = VecDeque::new();
    let total = c.cycles as u64 * c.inframe.tau as u64;
    for _ in 0..total {
        let Some(frame) = sender.next_frame() else {
            break;
        };
        let emission = display.present(&frame.plane);
        let end = emission.t_start + emission.duration;
        window.push_back(emission);
        loop {
            let (need_start, need_end) = camera.required_window();
            if need_end > end {
                break;
            }
            while window
                .front()
                .is_some_and(|e: &inframe::display::FrameEmission| {
                    e.t_start + e.duration <= need_start + 1e-12
                })
            {
                window.pop_front();
            }
            let emissions: Vec<_> = window.iter().cloned().collect();
            // The receiver only knows its own capture count, not display
            // time: use camera-local timestamps.
            let local_t = camera.next_index() as f64 / c.camera.fps;
            match camera.capture(&emissions) {
                Ok(cap) => {
                    let scores = demux.score_capture(&cap.plane);
                    sync.observe(
                        local_t,
                        CycleSynchronizer::decisiveness_of_scores(
                            &scores,
                            c.inframe.threshold,
                            c.inframe.margin,
                        ),
                    );
                }
                Err(_) => camera.skip_frame(),
            }
        }
    }

    let est = sync.estimate().expect("enough captures");
    // The SRRC smoothing deliberately minimizes the very signature blind
    // sync keys on, so the contrast is modest — but it must exist.
    assert!(est.confidence > 1.05, "confidence {}", est.confidence);
    // The estimate is in camera-local time; the true cycle origin in that
    // frame of reference is −(phase + exposure midpoint) (mod cycle).
    let d = sync.cycle_duration();
    let readout_mid = 0.024 / 2.0 + c.camera.exposure_s / 2.0;
    let expected = ((-(true_phase + readout_mid)) % d + d) % d;
    // Accept a circular error of up to a third of a cycle: the 30 FPS
    // camera folds to only three positions per cycle, bounding resolution.
    let err = {
        let e = (est.phase - expected).abs() % d;
        e.min(d - e)
    };
    assert!(
        err < d / 3.0,
        "phase estimate {} vs expected {expected} (err {err}, cycle {d})",
        est.phase
    );
}

#[test]
fn phone_isp_default_still_decodes() {
    use inframe::camera::IspConfig;
    use inframe::link::session::CompletionTarget;
    let mut c = base(5);
    c.camera.isp = IspConfig::phone_default();
    let link = Link::new(c);
    let session = link.run_session(
        Scenario::Gray.source(c.inframe.display_w, c.inframe.display_h, 31),
        inframe::core::sender::PrbsPayload::new(31),
        5,
        link.session(CompletionTarget::Never),
    );
    assert!(
        session.stats().available_ratio() > 0.8,
        "availability with phone ISP: {}",
        session.stats().available_ratio()
    );
}

#[test]
fn letterboxing_costs_bar_blocks_but_not_correctness() {
    // A letterboxed clip: the data grid extends over the dark bars, where
    // shadow noise swamps the (clamped) pattern — those GOBs drop out,
    // but every bit that IS recovered stays correct. Dark content costs
    // capacity, never integrity.
    use inframe::video::transform::Letterbox;
    let c = base(5);
    let (w, h) = (c.inframe.display_w, c.inframe.display_h);
    let inner = SolidClip::new(w - 40, h - 40, 127.0, FrameRate::VIDEO_30);
    let boxed = Letterbox::new(inner, w, h, 30.0);
    let out = Simulation::new(c).run(boxed);
    let avail = out.report().available_ratio;
    assert!(
        (0.3..0.95).contains(&avail),
        "bars must cost some availability: {avail}"
    );
    assert!(out.bit_accuracy() > 0.97, "accuracy {}", out.bit_accuracy());
    // Brighter bars restore the lost blocks.
    let bright = Letterbox::new(
        SolidClip::new(w - 40, h - 40, 127.0, FrameRate::VIDEO_30),
        w,
        h,
        110.0,
    );
    let out2 = Simulation::new(base(5)).run(bright);
    assert!(
        out2.report().available_ratio > avail,
        "brighter bars must recover blocks: {} vs {avail}",
        out2.report().available_ratio
    );
}
