//! Fault-matrix integration suite: every capture-path fault injector
//! alone and in pairs at `Scale::Quick`, asserting the receiver's
//! LOCKED → SUSPECT → REACQUIRE machinery recovers delivery.
//!
//! The whole suite is seeded from `SEED` and simulated time only — a
//! fixed configuration replays bit-for-bit (see
//! `outcomes_are_deterministic_for_a_fixed_seed`). CI runs it under both
//! kernel backends.
//!
//! ## The ε bound
//!
//! The acceptance criterion "ε ≤ 2× clean-channel ε" needs an additive
//! floor: the clean channel delivers the object from its systematic
//! prefix with ε = 0 exactly, so any multiplicative bound alone would
//! forbid even a single extra repair symbol. `EPSILON_FLOOR` (0.5 = 3
//! extra symbols on the K = 6 object) is that floor; faulted runs must
//! stay within `max(2 × ε_clean, EPSILON_FLOOR)`.

use inframe::sim::faults::{
    run_fault_scenario, FaultKind, FaultOutcome, FaultScenarioConfig, FaultWindow,
};
use inframe::sim::pipeline::SimulationConfig;
use inframe::sim::{Scale, Scenario};
use std::sync::OnceLock;

/// Root of the suite's fixed seed matrix (CI pins the same value).
const SEED: u64 = 11;
const OBJECT: u16 = 7;
/// 96 bytes = K = 6 sixteen-byte streamed symbols at Quick scale.
const OBJECT_LEN: usize = 96;
/// Run budget: systematic pass ≈ 20 cycles, faults span cycles 6–12,
/// worst-case resync ≈ 13 more — 80 leaves repair headroom.
const CYCLES: u32 = 80;
/// Single-fault relock budget, cycles past fault clearance.
const RELOCK_BOUND: u64 = 8;
/// Additive ε floor (see module docs).
const EPSILON_FLOOR: f64 = 0.5;

fn cfg(faults: Vec<FaultWindow>) -> FaultScenarioConfig {
    let s = Scale::Quick;
    FaultScenarioConfig {
        sim: SimulationConfig {
            inframe: s.inframe(),
            display: s.display(),
            camera: s.camera(),
            geometry: s.geometry(),
            cycles: CYCLES,
            seed: SEED,
        },
        scenario: Scenario::Gray,
        object_id: OBJECT,
        object_len: OBJECT_LEN,
        faults,
        adaptive: false,
        closed_loop: false,
        watchdog_cycles: None,
    }
}

fn window(kind: FaultKind) -> FaultWindow {
    FaultWindow {
        kind,
        from_cycle: 6,
        until_cycle: 12,
    }
}

/// The clean-channel reference, computed once per binary.
fn clean() -> &'static FaultOutcome {
    static CLEAN: OnceLock<FaultOutcome> = OnceLock::new();
    CLEAN.get_or_init(|| run_fault_scenario(&cfg(Vec::new())))
}

/// The single-fault acceptance bar: delivery, integrity, bounded relock,
/// bounded decode overhead.
fn assert_recovers(outcome: &FaultOutcome, label: &str) {
    assert!(
        outcome.completed && outcome.object_ok,
        "{label}: object must be delivered intact; {outcome:?}"
    );
    assert!(
        outcome.locked_at_end,
        "{label}: must end locked; {outcome:?}"
    );
    let relock = outcome.relock_cycles.unwrap_or(0);
    assert!(
        relock <= RELOCK_BOUND,
        "{label}: relocked {relock} cycles after clearance (budget {RELOCK_BOUND}); {:?}",
        outcome.health_transitions
    );
    let bound = (2.0 * clean().epsilon.unwrap_or(0.0)).max(EPSILON_FLOOR);
    let eps = outcome.epsilon.unwrap_or(f64::INFINITY);
    assert!(eps <= bound + 1e-9, "{label}: ε {eps} exceeds {bound}");
}

#[test]
fn clean_channel_is_the_reference() {
    let out = clean();
    assert!(out.completed && out.object_ok, "{out:?}");
    assert_eq!(out.lock_losses, 0, "clean channel must never lose lock");
    assert!(out.health_transitions.is_empty(), "{out:?}");
    assert!(out.availability > 0.85, "availability {}", out.availability);
    assert!(
        out.epsilon.unwrap_or(f64::INFINITY) <= EPSILON_FLOOR,
        "clean ε {:?} inconsistent with the documented floor",
        out.epsilon
    );
}

#[test]
fn recovers_from_dropped_captures() {
    let out = run_fault_scenario(&cfg(vec![window(FaultKind::Drop { rate: 0.5 })]));
    assert!(out.captures.1 > 0, "fault must actually drop captures");
    assert_recovers(&out, "drop");
}

#[test]
fn recovers_from_duplicated_captures() {
    let out = run_fault_scenario(&cfg(vec![window(FaultKind::Duplicate { rate: 0.5 })]));
    assert!(out.captures.2 > 0, "fault must actually duplicate captures");
    assert_recovers(&out, "duplicate");
}

#[test]
fn recovers_from_clock_skew_and_jitter() {
    let out = run_fault_scenario(&cfg(vec![window(FaultKind::ClockSkew {
        skew: 2e-3,
        jitter_s: 1.5e-3,
    })]));
    assert_recovers(&out, "clock-skew");
}

#[test]
fn recovers_from_exposure_drift() {
    let out = run_fault_scenario(&cfg(vec![window(FaultKind::ExposureDrift {
        gain_amplitude: 0.2,
        awb_shift: 6.0,
        period_s: 0.35,
    })]));
    assert_recovers(&out, "exposure-drift");
}

#[test]
fn recovers_from_partial_occlusion() {
    let out = run_fault_scenario(&cfg(vec![window(FaultKind::Occlusion {
        frac: 0.25,
        level: 20.0,
    })]));
    assert_recovers(&out, "occlusion");
}

#[test]
fn recovers_from_a_half_cycle_desync() {
    // Half a cycle is the worst-case clock step: every receiver-stable
    // capture position lands in the true transition half, so the lock
    // MUST collapse and re-acquire at the shifted phase.
    let out = run_fault_scenario(&cfg(vec![FaultWindow {
        kind: FaultKind::Desync { shift_s: 0.05 },
        from_cycle: 8,
        until_cycle: 9,
    }]));
    assert!(
        out.lock_losses >= 1,
        "a half-cycle desync must drop the lock"
    );
    assert!(
        out.relock_cycles.is_some(),
        "the dropped lock must be re-acquired; {:?}",
        out.health_transitions
    );
    assert_recovers(&out, "desync");
}

// ---- fault pairs: compound stress must still deliver ----

/// Pairs are held to delivery + eventual re-lock; the single-fault
/// relock/ε budgets apply per the acceptance criteria to lone injectors.
fn assert_pair_delivers(outcome: &FaultOutcome, label: &str) {
    assert!(
        outcome.completed && outcome.object_ok,
        "{label}: object must be delivered intact; {outcome:?}"
    );
    assert!(
        outcome.locked_at_end,
        "{label}: must end locked; {outcome:?}"
    );
}

#[test]
fn pair_drop_plus_desync_delivers() {
    let out = run_fault_scenario(&cfg(vec![
        window(FaultKind::Drop { rate: 0.4 }),
        FaultWindow {
            kind: FaultKind::Desync { shift_s: 0.05 },
            from_cycle: 8,
            until_cycle: 9,
        },
    ]));
    assert_pair_delivers(&out, "drop+desync");
}

#[test]
fn pair_duplicate_plus_exposure_drift_delivers() {
    let out = run_fault_scenario(&cfg(vec![
        window(FaultKind::Duplicate { rate: 0.4 }),
        window(FaultKind::ExposureDrift {
            gain_amplitude: 0.2,
            awb_shift: 6.0,
            period_s: 0.35,
        }),
    ]));
    assert_pair_delivers(&out, "duplicate+exposure");
}

#[test]
fn pair_occlusion_plus_drop_delivers() {
    let out = run_fault_scenario(&cfg(vec![
        window(FaultKind::Occlusion {
            frac: 0.25,
            level: 20.0,
        }),
        window(FaultKind::Drop { rate: 0.4 }),
    ]));
    assert_pair_delivers(&out, "occlusion+drop");
}

#[test]
fn pair_clock_skew_plus_occlusion_delivers() {
    let out = run_fault_scenario(&cfg(vec![
        window(FaultKind::ClockSkew {
            skew: 2e-3,
            jitter_s: 1.5e-3,
        }),
        window(FaultKind::Occlusion {
            frac: 0.25,
            level: 20.0,
        }),
    ]));
    assert_pair_delivers(&out, "skew+occlusion");
}

#[test]
fn outcomes_are_deterministic_for_a_fixed_seed() {
    let scenario = cfg(vec![
        window(FaultKind::Drop { rate: 0.5 }),
        FaultWindow {
            kind: FaultKind::Desync { shift_s: 0.05 },
            from_cycle: 8,
            until_cycle: 9,
        },
    ]);
    let a = run_fault_scenario(&scenario);
    let b = run_fault_scenario(&scenario);
    assert_eq!(a, b, "same seed must replay bit-for-bit");
}

// ---- telemetry event stream (PR 5: observability) ----

mod telemetry_stream {
    use super::*;
    use inframe::obs::{CommandCause, Event, FaultClass, ObsConfig, PhaseState, Telemetry};
    use inframe::sim::faults::run_fault_scenario_with_telemetry;

    /// The half-cycle desync scenario with the adaptive controller in the
    /// loop — the run whose post-mortem the flight recorder must support.
    fn desync_cfg() -> FaultScenarioConfig {
        let mut c = cfg(vec![FaultWindow {
            kind: FaultKind::Desync { shift_s: 0.05 },
            from_cycle: 8,
            until_cycle: 9,
        }]);
        c.adaptive = true;
        c
    }

    /// A spine whose ring comfortably holds the whole run, so the
    /// lock-loss snapshot is the complete history up to the loss.
    fn spine() -> Telemetry {
        Telemetry::with_config(ObsConfig {
            recorder_capacity: 4096,
        })
    }

    #[test]
    fn flight_recorder_dump_holds_desync_forensics() {
        let tele = spine();
        let out = run_fault_scenario_with_telemetry(&desync_cfg(), &tele);
        assert!(out.lock_losses >= 1, "desync must drop the lock; {out:?}");

        let dump = tele.lock_loss_dump();
        assert!(
            !dump.is_empty(),
            "a lock loss must snapshot the flight recorder"
        );
        // The snapshot is causally ordered and ends at a loss event.
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(
            dump.last().expect("non-empty").event.is_lock_loss(),
            "the dump must end at the event that triggered it"
        );
        // 1) the fault window that opened…
        assert!(
            dump.iter().any(|r| matches!(
                r.event,
                Event::FaultStart {
                    kind: FaultClass::Desync,
                    from_cycle: 8,
                    ..
                }
            )),
            "dump must show the desync window opening: {dump:?}"
        );
        // 2) …the LOCKED → SUSPECT → REACQUIRE degradation it caused…
        assert!(
            dump.iter().any(|r| matches!(
                r.event,
                Event::SyncTransition {
                    from: PhaseState::Locked,
                    to: PhaseState::Suspect,
                    ..
                }
            )),
            "dump must show the SUSPECT entry: {dump:?}"
        );
        // (the collapse may route SUSPECT → LOCKED → REACQUIRE when the
        // complementary half's crispness looks healthy and the session's
        // decode-quality supervision forces the loss, so only the
        // REACQUIRE entry itself is pinned here)
        assert!(
            dump.iter().any(|r| matches!(
                r.event,
                Event::SyncTransition {
                    to: PhaseState::Reacquiring,
                    ..
                }
            )),
            "dump must show the lock collapse: {dump:?}"
        );
        // 3) …and the controller's backoff command in response.
        assert!(
            dump.iter().any(|r| matches!(
                r.event,
                Event::Command {
                    cause: CommandCause::Backoff,
                    ..
                }
            )),
            "dump must show the controller backing off: {dump:?}"
        );
    }

    #[test]
    fn session_health_events_mirror_outcome_transitions() {
        let tele = spine();
        let out = run_fault_scenario_with_telemetry(&desync_cfg(), &tele);
        assert!(
            !out.health_transitions.is_empty(),
            "the scenario must exercise health transitions; {out:?}"
        );

        // Every transition the harness recorded in the outcome must also
        // be in the event stream, on the same true-cycle timeline.
        let stream = tele.recorder_dump();
        for &(cycle, state) in &out.health_transitions {
            let want = state.obs_state();
            assert!(
                stream.iter().any(|r| matches!(
                    r.event,
                    Event::SessionHealth { cycle: c, state: s } if c == cycle && s == want
                )),
                "missing SessionHealth {{cycle: {cycle}, state: {want:?}}} in the stream"
            );
        }
        // And the telemetry counters agree with the outcome's numbers.
        let s = tele.summary();
        assert_eq!(
            s.counter(inframe::obs::names::session::RESYNCS),
            out.lock_losses,
            "resync counter must match the outcome's lock losses"
        );
        assert_eq!(
            s.counter(inframe::obs::names::faults::DELIVERED),
            out.captures.0,
            "delivered-capture counter must match the outcome"
        );
    }
}

// ---- auto-exposure under a step (satellite: camera::autoexposure) ----

mod exposure_step {
    use inframe::camera::AutoExposure;
    use inframe::core::dataframe::DataFrame;
    use inframe::core::demux::Demultiplexer;
    use inframe::core::layout::DataLayout;
    use inframe::core::pattern::{complementary_pair, Complementation};
    use inframe::core::InFrameConfig;
    use inframe::frame::color::{code_to_linear, linear_to_code};
    use inframe::frame::geometry::Homography;
    use inframe::frame::Plane;

    /// Per-Block decisions from one capture's scores: `Some(bit)` outside
    /// the `T ± margin` dead zone, `None` inside it.
    fn decisions(scores: &[f32], cfg: &InFrameConfig) -> Vec<Option<bool>> {
        scores
            .iter()
            .map(|&s| {
                if s >= cfg.threshold + cfg.margin {
                    Some(true)
                } else if s <= cfg.threshold - cfg.margin {
                    Some(false)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Applies a linear-light gain to a code-value plane (what the
    /// camera's AE gain stage does before encoding).
    fn with_gain(plane: &Plane<f32>, gain: f64) -> Plane<f32> {
        let mut out = plane.clone();
        out.map_in_place(|c| {
            linear_to_code((code_to_linear(c) as f64 * gain).clamp(0.0, 1.0) as f32)
        });
        out
    }

    #[test]
    fn ae_compensation_keeps_block_decisions_stable_across_a_step() {
        // A ±20% exposure step in linear light; the AE servo gets one
        // τ window (3 captures at 30 FPS / 0.1 s cycles) to compensate.
        // Demodulation decisions on the compensated capture must match
        // the pre-step reference exactly.
        let cfg = InFrameConfig::small_test();
        let layout = DataLayout::from_config(&cfg);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % 3 == 0)
            .collect();
        let data = DataFrame::encode(&layout, &payload, cfg.coding);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let (crisp, _) = complementary_pair(
            &layout,
            &video,
            &data,
            cfg.delta,
            Complementation::Code,
            |bx, by| if data.bit(bx, by) { 1.0 } else { 0.0 },
        );
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        let reference = decisions(&demux.score_capture(&crisp), &cfg);
        assert!(
            reference.iter().any(|d| d.is_some()),
            "the reference capture must decode something"
        );

        for step in [1.2_f64, 1.0 / 1.2] {
            // The servo regulates toward the pre-step operating point.
            let mut ae = AutoExposure {
                target_code: crisp.mean() as f32,
                ..AutoExposure::phone_default()
            };
            let stepped = with_gain(&crisp, step);
            for _ in 0..3 {
                ae.observe(&with_gain(&stepped, ae.gain));
            }
            let compensated = with_gain(&stepped, ae.gain);
            let residual = step * ae.gain;
            assert!(
                (residual - 1.0).abs() < 0.1,
                "AE must cancel most of a {step}x step within one τ window \
                 (residual {residual}, gain {})",
                ae.gain
            );
            let got = decisions(&demux.score_capture(&compensated), &cfg);
            assert_eq!(
                got, reference,
                "Block decisions must be stable across a {step}x exposure step"
            );
        }
    }
}

// ---- closed loop + watchdog (PR 9: robustness) ----

mod closed_loop {
    use super::*;
    use inframe::obs::{Event, FaultClass, ObsConfig, Telemetry};
    use inframe::sim::faults::run_fault_scenario_with_telemetry;

    /// A capture blackout long past the watchdog budget: the decode
    /// pipeline goes silent while display cycles keep passing.
    fn blackout_cfg() -> FaultScenarioConfig {
        let mut c = cfg(vec![FaultWindow {
            kind: FaultKind::Drop { rate: 1.0 },
            from_cycle: 6,
            until_cycle: 30,
        }]);
        c.watchdog_cycles = Some(8);
        c
    }

    #[test]
    fn watchdog_fires_once_per_stall_and_dumps_forensics() {
        let tele = Telemetry::with_config(ObsConfig {
            recorder_capacity: 4096,
        });
        let out = run_fault_scenario_with_telemetry(&blackout_cfg(), &tele);
        assert!(
            out.watchdog_fires >= 1,
            "a 24-cycle capture blackout must trip the 8-cycle watchdog; {out:?}"
        );
        assert_eq!(
            out.watchdog_fires, 1,
            "one stall episode must fire the watchdog exactly once; {out:?}"
        );
        assert!(
            out.completed && out.object_ok,
            "delivery must resume after the blackout; {out:?}"
        );
        // The watchdog is a flight-recorder dump trigger: the snapshot
        // must hold the fault window that caused the stall, then the
        // watchdog expiry itself.
        let dump = tele.lock_loss_dump();
        assert!(!dump.is_empty(), "the watchdog must snapshot the recorder");
        let fault_at = dump.iter().position(|r| {
            matches!(
                r.event,
                Event::FaultStart {
                    kind: FaultClass::Drop,
                    ..
                }
            )
        });
        let dog_at = dump
            .iter()
            .position(|r| matches!(r.event, Event::Watchdog { .. }));
        let (Some(fault_at), Some(dog_at)) = (fault_at, dog_at) else {
            panic!("dump must hold the drop window and the watchdog expiry: {dump:?}");
        };
        assert!(
            fault_at < dog_at,
            "forensics order: the fault opens, then the watchdog expires"
        );
        assert!(
            dump.iter().any(|r| matches!(
                r.event,
                Event::Watchdog {
                    budget_cycles: 8,
                    ..
                }
            )),
            "the expiry must carry the configured budget: {dump:?}"
        );
    }

    #[test]
    fn quiet_channel_never_wakes_the_watchdog() {
        let mut c = cfg(Vec::new());
        c.watchdog_cycles = Some(8);
        let out = run_fault_scenario(&c);
        assert_eq!(out.watchdog_fires, 0, "{out:?}");
        assert!(out.completed && out.object_ok);
    }

    /// A sustained multiplicative exposure drift: the gain oscillation
    /// scales the chessboard contrast by up to 1 ± 0.35, exactly the
    /// damage a larger δ undoes. The controller issues the same degrade
    /// commands either way; only the closed run actuates them via
    /// `Sender::queue_modulation`.
    fn drift_cfg(closed: bool) -> FaultScenarioConfig {
        let mut c = cfg(vec![FaultWindow {
            kind: FaultKind::ExposureDrift {
                gain_amplitude: 0.35,
                awb_shift: 0.0,
                period_s: 0.9,
            },
            from_cycle: 6,
            until_cycle: 100_000, // never clears within the run
        }]);
        c.sim.cycles = 400;
        c.adaptive = true;
        c.closed_loop = closed;
        c
    }

    #[test]
    fn closed_loop_remodulation_beats_recording_commands_open_loop() {
        let open = run_fault_scenario(&drift_cfg(false));
        let closed = run_fault_scenario(&drift_cfg(true));
        assert!(open.completed && open.object_ok, "{open:?}");
        assert!(closed.completed && closed.object_ok, "{closed:?}");
        assert!(!closed.commands.is_empty(), "the loop must have actuated");
        let open_c = open.completion_cycle.unwrap();
        let closed_c = closed.completion_cycle.unwrap();
        assert!(
            closed_c < open_c,
            "actuated δ must out-deliver recorded-only commands: {closed_c} vs {open_c}"
        );
        assert!(
            closed.availability > open.availability,
            "the boosted chessboard must ride the gain trough better: {} vs {}",
            closed.availability,
            open.availability
        );
    }
}
