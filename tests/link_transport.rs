//! Transport-layer acceptance: the `inframe-link` carousel must deliver
//! objects through real PHY coding under erasure, admit late joiners, and
//! decode bit-identically regardless of worker count or kernel backend.
//!
//! The erasure/late-join/sweep tests run the GOB-granularity link
//! simulator at paper scale (ISSUE acceptance: 4 KiB object recovered
//! from any K(1+ε) symbols with ε ≤ 0.15 at 20% uniform GOB erasure; a
//! receiver joining ≥50% into the carousel completes). The determinism
//! test runs the full pixel chain — multiplexed sender frames through a
//! capture-level session — across `INFRAME_WORKERS`-equivalent engine
//! sizes 1–4 and both `INFRAME_KERNEL` backends.

use inframe::core::config::KernelBackend;
use inframe::core::demux::{Demultiplexer, RegionCache};
use inframe::core::parallel::ParallelEngine;
use inframe::core::sender::Sender;
use inframe::core::{DataLayout, InFrameConfig};
use inframe::frame::geometry::Homography;
use inframe::link::carousel::Carousel;
use inframe::link::session::{
    CompletionTarget, CycleReport, ReceiverSession, SessionState, SyncMode,
};
use inframe::sim::linksim::erasure_sweep;
use inframe::sim::{run_link_scenario, LinkScenarioConfig};
use inframe::video::synth::SolidClip;
use std::sync::Arc;

/// ISSUE acceptance: a 4 KiB object over the paper channel at 20%
/// uniform GOB erasure decodes with measured overhead ε ≤ 0.15.
#[test]
fn four_kib_at_twenty_percent_erasure_decodes_within_epsilon_bound() {
    let out = run_link_scenario(&LinkScenarioConfig::baseline(0.20, 1402));
    assert!(out.completed, "4 KiB object must complete at 20% erasure");
    let eps = out.epsilon_max.expect("completed run reports epsilon");
    assert!(eps <= 0.15, "decode overhead ε = {eps} exceeds 0.15");
}

/// ISSUE acceptance: a receiver joining ≥50% into the carousel still
/// completes — rateless repair symbols make the entry point irrelevant.
#[test]
fn late_joiner_past_half_carousel_completes() {
    let mut cfg = LinkScenarioConfig::baseline(0.10, 77);
    // K = 79 symbols at one per cycle: cycle 48 is ~60% through the pass.
    cfg.join_cycle = 48;
    let out = run_link_scenario(&cfg);
    assert!(out.completed, "late joiner must still complete");
    assert!(
        out.time_to_first_object_s.is_some(),
        "completion must stamp a first-object time"
    );
}

/// Erasure sweep smoke: every operating point of the paper's 5–30% range
/// completes, and heavier loss never takes fewer cycles than lighter.
#[test]
fn erasure_sweep_five_to_thirty_percent_completes_everywhere() {
    let base = LinkScenarioConfig::baseline(0.0, 501);
    let rates = [0.05, 0.15, 0.30];
    let outs = erasure_sweep(&base, &rates);
    let mut cycles = Vec::new();
    for (rate, out) in &outs {
        assert!(out.completed, "sweep point {rate} did not complete");
        cycles.push(out.cycles_to_complete.expect("completed"));
    }
    assert!(
        cycles[0] <= cycles[2],
        "5% erasure ({}) should not need more cycles than 30% ({})",
        cycles[0],
        cycles[2]
    );
}

/// What one full-chain mid-stream join produced: the recovered object,
/// every cycle report, and the completion cycle.
#[derive(Debug, PartialEq)]
struct JoinRun {
    object: Vec<u8>,
    reports: Vec<CycleReport>,
    completion_cycle: u64,
}

const OBJECT_ID: u16 = 7;

fn object_bytes() -> Vec<u8> {
    (0..96u32)
        .map(|i| (i.wrapping_mul(37) ^ 0x5A) as u8)
        .collect()
}

/// Runs the full pixel chain — carousel payload, multiplexed sender
/// frames, captures every 4th displayed frame, capture-level session —
/// with the receiver joining mid-stream, on an explicit engine size.
fn join_run(backend: KernelBackend, workers: usize) -> JoinRun {
    let cfg = InFrameConfig {
        kernel: backend,
        ..InFrameConfig::small_test()
    };
    let layout = DataLayout::from_config(&cfg);
    let mut carousel = Carousel::for_channel(&layout, cfg.coding);
    let data = object_bytes();
    carousel.add_object(OBJECT_ID, 1, &data);

    // Join ~60% of one carousel pass in: spin the sender side unobserved.
    let geometry = carousel.geometry();
    let k = carousel.k_of(OBJECT_ID).expect("object registered");
    let join_cycles = ((0.6 * k as f64) / geometry.symbols_per_cycle()).ceil() as usize;
    for _ in 0..join_cycles {
        carousel.next_cycle_payload();
    }

    let video = SolidClip::paper_gray(cfg.display_w, cfg.display_h);
    let engine = Arc::new(ParallelEngine::new(workers));
    let mut sender = Sender::with_engine(cfg, video, carousel, Arc::clone(&engine));
    let demux = Demultiplexer::with_cache(
        cfg,
        RegionCache::build(&cfg, &Homography::identity(), cfg.display_w, cfg.display_h),
        engine,
    );
    let mut session = ReceiverSession::with_demux(
        &cfg,
        geometry,
        demux,
        SyncMode::Known { phase: 0.0 },
        CompletionTarget::AllOf(vec![OBJECT_ID]),
    );

    let mut reports = Vec::new();
    // Camera at 30 FPS over the 120 Hz display: every 4th displayed frame.
    let max_frames = 120 * cfg.tau as usize;
    for _ in 0..max_frames {
        let f = sender.next_frame().expect("endless clip");
        if f.slot.display_index.is_multiple_of(4) {
            let t_mid = f.slot.t_start + 0.5 / cfg.refresh_hz;
            if let Some(report) = session.push_capture(&f.plane, t_mid) {
                reports.push(report);
            }
            if session.is_complete() {
                break;
            }
        }
    }
    reports.extend(session.finish());
    assert_eq!(
        session.state(),
        SessionState::Complete,
        "{backend:?}/{workers} workers: session did not complete"
    );
    assert_eq!(
        session.object(OBJECT_ID).expect("object decoded"),
        &data[..],
        "{backend:?}/{workers} workers: recovered object differs from source"
    );
    JoinRun {
        object: session.object(OBJECT_ID).unwrap().to_vec(),
        reports,
        completion_cycle: session.completion_cycle(OBJECT_ID).expect("completed"),
    }
}

/// ISSUE satellite: a receiver joining mid-stream over the full pixel
/// chain recovers the object bit-identically for every worker count 1–4
/// and on both kernel backends.
#[test]
fn mid_stream_join_bit_identical_across_workers_and_backends() {
    let source = object_bytes();
    for backend in [KernelBackend::Reference, KernelBackend::Quantized] {
        let reference = join_run(backend, 1);
        assert_eq!(reference.object, source);
        for workers in 2..=4usize {
            let run = join_run(backend, workers);
            assert_eq!(
                run, reference,
                "{backend:?}: run differs at {workers} workers"
            );
        }
    }
}
