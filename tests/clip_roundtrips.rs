//! Persistence and determinism across crates: clips written to the IFV
//! container replay into identical experiment outcomes.

use inframe::sim::pipeline::{Simulation, SimulationConfig};
use inframe::sim::{Scale, Scenario};
use inframe::video::container::IfvClip;
use inframe::video::source::Looped;
use inframe::video::{FrameRate, VideoSource};

#[test]
fn ifv_clip_replays_into_identical_outcome() {
    let scale = Scale::Quick;
    let config = SimulationConfig {
        inframe: scale.inframe(),
        display: scale.display(),
        camera: scale.camera(),
        geometry: scale.geometry(),
        cycles: 4,
        seed: 77,
    };
    let (w, h) = (config.inframe.display_w, config.inframe.display_h);

    // Materialize two seconds of the sunrise clip and persist it.
    // NOTE: the pipeline quantizes nothing on the sender side, so an 8-bit
    // persisted clip is only *approximately* the procedural one; what must
    // match exactly is the run on the SAME decoded clip.
    let mut live = Scenario::Video.source(w, h, 77);
    let frames = live.take_frames(60);
    let clip = IfvClip::from_f32_frames(&frames, FrameRate::VIDEO_30);
    let bytes = clip.encode();
    let reloaded = IfvClip::decode(bytes).expect("container roundtrip");
    assert_eq!(clip, reloaded);

    let out_a = Simulation::new(config).run(Looped::from_source(reloaded.to_source()));
    let out_b = Simulation::new(config).run(Looped::from_source(clip.to_source()));
    assert_eq!(out_a.stats, out_b.stats, "same clip, same outcome");
    assert_eq!(out_a.bits_correct, out_b.bits_correct);
}

#[test]
fn image_io_roundtrips_multiplexed_frame() {
    use inframe::core::sender::{PrbsPayload, Sender};
    use inframe::frame::io;
    use inframe::video::synth::SolidClip;

    let cfg = inframe::core::InFrameConfig::small_test();
    let clip = SolidClip::new(cfg.display_w, cfg.display_h, 127.0, FrameRate(30.0));
    let mut sender = Sender::new(cfg, clip, PrbsPayload::new(5));
    let frame = sender.next_frame().expect("endless clip");
    // Round to integers first: PGM is 8-bit.
    let mut plane = frame.plane.clone();
    plane.map_in_place(|v| v.round());

    let mut buf = Vec::new();
    io::write_pgm_to(&mut buf, &plane).expect("in-memory write");
    let back = io::read_pgm_from(&mut std::io::Cursor::new(buf)).expect("parse");
    assert_eq!(plane, back);
}
