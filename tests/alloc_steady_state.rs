//! Literal zero-allocation proof for the steady-state hot paths, on both
//! kernel backends: a counting global allocator wraps the system one, and
//! the single test below (one binary, one test — so no concurrent test
//! can pollute the counter deltas) asserts that
//!
//! * scoring a capture inside an open cycle performs **0 heap
//!   allocations**, and
//! * rendering a displayed frame that is neither a video boundary
//!   (`display_index % 4 == 0`, where the clip source materializes a new
//!   video frame) nor a cycle boundary (`k == 0`, where the next payload
//!   is fetched and encoded) performs **0 heap allocations**, and
//! * the network receiver's per-cycle hot path — MAC frame scanning,
//!   address filtering, per-lane stream reassembly, in-order datagram
//!   delivery — performs **0 heap allocations** once every lane and the
//!   caller's output buffer are warm, and
//! * the feedback/ARQ loop — receiver report build, wire codec, sender
//!   aggregation, mode bookkeeping, selective-repeat queueing — performs
//!   **0 heap allocations** once the per-object records, the NACK fold
//!   and every shard's retransmit ring are warm, and
//! * the live-ops event path — flight-recorder push plus binary wire
//!   encode into the file-backed ring, including the frame commits that
//!   publish to an out-of-process tailer — performs **0 heap
//!   allocations** once the writer's frame buffers are sized.
//!
//! Both paths are proven twice: with the disabled no-op telemetry handle
//! and with a live spine attached — instrumentation resolves its
//! atomics at construction time, so the steady-state hot paths must stay
//! allocation-free even while counters and histograms are recording.
//!
//! The workspace crates `#![deny(unsafe_code)]` (with the intrinsic
//! bodies of `inframe_frame::simd` as the single audited exception);
//! this integration test is its own crate root, and the `unsafe` below
//! is confined to the allocator shim.

use inframe::core::batch::{BatchScorer, ScoreClass, SKIP, UNREADABLE};
use inframe::core::config::KernelBackend;
use inframe::core::dataframe::DataFrame;
use inframe::core::demux::{Demultiplexer, RegionCache};
use inframe::core::parallel::ParallelEngine;
use inframe::core::pattern::{self, Complementation};
use inframe::core::sender::{PrbsPayload, Sender};
use inframe::core::{DataLayout, InFrameConfig};
use inframe::frame::geometry::Homography;
use inframe::frame::perturb::{CaptureTransform, OcclusionRect};
use inframe::frame::simd;
use inframe::frame::Plane;
use inframe::obs::Telemetry;
use inframe::video::synth::SolidClip;
use inframe::video::FrameRate;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator with an allocation-event counter (dealloc is free to
/// happen — returning buffers must not allocate, releasing them may).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn demux_steady_state_is_allocation_free(backend: KernelBackend, telemetry: &Telemetry) {
    let cfg = InFrameConfig {
        kernel: backend,
        ..InFrameConfig::small_test()
    };
    let layout = DataLayout::from_config(&cfg);
    let payload: Vec<bool> = (0..layout.payload_bits_parity())
        .map(|i| i % 3 == 0)
        .collect();
    let frame = DataFrame::encode(&layout, &payload, cfg.coding);
    let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
    let (plus, minus) = pattern::complementary_pair(
        &layout,
        &video,
        &frame,
        cfg.delta,
        Complementation::Code,
        |bx, by| if frame.bit(bx, by) { 1.0 } else { 0.0 },
    );
    let cache = RegionCache::build(&cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
    let mut demux = Demultiplexer::with_cache(cfg, cache, Arc::new(ParallelEngine::new(1)))
        .with_telemetry(telemetry);
    let d = demux.cycle_duration();
    // Warm-up: fill every reusable buffer and cross one cycle boundary so
    // the retired best-score vector is in the recycle slot.
    demux.push_capture(&plus, 0.05 * d);
    demux.push_capture(&minus, 0.15 * d);
    demux
        .push_capture(&plus, 1.05 * d)
        .expect("cycle 0 completes");
    // Steady state: every further scored capture inside the open cycle
    // must be allocation-free.
    for i in 0..8u32 {
        let t = (1.1 + 0.04 * i as f64) * d;
        let before = allocation_count();
        let completed = demux.push_capture(if i % 2 == 0 { &minus } else { &plus }, t);
        let delta = allocation_count() - before;
        assert!(completed.is_none(), "captures stay inside cycle 1");
        assert_eq!(
            delta,
            0,
            "{backend:?} (telemetry {}): capture {i} allocated {delta} times in steady state",
            if telemetry.is_enabled() { "on" } else { "off" }
        );
    }
    let decoded = demux.finish().expect("cycle 1 accumulated");
    assert_eq!(decoded.captures_used, 9);
}

fn batch_steady_state_is_allocation_free(backend: KernelBackend) {
    let cfg = InFrameConfig {
        kernel: backend,
        ..InFrameConfig::small_test()
    };
    let layout = DataLayout::from_config(&cfg);
    let payload: Vec<bool> = (0..layout.payload_bits_parity())
        .map(|i| i % 3 == 0)
        .collect();
    let frame = DataFrame::encode(&layout, &payload, cfg.coding);
    let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
    let (plus, minus) = pattern::complementary_pair(
        &layout,
        &video,
        &frame,
        cfg.delta,
        Complementation::Code,
        |bx, by| if frame.bit(bx, by) { 1.0 } else { 0.0 },
    );
    let cache = RegionCache::build(&cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
    let mut scorer = BatchScorer::new(cfg, cache, Arc::new(ParallelEngine::new(1)));
    let nb = scorer.num_blocks();
    // A representative class mix: identity, pure AWB shift (aliases the
    // identity sweep), a gain step and an occlusion (each their own
    // sweep), plus a noised fold on the identity sweep.
    let transforms = [
        CaptureTransform::IDENTITY,
        CaptureTransform {
            awb_raw: 64,
            ..CaptureTransform::IDENTITY
        },
        CaptureTransform {
            gain_q12: 4352,
            ..CaptureTransform::IDENTITY
        },
        CaptureTransform {
            occlusion: Some(OcclusionRect {
                x0: 8,
                y0: 8,
                w: 24,
                h: 16,
                level_raw: 128 * 128,
            }),
            ..CaptureTransform::IDENTITY
        },
    ];
    let classes = [
        ScoreClass::clean(0),
        ScoreClass::clean(1),
        ScoreClass::clean(2),
        ScoreClass::clean(3),
        ScoreClass {
            transform: 0,
            noise_raw_sq: 1024,
        },
    ];
    let receivers = 64usize;
    let assign: Vec<u32> = (0..receivers)
        .map(|r| if r % 7 == 3 { SKIP } else { (r % 5) as u32 })
        .collect();
    let mut best = vec![UNREADABLE; receivers * nb];
    let mut verdicts = Vec::new();
    // Warm-up: size every internal buffer for this class mix.
    scorer.score_classes(&plus, &transforms, &classes);
    scorer.merge_assigned(&assign, &mut best);
    scorer.verdicts_into(&best[..nb], &mut verdicts);
    // Steady state: the whole batched path — scoring, fan-out merge,
    // verdict extraction — must stay off the allocator.
    for i in 0..4u32 {
        let capture = if i % 2 == 0 { &minus } else { &plus };
        let before = allocation_count();
        scorer.score_classes(capture, &transforms, &classes);
        scorer.merge_assigned(&assign, &mut best);
        for r in 0..receivers {
            scorer.verdicts_into(&best[r * nb..(r + 1) * nb], &mut verdicts);
        }
        let delta = allocation_count() - before;
        assert_eq!(
            delta, 0,
            "{backend:?}: batch round {i} allocated {delta} times in steady state"
        );
    }
}

fn render_steady_state_is_allocation_free(backend: KernelBackend, telemetry: &Telemetry) {
    let cfg = InFrameConfig {
        kernel: backend,
        ..InFrameConfig::small_test()
    };
    let video = SolidClip::new(
        cfg.display_w,
        cfg.display_h,
        127.0,
        FrameRate(cfg.refresh_hz / 4.0),
    );
    let mut sender = Sender::with_engine(
        cfg,
        video,
        PrbsPayload::new(42),
        Arc::new(ParallelEngine::new(1)),
    )
    .with_telemetry(telemetry);
    // Warm-up: three full cycles populate the frame pool, the amplitude
    // buffers and (on the quantized backend) every envelope step's LUT.
    for _ in 0..(3 * cfg.tau) {
        drop(sender.next_frame().expect("endless clip"));
    }
    let mut checked = 0u32;
    for _ in 0..(2 * cfg.tau) {
        let before = allocation_count();
        let frame = sender.next_frame().expect("endless clip");
        let delta = allocation_count() - before;
        let s = frame.slot;
        drop(frame);
        if s.k != 0 && !s.display_index.is_multiple_of(4) {
            assert_eq!(
                delta,
                0,
                "{backend:?} (telemetry {}): frame {} (k={}) allocated {delta} times",
                if telemetry.is_enabled() { "on" } else { "off" },
                s.display_index,
                s.k
            );
            checked += 1;
        }
    }
    assert!(checked >= 12, "too few steady-state frames checked");
}

fn net_steady_state_is_allocation_free(telemetry: &Telemetry) {
    use inframe::net::mac::{encode_frame_into, FLAG_LAST};
    use inframe::net::{AddressFilter, MacAddr, NetReceiver};

    let layout = DataLayout::from_config(&InFrameConfig::paper());
    let map = inframe::core::region::RegionMap::new(&layout, 5, 3);
    let mut filter = AddressFilter::new(MacAddr::new(0x0042));
    filter.join_group(MacAddr::new(0xFF01));
    let mut rx = NetReceiver::new(map, filter).with_telemetry(telemetry);
    rx.open_stream(0, 64, 64, 1 << 16);
    rx.open_stream(1, 64, 64, 1 << 16);

    // Pre-build every cycle's MAC bundle up front (building allocates;
    // ingesting must not). Each round carries: a two-fragment unicast
    // datagram on stream 0, a broadcast datagram on stream 1, a group
    // datagram on stream 1, and a foreign unicast the filter drops.
    let src = MacAddr::new(0x0001);
    let rounds = 12usize;
    let bundles: Vec<Vec<u8>> = (0..rounds)
        .map(|r| {
            let mut b = Vec::new();
            let own = MacAddr::new(0x0042);
            encode_frame_into(own, src, 0, 0, (2 * r) as u16, &[r as u8; 48], &mut b);
            encode_frame_into(
                own,
                src,
                0,
                FLAG_LAST,
                (2 * r + 1) as u16,
                &[!(r as u8); 16],
                &mut b,
            );
            encode_frame_into(
                MacAddr::BROADCAST,
                src,
                1,
                FLAG_LAST,
                r as u16,
                &[0x5A; 24],
                &mut b,
            );
            encode_frame_into(
                MacAddr::new(0xFF01),
                src,
                1,
                FLAG_LAST,
                r as u16,
                &[0xA5; 24],
                &mut b,
            );
            encode_frame_into(
                MacAddr::new(0x0099),
                src,
                0,
                FLAG_LAST,
                r as u16,
                &[0xEE; 32],
                &mut b,
            );
            b
        })
        .collect();

    let mut out = Vec::new();
    let mut delivered = 0u32;
    // Warm-up: route one round through every lane and size the caller's
    // output buffer to the largest datagram.
    for bundle in &bundles[..4] {
        rx.ingest_bytes(bundle);
        for s in [0u8, 1u8] {
            while rx.pop_datagram(s, &mut out) {
                delivered += 1;
            }
        }
    }
    // Steady state: scanning, filtering, reassembly and delivery all
    // stay off the allocator.
    for (i, bundle) in bundles[4..].iter().enumerate() {
        let before = allocation_count();
        rx.ingest_bytes(bundle);
        for s in [0u8, 1u8] {
            while rx.pop_datagram(s, &mut out) {
                delivered += 1;
            }
        }
        let delta = allocation_count() - before;
        assert_eq!(
            delta,
            0,
            "net round {i} (telemetry {}): hot path allocated {delta} times",
            if telemetry.is_enabled() { "on" } else { "off" }
        );
    }
    // Every round delivers its unicast, broadcast and group datagrams;
    // the foreign one is filtered.
    assert_eq!(delivered, 3 * rounds as u32, "net lanes stalled");
    assert_eq!(rx.frames_filtered(), rounds as u64, "filter count drifted");
}

fn feedback_arq_steady_state_is_allocation_free(telemetry: &Telemetry) {
    use inframe::link::feedback::{FeedbackAggregator, FeedbackReport, ObjectNack};
    use inframe::net::spatial::SpatialMux;
    use inframe::net::{AddressFilter, ArqEngine, ArqMode, ArqPolicy, MacAddr, NetReceiver};

    let layout = DataLayout::from_config(&InFrameConfig::paper());
    let regions = 15usize;

    // Sender side: a spatial carousel carrying one object, the ARQ
    // engine driving its retransmit ring, and the feedback fold.
    let mut mux = SpatialMux::new(inframe::core::region::RegionMap::new(&layout, 5, 3));
    let data: Vec<u8> = (0..2000u32).map(|i| (i * 3) as u8).collect();
    mux.add_object(7, 1, &data);
    let mut arq = ArqEngine::new(ArqPolicy::default()).with_telemetry(telemetry);
    let mut agg = FeedbackAggregator::new(regions);

    // Receiver side: a full network receiver whose per-cycle quality
    // windows feed `build_feedback`.
    let map = inframe::core::region::RegionMap::new(&layout, 5, 3);
    let filter = AddressFilter::new(MacAddr::new(0x0042));
    let mut rx = NetReceiver::new(map, filter).with_telemetry(telemetry);
    rx.open_stream(0, 64, 64, 1 << 16);

    // The synthetic NACK alternates between two disjoint hole sets, so
    // consecutive rounds dodge both the repeat holdoff (different seqs)
    // and the no-progress backoff (4 → 3 holes reads as progress).
    let nack_for = |round: usize| {
        let mut words = [0u64; 4];
        let seqs: &[u32] = if round.is_multiple_of(2) {
            &[1, 3, 5, 7]
        } else {
            &[2, 4, 6]
        };
        for &s in seqs {
            words[s as usize / 64] |= 1 << (s % 64);
        }
        ObjectNack {
            object_id: 7,
            k: 60,
            rank: 50,
            words,
        }
    };

    let mut wire = Vec::new();
    let mut full: Vec<Option<bool>> = Vec::new();
    // Warm rounds must outlast two onset effects: the receiver's own
    // NACKs only start once its round frontier clears the
    // frontier-slack gate, and the retransmit round-robin touches each
    // shard's ring (15 of them) for the first time over several rounds.
    let rounds = 20usize;
    let warm = 10usize;
    let mut queued_total = 0u32;
    for round in 0..rounds {
        // Rounds are 12 cycles apart: past the repeat holdoff (8) and
        // the round-0 pacing gate (4 + jitter ≤ 6), so every round's
        // NACK actually reaches the queueing path.
        let cycle = 16 + 12 * round as u64;

        // Channel leg — sender emit, per-GOB erasure on the first
        // region, receiver absorb. This is the modem hot path (measured
        // by the demux/net sections, and `next_cycle_payload` returns an
        // owned frame by design), so it runs outside the counter window;
        // emitting here also drains the retransmit ring each round.
        let payload = mux.next_cycle_payload();
        full.clear();
        full.extend(payload.iter().map(|&b| Some(b)));
        let erase = full.len() / regions;
        for slot in &mut full[..erase] {
            *slot = None;
        }
        rx.push_cycle(&full);

        // Feedback/ARQ leg — report build, wire codec, aggregation,
        // mode bookkeeping, selective-repeat queueing. After the warm
        // rounds this whole loop must stay off the allocator.
        let before = allocation_count();
        let mut report = rx.build_feedback(cycle);
        report.push_nack(nack_for(round));
        report.encode_into(&mut wire);
        let decoded = FeedbackReport::decode(&wire).expect("round-trip");
        assert!(agg.ingest(&decoded, cycle), "fresh report rejected");
        assert_eq!(arq.on_cycle(cycle, &agg, &mut mux), ArqMode::Closed);
        for i in 0..agg.nacks().len() {
            let (_, n) = agg.nacks()[i];
            queued_total += arq.on_nack(&n, cycle, &mut mux);
        }
        agg.reset_window();
        let delta = allocation_count() - before;
        if round >= warm {
            assert_eq!(
                delta,
                0,
                "feedback/ARQ round {round} (telemetry {}): hot path allocated {delta} times",
                if telemetry.is_enabled() { "on" } else { "off" }
            );
        }
    }
    assert!(
        queued_total >= rounds as u32,
        "ARQ queueing path was not exercised: {queued_total} retransmits"
    );
    assert_eq!(agg.accepted(), rounds as u64, "reports lost in the fold");
}

fn obs_ring_writer_steady_state_is_allocation_free() {
    use inframe::obs::event::Event;
    use inframe::obs::{ObsConfig, RingConfig, RingWriter};

    let dir = std::env::temp_dir().join(format!("inframe_alloc_ring_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ring.bin");
    let tele = Telemetry::with_config(ObsConfig {
        recorder_capacity: 64,
    });
    // Minimum-size frames so the steady-state window crosses many frame
    // commits (encode + CRC + two file writes), not just buffer appends.
    let writer = RingWriter::create(
        &path,
        RingConfig {
            frame_size: 256,
            frame_count: 8,
        },
    )
    .expect("create ring");
    tele.attach_ring(writer);
    // Warm-up: exercise every event shape once (sizing the recorder ring
    // slots) and cross at least one frame commit.
    for cycle in 0..16u64 {
        tele.event(Event::CycleRendered { cycle });
        tele.event(Event::CycleDecoded {
            cycle,
            ok: 700,
            erroneous: 3,
            unavailable: 40,
            captures: 9,
        });
        tele.event(Event::ObjectComplete {
            object: 7,
            cycle,
            eps_milli: 125,
        });
    }
    tele.flush_ring();
    // Steady state: recorder push + wire encode + frame commit all stay
    // off the allocator.
    for cycle in 16..64u64 {
        let before = allocation_count();
        tele.event(Event::CycleRendered { cycle });
        tele.event(Event::CycleDecoded {
            cycle,
            ok: 700,
            erroneous: 3,
            unavailable: 40,
            captures: 9,
        });
        tele.event(Event::ObjectComplete {
            object: 7,
            cycle,
            eps_milli: 125,
        });
        tele.flush_ring();
        let delta = allocation_count() - before;
        assert_eq!(
            delta, 0,
            "obs ring cycle {cycle}: event path allocated {delta} times in steady state"
        );
    }
    let writer = tele.detach_ring().expect("ring attached");
    assert_eq!(writer.events_appended(), 3 * 64, "events lost on the way");
    assert_eq!(tele.summary().events_dropped, 0, "hot path dropped events");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn steady_state_hot_paths_allocate_nothing() {
    // Every supported SIMD dispatch tier must preserve the guarantee —
    // the vector kernels write through caller-provided buffers only.
    // (The reference backend ignores the level; looping it anyway also
    // proves the dispatch check itself stays off the allocator.)
    for level in simd::SimdLevel::supported() {
        simd::force_level(Some(level));
        for backend in [KernelBackend::Reference, KernelBackend::Quantized] {
            for telemetry in [Telemetry::disabled(), Telemetry::new()] {
                demux_steady_state_is_allocation_free(backend, &telemetry);
                render_steady_state_is_allocation_free(backend, &telemetry);
            }
            batch_steady_state_is_allocation_free(backend);
        }
    }
    simd::force_level(None);
    // The network hot path is pure byte processing — kernel backend and
    // SIMD tier can't reach it, so once (per telemetry mode) suffices.
    for telemetry in [Telemetry::disabled(), Telemetry::new()] {
        net_steady_state_is_allocation_free(&telemetry);
        feedback_arq_steady_state_is_allocation_free(&telemetry);
    }
    // Likewise for the live-ops event path — pure byte processing over
    // preallocated buffers.
    obs_ring_writer_steady_state_is_allocation_free();
}
