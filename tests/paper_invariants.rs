//! The paper's load-bearing physical claims, checked across crates.

use inframe::core::dataframe::DataFrame;
use inframe::core::multiplex::{slot, Multiplexer};
use inframe::core::pattern::Complementation;
use inframe::core::{DataLayout, InFrameConfig};
use inframe::display::analysis::{long_term_mean, per_frame_means};
use inframe::display::{DisplayConfig, DisplayStream};
use inframe::dsp::spectrum::Spectrum;
use inframe::frame::Plane;
use inframe::hvs::cff::cff;

fn tiny_config() -> InFrameConfig {
    InFrameConfig {
        display_w: 48,
        display_h: 48,
        pixel_size: 4,
        block_size: 5,
        blocks_x: 2,
        blocks_y: 2,
        ..InFrameConfig::paper()
    }
}

/// Presents `n` multiplexed frames of an all-ones data frame on a display
/// and returns the per-frame light means of a perturbed pixel.
fn multiplexed_pixel_means(display: DisplayConfig, n: u64) -> Vec<f64> {
    let cfg = tiny_config();
    let layout = DataLayout::from_config(&cfg);
    let data = DataFrame::encode(
        &layout,
        &vec![true; layout.payload_bits_parity()],
        cfg.coding,
    );
    let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
    let mut mux = Multiplexer::new(cfg);
    let mut stream = DisplayStream::new(display);
    let emissions: Vec<_> = (0..n)
        .map(|f| stream.present(&mux.render(&slot(&cfg, f), &video, &data, &data)))
        .collect();
    let rect = layout.block_rect(0, 0);
    per_frame_means(&emissions, rect.x + cfg.pixel_size, rect.y)
}

#[test]
fn claim_complementary_pairs_fuse_to_original_luminance() {
    // §3.2: "two complementary frames yield average frames with luminance
    // level v" — checked in emitted light on the strobed panel.
    let cfg = tiny_config();
    let layout = DataLayout::from_config(&cfg);
    let data = DataFrame::encode(
        &layout,
        &vec![true; layout.payload_bits_parity()],
        cfg.coding,
    );
    let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
    let mut mux = Multiplexer::new(cfg);
    let mut mux_stream = DisplayStream::new(DisplayConfig::eizo_fg2421());
    let mut ref_stream = DisplayStream::new(DisplayConfig::eizo_fg2421());
    let n = 48;
    let mux_em: Vec<_> = (0..n)
        .map(|f| mux_stream.present(&mux.render(&slot(&cfg, f), &video, &data, &data)))
        .collect();
    let ref_em: Vec<_> = (0..n).map(|_| ref_stream.present(&video)).collect();
    let rect = layout.block_rect(0, 0);
    let (px, py) = (rect.x + cfg.pixel_size, rect.y);
    let mux_mean = long_term_mean(&mux_em, px, py);
    let ref_mean = long_term_mean(&ref_em, px, py);
    let rel = (mux_mean - ref_mean).abs() / ref_mean;
    assert!(rel < 0.01, "long-term light shift {:.4}%", rel * 100.0);
}

#[test]
fn claim_data_energy_sits_at_half_refresh() {
    // §3.2: "The maximum frequency of the waveform is 60Hz on a 120Hz
    // display, which exceeds the CFF."
    let means = multiplexed_pixel_means(DisplayConfig::ideal_120hz(), 128);
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    let ac: Vec<f64> = means.iter().map(|v| v - mean).collect();
    let spec = Spectrum::of(&ac, 120.0);
    assert!((spec.dominant_frequency() - 60.0).abs() < 1.0);
    assert!(spec.band_energy_fraction(55.0, 60.0) > 0.98);
}

#[test]
fn claim_sixty_hz_exceeds_cff_at_display_luminance() {
    // §2: CFF 40–50 Hz in typical scenarios; the FG2421 peaks at 400 nits.
    for nits in [50.0, 100.0, 200.0, 400.0] {
        let c = cff(nits);
        assert!((40.0 - 1.0..60.0).contains(&c), "CFF({nits}) = {c}");
    }
}

#[test]
fn claim_luminance_complementation_removes_convexity_shift() {
    // Our §3.2 refinement: light-symmetric pairs leave zero mean-light
    // shift even at δ = 50 on bright content, where code-symmetric pairs
    // shift by >1%.
    let shift = |mode: Complementation| {
        let mut cfg = tiny_config();
        cfg.delta = 50.0;
        cfg.complementation = mode;
        let layout = DataLayout::from_config(&cfg);
        let data = DataFrame::encode(
            &layout,
            &vec![true; layout.payload_bits_parity()],
            cfg.coding,
        );
        let video = Plane::filled(cfg.display_w, cfg.display_h, 180.0);
        let mut mux = Multiplexer::new(cfg);
        let mut stream = DisplayStream::new(DisplayConfig::ideal_120hz());
        let em: Vec<_> = (0..32)
            .map(|f| stream.present(&mux.render(&slot(&cfg, f), &video, &data, &data)))
            .collect();
        let mut ref_stream = DisplayStream::new(DisplayConfig::ideal_120hz());
        let ref_em: Vec<_> = (0..32).map(|_| ref_stream.present(&video)).collect();
        let rect = layout.block_rect(0, 0);
        let (px, py) = (rect.x + cfg.pixel_size, rect.y);
        (long_term_mean(&em, px, py) - long_term_mean(&ref_em, px, py)).abs()
            / long_term_mean(&ref_em, px, py)
    };
    let code = shift(Complementation::Code);
    let lum = shift(Complementation::Luminance);
    assert!(code > 0.01, "code-symmetric shift {code}");
    assert!(lum < 0.002, "light-symmetric shift {lum}");
}

#[test]
fn claim_strobed_backlight_preserves_mean_luminance() {
    // The Turbo-240 model is calibrated so strobing does not dim the image.
    let strobed = multiplexed_pixel_means(DisplayConfig::eizo_fg2421(), 64);
    let hold = multiplexed_pixel_means(DisplayConfig::eizo_fg2421_no_strobe(), 64);
    let m = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ms, mh) = (m(&strobed), m(&hold));
    assert!(
        (ms - mh).abs() / mh < 0.02,
        "strobed {ms} vs sample-and-hold {mh}"
    );
}
