//! Satellite: calibrates `sim::linksim`'s analytic erasure-vs-(δ,τ)
//! response against the full pixel chain (`sim::pipeline`).
//!
//! `GobChannel` models per-cycle GOB erasure as a smooth power law
//! around the reference modulation (δ=20, τ=12) composed with a
//! decision-threshold cliff: the demodulator's verdict threshold `T + m`
//! is fixed in code values, so the pixel chain's erasure does not follow
//! `(δ_ref/δ)²` alone — it rises along a logistic wall as δ approaches
//! the threshold (measured on gray at `Scale::Quick`: erasure 0.007 at
//! δ=20 but 0.33 at δ=14 and 0.88 at δ=10). The cliff constants in
//! `linksim` were fitted to that measured surface; this test anchors the
//! model's base rate at the *measured* reference erasure and checks the
//! predicted response at off-reference (δ,τ) points.
//!
//! Measured erasure is `1 − available_ratio` from a `Scale::Quick`
//! simulation on the gray scenario. Gray isolates the modulation
//! response; textured content adds an erasure floor the model ties into
//! `base_erasure`, not into the (δ,τ) response. The documented tolerance
//! is ±0.08 **absolute** erasure per point: the calibrated model lands
//! within ~0.04 of the pixel chain at every point below, while dropping
//! the cliff term (the pre-calibration model) mispredicts δ=14 by ~0.32.

use inframe::link::control::ModulationCommand;
use inframe::sim::linksim::GobChannel;
use inframe::sim::pipeline::{Simulation, SimulationConfig};
use inframe::sim::{Scale, Scenario};

const SEED: u64 = 9;
const CYCLES: u32 = 24;

/// Absolute tolerance on predicted-vs-measured per-GOB erasure.
const TOLERANCE: f64 = 0.08;

/// Runs the full pixel chain at the given modulation and returns the
/// measured per-GOB erasure (`1 − available_ratio`).
fn measured_erasure(delta: f32, tau: u32) -> f64 {
    let scale = Scale::Quick;
    let mut inframe = scale.inframe();
    inframe.delta = delta;
    inframe.tau = tau;
    let config = SimulationConfig {
        inframe,
        display: scale.display(),
        camera: scale.camera(),
        geometry: scale.geometry(),
        cycles: CYCLES,
        seed: SEED,
    };
    let outcome = Simulation::new(config).run(Scenario::Gray.source(
        config.inframe.display_w,
        config.inframe.display_h,
        SEED,
    ));
    1.0 - outcome.stats.available_ratio()
}

/// The model's prediction with its base rate anchored at `base`.
fn predicted_erasure(base: f64, delta: f32, tau: u32) -> f64 {
    let mut channel = GobChannel::new(base, None, SEED);
    channel.set_modulation(ModulationCommand { delta, tau });
    channel.erasure_at(0)
}

#[test]
fn analytic_erasure_tracks_the_pixel_chain() {
    // Anchor the model at the measured reference point.
    let base = measured_erasure(20.0, 12);
    assert!(
        base > 0.0 && base < 0.1,
        "reference erasure on gray should be small but nonzero, got {base:.4}"
    );

    // Off-reference points: the cliff's knee (δ=16), inside the cliff
    // (δ=14), stronger modulation (δ=26), and a shorter cycle (τ=10).
    let points = [(16.0_f32, 12_u32), (14.0, 12), (26.0, 12), (20.0, 10)];
    for (delta, tau) in points {
        let measured = measured_erasure(delta, tau);
        let predicted = predicted_erasure(base, delta, tau);
        println!(
            "(δ={delta:>4.1}, τ={tau:>2}): measured {measured:.4}, predicted {predicted:.4}, \
             |Δ| {:.4}",
            (predicted - measured).abs()
        );
        assert!(
            (predicted - measured).abs() <= TOLERANCE,
            "(δ={delta}, τ={tau}): analytic erasure {predicted:.4} deviates from \
             pixel-chain erasure {measured:.4} by more than {TOLERANCE}"
        );
    }
}

#[test]
fn cliff_term_carries_the_low_delta_regime() {
    // The calibration is not vacuous: a pure power law anchored at the
    // same reference misses the measured δ=14 erasure by far more than
    // the tolerance. (Reconstructs the pre-calibration prediction from
    // the model's documented smooth term.)
    let base = measured_erasure(20.0, 12);
    let measured = measured_erasure(14.0, 12);
    let power_law_only = base * (20.0_f64 / 14.0).powi(2) * (12.0 / 12.0);
    assert!(
        (power_law_only - measured).abs() > 2.0 * TOLERANCE,
        "power law alone ({power_law_only:.4}) should not explain the cliff ({measured:.4})"
    );
    let calibrated = predicted_erasure(base, 14.0, 12);
    assert!((calibrated - measured).abs() <= TOLERANCE);
}

#[test]
fn analytic_response_is_monotone_in_delta() {
    // Both the model and the pixel chain must agree that weaker δ
    // erases more than stronger δ.
    let weak = measured_erasure(14.0, 12);
    let strong = measured_erasure(26.0, 12);
    assert!(
        weak > strong,
        "pixel chain: erasure at δ=14 ({weak:.4}) should exceed δ=26 ({strong:.4})"
    );
    assert!(predicted_erasure(0.1, 14.0, 12) > predicted_erasure(0.1, 26.0, 12));
}
