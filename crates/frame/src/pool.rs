//! A fixed-geometry frame arena: checkout/return of `Plane<f32>` buffers
//! with zero steady-state heap allocations.
//!
//! The sender emits one display-sized plane per frame (120 per second at
//! paper scale — each 1920×1080×4 bytes). Allocating and freeing those on
//! the general heap costs page faults and allocator traffic that dwarf the
//! actual pixel math once rendering is banded across workers. A
//! [`FramePool`] keeps returned buffers on a free list keyed to one fixed
//! geometry, so after warm-up every checkout is a pop and every drop is a
//! push — no allocator involvement at all.
//!
//! Handles are *generation-checked*: [`FramePool::reset`] bumps the pool
//! generation, after which buffers still held by stale [`PooledPlane`]
//! handles are quietly dropped on return instead of re-entering the free
//! list. This makes reconfiguration (e.g. switching display geometry)
//! safe without tracking outstanding handles.

use crate::plane::Plane;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Counters describing pool behaviour — the basis of the pipeline's
/// zero-allocation assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Planes ever allocated by this pool (monotone; constant once the
    /// pipeline reaches steady state).
    pub allocated: u64,
    /// Total checkouts served.
    pub checkouts: u64,
    /// Checkouts served from the free list (no allocation).
    pub reused: u64,
    /// Buffers returned to the free list by dropped handles.
    pub returned: u64,
    /// Handles currently outstanding.
    pub live: u64,
    /// Buffers currently parked on the free list.
    pub free: u64,
}

#[derive(Debug)]
struct PoolInner {
    width: usize,
    height: usize,
    generation: AtomicU64,
    free: Mutex<Vec<Plane<f32>>>,
    allocated: AtomicU64,
    checkouts: AtomicU64,
    reused: AtomicU64,
    returned: AtomicU64,
    live: AtomicU64,
}

/// A pool of same-shaped `Plane<f32>` buffers.
///
/// Cloning the pool clones the *handle*: both clones share one free list.
#[derive(Debug, Clone)]
pub struct FramePool {
    inner: Arc<PoolInner>,
}

impl FramePool {
    /// Creates an empty pool for `width × height` planes.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "pool dimensions must be nonzero");
        Self {
            inner: Arc::new(PoolInner {
                width,
                height,
                generation: AtomicU64::new(0),
                free: Mutex::new(Vec::new()),
                allocated: AtomicU64::new(0),
                checkouts: AtomicU64::new(0),
                reused: AtomicU64::new(0),
                returned: AtomicU64::new(0),
                live: AtomicU64::new(0),
            }),
        }
    }

    /// The plane geometry this pool serves.
    pub fn shape(&self) -> (usize, usize) {
        (self.inner.width, self.inner.height)
    }

    /// Checks out a zero-filled plane, reusing a returned buffer when one
    /// is available.
    pub fn checkout(&self) -> PooledPlane {
        let recycled = self
            .inner
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        let plane = match recycled {
            Some(mut p) => {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                p.samples_mut().fill(0.0);
                p
            }
            None => {
                self.inner.allocated.fetch_add(1, Ordering::Relaxed);
                Plane::filled(self.inner.width, self.inner.height, 0.0)
            }
        };
        self.inner.checkouts.fetch_add(1, Ordering::Relaxed);
        self.inner.live.fetch_add(1, Ordering::Relaxed);
        PooledPlane {
            plane: Some(plane),
            pool: Arc::downgrade(&self.inner),
            generation: self.inner.generation.load(Ordering::Acquire),
        }
    }

    /// Invalidates all outstanding handles and empties the free list.
    /// Stale handles keep working as plain planes; they just no longer
    /// return their buffer here.
    pub fn reset(&self) {
        self.inner.generation.fetch_add(1, Ordering::AcqRel);
        self.inner
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            allocated: self.inner.allocated.load(Ordering::Relaxed),
            checkouts: self.inner.checkouts.load(Ordering::Relaxed),
            reused: self.inner.reused.load(Ordering::Relaxed),
            returned: self.inner.returned.load(Ordering::Relaxed),
            live: self.inner.live.load(Ordering::Relaxed),
            free: self
                .inner
                .free
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len() as u64,
        }
    }
}

/// A checkout handle: derefs to `Plane<f32>` and returns the buffer to its
/// pool on drop (when the pool is alive and the generation still matches).
#[derive(Debug)]
pub struct PooledPlane {
    plane: Option<Plane<f32>>,
    pool: Weak<PoolInner>,
    generation: u64,
}

impl PooledPlane {
    /// Wraps a free-standing plane in a detached handle (never returns to
    /// any pool). Useful for code paths that must produce a `PooledPlane`
    /// without a pool in scope.
    pub fn detached(plane: Plane<f32>) -> Self {
        Self {
            plane: Some(plane),
            pool: Weak::new(),
            generation: 0,
        }
    }

    /// Consumes the handle and keeps the plane, permanently removing the
    /// buffer from pool circulation.
    pub fn detach(mut self) -> Plane<f32> {
        let plane = self.plane.take().expect("plane present until drop");
        if let Some(inner) = self.pool.upgrade() {
            inner.live.fetch_sub(1, Ordering::Relaxed);
        }
        self.pool = Weak::new();
        plane
    }
}

impl std::ops::Deref for PooledPlane {
    type Target = Plane<f32>;
    fn deref(&self) -> &Plane<f32> {
        self.plane.as_ref().expect("plane present until drop")
    }
}

impl std::ops::DerefMut for PooledPlane {
    fn deref_mut(&mut self) -> &mut Plane<f32> {
        self.plane.as_mut().expect("plane present until drop")
    }
}

/// Cloning copies the pixels into a *detached* handle: the clone never
/// returns to the pool, so a buffer can never be double-returned.
impl Clone for PooledPlane {
    fn clone(&self) -> Self {
        Self::detached((**self).clone())
    }
}

impl PartialEq for PooledPlane {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl PartialEq<Plane<f32>> for PooledPlane {
    fn eq(&self, other: &Plane<f32>) -> bool {
        **self == *other
    }
}

impl PartialEq<PooledPlane> for Plane<f32> {
    fn eq(&self, other: &PooledPlane) -> bool {
        *self == **other
    }
}

impl Drop for PooledPlane {
    fn drop(&mut self) {
        let Some(plane) = self.plane.take() else {
            return;
        };
        let Some(inner) = self.pool.upgrade() else {
            return;
        };
        inner.live.fetch_sub(1, Ordering::Relaxed);
        if self.generation != inner.generation.load(Ordering::Acquire)
            || plane.shape() != (inner.width, inner.height)
        {
            return; // stale handle: buffer is simply freed
        }
        inner
            .free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(plane);
        inner.returned.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_allocates_then_reuses() {
        let pool = FramePool::new(8, 4);
        let a = pool.checkout();
        assert_eq!(a.shape(), (8, 4));
        drop(a);
        let stats = pool.stats();
        assert_eq!(stats.allocated, 1);
        assert_eq!(stats.returned, 1);
        let b = pool.checkout();
        let stats = pool.stats();
        assert_eq!(stats.allocated, 1, "second checkout must reuse");
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.live, 1);
        drop(b);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_buffers() {
        let pool = FramePool::new(4, 4);
        let mut a = pool.checkout();
        let mut b = pool.checkout();
        a.put(0, 0, 1.0);
        b.put(0, 0, 2.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(b.get(0, 0), 2.0);
        assert_eq!(pool.stats().live, 2);
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn reused_buffers_come_back_zeroed() {
        let pool = FramePool::new(4, 4);
        let mut a = pool.checkout();
        a.put(2, 2, 9.0);
        drop(a);
        let b = pool.checkout();
        assert_eq!(b.get(2, 2), 0.0);
    }

    #[test]
    fn detach_removes_buffer_from_circulation() {
        let pool = FramePool::new(4, 4);
        let a = pool.checkout();
        let plane = a.detach();
        assert_eq!(plane.shape(), (4, 4));
        assert_eq!(pool.stats().live, 0);
        assert_eq!(pool.stats().free, 0, "detached buffer must not return");
    }

    #[test]
    fn reset_invalidates_outstanding_handles() {
        let pool = FramePool::new(4, 4);
        let a = pool.checkout();
        pool.reset();
        drop(a); // stale generation: must NOT re-enter the free list
        assert_eq!(pool.stats().free, 0);
        let b = pool.checkout();
        assert_eq!(pool.stats().allocated, 2, "post-reset checkout allocates");
        drop(b);
        assert_eq!(pool.stats().free, 1, "current-generation return works");
    }

    #[test]
    fn clone_is_detached() {
        let pool = FramePool::new(4, 4);
        let a = pool.checkout();
        let c = a.clone();
        drop(c);
        assert_eq!(pool.stats().returned, 0, "clone must not return to pool");
        drop(a);
        assert_eq!(pool.stats().returned, 1);
    }

    #[test]
    fn pool_drop_orphans_handles_safely() {
        let pool = FramePool::new(4, 4);
        let a = pool.checkout();
        drop(pool);
        assert_eq!(a.shape(), (4, 4)); // handle still usable
        drop(a); // no pool to return to — must not panic
    }
}
