//! Spatial filtering: box/Gaussian smoothing, separable convolution, median.
//!
//! The InFrame receiver's detector hinges on spatial smoothing: a captured
//! block is smoothed, subtracted from itself, and the residual magnitude
//! indicates whether the chessboard pattern (bit 1) is present (§3.3 of the
//! paper). The box filter here is that smoother; the Gaussian is used by the
//! camera optics model (PSF).
//!
//! These are the **reference** (oracle) implementations: scalar, O(r) per
//! pixel, written for clarity. The performance-sensitive receiver path uses
//! [`crate::integral::box_blur_fast_into`] (f32/f64 backend) or the
//! fixed-point [`crate::qplane::sliding_box_blur_into`] (quantized
//! backend), both property-tested against [`box_blur`] here.

use crate::plane::Plane;

/// Border handling for convolution.
///
/// All InFrame code uses [`Border::Replicate`], which matches what a camera
/// ISP does at frame edges; `Zero` exists for spectral-analysis tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Border {
    /// Clamp coordinates to the nearest valid sample.
    Replicate,
    /// Treat out-of-range samples as zero.
    Zero,
}

/// Convolves a plane with a horizontal kernel then a vertical kernel
/// (separable convolution). Kernel lengths must be odd.
///
/// # Panics
/// Panics if either kernel is empty or has even length.
pub fn separable_convolve(src: &Plane<f32>, kx: &[f32], ky: &[f32], border: Border) -> Plane<f32> {
    assert!(!kx.is_empty() && kx.len() % 2 == 1, "kx must be odd-length");
    assert!(!ky.is_empty() && ky.len() % 2 == 1, "ky must be odd-length");
    let horizontal = convolve_axis(src, kx, true, border);
    convolve_axis(&horizontal, ky, false, border)
}

fn convolve_axis(src: &Plane<f32>, k: &[f32], horizontal: bool, border: Border) -> Plane<f32> {
    let (w, h) = src.shape();
    let r = (k.len() / 2) as isize;
    Plane::from_fn(w, h, |x, y| {
        let mut acc = 0.0f32;
        for (i, &kv) in k.iter().enumerate() {
            let off = i as isize - r;
            let (sx, sy) = if horizontal {
                (x as isize + off, y as isize)
            } else {
                (x as isize, y as isize + off)
            };
            let v = match border {
                Border::Replicate => src.get_clamped(sx, sy),
                Border::Zero => {
                    if sx < 0 || sy < 0 || sx >= w as isize || sy >= h as isize {
                        0.0
                    } else {
                        src.get(sx as usize, sy as usize)
                    }
                }
            };
            acc += kv * v;
        }
        acc
    })
}

/// Box-blurs a plane with a `(2r+1) × (2r+1)` window.
///
/// `r = 0` returns a copy. This is the receiver's "smoothed version" of a
/// block; the chessboard's alternating ±δ averages to ~0 under it while the
/// underlying video content survives.
pub fn box_blur(src: &Plane<f32>, r: usize) -> Plane<f32> {
    if r == 0 {
        return src.clone();
    }
    let k = vec![1.0 / (2 * r + 1) as f32; 2 * r + 1];
    separable_convolve(src, &k, &k, Border::Replicate)
}

/// Builds a normalized 1-D Gaussian kernel with standard deviation `sigma`,
/// truncated at `±3σ` (minimum radius 1).
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let r = (3.0 * sigma).ceil().max(1.0) as usize;
    let mut k: Vec<f32> = (0..=2 * r)
        .map(|i| {
            let d = i as f32 - r as f32;
            (-0.5 * (d / sigma) * (d / sigma)).exp()
        })
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Gaussian-blurs a plane (separable), used for the camera point-spread
/// function and for defocus experiments.
pub fn gaussian_blur(src: &Plane<f32>, sigma: f32) -> Plane<f32> {
    if sigma <= 0.0 {
        return src.clone();
    }
    let k = gaussian_kernel(sigma);
    separable_convolve(src, &k, &k, Border::Replicate)
}

/// 3×3 median filter (replicate border) — used in robustness ablations as an
/// alternative receiver smoother.
pub fn median3x3(src: &Plane<f32>) -> Plane<f32> {
    let (w, h) = src.shape();
    Plane::from_fn(w, h, |x, y| {
        let mut vals = [0.0f32; 9];
        let mut i = 0;
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                vals[i] = src.get_clamped(x as isize + dx, y as isize + dy);
                i += 1;
            }
        }
        vals.sort_by(|a, b| a.partial_cmp(b).expect("median input must not be NaN"));
        vals[4]
    })
}

/// Downweights a plane toward its local mean: `out = src + k·(blur − src)`
/// with `k ∈ [0,1]`. `k = 1` is a plain box blur; intermediate values model
/// partial optical low-pass. Used by the channel ablations.
pub fn soften(src: &Plane<f32>, r: usize, k: f32) -> Plane<f32> {
    let blurred = box_blur(src, r);
    Plane::from_fn(src.width(), src.height(), |x, y| {
        let s = src.get(x, y);
        s + k.clamp(0.0, 1.0) * (blurred.get(x, y) - s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn box_blur_preserves_constant_plane() {
        let p = Plane::filled(8, 8, 42.0);
        let b = box_blur(&p, 2);
        for &v in b.samples() {
            assert!((v - 42.0).abs() < 1e-4);
        }
    }

    #[test]
    fn box_blur_zero_radius_is_identity() {
        let p = Plane::from_fn(5, 5, |x, y| (x * y) as f32);
        assert_eq!(box_blur(&p, 0), p);
    }

    #[test]
    fn box_blur_flattens_checkerboard() {
        // A ±δ checkerboard must smooth toward zero mean: this is the whole
        // premise of the chessboard detector.
        let p = Plane::from_fn(16, 16, |x, y| if (x + y) % 2 == 1 { 20.0 } else { -20.0 });
        let b = box_blur(&p, 1);
        // Interior samples of a 3x3 box over ±20 checkerboard: |mean| ≤ 20/9.
        for y in 2..14 {
            for x in 2..14 {
                assert!(b.get(x, y).abs() <= 20.0 / 9.0 + 1e-3);
            }
        }
    }

    #[test]
    fn gaussian_kernel_is_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
        }
        assert_eq!(k.len() % 2, 1);
    }

    #[test]
    fn gaussian_blur_reduces_variance() {
        let p = Plane::from_fn(32, 32, |x, y| ((x * 31 + y * 17) % 64) as f32);
        let b = gaussian_blur(&p, 2.0);
        assert!(b.variance() < p.variance());
    }

    #[test]
    fn median_removes_salt_noise() {
        let mut p = Plane::filled(9, 9, 10.0);
        p.put(4, 4, 255.0);
        let m = median3x3(&p);
        assert_eq!(m.get(4, 4), 10.0);
    }

    #[test]
    fn zero_border_darkens_edges() {
        let p = Plane::filled(8, 8, 100.0);
        let k = vec![1.0 / 3.0; 3];
        let z = separable_convolve(&p, &k, &k, Border::Zero);
        let r = separable_convolve(&p, &k, &k, Border::Replicate);
        assert!(z.get(0, 0) < r.get(0, 0));
        assert!((r.get(0, 0) - 100.0).abs() < 1e-3);
    }

    #[test]
    fn soften_interpolates_between_identity_and_blur() {
        let p = Plane::from_fn(8, 8, |x, _| (x * 30) as f32);
        let s0 = soften(&p, 1, 0.0);
        let s1 = soften(&p, 1, 1.0);
        let b = box_blur(&p, 1);
        for i in 0..p.len() {
            assert!((s0.samples()[i] - p.samples()[i]).abs() < 1e-4);
            assert!((s1.samples()[i] - b.samples()[i]).abs() < 1e-4);
        }
    }

    proptest! {
        #[test]
        fn blur_output_within_input_range(
            seed in 0u64..1000,
            r in 1usize..4,
        ) {
            let p = Plane::from_fn(12, 12, |x, y| {
                // Simple deterministic hash of (x, y, seed) into [0, 255].
                let v = (x as u64 * 2654435761) ^ (y as u64 * 40503) ^ seed;
                (v % 256) as f32
            });
            let b = box_blur(&p, r);
            let (lo, hi) = (p.min_sample(), p.max_sample());
            for &v in b.samples() {
                prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3);
            }
        }

        #[test]
        fn blur_preserves_mean_approximately(r in 1usize..4) {
            let p = Plane::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 200) as f32);
            let b = box_blur(&p, r);
            // Replicate border biases the mean slightly; allow modest slack.
            prop_assert!((b.mean() - p.mean()).abs() < 12.0);
        }
    }
}
