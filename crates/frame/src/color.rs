//! Color primitives: transfer functions and color-space conversions.
//!
//! The display simulator converts code values to emitted light through the
//! sRGB electro-optical transfer function (EOTF); the HVS model operates in
//! linear light. The receiver works on BT.601 luma, which is what a camera
//! ISP hands to application code.

/// BT.601 luma from RGB code values (any consistent scale).
#[inline]
pub fn luma_bt601(r: f32, g: f32, b: f32) -> f32 {
    0.299 * r + 0.587 * g + 0.114 * b
}

/// Full BT.601 RGB → YCbCr conversion on `[0, 255]` code values.
///
/// Cb/Cr are centered on 128 as in JFIF.
#[inline]
pub fn rgb_to_ycbcr(r: f32, g: f32, b: f32) -> (f32, f32, f32) {
    let y = luma_bt601(r, g, b);
    let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
    (y, cb, cr)
}

/// Inverse of [`rgb_to_ycbcr`].
#[inline]
pub fn ycbcr_to_rgb(y: f32, cb: f32, cr: f32) -> (f32, f32, f32) {
    let cb = cb - 128.0;
    let cr = cr - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344_136 * cb - 0.714_136 * cr;
    let b = y + 1.772 * cb;
    (r, g, b)
}

/// sRGB EOTF: code value in `[0, 1]` → linear light in `[0, 1]`.
///
/// This is the piecewise IEC 61966-2-1 curve, not the pure 2.2 power law.
#[inline]
pub fn srgb_to_linear(c: f32) -> f32 {
    let c = c.clamp(0.0, 1.0);
    if c <= 0.040_45 {
        c / 12.92
    } else {
        ((c + 0.055) / 1.055).powf(2.4)
    }
}

/// sRGB OETF (inverse EOTF): linear light in `[0, 1]` → code value.
#[inline]
pub fn linear_to_srgb(l: f32) -> f32 {
    let l = l.clamp(0.0, 1.0);
    if l <= 0.003_130_8 {
        l * 12.92
    } else {
        1.055 * l.powf(1.0 / 2.4) - 0.055
    }
}

/// Converts an 8-bit-scale code value `[0, 255]` to linear light `[0, 1]`.
#[inline]
pub fn code_to_linear(code: f32) -> f32 {
    srgb_to_linear(code / 255.0)
}

/// Converts linear light `[0, 1]` to an 8-bit-scale code value `[0, 255]`.
#[inline]
pub fn linear_to_code(l: f32) -> f32 {
    linear_to_srgb(l) * 255.0
}

/// Converts a code value to absolute luminance in cd/m² given the display's
/// peak white luminance.
///
/// The Eizo FG2421 used in the paper peaks around 300 cd/m²; the display
/// simulator passes its configured peak here.
#[inline]
pub fn code_to_luminance(code: f32, peak_cd_m2: f32) -> f32 {
    code_to_linear(code) * peak_cd_m2
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn luma_weights_sum_to_one() {
        assert!((luma_bt601(1.0, 1.0, 1.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gray_is_fixed_point_of_ycbcr() {
        let (y, cb, cr) = rgb_to_ycbcr(127.0, 127.0, 127.0);
        assert!((y - 127.0).abs() < 1e-3);
        assert!((cb - 128.0).abs() < 1e-3);
        assert!((cr - 128.0).abs() < 1e-3);
    }

    #[test]
    fn srgb_curve_endpoints() {
        assert_eq!(srgb_to_linear(0.0), 0.0);
        assert!((srgb_to_linear(1.0) - 1.0).abs() < 1e-6);
        assert_eq!(linear_to_srgb(0.0), 0.0);
        assert!((linear_to_srgb(1.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn srgb_is_monotone_and_below_identity_midrange() {
        // Gamma expansion makes mid-gray darker in linear light.
        let mid = srgb_to_linear(0.5);
        assert!(mid < 0.5);
        assert!(mid > 0.15);
        let mut prev = -1.0;
        for i in 0..=100 {
            let v = srgb_to_linear(i as f32 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn luminance_scales_with_peak() {
        let a = code_to_luminance(200.0, 300.0);
        let b = code_to_luminance(200.0, 150.0);
        assert!((a / b - 2.0).abs() < 1e-4);
    }

    proptest! {
        #[test]
        fn ycbcr_roundtrip(r in 0.0f32..255.0, g in 0.0f32..255.0, b in 0.0f32..255.0) {
            let (y, cb, cr) = rgb_to_ycbcr(r, g, b);
            let (r2, g2, b2) = ycbcr_to_rgb(y, cb, cr);
            prop_assert!((r - r2).abs() < 1e-2);
            prop_assert!((g - g2).abs() < 1e-2);
            prop_assert!((b - b2).abs() < 1e-2);
        }

        #[test]
        fn srgb_roundtrip(c in 0.0f32..=1.0) {
            let rt = linear_to_srgb(srgb_to_linear(c));
            prop_assert!((rt - c).abs() < 1e-5);
        }
    }
}
