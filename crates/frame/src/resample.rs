//! Resolution conversion: area-average downsampling and bilinear resizing.
//!
//! The paper's sender renders at 1920×1080 while the Lumia 1020 captures at
//! 1280×720 — a 1.5× downsample. Area averaging models how multiple display
//! pixels integrate onto one sensor photosite.

use crate::geometry::sample_bilinear;
use crate::plane::Plane;

/// Resizes with bilinear interpolation. Suitable for mild scale changes and
/// upsampling; prefer [`downsample_area`] for large downscales to avoid
/// aliasing.
pub fn resize_bilinear(src: &Plane<f32>, dst_w: usize, dst_h: usize) -> Plane<f32> {
    assert!(dst_w > 0 && dst_h > 0, "destination must be nonzero");
    let sx = src.width() as f64 / dst_w as f64;
    let sy = src.height() as f64 / dst_h as f64;
    Plane::from_fn(dst_w, dst_h, |x, y| {
        let fx = (x as f64 + 0.5) * sx - 0.5;
        let fy = (y as f64 + 0.5) * sy - 0.5;
        sample_bilinear(src, fx, fy)
    })
}

/// Downsamples by averaging the exact (fractional) source area covered by
/// each destination pixel — a box reconstruction filter. Works for any
/// scale ≥ 1 in each axis and is the physically right model for photosite
/// integration.
pub fn downsample_area(src: &Plane<f32>, dst_w: usize, dst_h: usize) -> Plane<f32> {
    assert!(dst_w > 0 && dst_h > 0, "destination must be nonzero");
    assert!(
        dst_w <= src.width() && dst_h <= src.height(),
        "downsample_area requires dst <= src in both axes"
    );
    let sx = src.width() as f64 / dst_w as f64;
    let sy = src.height() as f64 / dst_h as f64;
    Plane::from_fn(dst_w, dst_h, |dx, dy| {
        let x0 = dx as f64 * sx;
        let x1 = (dx + 1) as f64 * sx;
        let y0 = dy as f64 * sy;
        let y1 = (dy + 1) as f64 * sy;
        area_average(src, x0, x1, y0, y1)
    })
}

/// Average of `src` over the axis-aligned rectangle `[x0,x1) × [y0,y1)` in
/// continuous pixel coordinates, weighting partial edge pixels by coverage.
pub fn area_average(src: &Plane<f32>, x0: f64, x1: f64, y0: f64, y1: f64) -> f32 {
    debug_assert!(x1 > x0 && y1 > y0);
    let ix0 = x0.floor() as isize;
    let ix1 = (x1.ceil() as isize).min(src.width() as isize);
    let iy0 = y0.floor() as isize;
    let iy1 = (y1.ceil() as isize).min(src.height() as isize);
    let mut acc = 0.0f64;
    let mut wsum = 0.0f64;
    for yi in iy0.max(0)..iy1 {
        let wy = overlap(y0, y1, yi as f64, yi as f64 + 1.0);
        if wy <= 0.0 {
            continue;
        }
        for xi in ix0.max(0)..ix1 {
            let wx = overlap(x0, x1, xi as f64, xi as f64 + 1.0);
            if wx <= 0.0 {
                continue;
            }
            let w = wx * wy;
            acc += w * src.get(xi as usize, yi as usize) as f64;
            wsum += w;
        }
    }
    if wsum > 0.0 {
        (acc / wsum) as f32
    } else {
        0.0
    }
}

#[inline]
fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_plane_survives_both_resamplers() {
        let p = Plane::filled(12, 9, 77.0);
        let a = downsample_area(&p, 8, 6);
        let b = resize_bilinear(&p, 8, 6);
        for &v in a.samples().iter().chain(b.samples()) {
            assert!((v - 77.0).abs() < 1e-4);
        }
    }

    #[test]
    fn integer_factor_downsample_averages_blocks() {
        // 4x4 → 2x2 with 2x2 block averaging.
        let p = Plane::from_vec(
            4,
            4,
            vec![
                0.0f32, 4.0, 8.0, 12.0, //
                2.0, 6.0, 10.0, 14.0, //
                100.0, 104.0, 108.0, 112.0, //
                102.0, 106.0, 110.0, 114.0,
            ],
        )
        .unwrap();
        let d = downsample_area(&p, 2, 2);
        assert!((d.get(0, 0) - 3.0).abs() < 1e-4);
        assert!((d.get(1, 0) - 11.0).abs() < 1e-4);
        assert!((d.get(0, 1) - 103.0).abs() < 1e-4);
        assert!((d.get(1, 1) - 111.0).abs() < 1e-4);
    }

    #[test]
    fn fractional_downsample_1920_to_1280_geometry() {
        // The paper's display-to-camera ratio: each destination pixel covers
        // exactly 1.5 source pixels per axis.
        let p = Plane::from_fn(6, 3, |x, _| x as f32);
        let d = downsample_area(&p, 4, 2);
        // Destination pixel 0 covers source x in [0.0, 1.5):
        // mean = (1.0*0 + 0.5*1) / 1.5 = 1/3.
        assert!((d.get(0, 0) - 1.0 / 3.0).abs() < 1e-5);
        // Destination pixel 3 covers [4.5, 6.0): mean = (0.5*4 + 1.0*5)/1.5 = 14/3...
        assert!((d.get(3, 0) - (0.5 * 4.0 + 5.0) / 1.5).abs() < 1e-5);
    }

    #[test]
    fn downsample_preserves_global_mean() {
        let p = Plane::from_fn(30, 30, |x, y| ((x * 13 + y * 29) % 251) as f32);
        let d = downsample_area(&p, 10, 10);
        assert!((d.mean() - p.mean()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "downsample_area requires dst <= src")]
    fn downsample_rejects_upscale() {
        let p = Plane::filled(4, 4, 0.0);
        let _ = downsample_area(&p, 8, 8);
    }

    #[test]
    fn bilinear_upscale_interpolates() {
        let p = Plane::from_vec(2, 1, vec![0.0f32, 100.0]).unwrap();
        let u = resize_bilinear(&p, 4, 1);
        // Monotone non-decreasing along the gradient.
        for i in 1..4 {
            assert!(u.get(i, 0) >= u.get(i - 1, 0));
        }
    }

    proptest! {
        #[test]
        fn area_downsample_within_source_range(
            w in 4usize..20, h in 4usize..20,
        ) {
            let p = Plane::from_fn(w, h, |x, y| ((x * 37 + y * 11) % 256) as f32);
            let dw = (w / 2).max(1);
            let dh = (h / 2).max(1);
            let d = downsample_area(&p, dw, dh);
            let (lo, hi) = (p.min_sample(), p.max_sample());
            for &v in d.samples() {
                prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3);
            }
        }
    }
}
