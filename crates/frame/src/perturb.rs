//! Receiver-side photometric capture perturbations in the quantized
//! Q8.7 domain.
//!
//! The batched demultiplexer ([`crate::qplane`] raws swept once per
//! *distinct* transform, then folded per noise class) and the sequential
//! single-receiver reference must see byte-identical captures, so
//! perturbations are defined on the **integer** raws rather than on f32
//! pixels: `dequantize(raw) = raw · 2⁻⁷` is exact and re-quantizes to
//! the same raw (the LSB is a power of two), which makes
//! [`materialized`] a lossless bridge — the f32 plane it returns is what
//! a sequential receiver pushes through `push_capture`, and quantizing
//! it back reproduces the transformed raws the batch path swept.
//!
//! A transform is `clamp(round(raw · gain) + awb)` followed by an
//! optional occlusion rectangle painted at a fixed level — the cheap
//! affine/masking algebra the fleet simulator draws per receiver. Two
//! identities matter downstream:
//!
//! - **Photometric identity** (unity gain, zero AWB) copies raws
//!   verbatim, with *no* clamp — so out-of-code-range synthetic inputs
//!   survive the round trip bit-exactly.
//! - **Pure AWB shift** (unity gain, no occlusion, no pixel clamping)
//!   adds one constant to every raw. The demodulator's high-pass is
//!   shift-invariant under replicate-border box means, so such variants
//!   can alias the identity sweep's accumulators (see
//!   `core`'s `BatchScorer`, which checks eligibility with
//!   [`CaptureTransform::shifts_without_clamp`]).

use crate::plane::Plane;
use crate::qplane::{self, QPlane};

/// Unity gain in the Q4.12 gain fixed point used by
/// [`CaptureTransform::gain_q12`].
pub const GAIN_ONE_Q12: i32 = 1 << 12;

/// Largest in-code-range raw: code value 255 in Q8.7.
pub const CODE_MAX_RAW: i16 = 255 * qplane::ONE;

/// An opaque rectangle (lens blockage, a passer-by) painted over the
/// capture after the photometric transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcclusionRect {
    /// Left edge in sensor pixels.
    pub x0: usize,
    /// Top edge in sensor pixels.
    pub y0: usize,
    /// Width in sensor pixels.
    pub w: usize,
    /// Height in sensor pixels.
    pub h: usize,
    /// Fill level as a Q8.7 raw (e.g. `quantize(40.0)` for a dark
    /// blocker).
    pub level_raw: i16,
}

impl OcclusionRect {
    /// Whether the rectangle covers zero pixels (treated as absent).
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }
}

/// One receiver's photometric difference from the shared capture:
/// exposure gain, AWB offset, and an optional occlusion mask, all in the
/// integer Q8.7 domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureTransform {
    /// Exposure/AE gain in Q4.12 fixed point ([`GAIN_ONE_Q12`] = 1.0).
    pub gain_q12: i32,
    /// AWB / black-level offset added after the gain, in Q8.7 raws.
    pub awb_raw: i16,
    /// Optional occlusion rectangle painted last.
    pub occlusion: Option<OcclusionRect>,
}

impl CaptureTransform {
    /// The do-nothing transform.
    pub const IDENTITY: Self = Self {
        gain_q12: GAIN_ONE_Q12,
        awb_raw: 0,
        occlusion: None,
    };

    /// Gain-only transform from a linear factor (rounded into Q4.12, so
    /// nearby factors snap to the same discrete transform — exactly what
    /// batch scoring wants).
    pub fn with_gain_factor(factor: f64) -> Self {
        Self {
            gain_q12: (factor * GAIN_ONE_Q12 as f64).round().max(0.0) as i32,
            ..Self::IDENTITY
        }
    }

    /// Whether gain and AWB leave pixels untouched (occlusion may still
    /// be present).
    pub fn is_photometric_identity(&self) -> bool {
        self.gain_q12 == GAIN_ONE_Q12 && self.awb_raw == 0
    }

    /// Whether the whole transform is the identity.
    pub fn is_identity(&self) -> bool {
        self.is_photometric_identity() && self.occlusion.is_none_or(|o| o.is_empty())
    }

    /// Whether this transform is a *pure uniform shift* of `base`: unity
    /// gain, no occlusion, and no pixel clamps at this base's raw range.
    /// Such a variant's high-pass accumulators equal the identity
    /// variant's exactly (replicate-border box means are shift
    /// invariant), so the batch scorer reuses the shared sweep for it.
    pub fn shifts_without_clamp(&self, base_min: i16, base_max: i16) -> bool {
        self.gain_q12 == GAIN_ONE_Q12
            && self.occlusion.is_none_or(|o| o.is_empty())
            && (base_min as i32 + self.awb_raw as i32) >= 0
            && (base_max as i32 + self.awb_raw as i32) <= CODE_MAX_RAW as i32
    }

    /// The gain+AWB map on one raw. The photometric identity copies the
    /// raw verbatim (no clamp); anything else rounds the gain product
    /// half-up, adds the AWB offset, and clamps to the code range.
    #[inline]
    pub fn apply_raw_value(&self, raw: i16) -> i16 {
        if self.is_photometric_identity() {
            return raw;
        }
        let scaled = (raw as i64 * self.gain_q12 as i64 + (GAIN_ONE_Q12 as i64 / 2))
            .div_euclid(GAIN_ONE_Q12 as i64);
        (scaled + self.awb_raw as i64).clamp(0, CODE_MAX_RAW as i64) as i16
    }

    /// Applies the photometric map to one row span, then the occlusion
    /// overwrite where the rectangle intersects row `y`. `src` and `dst`
    /// are the same row of two same-shaped planes.
    pub fn apply_row(&self, y: usize, src: &[i16], dst: &mut [i16]) {
        debug_assert_eq!(src.len(), dst.len());
        if self.is_photometric_identity() {
            dst.copy_from_slice(src);
        } else {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = self.apply_raw_value(s);
            }
        }
        if let Some(o) = self.occlusion {
            if !o.is_empty() && y >= o.y0 && y < o.y0 + o.h && o.x0 < dst.len() {
                let x1 = (o.x0 + o.w).min(dst.len());
                dst[o.x0..x1].fill(o.level_raw);
            }
        }
    }

    /// Applies the full transform `src → dst` (same-shaped planes).
    pub fn apply_raw(&self, src: &QPlane, dst: &mut QPlane) {
        assert_eq!(src.shape(), dst.shape(), "transform planes must match");
        let (w, h) = src.shape();
        for y in 0..h {
            let row = &src.samples()[y * w..(y + 1) * w];
            let drow = &mut dst.samples_mut()[y * w..(y + 1) * w];
            self.apply_row(y, row, drow);
        }
    }

    /// Applies the full transform in place.
    pub fn apply_raw_in_place(&self, plane: &mut QPlane) {
        let (w, h) = plane.shape();
        if !self.is_photometric_identity() {
            for raw in plane.samples_mut() {
                *raw = self.apply_raw_value(*raw);
            }
        }
        if let Some(o) = self.occlusion {
            if !o.is_empty() {
                for y in o.y0..(o.y0 + o.h).min(h) {
                    if o.x0 >= w {
                        break;
                    }
                    let x1 = (o.x0 + o.w).min(w);
                    plane.samples_mut()[y * w + o.x0..y * w + x1].fill(o.level_raw);
                }
            }
        }
    }
}

/// What a receiver with transform `t` actually captures, as an f32
/// plane: quantize the shared capture, transform the raws, dequantize.
/// This is the **canonical materialization** — pushing it through the
/// sequential demultiplexer re-quantizes to exactly the raws the batch
/// path swept, which is what makes batch scoring bit-identical to the
/// per-receiver loop on both kernel backends. In-place, allocation-free
/// variant; `qscratch` is reshaped as needed.
pub fn materialize_in_place(plane: &mut Plane<f32>, t: &CaptureTransform, qscratch: &mut QPlane) {
    qscratch.quantize_from(plane);
    t.apply_raw_in_place(qscratch);
    for (dst, &raw) in plane.samples_mut().iter_mut().zip(qscratch.samples()) {
        *dst = qplane::dequantize(raw);
    }
}

/// Allocating convenience wrapper over [`materialize_in_place`].
pub fn materialized(base: &Plane<f32>, t: &CaptureTransform) -> Plane<f32> {
    let mut out = base.clone();
    let mut q = QPlane::new(base.width(), base.height());
    materialize_in_place(&mut out, t, &mut q);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qplane::quantize;

    #[test]
    fn identity_copies_raws_verbatim_even_out_of_range() {
        let t = CaptureTransform::IDENTITY;
        assert!(t.is_identity());
        // Out-of-code-range raws survive — no clamp on the identity.
        for raw in [-300i16, -1, 0, 77, CODE_MAX_RAW, i16::MAX] {
            assert_eq!(t.apply_raw_value(raw), raw);
        }
        let mut q = QPlane::new(4, 3);
        q.samples_mut()
            .copy_from_slice(&[-5, 0, 1, 2, 100, 200, 300, 400, 32000, 32640, 12345, -7]);
        let mut out = QPlane::new(4, 3);
        t.apply_raw(&q, &mut out);
        assert_eq!(out.samples(), q.samples());
    }

    #[test]
    fn gain_rounds_half_up_and_clamps() {
        let t = CaptureTransform {
            gain_q12: GAIN_ONE_Q12 * 2,
            awb_raw: 0,
            occlusion: None,
        };
        assert_eq!(t.apply_raw_value(100), 200);
        assert_eq!(t.apply_raw_value(20000), CODE_MAX_RAW); // clamped
        let half = CaptureTransform {
            gain_q12: GAIN_ONE_Q12 / 2,
            awb_raw: 0,
            occlusion: None,
        };
        assert_eq!(half.apply_raw_value(101), 51); // 50.5 rounds up
    }

    #[test]
    fn awb_shift_detection_matches_clamping() {
        let t = CaptureTransform {
            gain_q12: GAIN_ONE_Q12,
            awb_raw: 256,
            occlusion: None,
        };
        assert!(t.shifts_without_clamp(0, CODE_MAX_RAW - 256));
        assert!(!t.shifts_without_clamp(0, CODE_MAX_RAW)); // top clamps
        let neg = CaptureTransform {
            awb_raw: -128,
            ..CaptureTransform::IDENTITY
        };
        assert!(neg.shifts_without_clamp(128, CODE_MAX_RAW));
        assert!(!neg.shifts_without_clamp(0, CODE_MAX_RAW)); // bottom clamps
                                                             // Within range it truly is a pure shift.
        assert_eq!(t.apply_raw_value(1000), 1256);
    }

    #[test]
    fn occlusion_paints_clipped_rectangle() {
        let t = CaptureTransform {
            occlusion: Some(OcclusionRect {
                x0: 2,
                y0: 1,
                w: 10, // extends past the right edge — clipped
                h: 2,
                level_raw: quantize(40.0),
            }),
            ..CaptureTransform::IDENTITY
        };
        let base = Plane::filled(4, 4, 127.0);
        let cap = materialized(&base, &t);
        for (i, (x, y, v)) in cap.iter_xy().enumerate() {
            let inside = x >= 2 && (1..3).contains(&y);
            let want = if inside { 40.0 } else { 127.0 };
            assert_eq!(v, want, "pixel {i} at ({x},{y})");
        }
    }

    #[test]
    fn materialization_round_trips_through_quantization() {
        let base = Plane::from_fn(16, 9, |x, y| ((x * 31 + y * 7) % 256) as f32 * 0.93);
        let t = CaptureTransform {
            gain_q12: GAIN_ONE_Q12 + 300,
            awb_raw: -64,
            occlusion: None,
        };
        let cap = materialized(&base, &t);
        // Quantizing the materialized capture reproduces the transformed
        // raws exactly — the lossless bridge batch scoring relies on.
        let qbase = QPlane::from_plane(&base);
        let mut want = QPlane::new(16, 9);
        t.apply_raw(&qbase, &mut want);
        assert_eq!(QPlane::from_plane(&cap).samples(), want.samples());
    }
}
