//! Fixed-point image planes (Q8.7) and flat, autovectorizable kernels.
//!
//! The receiver's hot path — smooth, subtract, correlate — does not need
//! f32 precision: display code values are 8-bit integers and the paper's
//! chessboard amplitudes (δ = 20–50) tower over any rounding error. This
//! module stores samples as `i16` in **Q8.7** fixed point (7 fraction
//! bits, 1 LSB = 1/128 of a code value), which
//!
//! * represents every 8-bit code value *exactly* (`v · 128` for
//!   `v ∈ [0, 255]` stays below `i16::MAX = 32767`),
//! * leaves headroom for signed high-pass residuals (`±255` code values),
//! * and keeps the inner loops to integer adds/subtracts over flat
//!   row-major slices — the shape LLVM's autovectorizer turns into SIMD
//!   without any intrinsics.
//!
//! The centerpiece is [`sliding_box_blur_into`]: an **O(1)-per-pixel**
//! box blur using running row/column window sums, radius-independent,
//! with the same replicate-border semantics as
//! [`crate::filter::box_blur`]. Unlike the f64 summed-area-table blur in
//! [`crate::integral`], the sliding-window blur never materializes a padded
//! copy and works entirely in integer arithmetic, so its result is the
//! *exactly rounded* window mean of the quantized input — which is what
//! makes the quantized demodulation path bit-identical at every worker
//! count.

use crate::plane::Plane;

/// Number of fraction bits in the Q8.7 format.
pub const FRAC_BITS: u32 = 7;

/// The fixed-point value of 1.0 (`1 << FRAC_BITS`).
pub const ONE: i16 = 1 << FRAC_BITS;

/// Magnitude of one least-significant bit in code-value units (1/128).
pub const LSB: f32 = 1.0 / ONE as f32;

/// Converts a code-value `f32` to Q8.7, rounding to nearest (ties to
/// even, the hardware rounding mode) and saturating at the `i16` range.
///
/// Rounding uses the classic shift trick instead of `round_ties_even`
/// (a libm call on baseline x86-64): adding and subtracting `1.5 * 2^23`
/// drops the fraction bits of any `|x| <= 2^22` f32 at the FPU's
/// ties-to-even mode, and the clamp keeps the scaled value inside that
/// window. Every step is a plain SSE2 op, which is what lets the
/// per-frame [`QPlane::quantize_from`] autovectorize.
#[inline]
pub fn quantize(v: f32) -> i16 {
    const SHIFT: f32 = 12_582_912.0; // 1.5 * 2^23
    let clamped = (v * ONE as f32).clamp(i16::MIN as f32, i16::MAX as f32);
    ((clamped + SHIFT) - SHIFT) as i32 as i16
}

/// Converts a Q8.7 raw value back to a code-value `f32` (exact — every
/// `i16` is representable in `f32`).
#[inline]
pub fn dequantize(raw: i16) -> f32 {
    raw as f32 * LSB
}

/// A 2-D plane of Q8.7 fixed-point samples, row-major.
///
/// Thin wrapper over a flat `Vec<i16>` (not [`Plane<i16>`]) so the hot
/// kernels can state their fixed-point contract in the type and keep
/// reallocation-free `*_into` variants for streaming reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QPlane {
    width: usize,
    height: usize,
    data: Vec<i16>,
}

impl QPlane {
    /// Creates a zeroed plane.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Quantizes an f32 plane into a new `QPlane`.
    pub fn from_plane(src: &Plane<f32>) -> Self {
        let mut q = Self::new(src.width(), src.height());
        q.quantize_from(src);
        q
    }

    /// Re-quantizes `src` into this plane, reshaping if needed. Steady
    /// state (same shape every call) never reallocates. Dispatches to
    /// the active [`crate::simd`] level (bit-identical at every level).
    pub fn quantize_from(&mut self, src: &Plane<f32>) {
        self.width = src.width();
        self.height = src.height();
        self.data.resize(src.samples().len(), 0);
        crate::simd::quantize_slice(crate::simd::active_level(), src.samples(), &mut self.data);
    }

    /// Dequantizes into a new f32 plane.
    pub fn to_plane(&self) -> Plane<f32> {
        Plane::from_vec(
            self.width,
            self.height,
            self.data.iter().map(|&r| dequantize(r)).collect(),
        )
        .expect("shape is consistent by construction")
    }

    /// `(width, height)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Plane width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The flat row-major raw samples.
    pub fn samples(&self) -> &[i16] {
        &self.data
    }

    /// Mutable flat row-major raw samples.
    pub fn samples_mut(&mut self) -> &mut [i16] {
        &mut self.data
    }

    /// One raw row.
    pub fn row(&self, y: usize) -> &[i16] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Raw sample at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> i16 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Writes raw sample at `(x, y)`.
    #[inline]
    pub fn put(&mut self, x: usize, y: usize, raw: i16) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = raw;
    }

    /// Reshapes (zero-filling) without shrinking capacity.
    pub fn reshape(&mut self, width: usize, height: usize) {
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.resize(width * height, 0);
    }
}

/// Writes `a − b` elementwise into `out` with saturating arithmetic
/// (reshaping `out` to match). For code-value inputs (`|v| ≤ 255`) the
/// subtraction is exact — `±255·128` fits `i16` — and saturation only
/// guards pathological inputs.
///
/// # Panics
/// Panics if `a` and `b` shapes differ.
pub fn saturating_sub_into(a: &QPlane, b: &QPlane, out: &mut QPlane) {
    assert_eq!(a.shape(), b.shape(), "operands must be same-shaped");
    out.reshape(a.width, a.height);
    for ((o, &x), &y) in out.data.iter_mut().zip(&a.data).zip(&b.data) {
        *o = x.saturating_sub(y);
    }
}

/// Reusable working memory for [`sliding_box_blur_into`]: the horizontal
/// window sums (one `i32` per pixel) and the per-column running vertical
/// accumulators. Grows to the largest frame filtered, then is reused.
#[derive(Debug, Clone, Default)]
pub struct QBlurScratch {
    /// Horizontal pass output: window sums of width `2r+1`, row-major.
    pub(crate) rowsum: Vec<i32>,
    /// Vertical running accumulators, one per column (`i32` — see
    /// [`init_column_sums`] for the overflow bound).
    pub(crate) col: Vec<i32>,
    /// Staging row for the fused high-pass prefix sums (`w + 1` i32).
    pub(crate) row_s: Vec<i32>,
    /// Staging row for the squared prefix sums (`w + 1` i64).
    pub(crate) row_q: Vec<i64>,
}

/// Rounded division for the window mean: nearest integer, ties away from
/// zero (matches [`quantize`]'s rounding of the real-valued mean).
#[inline]
pub(crate) fn div_round(n: i64, d: i64) -> i64 {
    debug_assert!(d > 0);
    if n >= 0 {
        (n + d / 2) / d
    } else {
        -((-n + d / 2) / d)
    }
}

/// O(1)-per-pixel sliding-window box blur with replicate borders,
/// allocation-free after the first call.
///
/// Two passes, both running-window sums:
///
/// 1. **Horizontal**: per row, a width-`2r+1` window sum slides left to
///    right; entering/leaving taps use clamped indices, which reproduces
///    replicate-border semantics exactly.
/// 2. **Vertical**: per column, a height-`2r+1` running sum over the
///    horizontal sums, advanced one row per output row.
///
/// The output sample is the window sum divided (round-to-nearest) by the
/// window area — the exactly rounded mean, independent of radius and of
/// how rows are partitioned across threads. Cost per pixel is a handful
/// of integer adds regardless of `r` (the reference
/// [`crate::filter::box_blur`] is O(r) per pixel; the SAT blur is O(1)
/// but builds a padded f64 table).
///
/// # Panics
/// Panics if `src` is empty.
pub fn sliding_box_blur_into(src: &QPlane, r: usize, scratch: &mut QBlurScratch, out: &mut QPlane) {
    let (w, h) = src.shape();
    assert!(w > 0 && h > 0, "cannot blur an empty plane");
    out.reshape(w, h);
    if r == 0 {
        out.samples_mut().copy_from_slice(src.samples());
        return;
    }
    horizontal_window_sums(src, r, &mut scratch.rowsum);
    // Pass 2: vertical running sums over the horizontal sums (i32 — the
    // radius bound asserted by `init_column_sums` keeps them exact), one
    // row of output per step.
    let area = ((2 * r + 1) * (2 * r + 1)) as i64;
    init_column_sums(&scratch.rowsum, w, h, r, &mut scratch.col);
    let rowsum = &scratch.rowsum;
    let col = &mut scratch.col;
    // The closing division is the one per-pixel operation a CPU cannot
    // pipeline (integer division: ~20–40 cycles, never vectorized), so
    // every practical radius takes a precomputed round-up reciprocal
    // instead: with m = ⌊2⁴⁰ / 2·area⌋ + 1, `(2·|n| + area)·m >> 40`
    // equals ⌊(2·|n| + area) / 2·area⌋ — the round-half-up quotient, i.e.
    // `div_round(|n|, area)` — exactly, for every |n| ≤ area·i16::MAX,
    // provided area ≤ 2896 (Granlund–Montgomery round-up method: the
    // numerator bound area·65535 stays below 2⁴⁰/(2·area)). Exactness is
    // pinned against `div_round` by unit and property tests below. The
    // division itself lives in [`crate::simd::blur_mean_row`], which
    // runs the same arithmetic at the active SIMD level.
    let use_magic = area <= crate::simd::MAX_MEAN_AREA;
    let level = crate::simd::active_level();
    for y in 0..h {
        let dst = &mut out.samples_mut()[y * w..(y + 1) * w];
        if use_magic {
            crate::simd::blur_mean_row(level, col, area, dst);
        } else {
            for (o, &n) in dst.iter_mut().zip(col.iter()) {
                *o = div_round(n as i64, area) as i16;
            }
        }
        if y + 1 < h {
            let enter = &rowsum[(y + 1 + r).min(h - 1) * w..(y + 1 + r).min(h - 1) * w + w];
            let leave = &rowsum[y.saturating_sub(r) * w..y.saturating_sub(r) * w + w];
            for ((c, &e), &l) in col.iter_mut().zip(enter).zip(leave) {
                *c += e - l;
            }
        }
    }
}

/// Pass 1 of the sliding blur over a horizontal band: width-`2r+1`
/// window sums with replicate borders, row by row (i32: 255·128·(2r+1)
/// needs r < 410 even at the full code range — far beyond any smoothing
/// radius; the demux clamps r to 8).
///
/// The sums are purely row-local, so disjoint bands of rows can be
/// filled concurrently — `band` holds whole rows of width `w` and `out`
/// must be the same length. Building block for the band-parallel
/// high-pass prefix build in [`crate::integral`].
///
/// # Panics
/// Panics if `band` is not a whole number of `w`-sample rows or `out`
/// has a different length.
pub fn horizontal_window_sums_band(band: &[i16], w: usize, r: usize, out: &mut [i32]) {
    assert!(
        w > 0 && band.len().is_multiple_of(w),
        "band must hold whole rows"
    );
    assert_eq!(band.len(), out.len(), "output must match the band");
    let level = crate::simd::active_level();
    for (row, dst) in band.chunks_exact(w).zip(out.chunks_exact_mut(w)) {
        crate::simd::window_sums_row(level, row, r, dst);
    }
}

/// Full-plane wrapper over [`horizontal_window_sums_band`] (the sliding
/// blur's pass 1).
pub(crate) fn horizontal_window_sums(src: &QPlane, r: usize, rowsum: &mut Vec<i32>) {
    let (w, h) = src.shape();
    rowsum.clear();
    rowsum.resize(w * h, 0);
    horizontal_window_sums_band(src.samples(), w, r, rowsum);
}

/// Seeds the vertical running accumulators for output row 0: the
/// replicate-border window sum of rows `-r..=r` per column.
///
/// The accumulators are `i32`: a column sum is at most
/// `(2r+1)² · 32768`, which stays below `2³¹` for every `r ≤ 127` —
/// asserted here so the bound is load-bearing, not folklore (practical
/// smoothing radii are ≤ 26, the reciprocal-mean ceiling).
pub(crate) fn init_column_sums(rowsum: &[i32], w: usize, h: usize, r: usize, col: &mut Vec<i32>) {
    assert!(r <= 127, "radius beyond 127 would overflow i32 column sums");
    col.clear();
    col.resize(w, 0);
    for x in 0..w {
        let mut s = (r as i32 + 1) * rowsum[x];
        for j in 1..=r {
            s += rowsum[j.min(h - 1) * w + x];
        }
        col[x] = s;
    }
}

/// Allocating convenience wrapper over [`sliding_box_blur_into`].
pub fn sliding_box_blur(src: &QPlane, r: usize) -> QPlane {
    let mut out = QPlane::new(src.width(), src.height());
    sliding_box_blur_into(src, r, &mut QBlurScratch::default(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::box_blur;
    use proptest::prelude::*;

    fn hash_plane(w: usize, h: usize, seed: u64) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            let v = (x as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add((y as u64).wrapping_mul(0x85EB_CA6B))
                .wrapping_add(seed.wrapping_mul(0xC2B2_AE35));
            ((v >> 5) % 256) as f32
        })
    }

    #[test]
    fn code_values_are_exact() {
        for v in 0..=255 {
            let q = quantize(v as f32);
            assert_eq!(q, (v * ONE as i32) as i16);
            assert_eq!(dequantize(q), v as f32);
        }
    }

    #[test]
    fn quantize_saturates() {
        assert_eq!(quantize(1e6), i16::MAX);
        assert_eq!(quantize(-1e6), i16::MIN);
    }

    #[test]
    fn saturating_sub_matches_exact_difference() {
        let a = QPlane::from_plane(&hash_plane(13, 7, 1));
        let b = QPlane::from_plane(&hash_plane(13, 7, 2));
        let mut out = QPlane::new(13, 7);
        saturating_sub_into(&a, &b, &mut out);
        for i in 0..a.samples().len() {
            assert_eq!(
                out.samples()[i] as i32,
                a.samples()[i] as i32 - b.samples()[i] as i32
            );
        }
    }

    #[test]
    fn zero_radius_blur_is_identity() {
        let q = QPlane::from_plane(&hash_plane(9, 5, 3));
        assert_eq!(sliding_box_blur(&q, 0), q);
    }

    #[test]
    fn blur_preserves_constant_planes() {
        let q = QPlane::from_plane(&Plane::filled(19, 11, 200.0));
        for r in 1..=8 {
            assert_eq!(sliding_box_blur(&q, r), q, "r = {r}");
        }
    }

    #[test]
    fn blur_radius_larger_than_plane_averages_with_replication() {
        // 3×2 plane, r = 8: every window replicates heavily but stays the
        // exactly rounded mean of the clamped taps.
        let p = Plane::from_fn(3, 2, |x, y| (x * 100 + y * 30) as f32);
        let q = QPlane::from_plane(&p);
        let got = sliding_box_blur(&q, 8);
        let reference = box_blur(&p, 8);
        for y in 0..2 {
            for x in 0..3 {
                let diff = (dequantize(got.get(x, y)) - reference.get(x, y)).abs();
                assert!(diff <= LSB, "({x},{y}): diff {diff}");
            }
        }
    }

    #[test]
    fn blur_into_reuses_scratch_across_shapes() {
        let mut scratch = QBlurScratch::default();
        let mut out = QPlane::new(1, 1);
        for (w, h, r) in [(23usize, 17usize, 3usize), (9, 31, 1), (23, 17, 8)] {
            let q = QPlane::from_plane(&hash_plane(w, h, (w * h) as u64));
            sliding_box_blur_into(&q, r, &mut scratch, &mut out);
            assert_eq!(out, sliding_box_blur(&q, r), "{w}x{h} r={r}");
        }
    }

    /// The blur's reciprocal quotient as implemented in pass 2.
    fn magic_quotient(n: i64, area: i64) -> i64 {
        let magic = (1u64 << 40) / (2 * area as u64) + 1;
        let q = (((2 * n.unsigned_abs() + area as u64) * magic) >> 40) as i64;
        if n < 0 {
            -q
        } else {
            q
        }
    }

    #[test]
    fn magic_division_matches_div_round_at_boundaries() {
        // Dense sweep near zero plus the extreme numerators each radius can
        // actually produce (|col sum| ≤ area · i16::MAX).
        for r in 0..=8usize {
            let area = ((2 * r + 1) * (2 * r + 1)) as i64;
            let bound = area * i16::MAX as i64;
            for n in -(4 * area)..=(4 * area) {
                assert_eq!(magic_quotient(n, area), div_round(n, area), "n={n} r={r}");
            }
            for n in (bound - 2 * area)..=bound {
                assert_eq!(magic_quotient(n, area), div_round(n, area), "n={n} r={r}");
                assert_eq!(
                    magic_quotient(-n, area),
                    div_round(-n, area),
                    "n={} r={r}",
                    -n
                );
            }
        }
    }

    proptest! {
        /// The reciprocal division is exact over the full numerator range
        /// of every supported radius.
        #[test]
        fn magic_division_matches_div_round(
            r in 0usize..27,
            frac in -1.0f64..1.0,
        ) {
            let area = ((2 * r + 1) * (2 * r + 1)) as i64;
            let n = (frac * (area * i16::MAX as i64) as f64) as i64;
            prop_assert_eq!(magic_quotient(n, area), div_round(n, area), "n={} area={}", n, area);
        }

        /// Satellite: f32 → Q8.7 → f32 round-trips within 1 LSB over the
        /// full signed code-value range.
        #[test]
        fn roundtrip_within_one_lsb(v in -255.0f32..255.0) {
            let back = dequantize(quantize(v));
            prop_assert!((back - v).abs() <= LSB, "{v} -> {back}");
        }

        /// Satellite: the sliding-window blur matches the reference
        /// `filter::box_blur` within 1 LSB for radii 0..8 on random
        /// integer-valued planes.
        #[test]
        fn sliding_blur_matches_reference(
            w in 3usize..24,
            h in 3usize..24,
            r in 0usize..8,
            seed in any::<u64>(),
        ) {
            let p = hash_plane(w, h, seed);
            let q = QPlane::from_plane(&p);
            let got = sliding_box_blur(&q, r);
            let reference = box_blur(&p, r);
            for y in 0..h {
                for x in 0..w {
                    let diff = (dequantize(got.get(x, y)) - reference.get(x, y)).abs();
                    prop_assert!(diff <= LSB, "r={r} ({x},{y}): diff {diff}");
                }
            }
        }
    }
}
