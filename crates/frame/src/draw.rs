//! Drawing helpers used by the synthetic video generators and data-frame
//! construction: rectangles, gradients, checkerboards and markers.

use crate::plane::Plane;

/// Fills the axis-aligned rectangle `[x, x+w) × [y, y+h)` (clipped to the
/// plane) with `value`.
pub fn fill_rect(p: &mut Plane<f32>, x: usize, y: usize, w: usize, h: usize, value: f32) {
    let x1 = (x + w).min(p.width());
    let y1 = (y + h).min(p.height());
    for yy in y.min(p.height())..y1 {
        for xx in x.min(p.width())..x1 {
            p.put(xx, yy, value);
        }
    }
}

/// Writes a chessboard pattern over the rectangle `[x, x+w) × [y, y+h)`:
/// cells of `cell × cell` pixels alternate between `a` (when the cell parity
/// `(cx + cy)` is even) and `b` (odd).
///
/// With `a = 0` and `b = δ` and `cell = p` this is exactly the paper's
/// chessboard Block pattern (§3.3): "setting the Pixel at position (i, j) to
/// δ, if i + j is odd; or 0, otherwise".
#[allow(clippy::too_many_arguments)]
pub fn chessboard(
    p: &mut Plane<f32>,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    cell: usize,
    a: f32,
    b: f32,
) {
    assert!(cell > 0, "cell size must be nonzero");
    let x1 = (x + w).min(p.width());
    let y1 = (y + h).min(p.height());
    for yy in y.min(p.height())..y1 {
        for xx in x.min(p.width())..x1 {
            let cx = (xx - x) / cell;
            let cy = (yy - y) / cell;
            let v = if (cx + cy).is_multiple_of(2) { a } else { b };
            p.put(xx, yy, v);
        }
    }
}

/// Fills the whole plane with a horizontal linear gradient from `left` to
/// `right` code values.
pub fn horizontal_gradient(p: &mut Plane<f32>, left: f32, right: f32) {
    let w = p.width().max(2);
    for y in 0..p.height() {
        for x in 0..p.width() {
            let t = x as f32 / (w - 1) as f32;
            p.put(x, y, left + t * (right - left));
        }
    }
}

/// Fills the whole plane with a vertical linear gradient from `top` to
/// `bottom` code values.
pub fn vertical_gradient(p: &mut Plane<f32>, top: f32, bottom: f32) {
    let h = p.height().max(2);
    for y in 0..p.height() {
        let t = y as f32 / (h - 1) as f32;
        for x in 0..p.width() {
            p.put(x, y, top + t * (bottom - top));
        }
    }
}

/// Draws a filled disc centered at `(cx, cy)` with radius `r` (anti-aliased
/// over a one-pixel rim), used by the sunrise clip for the sun.
pub fn filled_disc(p: &mut Plane<f32>, cx: f64, cy: f64, r: f64, value: f32) {
    if r <= 0.0 {
        return;
    }
    let x0 = ((cx - r).floor().max(0.0)) as usize;
    let y0 = ((cy - r).floor().max(0.0)) as usize;
    let x1 = ((cx + r).ceil() as usize + 1).min(p.width());
    let y1 = ((cy + r).ceil() as usize + 1).min(p.height());
    for y in y0..y1 {
        for x in x0..x1 {
            let dx = x as f64 + 0.5 - cx;
            let dy = y as f64 + 0.5 - cy;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= r - 0.5 {
                p.put(x, y, value);
            } else if d < r + 0.5 {
                // One-pixel anti-aliased rim: linear coverage falloff.
                let cover = (r + 0.5 - d) as f32;
                let bg = p.get(x, y);
                p.put(x, y, bg + cover * (value - bg));
            }
        }
    }
}

/// Draws a one-pixel-wide axis-aligned rectangle outline (a fiducial used to
/// mark the data area in debug images).
pub fn rect_outline(p: &mut Plane<f32>, x: usize, y: usize, w: usize, h: usize, value: f32) {
    if w == 0 || h == 0 {
        return;
    }
    fill_rect(p, x, y, w, 1, value);
    fill_rect(p, x, y + h.saturating_sub(1), w, 1, value);
    fill_rect(p, x, y, 1, h, value);
    fill_rect(p, x + w.saturating_sub(1), y, 1, h, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rect_clips_to_plane() {
        let mut p = Plane::filled(4, 4, 0.0);
        fill_rect(&mut p, 2, 2, 10, 10, 1.0);
        assert_eq!(p.get(3, 3), 1.0);
        assert_eq!(p.get(1, 1), 0.0);
    }

    #[test]
    fn chessboard_alternates_cells() {
        let mut p = Plane::filled(8, 8, -1.0);
        chessboard(&mut p, 0, 0, 8, 8, 2, 0.0, 20.0);
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(2, 0), 20.0);
        assert_eq!(p.get(0, 2), 20.0);
        assert_eq!(p.get(2, 2), 0.0);
        // Within a cell the value is constant.
        assert_eq!(p.get(1, 1), 0.0);
        assert_eq!(p.get(3, 1), 20.0);
    }

    #[test]
    fn chessboard_paper_pattern_pixel_cell() {
        // cell=1, a=0, b=δ reproduces "δ if i+j odd else 0".
        let mut p = Plane::filled(4, 4, 0.0);
        chessboard(&mut p, 0, 0, 4, 4, 1, 0.0, 30.0);
        for (x, y, v) in p.iter_xy() {
            let expect = if (x + y) % 2 == 1 { 30.0 } else { 0.0 };
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn gradients_hit_endpoints() {
        let mut p = Plane::filled(5, 3, 0.0);
        horizontal_gradient(&mut p, 10.0, 20.0);
        assert_eq!(p.get(0, 0), 10.0);
        assert_eq!(p.get(4, 0), 20.0);
        let mut q = Plane::filled(3, 5, 0.0);
        vertical_gradient(&mut q, 0.0, 100.0);
        assert_eq!(q.get(0, 0), 0.0);
        assert_eq!(q.get(0, 4), 100.0);
    }

    #[test]
    fn disc_covers_center_not_corners() {
        let mut p = Plane::filled(11, 11, 0.0);
        filled_disc(&mut p, 5.5, 5.5, 3.0, 200.0);
        assert_eq!(p.get(5, 5), 200.0);
        assert_eq!(p.get(0, 0), 0.0);
        assert_eq!(p.get(10, 10), 0.0);
    }

    #[test]
    fn outline_touches_only_border() {
        let mut p = Plane::filled(6, 6, 0.0);
        rect_outline(&mut p, 1, 1, 4, 4, 9.0);
        assert_eq!(p.get(1, 1), 9.0);
        assert_eq!(p.get(4, 4), 9.0);
        assert_eq!(p.get(2, 2), 0.0);
        assert_eq!(p.get(0, 0), 0.0);
    }
}
