//! Explicit SIMD kernel backend with one-time runtime dispatch.
//!
//! The quantized pipeline's hot loops — f32→Q8.7 quantization, the fused
//! high-pass + prefix-sum build, the sliding-blur window mean, the
//! `ChessLut` chessboard patch and the demodulator's segment-sum scoring
//! — previously relied on LLVM's autovectorizer. This module supplies
//! hand-written `std::arch` paths (SSE2 and AVX2) next to a portable
//! scalar path, selected once per process:
//!
//! * [`active_level`] reads the `INFRAME_SIMD` environment variable
//!   (`off` | `sse2` | `avx2`), clamps it to what
//!   `is_x86_feature_detected!` reports, and caches the result in an
//!   atomic — later calls are a single relaxed load.
//! * [`force_level`] overrides the cached level (tests use it to prove
//!   bit-identity across levels); `force_level(None)` re-arms detection.
//!
//! **The scalar path is the oracle.** Every vector kernel is constructed
//! to be *bit-identical* to the scalar quantized kernels in
//! [`crate::qplane`] / [`crate::integral`] for all pipeline-reachable
//! inputs, and the equivalence suite pins that claim at every forced
//! level. The interesting identities:
//!
//! * **Quantization** uses the same multiply → clamp → `±1.5·2²³` shift
//!   trick; `_mm{,256}_cvtps_epi32` on the already-integral result is
//!   exact regardless of rounding mode.
//! * **Window means** evaluate the scalar round-up reciprocal
//!   (`(2|n|+area)·magic >> 40`) verbatim in u64 lane arithmetic: the
//!   40-bit `magic` is split `mh·2³² + ml` and the product assembled
//!   from two 32×32→64 `mul_epu32`s. Since `t = 2|n|+area` and `magic`
//!   are inversely proportional through `area`, the true product stays
//!   ≲ 2⁵⁶, so neither partial product overflows — the lanes compute
//!   the *same expression* as the scalar oracle, not an approximation
//!   of it.
//! * **Window sums** (blur pass 1) replace the sequential sliding
//!   recurrence with a `(2r+1)`-tap widen-add convolution over the row
//!   interior — a reassociation of the same exact i32 sum.
//! * **High-pass residuals** use `subs_epi16`, the same saturating
//!   subtract as the scalar `saturating_sub`; prefix sums are log-step
//!   Hillis–Steele scans whose wrapping `i32`/`i64` adds match the scalar
//!   running sums term for term.
//! * **Lane-width invariants**: vector bodies process 16/8/4-lane groups
//!   and hand the remainder to the *same* scalar core that defines the
//!   oracle, so a row of any width splits into identical arithmetic.
//!
//! All `unsafe` in the workspace is confined to this module (the crate
//! root keeps `#![deny(unsafe_code)]`); every intrinsic body is wrapped
//! by a safe dispatcher that clamps the requested level to the detected
//! one, so callers can never reach an instruction the CPU lacks.

#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU8, Ordering};

/// A dispatchable kernel implementation tier, ordered by capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar Rust — the bit-exact oracle, available everywhere.
    Scalar = 1,
    /// 128-bit SSE2 paths (baseline on every `x86_64`).
    Sse2 = 2,
    /// 256-bit AVX2 paths (gathers, 16-lane i16 arithmetic).
    Avx2 = 3,
}

impl SimdLevel {
    /// Parses an `INFRAME_SIMD` value. Unknown strings yield `None`
    /// (auto-detect).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "scalar" | "none" | "0" => Some(Self::Scalar),
            "sse2" | "sse" => Some(Self::Sse2),
            "avx2" | "avx" => Some(Self::Avx2),
            _ => None,
        }
    }

    /// Stable lower-case name (used in bench metadata and test labels).
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Sse2 => "sse2",
            Self::Avx2 => "avx2",
        }
    }

    fn from_u8(raw: u8) -> Option<Self> {
        match raw {
            1 => Some(Self::Scalar),
            2 => Some(Self::Sse2),
            3 => Some(Self::Avx2),
            _ => None,
        }
    }

    /// All levels this machine can execute, weakest first.
    pub fn supported() -> impl Iterator<Item = Self> {
        [Self::Scalar, Self::Sse2, Self::Avx2]
            .into_iter()
            .filter(|&l| l <= detected_level())
    }
}

/// 0 = undetermined (next [`active_level`] call re-runs detection).
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The best level the running CPU supports, independent of overrides.
pub fn detected_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

/// The level the kernels dispatch on: `INFRAME_SIMD` (if set and
/// recognized) clamped to [`detected_level`], cached after the first
/// call. Later calls are one relaxed atomic load.
pub fn active_level() -> SimdLevel {
    match SimdLevel::from_u8(ACTIVE.load(Ordering::Relaxed)) {
        Some(level) => level,
        None => {
            let level = level_from_env();
            ACTIVE.store(level as u8, Ordering::Relaxed);
            level
        }
    }
}

fn level_from_env() -> SimdLevel {
    let detected = detected_level();
    match std::env::var("INFRAME_SIMD") {
        Ok(value) => SimdLevel::parse(&value).unwrap_or(detected).min(detected),
        Err(_) => detected,
    }
}

/// Overrides the dispatch level (clamped to the detected ceiling), or
/// re-arms environment/CPU detection with `None`.
///
/// The override is process-global; it exists so the equivalence and
/// allocation suites can pin every tier. All tiers are bit-identical, so
/// concurrent tests observing a forced level still see identical
/// numerics.
pub fn force_level(level: Option<SimdLevel>) {
    let raw = level.map_or(0, |l| l.min(detected_level()) as u8);
    ACTIVE.store(raw, Ordering::Relaxed);
}

/// Comma-separated list of the relevant CPU features this machine
/// reports, for bench metadata ("portable" off x86_64).
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut found = Vec::new();
        macro_rules! probe {
            ($($name:tt),*) => {
                $(if std::arch::is_x86_feature_detected!($name) {
                    found.push($name);
                })*
            };
        }
        probe!("sse2", "ssse3", "sse4.1", "sse4.2", "avx", "avx2", "fma", "avx512f");
        found.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::from("portable")
    }
}

/// Largest window area the reciprocal/f64 mean kernels accept
/// (`(2r+1)² ≤ 2896` ⇔ `r ≤ 26`; the demodulator clamps r to 8).
pub const MAX_MEAN_AREA: i64 = 2896;

// --------------------------------------------------------------------
// f32 → Q8.7 quantization
// --------------------------------------------------------------------

const SHIFT: f32 = 12_582_912.0; // 1.5 * 2^23, the round-to-int bias

fn quantize_slice_scalar(src: &[f32], dst: &mut [i16]) {
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = crate::qplane::quantize(v);
    }
}

/// Quantizes `src` into `dst` ([`crate::qplane::quantize`] per sample),
/// bit-identical at every level for finite inputs.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn quantize_slice(level: SimdLevel, src: &[f32], dst: &mut [i16]) {
    assert_eq!(src.len(), dst.len(), "quantize buffers must match");
    match level.min(detected_level()) {
        SimdLevel::Scalar => quantize_slice_scalar(src, dst),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the clamp above guarantees the feature is present.
        SimdLevel::Sse2 => unsafe { x86::quantize_slice_sse2(src, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::quantize_slice_avx2(src, dst) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => quantize_slice_scalar(src, dst),
    }
}

// --------------------------------------------------------------------
// Sliding-blur pass 1: width-(2r+1) horizontal window sums
// --------------------------------------------------------------------

/// The oracle: replicate-border sliding window sum over one row.
fn window_sums_row_scalar(row: &[i16], r: usize, out: &mut [i32]) {
    let w = row.len();
    let mut sum: i32 = (r as i32 + 1) * row[0] as i32;
    for i in 1..=r {
        sum += row[i.min(w - 1)] as i32;
    }
    out[0] = sum;
    for x in 1..w {
        let entering = row[(x + r).min(w - 1)] as i32;
        let leaving = row[(x - 1).saturating_sub(r)] as i32;
        sum += entering - leaving;
        out[x] = sum;
    }
}

/// One border-clamped window sum — exactly the value the sliding oracle
/// produces at `x` (integer adds in any order are the same sum).
#[inline]
fn window_sum_at(row: &[i16], r: usize, x: usize) -> i32 {
    let w = row.len();
    let mut s = 0i32;
    for j in 0..=2 * r {
        s += row[(x + j).saturating_sub(r).min(w - 1)] as i32;
    }
    s
}

/// Width-`2r+1` window sums of an i16 row with replicate borders — pass 1
/// of the sliding box blur. The sequential sliding recurrence defeats the
/// autovectorizer, but the interior of the row is a plain `(2r+1)`-tap
/// integer convolution: the vector tiers widen-add the taps 16 (AVX2) or
/// 8 (SSE2) columns at a time, which is the *same exact integer sum* in a
/// different association — bit-identical to the oracle. Borders run
/// through the clamped scalar core.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn window_sums_row(level: SimdLevel, row: &[i16], r: usize, out: &mut [i32]) {
    assert_eq!(row.len(), out.len(), "window-sum output must match row");
    if row.is_empty() {
        return;
    }
    match level.min(detected_level()) {
        SimdLevel::Scalar => window_sums_row_scalar(row, r, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the clamp above guarantees the feature is present.
        SimdLevel::Sse2 => unsafe { x86::window_sums_row_sse2(row, r, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::window_sums_row_avx2(row, r, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => window_sums_row_scalar(row, r, out),
    }
}

// --------------------------------------------------------------------
// Window means and the fused high-pass + prefix-sum row kernel
// --------------------------------------------------------------------

/// Round-up reciprocal for `div_round(n, area)`; see the exactness note
/// on [`crate::qplane::sliding_box_blur_into`].
#[inline]
fn mean_magic(area: i64) -> u64 {
    (1u64 << 40) / (2 * area as u64) + 1
}

#[inline]
fn scalar_mean(n: i32, area: i64, magic: u64) -> i32 {
    let q = (((2 * u64::from(n.unsigned_abs()) + area as u64) * magic) >> 40) as i32;
    if n < 0 {
        -q
    } else {
        q
    }
}

fn blur_mean_row_scalar(col: &[i32], area: i64, magic: u64, out: &mut [i16]) {
    for (o, &n) in out.iter_mut().zip(col) {
        *o = scalar_mean(n, area, magic) as i16;
    }
}

/// Writes the rounded window mean `div_round(col[x], area)` per column
/// — pass 2 of the sliding box blur. Requires `1 ≤ area ≤`
/// [`MAX_MEAN_AREA`] and `|col[x]| ≤ area·32767` (every genuine window
/// sum of Q8.7 samples satisfies both).
///
/// # Panics
/// Panics if `out` and `col` differ in length or `area` is out of range.
pub fn blur_mean_row(level: SimdLevel, col: &[i32], area: i64, out: &mut [i16]) {
    assert_eq!(col.len(), out.len(), "mean output must match columns");
    assert!(
        (1..=MAX_MEAN_AREA).contains(&area),
        "window area out of reciprocal range"
    );
    let magic = mean_magic(area);
    match level.min(detected_level()) {
        SimdLevel::Scalar => blur_mean_row_scalar(col, area, magic, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the clamp above guarantees the feature is present.
        SimdLevel::Sse2 => unsafe { x86::blur_mean_row_sse2(col, area, magic, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::blur_mean_row_avx2(col, area, magic, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => blur_mean_row_scalar(col, area, magic, out),
    }
}

/// The oracle-defining scalar core shared by every tier's tail loop:
/// continues the running sums from `x0` with the carried `run_s`/`run_q`.
#[allow(clippy::too_many_arguments)]
fn highpass_prefix_tail(
    row: &[i16],
    col: &[i32],
    area: i64,
    magic: u64,
    sum: &mut [i32],
    sq: &mut [i64],
    x0: usize,
    mut run_s: i32,
    mut run_q: i64,
) {
    for x in x0..row.len() {
        let mean = scalar_mean(col[x], area, magic);
        let hp = row[x].saturating_sub(mean as i16);
        run_s = run_s.wrapping_add(hp as i32);
        run_q = run_q.wrapping_add((hp as i64) * (hp as i64));
        sum[x + 1] = run_s;
        sq[x + 1] = run_q;
    }
}

/// Fused high-pass + prefix-sum row: for each column, subtracts the
/// rounded window mean (`subs`-saturating, exactly the scalar
/// `saturating_sub`) from the sample and writes the running sum of the
/// residual into `sum[1..]` and of its square into `sq[1..]`
/// (`sum[0] = sq[0] = 0`). One row of the [`crate::integral`] table
/// builds. Same operand contract as [`blur_mean_row`].
///
/// # Panics
/// Panics on inconsistent slice lengths or an out-of-range `area`.
pub fn highpass_prefix_row(
    level: SimdLevel,
    row: &[i16],
    col: &[i32],
    area: i64,
    sum: &mut [i32],
    sq: &mut [i64],
) {
    let w = row.len();
    assert_eq!(col.len(), w, "column sums must match the row");
    assert!(
        sum.len() == w + 1 && sq.len() == w + 1,
        "prefix rows are w+1"
    );
    assert!(
        (1..=MAX_MEAN_AREA).contains(&area),
        "window area out of reciprocal range"
    );
    sum[0] = 0;
    sq[0] = 0;
    let magic = mean_magic(area);
    match level.min(detected_level()) {
        SimdLevel::Scalar => highpass_prefix_tail(row, col, area, magic, sum, sq, 0, 0, 0),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the clamp above guarantees the feature is present.
        SimdLevel::Sse2 => unsafe { x86::highpass_prefix_row_sse2(row, col, area, magic, sum, sq) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::highpass_prefix_row_avx2(row, col, area, magic, sum, sq) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => highpass_prefix_tail(row, col, area, magic, sum, sq, 0, 0, 0),
    }
}

// --------------------------------------------------------------------
// ChessLut chessboard patch
// --------------------------------------------------------------------

fn lut_apply_scalar(video: &[f32], table: &[f32; 256], add: bool, out: &mut [f32]) {
    if add {
        for (o, &v) in out.iter_mut().zip(video) {
            let code = (v.clamp(0.0, 255.0) + 0.5) as usize & 0xFF;
            *o = v + table[code];
        }
    } else {
        for (o, &v) in out.iter_mut().zip(video) {
            let code = (v.clamp(0.0, 255.0) + 0.5) as usize & 0xFF;
            *o = v - table[code];
        }
    }
}

/// Applies one chessboard cell span: per pixel, rounds the clamped video
/// sample to its 8-bit code, looks the dequantized LUT amplitude up and
/// adds (`add`) or subtracts it. AVX2 uses a hardware gather; SSE2 uses
/// a 4-lane shuffle/extract gather. Bit-identical across levels for
/// finite inputs (the f32 adds are performed on identical operands).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn lut_apply_span(
    level: SimdLevel,
    video: &[f32],
    table: &[f32; 256],
    add: bool,
    out: &mut [f32],
) {
    assert_eq!(video.len(), out.len(), "cell span buffers must match");
    match level.min(detected_level()) {
        SimdLevel::Scalar => lut_apply_scalar(video, table, add, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the clamp above guarantees the feature is present.
        SimdLevel::Sse2 => unsafe { x86::lut_apply_sse2(video, table, add, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx2 => unsafe { x86::lut_apply_avx2(video, table, add, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => lut_apply_scalar(video, table, add, out),
    }
}

// --------------------------------------------------------------------
// Wide segment-sum scoring (demodulator gathers)
// --------------------------------------------------------------------

fn signed_segment_sum_scalar(table: &[i32], idx0: &[u32], idx1: &[u32], sign: &[i32]) -> i64 {
    let mut acc = 0i64;
    for ((&a, &b), &s) in idx0.iter().zip(idx1).zip(sign) {
        let d = (table[b as usize] - table[a as usize]) as i64;
        acc += s as i64 * d;
    }
    acc
}

fn segment_sum_scalar(table: &[i64], idx0: &[u32], idx1: &[u32]) -> i64 {
    let mut acc = 0i64;
    for (&a, &b) in idx0.iter().zip(idx1) {
        acc += table[b as usize] - table[a as usize];
    }
    acc
}

/// `Σ sign·(table[idx1] − table[idx0])` over precomputed prefix-table
/// indices — the demodulator's template correlation. Each difference is
/// a row-segment sum (fits `i32` exactly); `sign` entries must be `±1`
/// (the AVX2 path applies them by conditional negation).
///
/// # Panics
/// Panics if the index/sign slices differ in length or any index is out
/// of the table's bounds (checked up front so the gather is in-bounds).
pub fn signed_segment_sum_i32(
    level: SimdLevel,
    table: &[i32],
    idx0: &[u32],
    idx1: &[u32],
    sign: &[i32],
) -> i64 {
    assert!(idx0.len() == idx1.len() && idx0.len() == sign.len());
    // i32 gathers sign-extend the lane, so indices must also stay below
    // 2³¹; a table that large (8 GiB) is unreachable, but check anyway.
    assert!(
        table.len() <= i32::MAX as usize,
        "table too large to gather"
    );
    let bound = table.len() as u32;
    assert!(
        idx0.iter().chain(idx1).all(|&i| i < bound),
        "gather index out of table bounds"
    );
    debug_assert!(sign.iter().all(|&s| s == 1 || s == -1));
    match level.min(detected_level()) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature present per clamp; indices verified in bounds.
        SimdLevel::Avx2 => unsafe { x86::signed_segment_sum_avx2(table, idx0, idx1, sign) },
        // The 128-bit ISA has no gather; scalar loads are the fallback.
        _ => signed_segment_sum_scalar(table, idx0, idx1, sign),
    }
}

/// `Σ (table[idx1] − table[idx0])` over the squared-sum prefix table —
/// the demodulator's high-pass energy term.
///
/// # Panics
/// Panics on mismatched slice lengths or out-of-bounds indices.
pub fn segment_sum_i64(level: SimdLevel, table: &[i64], idx0: &[u32], idx1: &[u32]) -> i64 {
    assert_eq!(idx0.len(), idx1.len());
    assert!(
        table.len() <= i32::MAX as usize,
        "table too large to gather"
    );
    let bound = table.len() as u32;
    assert!(
        idx0.iter().chain(idx1).all(|&i| i < bound),
        "gather index out of table bounds"
    );
    match level.min(detected_level()) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature present per clamp; indices verified in bounds.
        SimdLevel::Avx2 => unsafe { x86::segment_sum_avx2(table, idx0, idx1) },
        _ => segment_sum_scalar(table, idx0, idx1),
    }
}

/// Batched [`signed_segment_sum_i32`]: one accumulator per slice, where
/// `slices[k]` is the half-open range of the index arrays belonging to
/// slice `k`. A Block's demodulation makes a handful of very short
/// segment-sum calls (one per rolling-shutter slice); batching them pays
/// the bounds validation and dispatch once per Block instead of per
/// slice. Each slice's accumulator is the exact per-slice kernel result.
///
/// # Panics
/// Panics on mismatched index/sign lengths, an out-of-bounds gather
/// index, a slice range outside the index arrays, or `out` shorter than
/// `slices`.
pub fn signed_segment_sums_sliced(
    level: SimdLevel,
    table: &[i32],
    idx0: &[u32],
    idx1: &[u32],
    sign: &[i32],
    slices: &[(u32, u32)],
    out: &mut [i64],
) {
    assert!(idx0.len() == idx1.len() && idx0.len() == sign.len());
    assert!(
        table.len() <= i32::MAX as usize,
        "table too large to gather"
    );
    assert_eq!(slices.len(), out.len(), "one accumulator per slice");
    let bound = table.len() as u32;
    assert!(
        idx0.iter().chain(idx1).all(|&i| i < bound),
        "gather index out of table bounds"
    );
    debug_assert!(sign.iter().all(|&s| s == 1 || s == -1));
    let n = idx0.len() as u32;
    assert!(
        slices.iter().all(|&(a, b)| a <= b && b <= n),
        "slice range outside the index arrays"
    );
    let level = level.min(detected_level());
    for (&(a, b), acc) in slices.iter().zip(out) {
        let (a, b) = (a as usize, b as usize);
        *acc = match level {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: feature present per clamp; indices verified above.
            SimdLevel::Avx2 => unsafe {
                x86::signed_segment_sum_avx2(table, &idx0[a..b], &idx1[a..b], &sign[a..b])
            },
            _ => signed_segment_sum_scalar(table, &idx0[a..b], &idx1[a..b], &sign[a..b]),
        };
    }
}

/// Batched [`segment_sum_i64`] — the energy-term twin of
/// [`signed_segment_sums_sliced`], same slicing contract.
///
/// # Panics
/// Panics on mismatched index lengths, an out-of-bounds gather index, a
/// slice range outside the index arrays, or `out` shorter than `slices`.
pub fn segment_sums_sliced(
    level: SimdLevel,
    table: &[i64],
    idx0: &[u32],
    idx1: &[u32],
    slices: &[(u32, u32)],
    out: &mut [i64],
) {
    assert_eq!(idx0.len(), idx1.len());
    assert!(
        table.len() <= i32::MAX as usize,
        "table too large to gather"
    );
    assert_eq!(slices.len(), out.len(), "one accumulator per slice");
    let bound = table.len() as u32;
    assert!(
        idx0.iter().chain(idx1).all(|&i| i < bound),
        "gather index out of table bounds"
    );
    let n = idx0.len() as u32;
    assert!(
        slices.iter().all(|&(a, b)| a <= b && b <= n),
        "slice range outside the index arrays"
    );
    let level = level.min(detected_level());
    for (&(a, b), acc) in slices.iter().zip(out) {
        let (a, b) = (a as usize, b as usize);
        *acc = match level {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: feature present per clamp; indices verified above.
            SimdLevel::Avx2 => unsafe { x86::segment_sum_avx2(table, &idx0[a..b], &idx1[a..b]) },
            _ => segment_sum_scalar(table, &idx0[a..b], &idx1[a..b]),
        };
    }
}

/// Folds one fused high-pass prefix row into the direct row sweep's
/// slice accumulators: every run `(x0, x1, tag)` adds the prefix
/// difference `row_s[x1] − row_s[x0]` (negated when the tag's top bit is
/// set) into `acc_s[tag & 0x7FFF_FFFF]`, and every span `(x0, x1, acc)`
/// adds `row_q[x1] − row_q[x0]` into `acc_q[acc]`.
///
/// This is the per-row entry point of the quantized demodulator's direct
/// row sweep *and* of the batched multi-receiver scorer, which replays
/// the same row program once per distinct photometric variant — the
/// kernel-launch shape a GPU port would batch. The body is deliberately
/// scalar at every level: the endpoints are a run-length gather and the
/// accumulator indices a scatter with unpredictable collisions, and with
/// ~2 table loads per short run the loop is bound by the same L1 reads a
/// vector gather would issue — measured no faster under AVX2 (unlike the
/// gather kernels above, which amortize over long materialized prefix
/// tables). Routing it through the dispatch layer pins the bit-identical
/// contract at every level and marks the seam for wider ISAs.
///
/// # Panics
/// Panics on a run or span endpoint outside the prefix rows or an
/// accumulator index outside the accumulator slices.
pub fn sweep_row_segments(
    level: SimdLevel,
    row_s: &[i32],
    row_q: &[i64],
    runs: &[(u32, u32, u32)],
    spans: &[(u32, u32, u32)],
    acc_s: &mut [i64],
    acc_q: &mut [i64],
) {
    let _ = level.min(detected_level()); // scalar at every level (see above)
    for &(x0, x1, tag) in runs {
        let s = (row_s[x1 as usize] - row_s[x0 as usize]) as i64;
        let i = (tag & 0x7FFF_FFFF) as usize;
        acc_s[i] += if tag >> 31 != 0 { -s } else { s };
    }
    for &(x0, x1, acc) in spans {
        acc_q[acc as usize] += row_q[x1 as usize] - row_q[x0 as usize];
    }
}

// --------------------------------------------------------------------
// x86-64 intrinsic bodies
// --------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    #[inline]
    #[target_feature(enable = "sse2")]
    fn quant4_sse2(v: __m128) -> __m128i {
        let scaled = _mm_mul_ps(v, _mm_set1_ps(crate::qplane::ONE as f32));
        let clamped = _mm_max_ps(
            _mm_min_ps(scaled, _mm_set1_ps(i16::MAX as f32)),
            _mm_set1_ps(i16::MIN as f32),
        );
        let shift = _mm_set1_ps(SHIFT);
        // The add/sub pair leaves an exactly integral f32, so the
        // convert below is mode-independent — identical to the scalar
        // `as i32` truncation.
        _mm_cvtps_epi32(_mm_sub_ps(_mm_add_ps(clamped, shift), shift))
    }

    /// # Safety
    /// Requires SSE2 (guaranteed on `x86_64`; dispatcher clamps anyway).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn quantize_slice_sse2(src: &[f32], dst: &mut [i16]) {
        let n = src.len();
        let mut x = 0;
        while x + 8 <= n {
            // SAFETY: x + 8 <= n bounds both unaligned loads.
            let (a, b) = unsafe {
                (
                    _mm_loadu_ps(src.as_ptr().add(x)),
                    _mm_loadu_ps(src.as_ptr().add(x + 4)),
                )
            };
            let packed = _mm_packs_epi32(quant4_sse2(a), quant4_sse2(b));
            // SAFETY: dst[x..x + 8] is in bounds (dst.len() == n).
            unsafe { _mm_storeu_si128(dst.as_mut_ptr().add(x).cast(), packed) };
            x += 8;
        }
        quantize_slice_scalar(&src[x..], &mut dst[x..]);
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn quant8_avx2(v: __m256) -> __m256i {
        let scaled = _mm256_mul_ps(v, _mm256_set1_ps(crate::qplane::ONE as f32));
        let clamped = _mm256_max_ps(
            _mm256_min_ps(scaled, _mm256_set1_ps(i16::MAX as f32)),
            _mm256_set1_ps(i16::MIN as f32),
        );
        let shift = _mm256_set1_ps(SHIFT);
        _mm256_cvtps_epi32(_mm256_sub_ps(_mm256_add_ps(clamped, shift), shift))
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quantize_slice_avx2(src: &[f32], dst: &mut [i16]) {
        let n = src.len();
        let mut x = 0;
        while x + 16 <= n {
            // SAFETY: x + 16 <= n bounds both loads.
            let (a, b) = unsafe {
                (
                    _mm256_loadu_ps(src.as_ptr().add(x)),
                    _mm256_loadu_ps(src.as_ptr().add(x + 8)),
                )
            };
            // packs interleaves the 128-bit lanes; permute restores
            // element order.
            let packed = _mm256_packs_epi32(quant8_avx2(a), quant8_avx2(b));
            let fixed = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
            // SAFETY: dst[x..x + 16] is in bounds.
            unsafe { _mm256_storeu_si256(dst.as_mut_ptr().add(x).cast(), fixed) };
            x += 16;
        }
        // SAFETY: AVX2 implies SSE2.
        unsafe { quantize_slice_sse2(&src[x..], &mut dst[x..]) };
    }

    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn window_sums_row_sse2(row: &[i16], r: usize, out: &mut [i32]) {
        let w = row.len();
        let mut x = 0usize;
        while x < r.min(w) {
            out[x] = window_sum_at(row, r, x);
            x += 1;
        }
        while x + r + 8 <= w {
            let mut lo = _mm_setzero_si128();
            let mut hi = _mm_setzero_si128();
            for j in 0..=2 * r {
                // SAFETY: x ≥ r (head loop) and x + r + 8 ≤ w bound the
                // 8-lane load at x - r + j.
                let v = unsafe { _mm_loadu_si128(row.as_ptr().add(x - r + j).cast()) };
                lo = _mm_add_epi32(lo, _mm_srai_epi32::<16>(_mm_unpacklo_epi16(v, v)));
                hi = _mm_add_epi32(hi, _mm_srai_epi32::<16>(_mm_unpackhi_epi16(v, v)));
            }
            // SAFETY: out[x..x + 8] in bounds (out.len() == w).
            unsafe {
                _mm_storeu_si128(out.as_mut_ptr().add(x).cast(), lo);
                _mm_storeu_si128(out.as_mut_ptr().add(x + 4).cast(), hi);
            }
            x += 8;
        }
        while x < w {
            out[x] = window_sum_at(row, r, x);
            x += 1;
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn window_sums_row_avx2(row: &[i16], r: usize, out: &mut [i32]) {
        let w = row.len();
        let mut x = 0usize;
        while x < r.min(w) {
            out[x] = window_sum_at(row, r, x);
            x += 1;
        }
        while x + r + 16 <= w {
            let mut lo = _mm256_setzero_si256();
            let mut hi = _mm256_setzero_si256();
            for j in 0..=2 * r {
                // SAFETY: x ≥ r (head loop) and x + r + 16 ≤ w bound the
                // 16-lane load at x - r + j.
                let v = unsafe { _mm256_loadu_si256(row.as_ptr().add(x - r + j).cast()) };
                lo = _mm256_add_epi32(lo, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(v)));
                hi = _mm256_add_epi32(hi, _mm256_cvtepi16_epi32(_mm256_extracti128_si256::<1>(v)));
            }
            // SAFETY: out[x..x + 16] in bounds (out.len() == w).
            unsafe {
                _mm256_storeu_si256(out.as_mut_ptr().add(x).cast(), lo);
                _mm256_storeu_si256(out.as_mut_ptr().add(x + 8).cast(), hi);
            }
            x += 16;
        }
        while x < w {
            out[x] = window_sum_at(row, r, x);
            x += 1;
        }
    }

    /// `col[x..x + 4]` as four i32 lanes (one unaligned load — the
    /// accumulators are natively i32; see `init_column_sums`).
    ///
    /// # Safety
    /// `col[x..x + 4]` must be in bounds.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn load_col4(col: &[i32], x: usize) -> __m128i {
        // SAFETY: caller guarantees col[x..x + 4] in bounds.
        unsafe { _mm_loadu_si128(col.as_ptr().add(x).cast()) }
    }

    /// `div_round(n, area)` on 4 lanes via the scalar path's own
    /// round-up reciprocal: `q = ((2|n| + area)·magic) >> 40` evaluated
    /// in exact u64 lane arithmetic, `magic` split `mh·2³² + ml` so the
    /// product comes out of two 32×32→64 `mul_epu32`s. Both partial
    /// products stay under the true product (`t·mh·2³² ≤ t·magic ≲ 2⁵⁶`
    /// for every in-contract `area ≤ MAX_MEAN_AREA`), so nothing
    /// overflows — the result is the *same u64 expression* the scalar
    /// oracle computes, not merely equal to it.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn mean4_sse2(n32: __m128i, area: __m128i, ml: __m128i, mh: __m128i) -> __m128i {
        let s = _mm_srai_epi32::<31>(n32);
        let abs = _mm_sub_epi32(_mm_xor_si128(n32, s), s);
        let t = _mm_add_epi32(_mm_slli_epi32::<1>(abs), area);
        let pe = _mm_add_epi64(
            _mm_mul_epu32(t, ml),
            _mm_slli_epi64::<32>(_mm_mul_epu32(t, mh)),
        );
        let to = _mm_srli_epi64::<32>(t);
        let po = _mm_add_epi64(
            _mm_mul_epu32(to, ml),
            _mm_slli_epi64::<32>(_mm_mul_epu32(to, mh)),
        );
        let q = _mm_or_si128(
            _mm_srli_epi64::<40>(pe),
            _mm_slli_epi64::<32>(_mm_srli_epi64::<40>(po)),
        );
        _mm_sub_epi32(_mm_xor_si128(q, s), s)
    }

    /// `col[x..x + 8]` as eight i32 lanes (one unaligned load).
    ///
    /// # Safety
    /// `col[x..x + 8]` must be in bounds.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_col8(col: &[i32], x: usize) -> __m256i {
        // SAFETY: caller guarantees col[x..x + 8] in bounds.
        unsafe { _mm256_loadu_si256(col.as_ptr().add(x).cast()) }
    }

    /// 8-lane twin of [`mean4_sse2`] — same magic-multiply expression.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mean8_avx2(n32: __m256i, area: __m256i, ml: __m256i, mh: __m256i) -> __m256i {
        let s = _mm256_srai_epi32::<31>(n32);
        let abs = _mm256_abs_epi32(n32);
        let t = _mm256_add_epi32(_mm256_slli_epi32::<1>(abs), area);
        let pe = _mm256_add_epi64(
            _mm256_mul_epu32(t, ml),
            _mm256_slli_epi64::<32>(_mm256_mul_epu32(t, mh)),
        );
        let to = _mm256_srli_epi64::<32>(t);
        let po = _mm256_add_epi64(
            _mm256_mul_epu32(to, ml),
            _mm256_slli_epi64::<32>(_mm256_mul_epu32(to, mh)),
        );
        let q = _mm256_or_si256(
            _mm256_srli_epi64::<40>(pe),
            _mm256_slli_epi64::<32>(_mm256_srli_epi64::<40>(po)),
        );
        _mm256_sub_epi32(_mm256_xor_si256(q, s), s)
    }

    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn blur_mean_row_sse2(col: &[i32], area: i64, magic: u64, out: &mut [i16]) {
        let w = out.len();
        let areav = _mm_set1_epi32(area as i32);
        let ml = _mm_set1_epi64x((magic & 0xFFFF_FFFF) as i64);
        let mh = _mm_set1_epi64x((magic >> 32) as i64);
        let mut x = 0;
        while x + 4 <= w {
            // SAFETY: col[x..x + 4] in bounds (col.len() == w).
            let n32 = unsafe { load_col4(col, x) };
            let m16 = {
                let m = mean4_sse2(n32, areav, ml, mh);
                _mm_packs_epi32(m, m)
            };
            // SAFETY: out[x..x + 4] in bounds (8-byte store).
            unsafe { _mm_storel_epi64(out.as_mut_ptr().add(x).cast(), m16) };
            x += 4;
        }
        blur_mean_row_scalar(&col[x..], area, magic, &mut out[x..]);
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn blur_mean_row_avx2(col: &[i32], area: i64, magic: u64, out: &mut [i16]) {
        let w = out.len();
        let areav = _mm256_set1_epi32(area as i32);
        let ml = _mm256_set1_epi64x((magic & 0xFFFF_FFFF) as i64);
        let mh = _mm256_set1_epi64x((magic >> 32) as i64);
        let mut x = 0;
        while x + 8 <= w {
            // SAFETY: col[x..x + 8] in bounds.
            let n32 = unsafe { load_col8(col, x) };
            let m = mean8_avx2(n32, areav, ml, mh);
            let m16 = _mm_packs_epi32(_mm256_castsi256_si128(m), _mm256_extracti128_si256::<1>(m));
            // SAFETY: out[x..x + 8] in bounds (16-byte store).
            unsafe { _mm_storeu_si128(out.as_mut_ptr().add(x).cast(), m16) };
            x += 8;
        }
        blur_mean_row_scalar(&col[x..], area, magic, &mut out[x..]);
    }

    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn highpass_prefix_row_sse2(
        row: &[i16],
        col: &[i32],
        area: i64,
        magic: u64,
        sum: &mut [i32],
        sq: &mut [i64],
    ) {
        let w = row.len();
        let areav = _mm_set1_epi32(area as i32);
        let ml = _mm_set1_epi64x((magic & 0xFFFF_FFFF) as i64);
        let mh = _mm_set1_epi64x((magic >> 32) as i64);
        let zero = _mm_setzero_si128();
        let mut run_s = 0i32;
        let mut run_q = 0i64;
        let mut x = 0;
        while x + 4 <= w {
            // SAFETY: col[x..x + 4] in bounds.
            let n32 = unsafe { load_col4(col, x) };
            let m = mean4_sse2(n32, areav, ml, mh);
            let m16 = _mm_packs_epi32(m, m);
            // SAFETY: row[x..x + 4] in bounds (8-byte load).
            let r16 = unsafe { _mm_loadl_epi64(row.as_ptr().add(x).cast()) };
            let hp16 = _mm_subs_epi16(r16, m16);
            let hp32 = _mm_srai_epi32::<16>(_mm_unpacklo_epi16(hp16, hp16));
            // Inclusive Hillis–Steele scan over the 4 i32 lanes.
            let mut v = _mm_add_epi32(hp32, _mm_slli_si128::<4>(hp32));
            v = _mm_add_epi32(v, _mm_slli_si128::<8>(v));
            let outv = _mm_add_epi32(v, _mm_set1_epi32(run_s));
            // SAFETY: sum.len() == w + 1 and x + 4 <= w bound the store.
            unsafe { _mm_storeu_si128(sum.as_mut_ptr().add(x + 1).cast(), outv) };
            run_s = _mm_cvtsi128_si32(_mm_shuffle_epi32::<0b11_11_11_11>(outv));
            // hp² via |hp| and a lo/hi 16-bit multiply (SSE2 has no
            // 32-bit mullo); |−32768| wraps to the same 0x8000 bit
            // pattern the unsigned multiplies square correctly.
            let sg = _mm_srai_epi16::<15>(hp16);
            let habs = _mm_sub_epi16(_mm_xor_si128(hp16, sg), sg);
            let lo = _mm_mullo_epi16(habs, habs);
            let hi = _mm_mulhi_epu16(habs, habs);
            let sq32 = _mm_unpacklo_epi16(lo, hi);
            let q01 = _mm_unpacklo_epi32(sq32, zero);
            let q23 = _mm_unpackhi_epi32(sq32, zero);
            let aout = {
                let a = _mm_add_epi64(q01, _mm_slli_si128::<8>(q01));
                _mm_add_epi64(a, _mm_set1_epi64x(run_q))
            };
            // SAFETY: sq.len() == w + 1; lanes land at x + 1, x + 2.
            unsafe { _mm_storeu_si128(sq.as_mut_ptr().add(x + 1).cast(), aout) };
            run_q = _mm_cvtsi128_si64(_mm_unpackhi_epi64(aout, aout));
            let bout = {
                let b = _mm_add_epi64(q23, _mm_slli_si128::<8>(q23));
                _mm_add_epi64(b, _mm_set1_epi64x(run_q))
            };
            // SAFETY: lanes land at x + 3, x + 4 ≤ w.
            unsafe { _mm_storeu_si128(sq.as_mut_ptr().add(x + 3).cast(), bout) };
            run_q = _mm_cvtsi128_si64(_mm_unpackhi_epi64(bout, bout));
            x += 4;
        }
        highpass_prefix_tail(row, col, area, magic, sum, sq, x, run_s, run_q);
    }

    /// Inclusive prefix scan over 4 i64 lanes (within-lane shift, then a
    /// cross-lane carry broadcast).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn scan4_epi64(v: __m256i) -> __m256i {
        let v = _mm256_add_epi64(v, _mm256_slli_si256::<8>(v));
        let t = _mm256_permute4x64_epi64::<0b01_01_01_01>(v);
        let carry = _mm256_permute2x128_si256::<0x08>(t, t);
        _mm256_add_epi64(v, carry)
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn highpass_prefix_row_avx2(
        row: &[i16],
        col: &[i32],
        area: i64,
        magic: u64,
        sum: &mut [i32],
        sq: &mut [i64],
    ) {
        let w = row.len();
        let areav = _mm256_set1_epi32(area as i32);
        let ml = _mm256_set1_epi64x((magic & 0xFFFF_FFFF) as i64);
        let mh = _mm256_set1_epi64x((magic >> 32) as i64);
        let mut run_s = 0i32;
        let mut run_q = 0i64;
        let mut x = 0;
        while x + 8 <= w {
            // SAFETY: col[x..x + 8] in bounds.
            let n32 = unsafe { load_col8(col, x) };
            let m = mean8_avx2(n32, areav, ml, mh);
            let m16 = _mm_packs_epi32(_mm256_castsi256_si128(m), _mm256_extracti128_si256::<1>(m));
            // SAFETY: row[x..x + 8] in bounds (16-byte load).
            let r16 = unsafe { _mm_loadu_si128(row.as_ptr().add(x).cast()) };
            let hp16 = _mm_subs_epi16(r16, m16);
            let hp32 = _mm256_cvtepi16_epi32(hp16);
            // Inclusive scan of 8 i32 lanes: two within-lane steps plus
            // a cross-lane carry of the low lane's total.
            let mut v = _mm256_add_epi32(hp32, _mm256_slli_si256::<4>(hp32));
            v = _mm256_add_epi32(v, _mm256_slli_si256::<8>(v));
            let lane_top = _mm256_shuffle_epi32::<0b11_11_11_11>(v);
            let carry = _mm256_permute2x128_si256::<0x08>(lane_top, lane_top);
            v = _mm256_add_epi32(v, carry);
            let outv = _mm256_add_epi32(v, _mm256_set1_epi32(run_s));
            // SAFETY: sum.len() == w + 1 and x + 8 <= w bound the store.
            unsafe { _mm256_storeu_si256(sum.as_mut_ptr().add(x + 1).cast(), outv) };
            run_s = _mm256_extract_epi32::<7>(outv);
            let sq32 = _mm256_mullo_epi32(hp32, hp32);
            let sql = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(sq32));
            let sqh = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(sq32));
            let aout = _mm256_add_epi64(scan4_epi64(sql), _mm256_set1_epi64x(run_q));
            // SAFETY: lanes land at x + 1 ..= x + 4 ≤ w.
            unsafe { _mm256_storeu_si256(sq.as_mut_ptr().add(x + 1).cast(), aout) };
            run_q = _mm256_extract_epi64::<3>(aout);
            let bout = _mm256_add_epi64(scan4_epi64(sqh), _mm256_set1_epi64x(run_q));
            // SAFETY: lanes land at x + 5 ..= x + 8 ≤ w.
            unsafe { _mm256_storeu_si256(sq.as_mut_ptr().add(x + 5).cast(), bout) };
            run_q = _mm256_extract_epi64::<3>(bout);
            x += 8;
        }
        highpass_prefix_tail(row, col, area, magic, sum, sq, x, run_s, run_q);
    }

    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn lut_apply_sse2(
        video: &[f32],
        table: &[f32; 256],
        add: bool,
        out: &mut [f32],
    ) {
        let n = video.len();
        let zero = _mm_setzero_ps();
        let maxv = _mm_set1_ps(255.0);
        let half = _mm_set1_ps(0.5);
        let mut x = 0;
        while x + 4 <= n {
            // SAFETY: video[x..x + 4] in bounds.
            let v = unsafe { _mm_loadu_ps(video.as_ptr().add(x)) };
            let c = _mm_max_ps(_mm_min_ps(v, maxv), zero);
            let idx = _mm_cvttps_epi32(_mm_add_ps(c, half));
            // Manual 4-lane gather: extract, mask, table-load, repack.
            let i0 = (_mm_cvtsi128_si32(idx) as usize) & 0xFF;
            let i1 = (_mm_cvtsi128_si32(_mm_shuffle_epi32::<0b01>(idx)) as usize) & 0xFF;
            let i2 = (_mm_cvtsi128_si32(_mm_shuffle_epi32::<0b10>(idx)) as usize) & 0xFF;
            let i3 = (_mm_cvtsi128_si32(_mm_shuffle_epi32::<0b11>(idx)) as usize) & 0xFF;
            let g = _mm_set_ps(table[i3], table[i2], table[i1], table[i0]);
            let o = if add {
                _mm_add_ps(v, g)
            } else {
                _mm_sub_ps(v, g)
            };
            // SAFETY: out[x..x + 4] in bounds.
            unsafe { _mm_storeu_ps(out.as_mut_ptr().add(x), o) };
            x += 4;
        }
        lut_apply_scalar(&video[x..], table, add, &mut out[x..]);
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lut_apply_avx2(
        video: &[f32],
        table: &[f32; 256],
        add: bool,
        out: &mut [f32],
    ) {
        let n = video.len();
        let zero = _mm256_setzero_ps();
        let maxv = _mm256_set1_ps(255.0);
        let half = _mm256_set1_ps(0.5);
        let mut x = 0;
        while x + 8 <= n {
            // SAFETY: video[x..x + 8] in bounds.
            let v = unsafe { _mm256_loadu_ps(video.as_ptr().add(x)) };
            let c = _mm256_max_ps(_mm256_min_ps(v, maxv), zero);
            let idx = _mm256_cvttps_epi32(_mm256_add_ps(c, half));
            // SAFETY: the clamp pins every lane to [0, 255] (min/max
            // ordering maps even NaN to 255), so the gather cannot
            // leave the 256-entry table.
            let g = unsafe { _mm256_i32gather_ps::<4>(table.as_ptr(), idx) };
            let o = if add {
                _mm256_add_ps(v, g)
            } else {
                _mm256_sub_ps(v, g)
            };
            // SAFETY: out[x..x + 8] in bounds.
            unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(x), o) };
            x += 8;
        }
        // SAFETY: AVX2 implies SSE2.
        unsafe { lut_apply_sse2(&video[x..], table, add, &mut out[x..]) };
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn reduce_epi64(v: __m256i) -> i64 {
        let s = _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        _mm_cvtsi128_si64(s).wrapping_add(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)))
    }

    /// # Safety
    /// Requires AVX2; every index must be `< table.len()` (the
    /// dispatcher checks before calling).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn signed_segment_sum_avx2(
        table: &[i32],
        idx0: &[u32],
        idx1: &[u32],
        sign: &[i32],
    ) -> i64 {
        let n = idx0.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the three index/sign loads.
            let (a, b, sg) = unsafe {
                (
                    _mm256_loadu_si256(idx0.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(idx1.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(sign.as_ptr().add(i).cast()),
                )
            };
            // SAFETY: all indices verified < table.len() up front.
            let (v0, v1) = unsafe {
                (
                    _mm256_i32gather_epi32::<4>(table.as_ptr(), a),
                    _mm256_i32gather_epi32::<4>(table.as_ptr(), b),
                )
            };
            // Segment sums fit i32, so the wrapping lane subtract is
            // exact; signs are ±1 → conditional negation.
            let d = _mm256_sub_epi32(v1, v0);
            let s = _mm256_srai_epi32::<31>(sg);
            let ds = _mm256_sub_epi32(_mm256_xor_si256(d, s), s);
            acc = _mm256_add_epi64(acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(ds)));
            acc = _mm256_add_epi64(
                acc,
                _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(ds)),
            );
            i += 8;
        }
        reduce_epi64(acc) + signed_segment_sum_scalar(table, &idx0[i..], &idx1[i..], &sign[i..])
    }

    /// # Safety
    /// Requires AVX2; every index must be `< table.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn segment_sum_avx2(table: &[i64], idx0: &[u32], idx1: &[u32]) -> i64 {
        let n = idx0.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n bounds the index loads.
            let (a, b) = unsafe {
                (
                    _mm_loadu_si128(idx0.as_ptr().add(i).cast()),
                    _mm_loadu_si128(idx1.as_ptr().add(i).cast()),
                )
            };
            // SAFETY: all indices verified < table.len() up front.
            let (v0, v1) = unsafe {
                (
                    _mm256_i32gather_epi64::<8>(table.as_ptr(), a),
                    _mm256_i32gather_epi64::<8>(table.as_ptr(), b),
                )
            };
            acc = _mm256_add_epi64(acc, _mm256_sub_epi64(v1, v0));
            i += 4;
        }
        reduce_epi64(acc) + segment_sum_scalar(table, &idx0[i..], &idx1[i..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (no RNG dependency needed).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
        fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
            lo + (self.next() % (hi - lo + 1) as u64) as i64
        }
        fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
            lo + (self.next() % 10_000) as f32 / 10_000.0 * (hi - lo)
        }
    }

    fn vector_levels() -> Vec<SimdLevel> {
        SimdLevel::supported()
            .filter(|&l| l != SimdLevel::Scalar)
            .collect()
    }

    #[test]
    fn parse_recognizes_override_values() {
        assert_eq!(SimdLevel::parse("off"), Some(SimdLevel::Scalar));
        assert_eq!(SimdLevel::parse("Scalar"), Some(SimdLevel::Scalar));
        assert_eq!(SimdLevel::parse("sse2"), Some(SimdLevel::Sse2));
        assert_eq!(SimdLevel::parse(" AVX2 "), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("neon"), None);
    }

    #[test]
    fn detection_orders_levels() {
        let d = detected_level();
        assert!(d >= SimdLevel::Scalar);
        assert!(SimdLevel::supported().all(|l| l <= d));
        assert!(!cpu_features().is_empty());
    }

    #[test]
    fn quantize_matches_scalar_at_every_level() {
        let mut rng = Lcg(7);
        for len in [0usize, 1, 3, 7, 8, 15, 16, 17, 33, 257] {
            let src: Vec<f32> = (0..len)
                .map(|i| match i % 7 {
                    0 => rng.f32_in(-300.0, 300.0),
                    1 => rng.f32_in(-0.01, 0.01),
                    2 => 1e6,
                    3 => -1e6,
                    4 => rng.f32_in(0.0, 255.0),
                    5 => (rng.next() % 256) as f32,
                    _ => rng.f32_in(-256.5, -255.5),
                })
                .collect();
            let mut want = vec![0i16; len];
            quantize_slice(SimdLevel::Scalar, &src, &mut want);
            for level in vector_levels() {
                let mut got = vec![1i16; len];
                quantize_slice(level, &src, &mut got);
                assert_eq!(got, want, "{} len={len}", level.name());
            }
        }
    }

    #[test]
    fn means_and_prefix_rows_match_scalar_at_every_level() {
        let mut rng = Lcg(99);
        for r in [1usize, 2, 3, 8, 26] {
            let area = ((2 * r + 1) * (2 * r + 1)) as i64;
            for w in [1usize, 4, 5, 8, 13, 16, 31, 64, 127] {
                let bound = area * i16::MAX as i64;
                let col: Vec<i32> = (0..w)
                    .map(|i| match i % 5 {
                        0 => bound as i32,
                        1 => -bound as i32,
                        _ => rng.i64_in(-bound, bound) as i32,
                    })
                    .collect();
                let row: Vec<i16> = (0..w)
                    .map(|_| rng.i64_in(i16::MIN as i64, i16::MAX as i64) as i16)
                    .collect();
                let mut want_mean = vec![0i16; w];
                blur_mean_row(SimdLevel::Scalar, &col, area, &mut want_mean);
                let mut want_sum = vec![0i32; w + 1];
                let mut want_sq = vec![0i64; w + 1];
                highpass_prefix_row(
                    SimdLevel::Scalar,
                    &row,
                    &col,
                    area,
                    &mut want_sum,
                    &mut want_sq,
                );
                for level in vector_levels() {
                    let mut mean = vec![i16::MIN; w];
                    blur_mean_row(level, &col, area, &mut mean);
                    assert_eq!(mean, want_mean, "mean {} r={r} w={w}", level.name());
                    let mut sum = vec![-1i32; w + 1];
                    let mut sq = vec![-1i64; w + 1];
                    highpass_prefix_row(level, &row, &col, area, &mut sum, &mut sq);
                    assert_eq!(sum, want_sum, "sum {} r={r} w={w}", level.name());
                    assert_eq!(sq, want_sq, "sq {} r={r} w={w}", level.name());
                }
            }
        }
    }

    #[test]
    fn window_sums_match_scalar_at_every_level() {
        let mut rng = Lcg(31);
        for r in [0usize, 1, 4, 8, 13] {
            for w in [1usize, 2, 5, 8, 9, 16, 17, 31, 40, 127, 300] {
                let row: Vec<i16> = (0..w)
                    .map(|i| match i % 5 {
                        0 => i16::MAX,
                        1 => i16::MIN,
                        _ => rng.i64_in(i16::MIN as i64, i16::MAX as i64) as i16,
                    })
                    .collect();
                let mut want = vec![0i32; w];
                window_sums_row(SimdLevel::Scalar, &row, r, &mut want);
                for level in vector_levels() {
                    let mut got = vec![-1i32; w];
                    window_sums_row(level, &row, r, &mut got);
                    assert_eq!(got, want, "{} r={r} w={w}", level.name());
                }
            }
        }
    }

    #[test]
    fn lut_apply_matches_scalar_at_every_level() {
        let mut rng = Lcg(1234);
        let mut table = [0.0f32; 256];
        for (i, t) in table.iter_mut().enumerate() {
            *t = crate::qplane::dequantize((i as i16).wrapping_mul(37) - 512);
        }
        for len in [0usize, 1, 3, 4, 5, 8, 9, 17, 64] {
            let video: Vec<f32> = (0..len)
                .map(|i| match i % 6 {
                    0 => -5.0,
                    1 => 300.0,
                    2 => 254.99,
                    3 => 0.49,
                    _ => rng.f32_in(0.0, 255.0),
                })
                .collect();
            for add in [true, false] {
                let mut want = vec![0.0f32; len];
                lut_apply_span(SimdLevel::Scalar, &video, &table, add, &mut want);
                for level in vector_levels() {
                    let mut got = vec![f32::NAN; len];
                    lut_apply_span(level, &video, &table, add, &mut got);
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{} len={len} add={add}",
                        level.name()
                    );
                }
            }
        }
    }

    #[test]
    fn segment_sums_match_scalar_at_every_level() {
        let mut rng = Lcg(5150);
        let table_i32: Vec<i32> = (0..1000)
            .map(|_| rng.i64_in(-60_000_000, 60_000_000) as i32)
            .collect();
        let table_i64: Vec<i64> = (0..1000).map(|_| rng.i64_in(0, 1 << 45)).collect();
        for n in [0usize, 1, 4, 5, 7, 8, 9, 16, 40, 129] {
            let idx0: Vec<u32> = (0..n).map(|_| (rng.next() % 1000) as u32).collect();
            let idx1: Vec<u32> = (0..n).map(|_| (rng.next() % 1000) as u32).collect();
            let sign: Vec<i32> = (0..n).map(|i| if i % 3 == 0 { -1 } else { 1 }).collect();
            let want_s = signed_segment_sum_i32(SimdLevel::Scalar, &table_i32, &idx0, &idx1, &sign);
            let want_q = segment_sum_i64(SimdLevel::Scalar, &table_i64, &idx0, &idx1);
            for level in vector_levels() {
                assert_eq!(
                    signed_segment_sum_i32(level, &table_i32, &idx0, &idx1, &sign),
                    want_s,
                    "i32 {} n={n}",
                    level.name()
                );
                assert_eq!(
                    segment_sum_i64(level, &table_i64, &idx0, &idx1),
                    want_q,
                    "i64 {} n={n}",
                    level.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "gather index out of table bounds")]
    fn out_of_bounds_gather_index_panics() {
        let table = vec![0i32; 8];
        signed_segment_sum_i32(detected_level(), &table, &[8], &[0], &[1]);
    }
}
