//! Planar RGB frames.

use crate::color;
use crate::plane::Plane;
use crate::FrameError;
use serde::{Deserialize, Serialize};

/// A planar RGB frame of `f32` code values in `[0, 255]`.
///
/// The paper's test videos are grayscale (e.g. RGB (127,127,127)) but the
/// system is defined over color video, and the chessboard perturbation is
/// applied to all three channels identically. Keeping the planes separate
/// lets the luma-only receiver path avoid touching chroma.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RgbFrame {
    /// Red plane.
    pub r: Plane<f32>,
    /// Green plane.
    pub g: Plane<f32>,
    /// Blue plane.
    pub b: Plane<f32>,
}

impl RgbFrame {
    /// Creates a frame with all channels set to a constant gray level.
    pub fn gray(width: usize, height: usize, level: f32) -> Self {
        Self {
            r: Plane::filled(width, height, level),
            g: Plane::filled(width, height, level),
            b: Plane::filled(width, height, level),
        }
    }

    /// Creates a frame with per-channel constant values.
    pub fn solid(width: usize, height: usize, rgb: [f32; 3]) -> Self {
        Self {
            r: Plane::filled(width, height, rgb[0]),
            g: Plane::filled(width, height, rgb[1]),
            b: Plane::filled(width, height, rgb[2]),
        }
    }

    /// Assembles a frame from three planes.
    ///
    /// # Errors
    /// Returns [`FrameError::ShapeMismatch`] if the planes disagree in shape.
    pub fn from_planes(r: Plane<f32>, g: Plane<f32>, b: Plane<f32>) -> Result<Self, FrameError> {
        if r.shape() != g.shape() {
            return Err(FrameError::ShapeMismatch {
                left: r.shape(),
                right: g.shape(),
            });
        }
        if r.shape() != b.shape() {
            return Err(FrameError::ShapeMismatch {
                left: r.shape(),
                right: b.shape(),
            });
        }
        Ok(Self { r, g, b })
    }

    /// Builds an RGB frame by replicating a luma plane into all channels.
    pub fn from_luma(luma: &Plane<f32>) -> Self {
        Self {
            r: luma.clone(),
            g: luma.clone(),
            b: luma.clone(),
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.r.width()
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.r.height()
    }

    /// `(width, height)` pair.
    pub fn shape(&self) -> (usize, usize) {
        self.r.shape()
    }

    /// BT.601 luma plane of the frame.
    pub fn luma(&self) -> Plane<f32> {
        let (w, h) = self.shape();
        Plane::from_fn(w, h, |x, y| {
            color::luma_bt601(self.r.get(x, y), self.g.get(x, y), self.b.get(x, y))
        })
    }

    /// Applies `f` to every channel plane in place.
    pub fn for_each_plane_mut(&mut self, mut f: impl FnMut(&mut Plane<f32>)) {
        f(&mut self.r);
        f(&mut self.g);
        f(&mut self.b);
    }

    /// Clamps all channels into `[0, 255]`.
    pub fn clamp_code_range(&mut self) {
        self.for_each_plane_mut(|p| p.clamp_in_place(0.0, 255.0));
    }

    /// Packs into interleaved 8-bit RGB bytes (for PPM output).
    pub fn to_interleaved_u8(&self) -> Vec<u8> {
        let (w, h) = self.shape();
        let mut out = Vec::with_capacity(w * h * 3);
        for y in 0..h {
            for x in 0..w {
                out.push(self.r.get(x, y).round().clamp(0.0, 255.0) as u8);
                out.push(self.g.get(x, y).round().clamp(0.0, 255.0) as u8);
                out.push(self.b.get(x, y).round().clamp(0.0, 255.0) as u8);
            }
        }
        out
    }

    /// Unpacks from interleaved 8-bit RGB bytes.
    ///
    /// # Errors
    /// Returns [`FrameError::BufferSizeMismatch`] if `bytes.len() != 3*w*h`.
    pub fn from_interleaved_u8(
        width: usize,
        height: usize,
        bytes: &[u8],
    ) -> Result<Self, FrameError> {
        if bytes.len() != width * height * 3 {
            return Err(FrameError::BufferSizeMismatch {
                expected: width * height * 3,
                actual: bytes.len(),
            });
        }
        let mut r = Vec::with_capacity(width * height);
        let mut g = Vec::with_capacity(width * height);
        let mut b = Vec::with_capacity(width * height);
        for px in bytes.chunks_exact(3) {
            r.push(px[0] as f32);
            g.push(px[1] as f32);
            b.push(px[2] as f32);
        }
        Ok(Self {
            r: Plane::from_vec(width, height, r)?,
            g: Plane::from_vec(width, height, g)?,
            b: Plane::from_vec(width, height, b)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_frame_has_equal_channels() {
        let f = RgbFrame::gray(4, 3, 127.0);
        assert_eq!(f.r, f.g);
        assert_eq!(f.g, f.b);
        assert_eq!(f.shape(), (4, 3));
    }

    #[test]
    fn from_planes_rejects_mismatched_shapes() {
        let a = Plane::filled(4, 3, 0.0);
        let b = Plane::filled(4, 3, 0.0);
        let c = Plane::filled(3, 4, 0.0);
        assert!(RgbFrame::from_planes(a, b, c).is_err());
    }

    #[test]
    fn luma_of_gray_equals_gray_level() {
        let f = RgbFrame::gray(2, 2, 180.0);
        let l = f.luma();
        for &v in l.samples() {
            assert!((v - 180.0).abs() < 1e-3);
        }
    }

    #[test]
    fn interleave_roundtrip() {
        let bytes: Vec<u8> = (0..2 * 2 * 3).map(|i| (i * 17) as u8).collect();
        let f = RgbFrame::from_interleaved_u8(2, 2, &bytes).unwrap();
        assert_eq!(f.to_interleaved_u8(), bytes);
    }

    #[test]
    fn interleave_rejects_bad_length() {
        assert!(RgbFrame::from_interleaved_u8(2, 2, &[0u8; 11]).is_err());
    }

    #[test]
    fn clamp_code_range_clamps_all_channels() {
        let mut f = RgbFrame::solid(2, 2, [-5.0, 128.0, 300.0]);
        f.clamp_code_range();
        assert_eq!(f.r.get(0, 0), 0.0);
        assert_eq!(f.g.get(0, 0), 128.0);
        assert_eq!(f.b.get(0, 0), 255.0);
    }
}
