//! Error type shared by the frame primitives.

use std::fmt;

/// Errors raised by frame construction, indexing, geometry and I/O.
#[derive(Debug)]
pub enum FrameError {
    /// A plane or frame was requested with a zero dimension.
    EmptyDimensions {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// A buffer handed to a constructor does not match `width * height`.
    BufferSizeMismatch {
        /// Expected element count (`width * height`).
        expected: usize,
        /// Actual element count supplied.
        actual: usize,
    },
    /// Two operands of a pixelwise operation have different shapes.
    ShapeMismatch {
        /// Shape of the left operand `(width, height)`.
        left: (usize, usize),
        /// Shape of the right operand `(width, height)`.
        right: (usize, usize),
    },
    /// A rectangular region does not fit inside the plane.
    RegionOutOfBounds {
        /// Region origin x.
        x: usize,
        /// Region origin y.
        y: usize,
        /// Region width.
        width: usize,
        /// Region height.
        height: usize,
        /// Plane shape `(width, height)`.
        plane: (usize, usize),
    },
    /// A geometric transform could not be computed (e.g. degenerate
    /// homography correspondences).
    DegenerateTransform(&'static str),
    /// An image file could not be parsed.
    Parse(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::EmptyDimensions { width, height } => {
                write!(f, "plane dimensions must be nonzero, got {width}x{height}")
            }
            FrameError::BufferSizeMismatch { expected, actual } => {
                write!(f, "buffer has {actual} samples, expected {expected}")
            }
            FrameError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            FrameError::RegionOutOfBounds {
                x,
                y,
                width,
                height,
                plane,
            } => write!(
                f,
                "region {width}x{height}+{x}+{y} exceeds plane {}x{}",
                plane.0, plane.1
            ),
            FrameError::DegenerateTransform(what) => {
                write!(f, "degenerate transform: {what}")
            }
            FrameError::Parse(msg) => write!(f, "parse error: {msg}"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_human_readable() {
        let e = FrameError::EmptyDimensions {
            width: 0,
            height: 7,
        };
        assert!(e.to_string().contains("0x7"));
        let e = FrameError::ShapeMismatch {
            left: (4, 3),
            right: (2, 1),
        };
        assert!(e.to_string().contains("4x3"));
        assert!(e.to_string().contains("2x1"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = FrameError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
