//! Two-dimensional sample buffers.
//!
//! A [`Plane`] is the fundamental storage type of the reproduction: a dense,
//! row-major 2-D array of scalar samples. Video frames, data frames,
//! emitted-light fields and captured sensor images are all planes (or small
//! stacks of planes).

use crate::FrameError;
use serde::{Deserialize, Serialize};

/// Sample types that can live inside a [`Plane`].
///
/// The trait is deliberately tiny: just what the image code needs, so new
/// sample types (e.g. `i16` residuals) can opt in cheaply.
pub trait Sample: Copy + Clone + PartialEq + PartialOrd + Default + 'static {
    /// Lossy conversion to `f32` (used by metrics and filters).
    fn to_f32(self) -> f32;
    /// Lossy conversion from `f32`, clamping to the representable range.
    fn from_f32(v: f32) -> Self;
}

impl Sample for u8 {
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn from_f32(v: f32) -> Self {
        v.round().clamp(0.0, 255.0) as u8
    }
}

impl Sample for f32 {
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn from_f32(v: f32) -> Self {
        v
    }
}

impl Sample for i16 {
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn from_f32(v: f32) -> Self {
        v.round().clamp(i16::MIN as f32, i16::MAX as f32) as i16
    }
}

impl Sample for f64 {
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn from_f32(v: f32) -> Self {
        v as f64
    }
}

/// A dense, row-major 2-D buffer of samples.
///
/// Indexing is `(x, y)` with `x` the column (0 at the left) and `y` the row
/// (0 at the top), matching the paper's screen-space convention.
///
/// ```
/// use inframe_frame::Plane;
/// let mut p = Plane::<f32>::filled(4, 3, 127.0);
/// p.put(2, 1, 140.0);
/// assert_eq!(p.get(2, 1), 140.0);
/// assert_eq!(p.width(), 4);
/// assert_eq!(p.height(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plane<T: Sample> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Sample> Plane<T> {
    /// Creates a plane filled with `T::default()` (zero for all built-in
    /// sample types).
    ///
    /// # Errors
    /// Returns [`FrameError::EmptyDimensions`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, FrameError> {
        if width == 0 || height == 0 {
            return Err(FrameError::EmptyDimensions { width, height });
        }
        Ok(Self {
            width,
            height,
            data: vec![T::default(); width * height],
        })
    }

    /// Creates a plane filled with a constant value.
    ///
    /// # Panics
    /// Panics if either dimension is zero; use [`Plane::new`] for the
    /// fallible path. The infallible constructor keeps generator code terse.
    pub fn filled(width: usize, height: usize, value: T) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    /// Returns [`FrameError::BufferSizeMismatch`] if `data.len() != width *
    /// height`, or [`FrameError::EmptyDimensions`] for zero dimensions.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Result<Self, FrameError> {
        if width == 0 || height == 0 {
            return Err(FrameError::EmptyDimensions { width, height });
        }
        if data.len() != width * height {
            return Err(FrameError::BufferSizeMismatch {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Builds a plane by evaluating `f(x, y)` at every sample position.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Plane width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair, handy for shape checks.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: planes cannot be constructed empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reads the sample at `(x, y)`.
    ///
    /// # Panics
    /// Panics (in debug and release) if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(
            x < self.width && y < self.height,
            "plane index out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Reads the sample at `(x, y)` or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: usize, y: usize) -> Option<T> {
        if x < self.width && y < self.height {
            Some(self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Reads the sample at the clamped coordinate — out-of-range coordinates
    /// are clamped to the border (replicate padding), the convention used by
    /// all spatial filters in this workspace.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> T {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Writes the sample at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn put(&mut self, x: usize, y: usize, v: T) {
        assert!(
            x < self.width && y < self.height,
            "plane index out of bounds"
        );
        self.data[y * self.width + x] = v;
    }

    /// Immutable view of a row.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row index out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutable view of a row.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        assert!(y < self.height, "row index out of bounds");
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// The raw row-major sample buffer.
    #[inline]
    pub fn samples(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the raw row-major sample buffer.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the plane and returns its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` to every sample in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new plane with `f` applied to every sample.
    pub fn map<U: Sample>(&self, mut f: impl FnMut(T) -> U) -> Plane<U> {
        Plane {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Converts sample type via [`Sample::to_f32`] / [`Sample::from_f32`].
    pub fn convert<U: Sample>(&self) -> Plane<U> {
        self.map(|v| U::from_f32(v.to_f32()))
    }

    /// Copies a rectangular region into a new plane.
    ///
    /// # Errors
    /// Returns [`FrameError::RegionOutOfBounds`] if the region does not fit.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Result<Plane<T>, FrameError> {
        if w == 0 || h == 0 {
            return Err(FrameError::EmptyDimensions {
                width: w,
                height: h,
            });
        }
        if x + w > self.width || y + h > self.height {
            return Err(FrameError::RegionOutOfBounds {
                x,
                y,
                width: w,
                height: h,
                plane: self.shape(),
            });
        }
        let mut out = Vec::with_capacity(w * h);
        for yy in y..y + h {
            out.extend_from_slice(&self.data[yy * self.width + x..yy * self.width + x + w]);
        }
        Plane::from_vec(w, h, out)
    }

    /// Blits `src` into this plane with its top-left corner at `(x, y)`.
    ///
    /// # Errors
    /// Returns [`FrameError::RegionOutOfBounds`] if `src` does not fit.
    pub fn blit(&mut self, src: &Plane<T>, x: usize, y: usize) -> Result<(), FrameError> {
        if x + src.width > self.width || y + src.height > self.height {
            return Err(FrameError::RegionOutOfBounds {
                x,
                y,
                width: src.width,
                height: src.height,
                plane: self.shape(),
            });
        }
        for sy in 0..src.height {
            let dst_off = (y + sy) * self.width + x;
            self.data[dst_off..dst_off + src.width].copy_from_slice(src.row(sy));
        }
        Ok(())
    }

    /// Splits the plane into up to `bands` horizontal bands of contiguous
    /// rows, returning each band's row range together with its mutable
    /// sample slice. The partition is the deterministic one produced by
    /// [`band_rows`], so the same `(height, bands)` always yields the same
    /// boundaries — the property the parallel renderer relies on for
    /// bit-identical output at any worker count.
    pub fn bands_mut(&mut self, bands: usize) -> Vec<(std::ops::Range<usize>, &mut [T])> {
        let ranges = band_rows(self.height, bands);
        let width = self.width;
        let mut rest: &mut [T] = &mut self.data;
        let mut out = Vec::with_capacity(ranges.len());
        for r in ranges {
            let (band, tail) = rest.split_at_mut((r.end - r.start) * width);
            rest = tail;
            out.push((r, band));
        }
        out
    }

    /// Iterates over `(x, y, value)` triples in row-major order.
    pub fn iter_xy(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i % w, i / w, v))
    }

    /// Minimum sample value (by `PartialOrd`; NaNs are skipped for floats).
    pub fn min_sample(&self) -> T {
        let mut best = self.data[0];
        for &v in &self.data[1..] {
            if v < best {
                best = v;
            }
        }
        best
    }

    /// Maximum sample value (by `PartialOrd`; NaNs are skipped for floats).
    pub fn max_sample(&self) -> T {
        let mut best = self.data[0];
        for &v in &self.data[1..] {
            if v > best {
                best = v;
            }
        }
        best
    }

    /// Arithmetic mean of all samples as `f64`.
    pub fn mean(&self) -> f64 {
        let sum: f64 = self.data.iter().map(|v| v.to_f32() as f64).sum();
        sum / self.data.len() as f64
    }

    /// Population variance of all samples as `f64`.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        let ss: f64 = self
            .data
            .iter()
            .map(|v| {
                let d = v.to_f32() as f64 - mean;
                d * d
            })
            .sum();
        ss / self.data.len() as f64
    }
}

/// The canonical band partition: `height` rows into at most `bands`
/// contiguous ranges. The first `height % bands` bands are one row taller;
/// empty bands (when `bands > height`) are omitted. Deterministic in its
/// inputs — banded renderers depend on this to merge worker output in a
/// fixed order.
pub fn band_rows(height: usize, bands: usize) -> Vec<std::ops::Range<usize>> {
    assert!(bands >= 1, "at least one band required");
    let base = height / bands;
    let extra = height % bands;
    let mut out = Vec::with_capacity(bands.min(height));
    let mut y = 0;
    for i in 0..bands {
        let h = base + usize::from(i < extra);
        if h == 0 {
            break;
        }
        out.push(y..y + h);
        y += h;
    }
    out
}

impl Plane<f32> {
    /// Clamps every sample into `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }

    /// Quantizes to 8-bit code values (round + clamp to `[0, 255]`).
    pub fn quantize_u8(&self) -> Plane<u8> {
        self.map(u8::from_f32)
    }
}

impl Plane<u8> {
    /// Promotes to `f32` code values.
    pub fn to_f32(&self) -> Plane<f32> {
        self.map(|v| v as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_zero_dims() {
        assert!(Plane::<u8>::new(0, 4).is_err());
        assert!(Plane::<u8>::new(4, 0).is_err());
        assert!(Plane::<u8>::new(4, 4).is_ok());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Plane::from_vec(2, 2, vec![0u8; 3]).is_err());
        assert!(Plane::from_vec(2, 2, vec![0u8; 4]).is_ok());
    }

    #[test]
    fn get_put_roundtrip() {
        let mut p = Plane::<f32>::filled(3, 2, 0.0);
        p.put(2, 1, 9.5);
        assert_eq!(p.get(2, 1), 9.5);
        assert_eq!(p.try_get(3, 0), None);
        assert_eq!(p.try_get(0, 0), Some(0.0));
    }

    #[test]
    fn clamped_access_replicates_border() {
        let p = Plane::from_fn(3, 3, |x, y| (y * 3 + x) as f32);
        assert_eq!(p.get_clamped(-5, -5), 0.0);
        assert_eq!(p.get_clamped(10, 10), 8.0);
        assert_eq!(p.get_clamped(-1, 2), 6.0);
    }

    #[test]
    fn crop_and_blit_are_inverses_on_region() {
        let p = Plane::from_fn(6, 5, |x, y| (y * 6 + x) as i16);
        let c = p.crop(2, 1, 3, 3).unwrap();
        assert_eq!(c.get(0, 0), p.get(2, 1));
        let mut q = Plane::<i16>::filled(6, 5, -1);
        q.blit(&c, 2, 1).unwrap();
        assert_eq!(q.get(4, 3), p.get(4, 3));
        assert_eq!(q.get(0, 0), -1);
    }

    #[test]
    fn crop_out_of_bounds_errors() {
        let p = Plane::<u8>::filled(4, 4, 0);
        assert!(p.crop(3, 3, 2, 2).is_err());
        assert!(p.crop(0, 0, 0, 1).is_err());
    }

    #[test]
    fn blit_out_of_bounds_errors() {
        let mut p = Plane::<u8>::filled(4, 4, 0);
        let s = Plane::<u8>::filled(3, 3, 1);
        assert!(p.blit(&s, 2, 2).is_err());
    }

    #[test]
    fn statistics_match_hand_computation() {
        let p = Plane::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]).unwrap();
        assert!((p.mean() - 2.5).abs() < 1e-12);
        assert!((p.variance() - 1.25).abs() < 1e-12);
        assert_eq!(p.min_sample(), 1.0);
        assert_eq!(p.max_sample(), 4.0);
    }

    #[test]
    fn quantize_clamps_and_rounds() {
        let p = Plane::from_vec(3, 1, vec![-4.0f32, 127.5, 300.0]).unwrap();
        let q = p.quantize_u8();
        assert_eq!(q.samples(), &[0, 128, 255]);
    }

    #[test]
    fn sample_conversions_clamp() {
        assert_eq!(u8::from_f32(-1.0), 0);
        assert_eq!(u8::from_f32(256.0), 255);
        assert_eq!(i16::from_f32(1e9), i16::MAX);
        assert_eq!(i16::from_f32(-1e9), i16::MIN);
    }

    #[test]
    fn iter_xy_visits_all_in_row_major_order() {
        let p = Plane::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        let v: Vec<_> = p.iter_xy().collect();
        assert_eq!(v[0], (0, 0, 0));
        assert_eq!(v[3], (0, 1, 10));
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn band_rows_partition_is_exact_and_balanced() {
        for (h, n) in [(10usize, 3usize), (7, 7), (5, 8), (1080, 4), (2, 1)] {
            let bands = band_rows(h, n);
            assert!(bands.len() <= n);
            assert_eq!(bands.first().map(|r| r.start), Some(0));
            assert_eq!(bands.last().map(|r| r.end), Some(h));
            for pair in bands.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "bands must be contiguous");
            }
            let max = bands.iter().map(|r| r.len()).max().unwrap();
            let min = bands.iter().map(|r| r.len()).min().unwrap();
            assert!(max - min <= 1, "bands must differ by at most one row");
        }
    }

    #[test]
    fn bands_mut_covers_all_rows_disjointly() {
        let mut p = Plane::from_fn(5, 11, |x, y| (y * 5 + x) as f32);
        let reference = p.clone();
        for (range, slice) in p.bands_mut(3) {
            assert_eq!(slice.len(), range.len() * 5);
            for (i, v) in slice.iter().enumerate() {
                let y = range.start + i / 5;
                let x = i % 5;
                assert_eq!(*v, reference.get(x, y));
            }
        }
    }

    proptest! {
        #[test]
        fn crop_contents_match_source(
            w in 1usize..16, h in 1usize..16,
            cx in 0usize..8, cy in 0usize..8,
            cw in 1usize..8, ch in 1usize..8,
        ) {
            let p = Plane::from_fn(w, h, |x, y| (x * 31 + y * 7) as f32);
            match p.crop(cx, cy, cw, ch) {
                Ok(c) => {
                    prop_assert!(cx + cw <= w && cy + ch <= h);
                    for (x, y, v) in c.iter_xy() {
                        prop_assert_eq!(v, p.get(cx + x, cy + y));
                    }
                }
                Err(_) => prop_assert!(cx + cw > w || cy + ch > h),
            }
        }

        #[test]
        fn convert_u8_f32_roundtrip(data in proptest::collection::vec(any::<u8>(), 12)) {
            let p = Plane::from_vec(4, 3, data.clone()).unwrap();
            let rt: Plane<u8> = p.to_f32().quantize_u8();
            prop_assert_eq!(rt.samples(), &data[..]);
        }
    }
}
