//! Planar geometry: homographies and bilinear warps.
//!
//! The camera simulator views the screen from an arbitrary pose; the mapping
//! from screen plane to sensor plane is a homography. The receiver inverts
//! the (known or estimated) homography to register captured frames before
//! block decoding, mirroring the registration step every screen-camera
//! system performs.

use crate::plane::Plane;
use crate::FrameError;
use serde::{Deserialize, Serialize};

/// A 3×3 projective transform acting on 2-D points (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Homography {
    /// Row-major 3×3 matrix entries.
    pub m: [[f64; 3]; 3],
}

impl Homography {
    /// The identity transform.
    pub fn identity() -> Self {
        Self {
            m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Pure translation.
    pub fn translation(tx: f64, ty: f64) -> Self {
        Self {
            m: [[1.0, 0.0, tx], [0.0, 1.0, ty], [0.0, 0.0, 1.0]],
        }
    }

    /// Uniform or anisotropic scaling about the origin.
    pub fn scale(sx: f64, sy: f64) -> Self {
        Self {
            m: [[sx, 0.0, 0.0], [0.0, sy, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Rotation about the origin by `theta` radians.
    pub fn rotation(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self {
            m: [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Matrix product `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Homography) -> Homography {
        let mut out = [[0.0f64; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[i][k] * other.m[k][j]).sum();
            }
        }
        Homography { m: out }
    }

    /// Applies the transform to a point, performing the projective divide.
    ///
    /// Returns `None` if the point maps to infinity (w ≈ 0).
    pub fn apply(&self, x: f64, y: f64) -> Option<(f64, f64)> {
        let xp = self.m[0][0] * x + self.m[0][1] * y + self.m[0][2];
        let yp = self.m[1][0] * x + self.m[1][1] * y + self.m[1][2];
        let w = self.m[2][0] * x + self.m[2][1] * y + self.m[2][2];
        if w.abs() < 1e-12 {
            None
        } else {
            Some((xp / w, yp / w))
        }
    }

    /// Inverse transform via the adjugate matrix.
    ///
    /// # Errors
    /// Returns [`FrameError::DegenerateTransform`] if the matrix is singular.
    pub fn inverse(&self) -> Result<Homography, FrameError> {
        let m = &self.m;
        let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
        if det.abs() < 1e-14 {
            return Err(FrameError::DegenerateTransform("singular homography"));
        }
        let inv_det = 1.0 / det;
        let adj = [
            [
                m[1][1] * m[2][2] - m[1][2] * m[2][1],
                m[0][2] * m[2][1] - m[0][1] * m[2][2],
                m[0][1] * m[1][2] - m[0][2] * m[1][1],
            ],
            [
                m[1][2] * m[2][0] - m[1][0] * m[2][2],
                m[0][0] * m[2][2] - m[0][2] * m[2][0],
                m[0][2] * m[1][0] - m[0][0] * m[1][2],
            ],
            [
                m[1][0] * m[2][1] - m[1][1] * m[2][0],
                m[0][1] * m[2][0] - m[0][0] * m[2][1],
                m[0][0] * m[1][1] - m[0][1] * m[1][0],
            ],
        ];
        let mut out = [[0.0f64; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                out[i][j] = adj[i][j] * inv_det;
            }
        }
        Ok(Homography { m: out })
    }

    /// Computes the homography mapping the unit square `(0,0) (1,0) (1,1)
    /// (0,1)` to four destination points (in that order).
    ///
    /// This is the classical projective mapping construction; composing two
    /// of these yields a general 4-point correspondence.
    ///
    /// # Errors
    /// Returns [`FrameError::DegenerateTransform`] if the quadrilateral is
    /// degenerate (three collinear points).
    pub fn unit_square_to_quad(q: [(f64, f64); 4]) -> Result<Homography, FrameError> {
        let (x0, y0) = q[0];
        let (x1, y1) = q[1];
        let (x2, y2) = q[2];
        let (x3, y3) = q[3];
        let dx1 = x1 - x2;
        let dx2 = x3 - x2;
        let dy1 = y1 - y2;
        let dy2 = y3 - y2;
        let sx = x0 - x1 + x2 - x3;
        let sy = y0 - y1 + y2 - y3;
        let den = dx1 * dy2 - dx2 * dy1;
        if den.abs() < 1e-12 {
            return Err(FrameError::DegenerateTransform("collinear quad points"));
        }
        let g = (sx * dy2 - sy * dx2) / den;
        let h = (dx1 * sy - dy1 * sx) / den;
        let a = x1 - x0 + g * x1;
        let b = x3 - x0 + h * x3;
        let c = x0;
        let d = y1 - y0 + g * y1;
        let e = y3 - y0 + h * y3;
        let f = y0;
        Ok(Homography {
            m: [[a, b, c], [d, e, f], [g, h, 1.0]],
        })
    }

    /// Computes the homography taking quadrilateral `src` to quadrilateral
    /// `dst` (four corresponding corners each).
    ///
    /// # Errors
    /// Returns [`FrameError::DegenerateTransform`] for degenerate inputs.
    pub fn quad_to_quad(
        src: [(f64, f64); 4],
        dst: [(f64, f64); 4],
    ) -> Result<Homography, FrameError> {
        let to_src = Homography::unit_square_to_quad(src)?;
        let to_dst = Homography::unit_square_to_quad(dst)?;
        Ok(to_dst.compose(&to_src.inverse()?))
    }
}

/// Samples a plane at a fractional coordinate with bilinear interpolation and
/// replicate borders.
pub fn sample_bilinear(src: &Plane<f32>, x: f64, y: f64) -> f32 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = (x - x0) as f32;
    let fy = (y - y0) as f32;
    let xi = x0 as isize;
    let yi = y0 as isize;
    let v00 = src.get_clamped(xi, yi);
    let v10 = src.get_clamped(xi + 1, yi);
    let v01 = src.get_clamped(xi, yi + 1);
    let v11 = src.get_clamped(xi + 1, yi + 1);
    let top = v00 + fx * (v10 - v00);
    let bot = v01 + fx * (v11 - v01);
    top + fy * (bot - top)
}

/// Warps `src` through the **inverse** mapping: for each destination pixel,
/// `inv` maps destination coordinates to source coordinates, which are then
/// bilinearly sampled. Destination pixels whose source falls outside `src`
/// (beyond `margin` pixels) receive `fill`.
pub fn warp_inverse(
    src: &Plane<f32>,
    inv: &Homography,
    dst_w: usize,
    dst_h: usize,
    fill: f32,
) -> Plane<f32> {
    let (sw, sh) = src.shape();
    Plane::from_fn(dst_w, dst_h, |x, y| {
        match inv.apply(x as f64 + 0.5, y as f64 + 0.5) {
            Some((sx, sy)) => {
                let sx = sx - 0.5;
                let sy = sy - 0.5;
                if sx < -1.0 || sy < -1.0 || sx > sw as f64 || sy > sh as f64 {
                    fill
                } else {
                    sample_bilinear(src, sx, sy)
                }
            }
            None => fill,
        }
    })
}

/// Warps `src` through the **forward** homography `h` (destination = h ·
/// source) by inverting it once and delegating to [`warp_inverse`].
///
/// # Errors
/// Returns [`FrameError::DegenerateTransform`] if `h` is singular.
pub fn warp_forward(
    src: &Plane<f32>,
    h: &Homography,
    dst_w: usize,
    dst_h: usize,
    fill: f32,
) -> Result<Plane<f32>, FrameError> {
    Ok(warp_inverse(src, &h.inverse()?, dst_w, dst_h, fill))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_maps_points_to_themselves() {
        let h = Homography::identity();
        assert_eq!(h.apply(3.5, -2.0), Some((3.5, -2.0)));
    }

    #[test]
    fn translation_and_inverse() {
        let h = Homography::translation(5.0, -3.0);
        let (x, y) = h.apply(1.0, 1.0).unwrap();
        assert_eq!((x, y), (6.0, -2.0));
        let hi = h.inverse().unwrap();
        let (x, y) = hi.apply(6.0, -2.0).unwrap();
        assert!((x - 1.0).abs() < 1e-12 && (y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compose_applies_right_operand_first() {
        let t = Homography::translation(1.0, 0.0);
        let s = Homography::scale(2.0, 2.0);
        // scale ∘ translate: translate first, then scale.
        let st = s.compose(&t);
        assert_eq!(st.apply(0.0, 0.0), Some((2.0, 0.0)));
        // translate ∘ scale: scale first, then translate.
        let ts = t.compose(&s);
        assert_eq!(ts.apply(0.0, 0.0), Some((1.0, 0.0)));
    }

    #[test]
    fn unit_square_to_axis_aligned_rect() {
        let h = Homography::unit_square_to_quad([
            (10.0, 20.0),
            (30.0, 20.0),
            (30.0, 60.0),
            (10.0, 60.0),
        ])
        .unwrap();
        let (x, y) = h.apply(0.5, 0.5).unwrap();
        assert!((x - 20.0).abs() < 1e-9);
        assert!((y - 40.0).abs() < 1e-9);
    }

    #[test]
    fn quad_to_quad_maps_corners_exactly() {
        let src = [(0.0, 0.0), (100.0, 0.0), (100.0, 50.0), (0.0, 50.0)];
        let dst = [(3.0, 7.0), (90.0, 12.0), (95.0, 55.0), (-2.0, 48.0)];
        let h = Homography::quad_to_quad(src, dst).unwrap();
        for i in 0..4 {
            let (x, y) = h.apply(src[i].0, src[i].1).unwrap();
            assert!((x - dst[i].0).abs() < 1e-6, "corner {i} x");
            assert!((y - dst[i].1).abs() < 1e-6, "corner {i} y");
        }
    }

    #[test]
    fn degenerate_quad_is_rejected() {
        // All four points on one line.
        let r = Homography::unit_square_to_quad([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn bilinear_interpolates_midpoints() {
        let p = Plane::from_vec(2, 2, vec![0.0f32, 10.0, 20.0, 30.0]).unwrap();
        assert!((sample_bilinear(&p, 0.5, 0.0) - 5.0).abs() < 1e-5);
        assert!((sample_bilinear(&p, 0.0, 0.5) - 10.0).abs() < 1e-5);
        assert!((sample_bilinear(&p, 0.5, 0.5) - 15.0).abs() < 1e-5);
    }

    #[test]
    fn identity_warp_preserves_image() {
        let p = Plane::from_fn(8, 6, |x, y| (x * 10 + y) as f32);
        let w = warp_inverse(&p, &Homography::identity(), 8, 6, 0.0);
        for (x, y, v) in w.iter_xy() {
            assert!((v - p.get(x, y)).abs() < 1e-4, "({x},{y})");
        }
    }

    #[test]
    fn out_of_bounds_gets_fill_value() {
        let p = Plane::filled(4, 4, 100.0);
        let inv = Homography::translation(100.0, 100.0);
        let w = warp_inverse(&p, &inv, 4, 4, -7.0);
        assert!(w.samples().iter().all(|&v| v == -7.0));
    }

    proptest! {
        #[test]
        fn inverse_roundtrips_points(
            tx in -20.0f64..20.0, ty in -20.0f64..20.0,
            th in -1.0f64..1.0, s in 0.5f64..2.0,
            px in -50.0f64..50.0, py in -50.0f64..50.0,
        ) {
            let h = Homography::translation(tx, ty)
                .compose(&Homography::rotation(th))
                .compose(&Homography::scale(s, s));
            let hi = h.inverse().unwrap();
            let (qx, qy) = h.apply(px, py).unwrap();
            let (rx, ry) = hi.apply(qx, qy).unwrap();
            prop_assert!((rx - px).abs() < 1e-6);
            prop_assert!((ry - py).abs() < 1e-6);
        }
    }
}
