//! Minimal Netpbm (PGM/PPM) reading and writing.
//!
//! Examples use these to emit viewable artifacts — e.g. the Figure 4
//! complementary frame pairs — without pulling an image crate into the
//! workspace. Only the binary variants (`P5`, `P6`) with 8-bit depth are
//! supported, which is all the reproduction needs.

use crate::plane::Plane;
use crate::rgb::RgbFrame;
use crate::{FrameError, Result};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Writes a grayscale plane as binary PGM (`P5`).
///
/// Samples are rounded and clamped to `[0, 255]`.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_pgm(path: impl AsRef<Path>, plane: &Plane<f32>) -> Result<()> {
    let mut f = std::fs::File::create(path)?;
    write_pgm_to(&mut f, plane)
}

/// Writes a grayscale plane as binary PGM to any writer.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_pgm_to(w: &mut impl Write, plane: &Plane<f32>) -> Result<()> {
    writeln!(w, "P5\n{} {}\n255", plane.width(), plane.height())?;
    let bytes: Vec<u8> = plane
        .samples()
        .iter()
        .map(|&v| v.round().clamp(0.0, 255.0) as u8)
        .collect();
    w.write_all(&bytes)?;
    Ok(())
}

/// Writes an RGB frame as binary PPM (`P6`).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_ppm(path: impl AsRef<Path>, frame: &RgbFrame) -> Result<()> {
    let mut f = std::fs::File::create(path)?;
    write_ppm_to(&mut f, frame)
}

/// Writes an RGB frame as binary PPM to any writer.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_ppm_to(w: &mut impl Write, frame: &RgbFrame) -> Result<()> {
    writeln!(w, "P6\n{} {}\n255", frame.width(), frame.height())?;
    w.write_all(&frame.to_interleaved_u8())?;
    Ok(())
}

/// Reads a binary PGM (`P5`) into an `f32` plane.
///
/// # Errors
/// Returns [`FrameError::Parse`] on malformed headers or truncated data.
pub fn read_pgm(path: impl AsRef<Path>) -> Result<Plane<f32>> {
    let f = std::fs::File::open(path)?;
    read_pgm_from(&mut BufReader::new(f))
}

/// Reads a binary PGM from any reader.
///
/// # Errors
/// Returns [`FrameError::Parse`] on malformed headers or truncated data.
pub fn read_pgm_from(r: &mut impl BufRead) -> Result<Plane<f32>> {
    let (magic, w, h, maxval) = read_header(r)?;
    if magic != "P5" {
        return Err(FrameError::Parse(format!("expected P5, got {magic}")));
    }
    if maxval != 255 {
        return Err(FrameError::Parse(format!("unsupported maxval {maxval}")));
    }
    let mut data = vec![0u8; w * h];
    r.read_exact(&mut data)
        .map_err(|e| FrameError::Parse(format!("truncated pixel data: {e}")))?;
    Plane::from_vec(w, h, data.into_iter().map(|b| b as f32).collect())
}

/// Reads a binary PPM (`P6`) into an [`RgbFrame`].
///
/// # Errors
/// Returns [`FrameError::Parse`] on malformed headers or truncated data.
pub fn read_ppm(path: impl AsRef<Path>) -> Result<RgbFrame> {
    let f = std::fs::File::open(path)?;
    read_ppm_from(&mut BufReader::new(f))
}

/// Reads a binary PPM from any reader.
///
/// # Errors
/// Returns [`FrameError::Parse`] on malformed headers or truncated data.
pub fn read_ppm_from(r: &mut impl BufRead) -> Result<RgbFrame> {
    let (magic, w, h, maxval) = read_header(r)?;
    if magic != "P6" {
        return Err(FrameError::Parse(format!("expected P6, got {magic}")));
    }
    if maxval != 255 {
        return Err(FrameError::Parse(format!("unsupported maxval {maxval}")));
    }
    let mut data = vec![0u8; w * h * 3];
    r.read_exact(&mut data)
        .map_err(|e| FrameError::Parse(format!("truncated pixel data: {e}")))?;
    RgbFrame::from_interleaved_u8(w, h, &data)
}

/// Parses a Netpbm header: magic, width, height, maxval. Handles `#`
/// comments and arbitrary whitespace, consuming exactly one whitespace byte
/// after maxval (per the spec).
fn read_header(r: &mut impl BufRead) -> Result<(String, usize, usize, u32)> {
    let magic = next_token(r)?;
    let w: usize = next_token(r)?
        .parse()
        .map_err(|_| FrameError::Parse("bad width".into()))?;
    let h: usize = next_token(r)?
        .parse()
        .map_err(|_| FrameError::Parse("bad height".into()))?;
    let maxval: u32 = next_token(r)?
        .parse()
        .map_err(|_| FrameError::Parse("bad maxval".into()))?;
    Ok((magic, w, h, maxval))
}

/// Reads the next whitespace-delimited token, skipping `#` comment lines.
fn next_token(r: &mut impl BufRead) -> Result<String> {
    let mut tok = String::new();
    let mut in_comment = false;
    loop {
        let mut byte = [0u8; 1];
        if r.read(&mut byte)? == 0 {
            if tok.is_empty() {
                return Err(FrameError::Parse("unexpected end of header".into()));
            }
            return Ok(tok);
        }
        let c = byte[0] as char;
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if c == '#' {
            in_comment = true;
            continue;
        }
        if c.is_ascii_whitespace() {
            if !tok.is_empty() {
                return Ok(tok);
            }
            continue;
        }
        tok.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn pgm_roundtrip_in_memory() {
        let p = Plane::from_fn(7, 5, |x, y| ((x * 40 + y * 9) % 256) as f32);
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &p).unwrap();
        let q = read_pgm_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn ppm_roundtrip_in_memory() {
        let f = RgbFrame::from_interleaved_u8(
            3,
            2,
            &(0..18).map(|i| (i * 13) as u8).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_ppm_to(&mut buf, &f).unwrap();
        let g = read_ppm_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn header_comments_are_skipped() {
        let data = b"P5\n# a comment\n2 1\n# another\n255\n\x10\x20";
        let p = read_pgm_from(&mut Cursor::new(&data[..])).unwrap();
        assert_eq!(p.samples(), &[16.0, 32.0]);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let data = b"P4\n2 1\n255\n\x00\x00";
        assert!(read_pgm_from(&mut Cursor::new(&data[..])).is_err());
    }

    #[test]
    fn truncated_data_is_rejected() {
        let data = b"P5\n4 4\n255\n\x00";
        assert!(read_pgm_from(&mut Cursor::new(&data[..])).is_err());
    }

    #[test]
    fn non_255_maxval_is_rejected() {
        let data = b"P5\n1 1\n65535\n\x00\x00";
        assert!(read_pgm_from(&mut Cursor::new(&data[..])).is_err());
    }

    #[test]
    fn values_clamp_on_write() {
        let p = Plane::from_vec(2, 1, vec![-10.0f32, 300.0]).unwrap();
        let mut buf = Vec::new();
        write_pgm_to(&mut buf, &p).unwrap();
        let q = read_pgm_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(q.samples(), &[0.0, 255.0]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("inframe_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let p = Plane::from_fn(4, 4, |x, y| (x + y * 4) as f32);
        write_pgm(&path, &p).unwrap();
        let q = read_pgm(&path).unwrap();
        assert_eq!(p, q);
        std::fs::remove_file(&path).ok();
    }
}
