//! Integral images (summed-area tables) and O(1)-per-pixel box filtering.
//!
//! The receiver box-blurs every capture; the naive separable blur costs
//! O(r) per pixel. A summed-area table gives exact box sums in constant
//! time per pixel regardless of radius — the classic trade used by every
//! real-time vision pipeline. [`box_blur_fast`] is a drop-in equivalent of
//! [`crate::filter::box_blur`] (replicate-border semantics included) used
//! by the performance-sensitive paths and property-tested against the
//! reference implementation.

use crate::plane::Plane;
use crate::qplane::{self, QBlurScratch, QPlane};

/// A summed-area table: `sat[(x, y)]` is the sum of all samples with
/// coordinates `< (x+1, y+1)` (f64 accumulators to keep 1920×1080×255
/// exact).
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width+1) × (height+1)` table with a zero top row and left column.
    sat: Vec<f64>,
}

impl IntegralImage {
    /// Builds the table in one pass.
    pub fn new(src: &Plane<f32>) -> Self {
        let (w, h) = src.shape();
        let stride = w + 1;
        let mut sat = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += src.get(x, y) as f64;
                sat[(y + 1) * stride + (x + 1)] = sat[y * stride + (x + 1)] + row_sum;
            }
        }
        Self {
            width: w,
            height: h,
            sat,
        }
    }

    /// Sum of the inclusive rectangle `[x0, x1] × [y0, y1]` (clamped to
    /// the image).
    pub fn rect_sum(&self, x0: isize, y0: isize, x1: isize, y1: isize) -> f64 {
        let stride = self.width + 1;
        let cx0 = x0.clamp(0, self.width as isize) as usize;
        let cy0 = y0.clamp(0, self.height as isize) as usize;
        let cx1 = (x1 + 1).clamp(0, self.width as isize) as usize;
        let cy1 = (y1 + 1).clamp(0, self.height as isize) as usize;
        if cx1 <= cx0 || cy1 <= cy0 {
            return 0.0;
        }
        self.sat[cy1 * stride + cx1] + self.sat[cy0 * stride + cx0]
            - self.sat[cy0 * stride + cx1]
            - self.sat[cy1 * stride + cx0]
    }
}

/// Paired integer summed-area tables over a Q8.7 [`QPlane`]: one for the
/// raw samples and one for their squares. This is the quantized
/// demodulator's workhorse — per-Block correlation (`Σ hp·t`) and
/// high-pass energy (`Σ hp²`) reduce to a handful of row-segment lookups
/// instead of re-walking every sensor pixel per Block.
///
/// All arithmetic is `i64` and **exact**: `(255·128)² ≈ 1.07e9` per pixel
/// times a 4K sensor (`~8.3e6` pixels) stays below `9e15 ≪ i64::MAX`.
/// Exactness is what keeps quantized block scores bit-identical for every
/// worker partition.
#[derive(Debug, Clone, Default)]
pub struct QIntegral {
    width: usize,
    height: usize,
    /// `(width+1) × (height+1)` raw-sum table, zero top row / left column.
    sum: Vec<i64>,
    /// Same layout for the squared raw samples.
    sq: Vec<i64>,
}

impl QIntegral {
    /// Builds both tables from `src`.
    pub fn new(src: &QPlane) -> Self {
        let mut q = Self::default();
        q.build_into(src);
        q
    }

    /// Rebuilds both tables in place, reusing the buffers (zero
    /// allocations in steady state).
    ///
    /// Only the top padding row is zero-filled on reuse: every interior
    /// entry and the left padding column are overwritten below, so the
    /// `resize(_, 0)` memset (~16 bytes/pixel across both tables) would
    /// be pure wasted bandwidth on the per-capture path.
    pub fn build_into(&mut self, src: &QPlane) {
        let (w, h) = src.shape();
        self.width = w;
        self.height = h;
        let stride = w + 1;
        let needed = stride * (h + 1);
        if self.sum.len() == needed {
            self.sum[..stride].fill(0);
            self.sq[..stride].fill(0);
        } else {
            self.sum.clear();
            self.sum.resize(needed, 0);
            self.sq.clear();
            self.sq.resize(needed, 0);
        }
        for y in 0..h {
            let row = &src.row(y)[..w];
            let (prev_s, cur_s) = self.sum[y * stride..(y + 2) * stride].split_at_mut(stride);
            let (prev_q, cur_q) = self.sq[y * stride..(y + 2) * stride].split_at_mut(stride);
            cur_s[0] = 0;
            cur_q[0] = 0;
            let mut run_s = 0i64;
            let mut run_q = 0i64;
            for x in 0..w {
                let v = row[x] as i64;
                run_s += v;
                run_q += v * v;
                cur_s[x + 1] = prev_s[x + 1] + run_s;
                cur_q[x + 1] = prev_q[x + 1] + run_q;
            }
        }
    }

    /// Builds both tables directly from the high-pass residual
    /// `src − blur_r(src)` without materializing the smoothed or residual
    /// planes.
    ///
    /// Bit-identical to composing [`qplane::sliding_box_blur_into`],
    /// [`qplane::saturating_sub_into`] and [`Self::build_into`] (same
    /// integer operations in the same order — pinned by a test below),
    /// but one fused pass instead of three: the composition writes and
    /// re-reads two full `i16` planes that exist only to feed this build,
    /// which on a 720p capture is ~7 MB of pure memory traffic per frame.
    ///
    /// # Panics
    /// Panics if `src` is empty.
    pub fn build_highpass_into(&mut self, src: &QPlane, r: usize, scratch: &mut QBlurScratch) {
        let (w, h) = src.shape();
        assert!(w > 0 && h > 0, "cannot filter an empty plane");
        self.width = w;
        self.height = h;
        let stride = w + 1;
        let needed = stride * (h + 1);
        if r == 0 {
            // blur(src) == src, so the residual is identically zero.
            self.sum.clear();
            self.sum.resize(needed, 0);
            self.sq.clear();
            self.sq.resize(needed, 0);
            return;
        }
        if self.sum.len() == needed {
            self.sum[..stride].fill(0);
            self.sq[..stride].fill(0);
        } else {
            self.sum.clear();
            self.sum.resize(needed, 0);
            self.sq.clear();
            self.sq.resize(needed, 0);
        }
        qplane::horizontal_window_sums(src, r, &mut scratch.rowsum);
        let area = ((2 * r + 1) * (2 * r + 1)) as i64;
        qplane::init_column_sums(&scratch.rowsum, w, h, r, &mut scratch.col);
        // Each row stages through the [`crate::simd`] fused kernel (the
        // same reciprocal-mean semantics as the sliding blur — its i32
        // row prefixes are exact up to 65 535-px rows, so widening them
        // for the vertical accumulation reproduces the old i64 running
        // sums term for term); huge windows take `div_round` directly,
        // which equals the reciprocal quotient wherever both apply.
        let use_kernel = area <= crate::simd::MAX_MEAN_AREA && w <= 65_535;
        let level = crate::simd::active_level();
        let (rowsum, col, row_s, row_q) = (
            &scratch.rowsum,
            &mut scratch.col,
            &mut scratch.row_s,
            &mut scratch.row_q,
        );
        if use_kernel {
            row_s.clear();
            row_s.resize(stride, 0);
            row_q.clear();
            row_q.resize(stride, 0);
        }
        for y in 0..h {
            let row = &src.row(y)[..w];
            let (prev_s, cur_s) = self.sum[y * stride..(y + 2) * stride].split_at_mut(stride);
            let (prev_q, cur_q) = self.sq[y * stride..(y + 2) * stride].split_at_mut(stride);
            cur_s[0] = 0;
            cur_q[0] = 0;
            if use_kernel {
                crate::simd::highpass_prefix_row(level, row, col, area, row_s, row_q);
                for x in 1..=w {
                    cur_s[x] = prev_s[x] + row_s[x] as i64;
                    cur_q[x] = prev_q[x] + row_q[x];
                }
            } else {
                let mut run_s = 0i64;
                let mut run_q = 0i64;
                for x in 0..w {
                    let mean = qplane::div_round(col[x] as i64, area);
                    let hp = row[x].saturating_sub(mean as i16) as i64;
                    run_s += hp;
                    run_q += hp * hp;
                    cur_s[x + 1] = prev_s[x + 1] + run_s;
                    cur_q[x + 1] = prev_q[x + 1] + run_q;
                }
            }
            if y + 1 < h {
                let enter = &rowsum[(y + 1 + r).min(h - 1) * w..(y + 1 + r).min(h - 1) * w + w];
                let leave = &rowsum[y.saturating_sub(r) * w..y.saturating_sub(r) * w + w];
                for ((c, &e), &l) in col.iter_mut().zip(enter).zip(leave) {
                    *c += e - l;
                }
            }
        }
    }

    /// The source shape the tables were built for.
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Raw-sum over the half-open row segment `[x0, x1)` of row `y`.
    ///
    /// # Panics
    /// Debug-panics when the segment leaves the image.
    #[inline]
    pub fn row_sum(&self, y: usize, x0: usize, x1: usize) -> i64 {
        debug_assert!(y < self.height && x0 <= x1 && x1 <= self.width);
        let stride = self.width + 1;
        let lo = (y + 1) * stride;
        let hi = y * stride;
        (self.sum[lo + x1] - self.sum[lo + x0]) - (self.sum[hi + x1] - self.sum[hi + x0])
    }

    /// Squared-sum over the half-open row segment `[x0, x1)` of row `y`
    /// (units: raw², i.e. Q16.14).
    #[inline]
    pub fn row_sum_sq(&self, y: usize, x0: usize, x1: usize) -> i64 {
        debug_assert!(y < self.height && x0 <= x1 && x1 <= self.width);
        let stride = self.width + 1;
        let lo = (y + 1) * stride;
        let hi = y * stride;
        (self.sq[lo + x1] - self.sq[lo + x0]) - (self.sq[hi + x1] - self.sq[hi + x0])
    }

    /// Raw-sum over the half-open rectangle `[x0, x1) × [y0, y1)`.
    pub fn rect_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 <= x1 && x1 <= self.width && y0 <= y1 && y1 <= self.height);
        let stride = self.width + 1;
        self.sum[y1 * stride + x1] + self.sum[y0 * stride + x0]
            - self.sum[y0 * stride + x1]
            - self.sum[y1 * stride + x0]
    }

    /// Squared-sum over the half-open rectangle `[x0, x1) × [y0, y1)`.
    pub fn rect_sum_sq(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        debug_assert!(x0 <= x1 && x1 <= self.width && y0 <= y1 && y1 <= self.height);
        let stride = self.width + 1;
        self.sq[y1 * stride + x1] + self.sq[y0 * stride + x0]
            - self.sq[y0 * stride + x1]
            - self.sq[y1 * stride + x0]
    }
}

/// Per-row prefix sums (and squared sums) over a Q8.7 plane: the
/// row-segment-only sibling of [`QIntegral`].
///
/// The quantized demodulator consumes nothing but row segments
/// ([`QRowPrefix::row_sum`] / [`QRowPrefix::row_sum_sq`]), so the full
/// summed-area table's vertical accumulation is wasted work — and worse,
/// it makes every row depend on the previous one, forcing a serial
/// build. Dropping it buys two things:
///
/// * **Less traffic**: raw row sums fit `i32` (`w · 255·128` stays exact
///   up to 65 535-pixel rows, asserted in [`QRowPrefix::reshape`]), so
///   the tables shrink from 16 to 12 bytes per pixel and lose the
///   previous-row loads.
/// * **Row parallelism**: rows are independent, so disjoint bands can be
///   built concurrently ([`build_highpass_band`]) — the reference f32
///   blur front end has no such decomposition.
#[derive(Debug, Clone, Default)]
pub struct QRowPrefix {
    width: usize,
    height: usize,
    /// `(width+1)`-stride row prefix sums, zero left column.
    sum: Vec<i32>,
    /// Same layout for the squared samples (`i64`: `w · (255·128)²`).
    sq: Vec<i64>,
}

impl QRowPrefix {
    /// Prepares the tables for a `w × h` build, reusing the buffers
    /// (shape changes zero-fill once; steady state writes every entry).
    ///
    /// # Panics
    /// Panics if a row is too wide for exact `i32` prefix sums.
    pub fn reshape(&mut self, w: usize, h: usize) {
        assert!(w <= 65_535, "row prefix sums exceed i32 beyond 65535 px");
        self.width = w;
        self.height = h;
        let needed = (w + 1) * h;
        if self.sum.len() != needed {
            self.sum.clear();
            self.sum.resize(needed, 0);
            self.sq.clear();
            self.sq.resize(needed, 0);
        }
    }

    /// The source shape the tables were built for.
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// The two tables as mutable row-major slices of stride `width + 1`,
    /// for band-parallel builders (rows are independent, so callers may
    /// hand disjoint row bands to [`build_highpass_band`] concurrently).
    pub fn tables_mut(&mut self) -> (&mut [i32], &mut [i64]) {
        (&mut self.sum, &mut self.sq)
    }

    /// The two tables as shared slices of stride `width + 1`, for the
    /// gather-based segment scoring in [`crate::simd`].
    pub fn tables(&self) -> (&[i32], &[i64]) {
        (&self.sum, &self.sq)
    }

    /// Raw-sum over the half-open row segment `[x0, x1)` of row `y`.
    ///
    /// # Panics
    /// Debug-panics when the segment leaves the image.
    #[inline]
    pub fn row_sum(&self, y: usize, x0: usize, x1: usize) -> i64 {
        debug_assert!(y < self.height && x0 <= x1 && x1 <= self.width);
        let base = y * (self.width + 1);
        (self.sum[base + x1] - self.sum[base + x0]) as i64
    }

    /// Squared-sum over the half-open row segment `[x0, x1)` of row `y`
    /// (units: raw², i.e. Q16.14).
    #[inline]
    pub fn row_sum_sq(&self, y: usize, x0: usize, x1: usize) -> i64 {
        debug_assert!(y < self.height && x0 <= x1 && x1 <= self.width);
        let base = y * (self.width + 1);
        self.sq[base + x1] - self.sq[base + x0]
    }
}

/// Fills the rows `rows` of a [`QRowPrefix`] band with the prefix sums of
/// the high-pass residual `src − blur_r(src)` — the band-parallel fused
/// front end of the quantized demodulator.
///
/// * `dst_sum` / `dst_sq` — the band's table rows (stride `w + 1`,
///   exactly `rows.len()` rows; disjoint bands may run concurrently).
/// * `rowsum` — the full plane's horizontal window sums
///   ([`qplane::horizontal_window_sums_band`] output), shared read-only:
///   the vertical window reaches up to `r` rows past the band edges.
/// * `col` — per-caller scratch for the vertical running sums (grows to
///   `w`, then reused; each concurrent band needs its own).
///
/// The residual values are bit-identical to composing
/// [`qplane::sliding_box_blur_into`] and [`qplane::saturating_sub_into`]
/// (same window sums, same round-up reciprocal division, same saturating
/// subtract — pinned by a test below), and they are independent of the
/// band partition: the seed of the vertical window at `rows.start` is an
/// exact integer sum, so any split of the rows produces the same tables.
///
/// # Panics
/// Panics on inconsistent slice lengths.
pub fn build_highpass_band(
    dst_sum: &mut [i32],
    dst_sq: &mut [i64],
    src: &QPlane,
    rowsum: &[i32],
    r: usize,
    rows: std::ops::Range<usize>,
    col: &mut Vec<i32>,
) {
    let (w, h) = src.shape();
    if r > 0 {
        assert!(rows.end <= h, "band rows must lie inside the plane");
        prime_highpass_columns(rowsum, w, h, r, rows.start, col);
    }
    build_highpass_band_seeded(dst_sum, dst_sq, src, rowsum, r, rows, col);
}

/// Seeds the vertical running column sums for a high-pass sweep starting
/// at row `start`: per column, the replicate-border window sum of rows
/// `start − r ..= start + r` of `rowsum`. This is the priming step
/// [`build_highpass_band`] performs internally, exposed so row-at-a-time
/// drivers ([`highpass_row_into`]) can start a sweep anywhere.
///
/// # Panics
/// Panics if `rowsum` is not `w·h` long or `r > 127` (the i32 column-sum
/// bound — see `qplane::init_column_sums`).
pub fn prime_highpass_columns(
    rowsum: &[i32],
    w: usize,
    h: usize,
    r: usize,
    start: usize,
    col: &mut Vec<i32>,
) {
    assert!(r <= 127, "radius beyond 127 would overflow i32 column sums");
    assert_eq!(rowsum.len(), w * h, "window sums must cover the plane");
    col.clear();
    col.resize(w, 0);
    for j in start as isize - r as isize..=(start + r) as isize {
        let jy = j.clamp(0, h as isize - 1) as usize;
        let src_row = &rowsum[jy * w..(jy + 1) * w];
        for (c, &v) in col.iter_mut().zip(src_row) {
            *c += v;
        }
    }
}

/// Computes one row of the high-pass prefix tables into caller scratch
/// (`row_s`/`row_q`, each `w + 1` long) without materializing any table,
/// then slides the column window to row `y + 1`. `col` must be primed
/// for row `y` ([`prime_highpass_columns`], or the slide of a previous
/// call); the prefix values are bit-identical to the corresponding
/// [`build_highpass_band`] table row at every SIMD level.
///
/// The single-worker demodulator drives this row by row and consumes
/// each prefix row's segment sums while it is still L1-resident — the
/// full tables (`12` bytes/px of write traffic per capture) are never
/// written.
///
/// # Panics
/// Panics on inconsistent slice lengths or `y` outside the plane.
pub fn highpass_row_into(
    src: &QPlane,
    rowsum: &[i32],
    r: usize,
    y: usize,
    col: &mut [i32],
    row_s: &mut [i32],
    row_q: &mut [i64],
) {
    let (w, h) = src.shape();
    assert!(y < h, "row outside the plane");
    assert_eq!(rowsum.len(), w * h, "window sums must cover the plane");
    assert!(
        row_s.len() == w + 1 && row_q.len() == w + 1,
        "prefix rows are w+1"
    );
    if r == 0 {
        row_s.fill(0);
        row_q.fill(0);
        return;
    }
    assert_eq!(col.len(), w, "column sums must be primed for the row");
    let area = ((2 * r + 1) * (2 * r + 1)) as i64;
    let row = &src.row(y)[..w];
    if area <= crate::simd::MAX_MEAN_AREA {
        let level = crate::simd::active_level();
        crate::simd::highpass_prefix_row(level, row, col, area, row_s, row_q);
    } else {
        row_s[0] = 0;
        row_q[0] = 0;
        let mut run_s = 0i32;
        let mut run_q = 0i64;
        for x in 0..w {
            let mean = qplane::div_round(col[x] as i64, area);
            let hp = row[x].saturating_sub(mean as i16);
            run_s += hp as i32;
            run_q += (hp as i64) * (hp as i64);
            row_s[x + 1] = run_s;
            row_q[x + 1] = run_q;
        }
    }
    if y + 1 < h {
        let enter = &rowsum[(y + 1 + r).min(h - 1) * w..(y + 1 + r).min(h - 1) * w + w];
        let leave = &rowsum[y.saturating_sub(r) * w..y.saturating_sub(r) * w + w];
        for ((c, &e), &l) in col.iter_mut().zip(enter).zip(leave) {
            *c += e - l;
        }
    }
}

/// [`build_highpass_band`] continuation: assumes `col` already holds the
/// vertical window sums centred on `rows.start` — exactly the state a
/// previous call over `..rows.start` leaves behind (each call slides the
/// window one past its last processed row). Strip-at-a-time drivers use
/// this to extend the tables without re-priming the `2r+1`-row window per
/// strip, which would otherwise cost an extra full pass over `rowsum`
/// across a frame's strips.
///
/// # Panics
/// Panics on inconsistent slice lengths.
pub fn build_highpass_band_seeded(
    dst_sum: &mut [i32],
    dst_sq: &mut [i64],
    src: &QPlane,
    rowsum: &[i32],
    r: usize,
    rows: std::ops::Range<usize>,
    col: &mut [i32],
) {
    let (w, h) = src.shape();
    let stride = w + 1;
    assert!(rows.end <= h, "band rows must lie inside the plane");
    assert_eq!(rowsum.len(), w * h, "window sums must cover the plane");
    assert_eq!(dst_sum.len(), rows.len() * stride, "sum band mismatch");
    assert_eq!(dst_sq.len(), rows.len() * stride, "sq band mismatch");
    if r == 0 {
        // blur(src) == src: the residual — and every prefix — is zero.
        dst_sum.fill(0);
        dst_sq.fill(0);
        return;
    }
    assert_eq!(col.len(), w, "column sums must be primed for the band");
    let area = ((2 * r + 1) * (2 * r + 1)) as i64;
    // The fused mean/residual/prefix row is [`crate::simd`]'s hot
    // kernel (same round-up reciprocal semantics as the sliding blur,
    // same `area ≤ 2896` guard, bit-identical at every level); larger
    // windows take the exact `div_round` fallback.
    let use_kernel = area <= crate::simd::MAX_MEAN_AREA;
    let level = crate::simd::active_level();
    for (i, y) in rows.clone().enumerate() {
        let row = &src.row(y)[..w];
        let sum_row = &mut dst_sum[i * stride..(i + 1) * stride];
        let sq_row = &mut dst_sq[i * stride..(i + 1) * stride];
        if use_kernel {
            crate::simd::highpass_prefix_row(level, row, col, area, sum_row, sq_row);
        } else {
            sum_row[0] = 0;
            sq_row[0] = 0;
            let mut run_s = 0i32;
            let mut run_q = 0i64;
            for x in 0..w {
                let mean = qplane::div_round(col[x] as i64, area);
                let hp = row[x].saturating_sub(mean as i16);
                run_s += hp as i32;
                run_q += (hp as i64) * (hp as i64);
                sum_row[x + 1] = run_s;
                sq_row[x + 1] = run_q;
            }
        }
        if y + 1 < h {
            let enter = &rowsum[(y + 1 + r).min(h - 1) * w..(y + 1 + r).min(h - 1) * w + w];
            let leave = &rowsum[y.saturating_sub(r) * w..y.saturating_sub(r) * w + w];
            for ((c, &e), &l) in col.iter_mut().zip(enter).zip(leave) {
                *c += e - l;
            }
        }
    }
}

/// Reusable working memory for [`box_blur_fast_into`]: the padded source
/// copy and its summed-area table. Both buffers grow to the largest frame
/// ever filtered and are then reused verbatim, so a streaming receiver
/// blurs every capture with zero steady-state allocations.
#[derive(Debug, Clone, Default)]
pub struct BlurScratch {
    padded: Vec<f32>,
    sat: Vec<f64>,
}

/// Box blur via integral image with **replicate-border** semantics, exactly
/// matching [`crate::filter::box_blur`].
///
/// Replicate borders make the window sum at the edge include clamped
/// duplicates; this is computed by counting how many window taps clamp to
/// each border row/column.
pub fn box_blur_fast(src: &Plane<f32>, r: usize) -> Plane<f32> {
    let mut out = Plane::filled(src.width(), src.height(), 0.0);
    box_blur_fast_into(src, r, &mut BlurScratch::default(), &mut out);
    out
}

/// Allocation-free variant of [`box_blur_fast`]: filters `src` into `out`
/// using (and growing, on first use) the caller's [`BlurScratch`]. Output
/// is bit-identical to [`box_blur_fast`].
///
/// # Panics
/// Panics if `out` and `src` shapes differ.
pub fn box_blur_fast_into(
    src: &Plane<f32>,
    r: usize,
    scratch: &mut BlurScratch,
    out: &mut Plane<f32>,
) {
    assert_eq!(
        out.shape(),
        src.shape(),
        "blur output must match source shape"
    );
    if r == 0 {
        out.samples_mut().copy_from_slice(src.samples());
        return;
    }
    // Replicate semantics via a padded integral image: building the SAT
    // over a virtually padded image by clamping coordinates per-tap is
    // O(r) again, so instead pad physically once (r is small relative to
    // the frame).
    let (w, h) = src.shape();
    let pw = w + 2 * r;
    let ph = h + 2 * r;
    scratch.padded.clear();
    scratch.padded.resize(pw * ph, 0.0);
    for y in 0..ph {
        let sy = (y as isize - r as isize).clamp(0, h as isize - 1) as usize;
        let src_row = src.row(sy);
        let dst_row = &mut scratch.padded[y * pw..(y + 1) * pw];
        for (x, d) in dst_row.iter_mut().enumerate() {
            let sx = (x as isize - r as isize).clamp(0, w as isize - 1) as usize;
            *d = src_row[sx];
        }
    }
    // Summed-area table over the padded copy, same recurrence as
    // [`IntegralImage::new`] (zero top row and left column).
    let stride = pw + 1;
    scratch.sat.clear();
    scratch.sat.resize(stride * (ph + 1), 0.0);
    for y in 0..ph {
        let mut row_sum = 0.0f64;
        for x in 0..pw {
            row_sum += scratch.padded[y * pw + x] as f64;
            scratch.sat[(y + 1) * stride + (x + 1)] = scratch.sat[y * stride + (x + 1)] + row_sum;
        }
    }
    let window = ((2 * r + 1) * (2 * r + 1)) as f64;
    // The separable reference filter normalizes each axis independently,
    // which equals the 2-D window normalization for a full (padded)
    // window. Every output window lies fully inside the padded image, so
    // no clamping is needed here.
    let sat = &scratch.sat;
    for y in 0..h {
        let y0 = y; // padded top of window: (y + r) − r
        let y1 = y + 2 * r + 1;
        let out_row = out.row_mut(y);
        for (x, o) in out_row.iter_mut().enumerate() {
            let x0 = x;
            let x1 = x + 2 * r + 1;
            let sum = sat[y1 * stride + x1] + sat[y0 * stride + x0]
                - sat[y0 * stride + x1]
                - sat[y1 * stride + x0];
            *o = (sum / window) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::box_blur;
    use proptest::prelude::*;

    #[test]
    fn fused_highpass_build_is_bit_identical_to_composition() {
        let src = QPlane::from_plane(&Plane::from_fn(37, 29, |x, y| {
            ((x * 83 + y * 131 + x * y) % 256) as f32 - 64.0
        }));
        let mut scratch = QBlurScratch::default();
        let mut smoothed = QPlane::new(1, 1);
        let mut highpass = QPlane::new(1, 1);
        let mut composed = QIntegral::default();
        let mut fused = QIntegral::default();
        for r in 0..=8usize {
            qplane::sliding_box_blur_into(&src, r, &mut scratch, &mut smoothed);
            qplane::saturating_sub_into(&src, &smoothed, &mut highpass);
            composed.build_into(&highpass);
            // Run the fused build twice: the second call exercises the
            // buffer-reuse path (no zero fill).
            for _ in 0..2 {
                fused.build_highpass_into(&src, r, &mut scratch);
                assert_eq!(fused.shape(), composed.shape());
                assert_eq!(fused.sum, composed.sum, "sum table diverged at r={r}");
                assert_eq!(fused.sq, composed.sq, "sq table diverged at r={r}");
            }
        }
    }

    #[test]
    fn banded_row_prefix_matches_composition_for_any_split() {
        let src = QPlane::from_plane(&Plane::from_fn(41, 23, |x, y| {
            ((x * 67 + y * 149 + x * y * 3) % 256) as f32 - 96.0
        }));
        let (w, h) = src.shape();
        let mut scratch = QBlurScratch::default();
        let mut smoothed = QPlane::new(1, 1);
        let mut highpass = QPlane::new(1, 1);
        let mut col = Vec::new();
        for r in [0usize, 1, 3, 8] {
            qplane::sliding_box_blur_into(&src, r, &mut scratch, &mut smoothed);
            qplane::saturating_sub_into(&src, &smoothed, &mut highpass);
            let oracle = QIntegral::new(&highpass);
            let mut rowsum = Vec::new();
            qplane::horizontal_window_sums(&src, r, &mut rowsum);
            for bands in [1usize, 2, 3, 7] {
                let mut prefix = QRowPrefix::default();
                prefix.reshape(w, h);
                let (sum, sq) = prefix.tables_mut();
                let mut rest_s = sum;
                let mut rest_q = sq;
                for rows in crate::plane::band_rows(h, bands) {
                    let (band_s, tail_s) = rest_s.split_at_mut(rows.len() * (w + 1));
                    let (band_q, tail_q) = rest_q.split_at_mut(rows.len() * (w + 1));
                    rest_s = tail_s;
                    rest_q = tail_q;
                    build_highpass_band(band_s, band_q, &src, &rowsum, r, rows, &mut col);
                }
                for y in 0..h {
                    for (x0, x1) in [(0, w), (3, w - 5), (w / 2, w / 2), (1, 2)] {
                        assert_eq!(
                            prefix.row_sum(y, x0, x1),
                            oracle.row_sum(y, x0, x1),
                            "sum r={r} bands={bands} y={y} [{x0},{x1})"
                        );
                        assert_eq!(
                            prefix.row_sum_sq(y, x0, x1),
                            oracle.row_sum_sq(y, x0, x1),
                            "sq r={r} bands={bands} y={y} [{x0},{x1})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rect_sum_matches_manual() {
        let p = Plane::from_fn(5, 4, |x, y| (y * 5 + x) as f32);
        let sat = IntegralImage::new(&p);
        // Sum of the 2x2 block at (1,1): 6+7+11+12 = 36.
        assert_eq!(sat.rect_sum(1, 1, 2, 2), 36.0);
        // Whole image.
        let total: f64 = p.samples().iter().map(|&v| v as f64).sum();
        assert_eq!(sat.rect_sum(0, 0, 4, 3), total);
        // Degenerate.
        assert_eq!(sat.rect_sum(3, 3, 2, 2), 0.0);
    }

    #[test]
    fn clamped_rect_matches_inner() {
        let p = Plane::from_fn(4, 4, |x, y| (x + y) as f32);
        let sat = IntegralImage::new(&p);
        assert_eq!(sat.rect_sum(-5, -5, 10, 10), sat.rect_sum(0, 0, 3, 3));
    }

    #[test]
    fn fast_blur_matches_reference_interior_and_edges() {
        let p = Plane::from_fn(17, 13, |x, y| ((x * 31 + y * 17) % 211) as f32);
        for r in [1usize, 2, 3] {
            let slow = box_blur(&p, r);
            let fast = box_blur_fast(&p, r);
            for (x, y, v) in slow.iter_xy() {
                assert!(
                    (v - fast.get(x, y)).abs() < 1e-3,
                    "r={r} at ({x},{y}): {v} vs {}",
                    fast.get(x, y)
                );
            }
        }
    }

    #[test]
    fn blur_into_with_reused_scratch_matches_fresh() {
        // One scratch across frames of different sizes and radii: results
        // must stay bit-identical to the allocating path.
        let mut scratch = BlurScratch::default();
        for (w, h, r) in [
            (23usize, 17usize, 3usize),
            (9, 31, 1),
            (23, 17, 2),
            (4, 4, 2),
        ] {
            let p = Plane::from_fn(w, h, |x, y| ((x * 131 + y * 37) % 251) as f32);
            let mut out = Plane::filled(w, h, -1.0);
            box_blur_fast_into(&p, r, &mut scratch, &mut out);
            assert_eq!(out, box_blur_fast(&p, r), "{w}x{h} r={r}");
        }
    }

    #[test]
    fn zero_radius_is_identity() {
        let p = Plane::from_fn(6, 6, |x, y| (x * y) as f32);
        assert_eq!(box_blur_fast(&p, 0), p);
    }

    #[test]
    fn qintegral_row_segments_match_manual() {
        let p = Plane::from_fn(7, 5, |x, y| (y * 7 + x) as f32);
        let q = QPlane::from_plane(&p);
        let sat = QIntegral::new(&q);
        // Row 2, columns [1, 4): raw samples are 128·(15, 16, 17).
        assert_eq!(sat.row_sum(2, 1, 4), 128 * (15 + 16 + 17));
        assert_eq!(
            sat.row_sum_sq(2, 1, 4),
            128 * 128 * (15 * 15 + 16 * 16 + 17 * 17)
        );
        assert_eq!(sat.row_sum(0, 3, 3), 0);
    }

    proptest! {
        /// Satellite: integral-image block sums equal naive sums exactly
        /// (integer arithmetic) on random planes.
        #[test]
        fn qintegral_rects_match_naive(
            w in 2usize..20,
            h in 2usize..20,
            seed in any::<u64>(),
        ) {
            let p = Plane::from_fn(w, h, |x, y| {
                let v = (x as u64).wrapping_mul(0x9E3779B9)
                    ^ (y as u64).wrapping_mul(0x85EBCA6B)
                    ^ seed;
                (v % 256) as f32 - 64.0
            });
            let q = QPlane::from_plane(&p);
            let sat = QIntegral::new(&q);
            let (x0, y0) = (w / 4, h / 4);
            let (x1, y1) = (w - w / 5, h - h / 5);
            let mut want_s = 0i64;
            let mut want_q = 0i64;
            for y in y0..y1 {
                for x in x0..x1 {
                    let v = q.get(x, y) as i64;
                    want_s += v;
                    want_q += v * v;
                }
            }
            prop_assert_eq!(sat.rect_sum(x0, y0, x1, y1), want_s);
            prop_assert_eq!(sat.rect_sum_sq(x0, y0, x1, y1), want_q);
            let mut row_s = 0i64;
            for y in y0..y1 {
                row_s += sat.row_sum(y, x0, x1);
            }
            prop_assert_eq!(row_s, want_s);
        }

        #[test]
        fn fast_equals_slow(
            w in 3usize..20,
            h in 3usize..20,
            r in 1usize..4,
            seed in any::<u64>(),
        ) {
            let p = Plane::from_fn(w, h, |x, y| {
                let v = (x as u64).wrapping_mul(0x9E3779B9)
                    ^ (y as u64).wrapping_mul(0x85EBCA6B)
                    ^ seed;
                (v % 256) as f32
            });
            let slow = box_blur(&p, r);
            let fast = box_blur_fast(&p, r);
            for i in 0..p.len() {
                prop_assert!((slow.samples()[i] - fast.samples()[i]).abs() < 1e-2);
            }
        }
    }
}
