//! Integral images (summed-area tables) and O(1)-per-pixel box filtering.
//!
//! The receiver box-blurs every capture; the naive separable blur costs
//! O(r) per pixel. A summed-area table gives exact box sums in constant
//! time per pixel regardless of radius — the classic trade used by every
//! real-time vision pipeline. [`box_blur_fast`] is a drop-in equivalent of
//! [`crate::filter::box_blur`] (replicate-border semantics included) used
//! by the performance-sensitive paths and property-tested against the
//! reference implementation.

use crate::plane::Plane;

/// A summed-area table: `sat[(x, y)]` is the sum of all samples with
/// coordinates `< (x+1, y+1)` (f64 accumulators to keep 1920×1080×255
/// exact).
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width+1) × (height+1)` table with a zero top row and left column.
    sat: Vec<f64>,
}

impl IntegralImage {
    /// Builds the table in one pass.
    pub fn new(src: &Plane<f32>) -> Self {
        let (w, h) = src.shape();
        let stride = w + 1;
        let mut sat = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += src.get(x, y) as f64;
                sat[(y + 1) * stride + (x + 1)] = sat[y * stride + (x + 1)] + row_sum;
            }
        }
        Self {
            width: w,
            height: h,
            sat,
        }
    }

    /// Sum of the inclusive rectangle `[x0, x1] × [y0, y1]` (clamped to
    /// the image).
    pub fn rect_sum(&self, x0: isize, y0: isize, x1: isize, y1: isize) -> f64 {
        let stride = self.width + 1;
        let cx0 = x0.clamp(0, self.width as isize) as usize;
        let cy0 = y0.clamp(0, self.height as isize) as usize;
        let cx1 = (x1 + 1).clamp(0, self.width as isize) as usize;
        let cy1 = (y1 + 1).clamp(0, self.height as isize) as usize;
        if cx1 <= cx0 || cy1 <= cy0 {
            return 0.0;
        }
        self.sat[cy1 * stride + cx1] + self.sat[cy0 * stride + cx0]
            - self.sat[cy0 * stride + cx1]
            - self.sat[cy1 * stride + cx0]
    }
}

/// Reusable working memory for [`box_blur_fast_into`]: the padded source
/// copy and its summed-area table. Both buffers grow to the largest frame
/// ever filtered and are then reused verbatim, so a streaming receiver
/// blurs every capture with zero steady-state allocations.
#[derive(Debug, Clone, Default)]
pub struct BlurScratch {
    padded: Vec<f32>,
    sat: Vec<f64>,
}

/// Box blur via integral image with **replicate-border** semantics, exactly
/// matching [`crate::filter::box_blur`].
///
/// Replicate borders make the window sum at the edge include clamped
/// duplicates; this is computed by counting how many window taps clamp to
/// each border row/column.
pub fn box_blur_fast(src: &Plane<f32>, r: usize) -> Plane<f32> {
    let mut out = Plane::filled(src.width(), src.height(), 0.0);
    box_blur_fast_into(src, r, &mut BlurScratch::default(), &mut out);
    out
}

/// Allocation-free variant of [`box_blur_fast`]: filters `src` into `out`
/// using (and growing, on first use) the caller's [`BlurScratch`]. Output
/// is bit-identical to [`box_blur_fast`].
///
/// # Panics
/// Panics if `out` and `src` shapes differ.
pub fn box_blur_fast_into(
    src: &Plane<f32>,
    r: usize,
    scratch: &mut BlurScratch,
    out: &mut Plane<f32>,
) {
    assert_eq!(
        out.shape(),
        src.shape(),
        "blur output must match source shape"
    );
    if r == 0 {
        out.samples_mut().copy_from_slice(src.samples());
        return;
    }
    // Replicate semantics via a padded integral image: building the SAT
    // over a virtually padded image by clamping coordinates per-tap is
    // O(r) again, so instead pad physically once (r is small relative to
    // the frame).
    let (w, h) = src.shape();
    let pw = w + 2 * r;
    let ph = h + 2 * r;
    scratch.padded.clear();
    scratch.padded.resize(pw * ph, 0.0);
    for y in 0..ph {
        let sy = (y as isize - r as isize).clamp(0, h as isize - 1) as usize;
        let src_row = src.row(sy);
        let dst_row = &mut scratch.padded[y * pw..(y + 1) * pw];
        for (x, d) in dst_row.iter_mut().enumerate() {
            let sx = (x as isize - r as isize).clamp(0, w as isize - 1) as usize;
            *d = src_row[sx];
        }
    }
    // Summed-area table over the padded copy, same recurrence as
    // [`IntegralImage::new`] (zero top row and left column).
    let stride = pw + 1;
    scratch.sat.clear();
    scratch.sat.resize(stride * (ph + 1), 0.0);
    for y in 0..ph {
        let mut row_sum = 0.0f64;
        for x in 0..pw {
            row_sum += scratch.padded[y * pw + x] as f64;
            scratch.sat[(y + 1) * stride + (x + 1)] = scratch.sat[y * stride + (x + 1)] + row_sum;
        }
    }
    let window = ((2 * r + 1) * (2 * r + 1)) as f64;
    // The separable reference filter normalizes each axis independently,
    // which equals the 2-D window normalization for a full (padded)
    // window. Every output window lies fully inside the padded image, so
    // no clamping is needed here.
    let sat = &scratch.sat;
    for y in 0..h {
        let y0 = y; // padded top of window: (y + r) − r
        let y1 = y + 2 * r + 1;
        let out_row = out.row_mut(y);
        for (x, o) in out_row.iter_mut().enumerate() {
            let x0 = x;
            let x1 = x + 2 * r + 1;
            let sum = sat[y1 * stride + x1] + sat[y0 * stride + x0]
                - sat[y0 * stride + x1]
                - sat[y1 * stride + x0];
            *o = (sum / window) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::box_blur;
    use proptest::prelude::*;

    #[test]
    fn rect_sum_matches_manual() {
        let p = Plane::from_fn(5, 4, |x, y| (y * 5 + x) as f32);
        let sat = IntegralImage::new(&p);
        // Sum of the 2x2 block at (1,1): 6+7+11+12 = 36.
        assert_eq!(sat.rect_sum(1, 1, 2, 2), 36.0);
        // Whole image.
        let total: f64 = p.samples().iter().map(|&v| v as f64).sum();
        assert_eq!(sat.rect_sum(0, 0, 4, 3), total);
        // Degenerate.
        assert_eq!(sat.rect_sum(3, 3, 2, 2), 0.0);
    }

    #[test]
    fn clamped_rect_matches_inner() {
        let p = Plane::from_fn(4, 4, |x, y| (x + y) as f32);
        let sat = IntegralImage::new(&p);
        assert_eq!(sat.rect_sum(-5, -5, 10, 10), sat.rect_sum(0, 0, 3, 3));
    }

    #[test]
    fn fast_blur_matches_reference_interior_and_edges() {
        let p = Plane::from_fn(17, 13, |x, y| ((x * 31 + y * 17) % 211) as f32);
        for r in [1usize, 2, 3] {
            let slow = box_blur(&p, r);
            let fast = box_blur_fast(&p, r);
            for (x, y, v) in slow.iter_xy() {
                assert!(
                    (v - fast.get(x, y)).abs() < 1e-3,
                    "r={r} at ({x},{y}): {v} vs {}",
                    fast.get(x, y)
                );
            }
        }
    }

    #[test]
    fn blur_into_with_reused_scratch_matches_fresh() {
        // One scratch across frames of different sizes and radii: results
        // must stay bit-identical to the allocating path.
        let mut scratch = BlurScratch::default();
        for (w, h, r) in [
            (23usize, 17usize, 3usize),
            (9, 31, 1),
            (23, 17, 2),
            (4, 4, 2),
        ] {
            let p = Plane::from_fn(w, h, |x, y| ((x * 131 + y * 37) % 251) as f32);
            let mut out = Plane::filled(w, h, -1.0);
            box_blur_fast_into(&p, r, &mut scratch, &mut out);
            assert_eq!(out, box_blur_fast(&p, r), "{w}x{h} r={r}");
        }
    }

    #[test]
    fn zero_radius_is_identity() {
        let p = Plane::from_fn(6, 6, |x, y| (x * y) as f32);
        assert_eq!(box_blur_fast(&p, 0), p);
    }

    proptest! {
        #[test]
        fn fast_equals_slow(
            w in 3usize..20,
            h in 3usize..20,
            r in 1usize..4,
            seed in any::<u64>(),
        ) {
            let p = Plane::from_fn(w, h, |x, y| {
                let v = (x as u64).wrapping_mul(0x9E3779B9)
                    ^ (y as u64).wrapping_mul(0x85EBCA6B)
                    ^ seed;
                (v % 256) as f32
            });
            let slow = box_blur(&p, r);
            let fast = box_blur_fast(&p, r);
            for i in 0..p.len() {
                prop_assert!((slow.samples()[i] - fast.samples()[i]).abs() < 1e-2);
            }
        }
    }
}
