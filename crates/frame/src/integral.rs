//! Integral images (summed-area tables) and O(1)-per-pixel box filtering.
//!
//! The receiver box-blurs every capture; the naive separable blur costs
//! O(r) per pixel. A summed-area table gives exact box sums in constant
//! time per pixel regardless of radius — the classic trade used by every
//! real-time vision pipeline. [`box_blur_fast`] is a drop-in equivalent of
//! [`crate::filter::box_blur`] (replicate-border semantics included) used
//! by the performance-sensitive paths and property-tested against the
//! reference implementation.

use crate::plane::Plane;

/// A summed-area table: `sat[(x, y)]` is the sum of all samples with
/// coordinates `< (x+1, y+1)` (f64 accumulators to keep 1920×1080×255
/// exact).
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width+1) × (height+1)` table with a zero top row and left column.
    sat: Vec<f64>,
}

impl IntegralImage {
    /// Builds the table in one pass.
    pub fn new(src: &Plane<f32>) -> Self {
        let (w, h) = src.shape();
        let stride = w + 1;
        let mut sat = vec![0.0f64; stride * (h + 1)];
        for y in 0..h {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += src.get(x, y) as f64;
                sat[(y + 1) * stride + (x + 1)] = sat[y * stride + (x + 1)] + row_sum;
            }
        }
        Self {
            width: w,
            height: h,
            sat,
        }
    }

    /// Sum of the inclusive rectangle `[x0, x1] × [y0, y1]` (clamped to
    /// the image).
    pub fn rect_sum(&self, x0: isize, y0: isize, x1: isize, y1: isize) -> f64 {
        let stride = self.width + 1;
        let cx0 = x0.clamp(0, self.width as isize) as usize;
        let cy0 = y0.clamp(0, self.height as isize) as usize;
        let cx1 = (x1 + 1).clamp(0, self.width as isize) as usize;
        let cy1 = (y1 + 1).clamp(0, self.height as isize) as usize;
        if cx1 <= cx0 || cy1 <= cy0 {
            return 0.0;
        }
        self.sat[cy1 * stride + cx1] + self.sat[cy0 * stride + cx0]
            - self.sat[cy0 * stride + cx1]
            - self.sat[cy1 * stride + cx0]
    }
}

/// Box blur via integral image with **replicate-border** semantics, exactly
/// matching [`crate::filter::box_blur`].
///
/// Replicate borders make the window sum at the edge include clamped
/// duplicates; this is computed by counting how many window taps clamp to
/// each border row/column.
pub fn box_blur_fast(src: &Plane<f32>, r: usize) -> Plane<f32> {
    if r == 0 {
        return src.clone();
    }
    // Replicate semantics via a padded integral image: build the SAT over
    // a virtually padded image by clamping coordinates per-tap is O(r)
    // again, so instead pad physically once (r is small relative to the
    // frame).
    let (w, h) = src.shape();
    let padded = Plane::from_fn(w + 2 * r, h + 2 * r, |x, y| {
        let sx = (x as isize - r as isize).clamp(0, w as isize - 1) as usize;
        let sy = (y as isize - r as isize).clamp(0, h as isize - 1) as usize;
        src.get(sx, sy)
    });
    let sat = IntegralImage::new(&padded);
    let window = ((2 * r + 1) * (2 * r + 1)) as f64;
    // The separable reference filter normalizes each axis independently,
    // which equals the 2-D window normalization for a full (padded)
    // window.
    Plane::from_fn(w, h, |x, y| {
        let cx = (x + r) as isize;
        let cy = (y + r) as isize;
        (sat.rect_sum(cx - r as isize, cy - r as isize, cx + r as isize, cy + r as isize)
            / window) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::box_blur;
    use proptest::prelude::*;

    #[test]
    fn rect_sum_matches_manual() {
        let p = Plane::from_fn(5, 4, |x, y| (y * 5 + x) as f32);
        let sat = IntegralImage::new(&p);
        // Sum of the 2x2 block at (1,1): 6+7+11+12 = 36.
        assert_eq!(sat.rect_sum(1, 1, 2, 2), 36.0);
        // Whole image.
        let total: f64 = p.samples().iter().map(|&v| v as f64).sum();
        assert_eq!(sat.rect_sum(0, 0, 4, 3), total);
        // Degenerate.
        assert_eq!(sat.rect_sum(3, 3, 2, 2), 0.0);
    }

    #[test]
    fn clamped_rect_matches_inner() {
        let p = Plane::from_fn(4, 4, |x, y| (x + y) as f32);
        let sat = IntegralImage::new(&p);
        assert_eq!(sat.rect_sum(-5, -5, 10, 10), sat.rect_sum(0, 0, 3, 3));
    }

    #[test]
    fn fast_blur_matches_reference_interior_and_edges() {
        let p = Plane::from_fn(17, 13, |x, y| ((x * 31 + y * 17) % 211) as f32);
        for r in [1usize, 2, 3] {
            let slow = box_blur(&p, r);
            let fast = box_blur_fast(&p, r);
            for (x, y, v) in slow.iter_xy() {
                assert!(
                    (v - fast.get(x, y)).abs() < 1e-3,
                    "r={r} at ({x},{y}): {v} vs {}",
                    fast.get(x, y)
                );
            }
        }
    }

    #[test]
    fn zero_radius_is_identity() {
        let p = Plane::from_fn(6, 6, |x, y| (x * y) as f32);
        assert_eq!(box_blur_fast(&p, 0), p);
    }

    proptest! {
        #[test]
        fn fast_equals_slow(
            w in 3usize..20,
            h in 3usize..20,
            r in 1usize..4,
            seed in any::<u64>(),
        ) {
            let p = Plane::from_fn(w, h, |x, y| {
                let v = (x as u64).wrapping_mul(0x9E3779B9)
                    ^ (y as u64).wrapping_mul(0x85EBCA6B)
                    ^ seed;
                (v % 256) as f32
            });
            let slow = box_blur(&p, r);
            let fast = box_blur_fast(&p, r);
            for i in 0..p.len() {
                prop_assert!((slow.samples()[i] - fast.samples()[i]).abs() < 1e-2);
            }
        }
    }
}
