//! Pixelwise arithmetic and image distance metrics.
//!
//! The sender computes `V + D` and `V − D` (complementary multiplexing);
//! the receiver computes per-block absolute differences. Both live here,
//! together with the metrics used by tests and experiments (MAE, MSE, PSNR).

use crate::plane::{Plane, Sample};
use crate::FrameError;

/// Returns `a + b` pixelwise.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn add(a: &Plane<f32>, b: &Plane<f32>) -> Result<Plane<f32>, FrameError> {
    zip_map(a, b, |x, y| x + y)
}

/// Returns `a − b` pixelwise.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn sub(a: &Plane<f32>, b: &Plane<f32>) -> Result<Plane<f32>, FrameError> {
    zip_map(a, b, |x, y| x - y)
}

/// Writes `a + b` pixelwise into `out` without allocating.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when any shape differs.
pub fn add_into(a: &Plane<f32>, b: &Plane<f32>, out: &mut Plane<f32>) -> Result<(), FrameError> {
    zip_map_into(a, b, out, |x, y| x + y)
}

/// Writes `a − b` pixelwise into `out` without allocating.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when any shape differs.
pub fn sub_into(a: &Plane<f32>, b: &Plane<f32>, out: &mut Plane<f32>) -> Result<(), FrameError> {
    zip_map_into(a, b, out, |x, y| x - y)
}

/// Applies a binary function over two same-shaped planes into a third,
/// allocation-free (results are bit-identical to [`zip_map`]).
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when any shape differs.
pub fn zip_map_into(
    a: &Plane<f32>,
    b: &Plane<f32>,
    out: &mut Plane<f32>,
    mut f: impl FnMut(f32, f32) -> f32,
) -> Result<(), FrameError> {
    if a.shape() != b.shape() || a.shape() != out.shape() {
        return Err(FrameError::ShapeMismatch {
            left: a.shape(),
            right: if a.shape() != b.shape() {
                b.shape()
            } else {
                out.shape()
            },
        });
    }
    for ((o, &x), &y) in out
        .samples_mut()
        .iter_mut()
        .zip(a.samples())
        .zip(b.samples())
    {
        *o = f(x, y);
    }
    Ok(())
}

/// Returns `a + s·b` pixelwise (fused multiply-add over planes).
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn add_scaled(a: &Plane<f32>, b: &Plane<f32>, s: f32) -> Result<Plane<f32>, FrameError> {
    zip_map(a, b, |x, y| x + s * y)
}

/// Returns `|a − b|` pixelwise.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn abs_diff(a: &Plane<f32>, b: &Plane<f32>) -> Result<Plane<f32>, FrameError> {
    zip_map(a, b, |x, y| (x - y).abs())
}

/// Applies a binary function over two same-shaped planes.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn zip_map(
    a: &Plane<f32>,
    b: &Plane<f32>,
    mut f: impl FnMut(f32, f32) -> f32,
) -> Result<Plane<f32>, FrameError> {
    if a.shape() != b.shape() {
        return Err(FrameError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    let data = a
        .samples()
        .iter()
        .zip(b.samples())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Plane::from_vec(a.width(), a.height(), data)
}

/// Mean absolute error between two planes.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn mae<T: Sample>(a: &Plane<T>, b: &Plane<T>) -> Result<f64, FrameError> {
    check_shapes(a, b)?;
    let sum: f64 = a
        .samples()
        .iter()
        .zip(b.samples())
        .map(|(&x, &y)| (x.to_f32() as f64 - y.to_f32() as f64).abs())
        .sum();
    Ok(sum / a.len() as f64)
}

/// Mean squared error between two planes.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn mse<T: Sample>(a: &Plane<T>, b: &Plane<T>) -> Result<f64, FrameError> {
    check_shapes(a, b)?;
    let sum: f64 = a
        .samples()
        .iter()
        .zip(b.samples())
        .map(|(&x, &y)| {
            let d = x.to_f32() as f64 - y.to_f32() as f64;
            d * d
        })
        .sum();
    Ok(sum / a.len() as f64)
}

/// Peak signal-to-noise ratio in dB, with the given peak value (255 for
/// 8-bit-scale imagery). Returns `f64::INFINITY` for identical planes.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn psnr<T: Sample>(a: &Plane<T>, b: &Plane<T>, peak: f64) -> Result<f64, FrameError> {
    let m = mse(a, b)?;
    if m == 0.0 {
        Ok(f64::INFINITY)
    } else {
        Ok(10.0 * (peak * peak / m).log10())
    }
}

/// Sum of absolute values of all samples (the receiver's per-block noise
/// aggregate before mean removal).
pub fn sum_abs(p: &Plane<f32>) -> f64 {
    p.samples().iter().map(|&v| v.abs() as f64).sum()
}

fn check_shapes<T: Sample>(a: &Plane<T>, b: &Plane<T>) -> Result<(), FrameError> {
    if a.shape() != b.shape() {
        Err(FrameError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: Vec<f32>) -> Plane<f32> {
        Plane::from_vec(v.len(), 1, v).unwrap()
    }

    #[test]
    fn add_sub_recover_original() {
        let v = p(vec![10.0, 20.0, 30.0]);
        let d = p(vec![1.0, -2.0, 3.0]);
        let plus = add(&v, &d).unwrap();
        let minus = sub(&v, &d).unwrap();
        // (V+D) + (V−D) = 2V: the complementary-frame identity.
        let avg = zip_map(&plus, &minus, |a, b| (a + b) / 2.0).unwrap();
        assert_eq!(avg, v);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Plane::<f32>::filled(2, 2, 0.0);
        let b = Plane::<f32>::filled(3, 2, 0.0);
        assert!(add(&a, &b).is_err());
        assert!(mae(&a, &b).is_err());
        assert!(psnr(&a, &b, 255.0).is_err());
    }

    #[test]
    fn metrics_on_known_values() {
        let a = p(vec![0.0, 0.0, 0.0, 0.0]);
        let b = p(vec![1.0, -1.0, 2.0, -2.0]);
        assert!((mae(&a, &b).unwrap() - 1.5).abs() < 1e-12);
        assert!((mse(&a, &b).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn psnr_of_identical_planes_is_infinite() {
        let a = p(vec![5.0, 6.0]);
        assert_eq!(psnr(&a, &a, 255.0).unwrap(), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = Plane::<f32>::filled(8, 8, 128.0);
        let mut b1 = a.clone();
        let mut b2 = a.clone();
        b1.map_in_place(|v| v + 1.0);
        b2.map_in_place(|v| v + 10.0);
        assert!(psnr(&a, &b1, 255.0).unwrap() > psnr(&a, &b2, 255.0).unwrap());
    }

    #[test]
    fn sum_abs_counts_magnitudes() {
        let a = p(vec![1.0, -2.0, 3.0]);
        assert!((sum_abs(&a) - 6.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn add_scaled_matches_manual(
            vals in proptest::collection::vec(-100.0f32..100.0, 8),
            s in -3.0f32..3.0,
        ) {
            let a = p(vals.clone());
            let b = p(vals.iter().map(|v| v * 0.5).collect());
            let out = add_scaled(&a, &b, s).unwrap();
            for (i, &v) in out.samples().iter().enumerate() {
                let expect = vals[i] + s * (vals[i] * 0.5);
                prop_assert!((v - expect).abs() < 1e-4);
            }
        }

        #[test]
        fn abs_diff_is_symmetric(
            av in proptest::collection::vec(-50.0f32..50.0, 6),
            bv in proptest::collection::vec(-50.0f32..50.0, 6),
        ) {
            let a = p(av);
            let b = p(bv);
            prop_assert_eq!(abs_diff(&a, &b).unwrap(), abs_diff(&b, &a).unwrap());
        }
    }
}
