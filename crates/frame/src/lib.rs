//! # inframe-frame
//!
//! Frame and image primitives for the InFrame reproduction.
//!
//! The InFrame pipeline ([HotNets 2014]) manipulates video frames at three
//! places: the sender multiplexes data onto frames, the display/camera
//! simulators integrate and resample them, and the receiver smooths and
//! differences captured frames. This crate supplies the shared substrate:
//!
//! * [`Plane`] — a 2-D buffer of scalar samples, generic over the sample
//!   type (`u8` for storage, `f32` for linear-light math).
//! * [`RgbFrame`] — a planar RGB frame built from three [`Plane<f32>`]s.
//! * [`color`] — sRGB transfer functions, BT.601 RGB↔YCbCr, luma extraction.
//! * [`arith`] — saturating pixel arithmetic and image distance metrics
//!   (MAE, MSE, PSNR); [`metrics`] adds SSIM and a combined quality report.
//! * [`filter`] — box/Gaussian smoothing and separable convolution (the
//!   receiver's "smoothed version" of a block comes from here).
//! * [`geometry`] — homographies and bilinear warps used by the camera
//!   simulator for perspective capture and by the receiver for registration.
//! * [`resample`] — area-average downsampling and bilinear resizing
//!   (display resolution → capture resolution).
//! * [`pool`] — a fixed-geometry frame arena ([`FramePool`]) whose
//!   checkout/return handles give the streaming pipeline zero steady-state
//!   heap allocations.
//! * [`qplane`] — Q8.7 fixed-point planes and the O(1) sliding-window
//!   blur behind the quantized kernel backend; [`integral`] adds the
//!   paired integer summed-area tables it scores Blocks with.
//! * [`simd`] — explicit SSE2/AVX2 paths for the quantized hot kernels
//!   with one-time runtime dispatch (`INFRAME_SIMD` override), each
//!   bit-identical to the scalar oracle.
//! * [`draw`] — rectangle/checkerboard/gradient drawing helpers used by the
//!   synthetic video generators.
//! * [`io`] — binary PGM/PPM reading and writing so examples can emit
//!   viewable artifacts (e.g. the Figure 4 complementary pairs).
//!
//! All floating-point imagery uses the convention that sample values live in
//! **display code units** `[0.0, 255.0]`, matching the paper's 8-bit pixel
//! discussion; conversion to linear light is explicit via [`color`].
//!
//! [HotNets 2014]: https://doi.org/10.1145/2670518.2673862

// `deny` (not `forbid`) so the one module holding the SIMD intrinsic
// bodies — [`simd`], which confines every `unsafe` in the workspace
// behind safe, bounds-checked dispatchers — can opt back in locally.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod color;
pub mod draw;
pub mod error;
pub mod filter;
pub mod geometry;
pub mod integral;
pub mod io;
pub mod metrics;
pub mod perturb;
pub mod plane;
pub mod pool;
pub mod qplane;
pub mod resample;
pub mod rgb;
pub mod simd;

pub use error::FrameError;
pub use plane::Plane;
pub use pool::{FramePool, PooledPlane};
pub use rgb::RgbFrame;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, FrameError>;
