//! Perceptual image quality metrics.
//!
//! Beyond the pixel metrics in [`crate::arith`], this module implements
//! SSIM (structural similarity), the standard perceptual metric for "does
//! the multiplexed frame look like the original" — used by the
//! imperceptibility tests and the complementation ablation.

use crate::filter::gaussian_blur;
use crate::plane::Plane;
use crate::FrameError;

/// SSIM stabilization constants for dynamic range `L`: `C1 = (0.01·L)²`,
/// `C2 = (0.03·L)²` (the values from Wang et al. 2004).
fn ssim_constants(dynamic_range: f32) -> (f32, f32) {
    let c1 = (0.01 * dynamic_range).powi(2);
    let c2 = (0.03 * dynamic_range).powi(2);
    (c1, c2)
}

/// Computes the mean SSIM between two planes (dynamic range 255).
///
/// Gaussian-weighted local statistics with σ = 1.5, the reference
/// implementation's choice. Returns a value in `[-1, 1]`; 1 means
/// identical.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn ssim(a: &Plane<f32>, b: &Plane<f32>) -> Result<f64, FrameError> {
    ssim_with_range(a, b, 255.0)
}

/// [`ssim`] with an explicit dynamic range.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn ssim_with_range(
    a: &Plane<f32>,
    b: &Plane<f32>,
    dynamic_range: f32,
) -> Result<f64, FrameError> {
    if a.shape() != b.shape() {
        return Err(FrameError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    let (c1, c2) = ssim_constants(dynamic_range);
    let sigma = 1.5;
    let mu_a = gaussian_blur(a, sigma);
    let mu_b = gaussian_blur(b, sigma);
    let aa = crate::arith::zip_map(a, a, |x, y| x * y).expect("same shape");
    let bb = crate::arith::zip_map(b, b, |x, y| x * y).expect("same shape");
    let ab = crate::arith::zip_map(a, b, |x, y| x * y).expect("same shape");
    let mu_aa = gaussian_blur(&aa, sigma);
    let mu_bb = gaussian_blur(&bb, sigma);
    let mu_ab = gaussian_blur(&ab, sigma);

    let mut acc = 0.0f64;
    for i in 0..a.len() {
        let ma = mu_a.samples()[i];
        let mb = mu_b.samples()[i];
        let va = (mu_aa.samples()[i] - ma * ma).max(0.0);
        let vb = (mu_bb.samples()[i] - mb * mb).max(0.0);
        let cov = mu_ab.samples()[i] - ma * mb;
        let num = (2.0 * ma * mb + c1) * (2.0 * cov + c2);
        let den = (ma * ma + mb * mb + c1) * (va + vb + c2);
        acc += (num / den) as f64;
    }
    Ok(acc / a.len() as f64)
}

/// A compact quality report comparing a processed frame to a reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Mean absolute error, code values.
    pub mae: f64,
    /// Peak signal-to-noise ratio, dB.
    pub psnr_db: f64,
    /// Mean SSIM.
    pub ssim: f64,
}

/// Computes MAE, PSNR and SSIM in one pass.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn quality(
    reference: &Plane<f32>,
    processed: &Plane<f32>,
) -> Result<QualityReport, FrameError> {
    Ok(QualityReport {
        mae: crate::arith::mae(reference, processed)?,
        psnr_db: crate::arith::psnr(reference, processed, 255.0)?,
        ssim: ssim(reference, processed)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> Plane<f32> {
        Plane::from_fn(w, h, |x, y| {
            128.0 + 60.0 * ((x as f32 * 0.3).sin() * (y as f32 * 0.23).cos())
        })
    }

    #[test]
    fn identical_planes_have_ssim_one() {
        let p = textured(32, 32);
        let s = ssim(&p, &p).unwrap();
        assert!((s - 1.0).abs() < 1e-6, "ssim {s}");
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let p = textured(32, 32);
        let mut slightly = p.clone();
        let mut heavily = p.clone();
        let mut i = 0u64;
        slightly.map_in_place(|v| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            v + ((i >> 33) % 7) as f32 - 3.0
        });
        let mut j = 0u64;
        heavily.map_in_place(|v| {
            j = j.wrapping_mul(6364136223846793005).wrapping_add(99);
            v + ((j >> 33) % 81) as f32 - 40.0
        });
        let s_light = ssim(&p, &slightly).unwrap();
        let s_heavy = ssim(&p, &heavily).unwrap();
        assert!(s_light > s_heavy, "{s_light} vs {s_heavy}");
        assert!(s_light > 0.9);
        assert!(s_heavy < 0.9);
    }

    #[test]
    fn constant_shift_barely_moves_ssim_but_kills_psnr() {
        // SSIM is designed to forgive luminance shifts more than noise.
        let p = textured(32, 32);
        let mut shifted = p.clone();
        shifted.map_in_place(|v| v + 10.0);
        let q = quality(&p, &shifted).unwrap();
        assert!(q.ssim > 0.9, "ssim {}", q.ssim);
        assert!(q.psnr_db < 30.0, "psnr {}", q.psnr_db);
        assert!((q.mae - 10.0).abs() < 1e-3);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Plane::<f32>::filled(4, 4, 0.0);
        let b = Plane::<f32>::filled(5, 4, 0.0);
        assert!(ssim(&a, &b).is_err());
        assert!(quality(&a, &b).is_err());
    }

    #[test]
    fn multiplexed_frame_ssim_shows_the_artifact() {
        // A ±20 chessboard is very visible to SSIM on a single frame —
        // that's why InFrame needs the temporal trick; the *pair average*
        // is pristine.
        let video = Plane::filled(64, 64, 127.0);
        let perturbed = Plane::from_fn(64, 64, |x, y| {
            if ((x / 4) + (y / 4)) % 2 == 1 {
                147.0
            } else {
                127.0
            }
        });
        let single = ssim(&video, &perturbed).unwrap();
        assert!(single < 0.7, "single-frame ssim {single}");
        let average =
            crate::arith::zip_map(&perturbed, &video, |a, b| (a + 2.0 * b - a) / 2.0).unwrap(); // == video
        let avg_ssim = ssim(&video, &average).unwrap();
        // f32 cancellation in the local-variance terms costs a little
        // precision on flat fields.
        assert!((avg_ssim - 1.0).abs() < 1e-3, "avg ssim {avg_ssim}");
    }
}
