//! # inframe-bench
//!
//! The Criterion benchmark harness that regenerates every figure of the
//! InFrame paper and times the computational kernels behind them.
//!
//! One bench target per figure (run with
//! `cargo bench -p inframe-bench --bench <name>`):
//!
//! | Bench | Regenerates |
//! |---|---|
//! | `fig3_naive_designs` | Figure 3 — naive schemes vs InFrame flicker table |
//! | `fig5_smoothing_waveform` | Figure 5 — smoothing waveform + low-pass response |
//! | `fig6_flicker_perception` | Figure 6 — simulated 8-user study, both panels |
//! | `fig7_throughput` | Figure 7 — throughput / availability / error table |
//! | `ablations` | §5 parameter studies (δ, τ, envelope, coding, shutter, threshold) |
//! | `ablation_cost` | §5 practical issue 3 — encode/decode compute cost per frame |
//!
//! Each bench **prints the regenerated figure** before timing, so
//! `cargo bench` doubles as the experiment reproduction run; the measured
//! numbers land in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use inframe_sim::pipeline::{Simulation, SimulationConfig};
use inframe_sim::{Scale, Scenario};

/// Standard quick-scale simulation config shared by the benches.
pub fn quick_config(cycles: u32, seed: u64) -> SimulationConfig {
    let s = Scale::Quick;
    SimulationConfig {
        inframe: s.inframe(),
        display: s.display(),
        camera: s.camera(),
        geometry: s.geometry(),
        cycles,
        seed,
    }
}

/// Runs one quick-scale simulation and returns its goodput (used as a
/// compact benchmark body).
pub fn quick_goodput(scenario: Scenario, cycles: u32, seed: u64) -> f64 {
    let config = quick_config(cycles, seed);
    let sim = Simulation::new(config);
    sim.run(scenario.source(config.inframe.display_w, config.inframe.display_h, seed))
        .report()
        .goodput_kbps()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_goodput_is_positive() {
        assert!(quick_goodput(Scenario::Gray, 3, 1) > 0.0);
    }
}
