//! Figure 6 — the simulated flicker-perception user study.
//!
//! Prints both panels (mean ± std on the 0–4 scale), then times one rated
//! condition (multiplex → display → HVS → 8 observers).

use criterion::{criterion_group, criterion_main, Criterion};
use inframe_display::DisplayConfig;
use inframe_sim::fig6;

fn regenerate_figure() {
    let display = DisplayConfig::eizo_fg2421();
    let fig = fig6::run(&display, 2014);
    println!("\n=== Figure 6 (left): flicker vs color brightness, τ = 12 ===");
    for s in fig.left_series() {
        print!("{}", s.render());
    }
    println!("=== Figure 6 (right): flicker vs amplitude δ ===");
    for s in fig.right_series() {
        print!("{}", s.render());
    }
    let violations = fig.check_shape();
    if violations.is_empty() {
        println!("shape vs paper: PASS\n");
    } else {
        println!("shape vs paper: {violations:?}\n");
    }
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let display = DisplayConfig::eizo_fg2421();
    let mut group = c.benchmark_group("fig6_user_study");
    group.sample_size(10);
    group.bench_function("rate_one_condition", |b| {
        b.iter(|| fig6::rate_condition(127.0, 20.0, 12, &display, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
