//! Channel fault matrix: time-to-relock and availability per fault
//! class, over the full pixel chain with the seeded fault injector.
//!
//! ```sh
//! cargo bench -p inframe-bench --bench faults
//! ```
//!
//! Prints one line per fault class and writes `BENCH_faults.json` to the
//! repository root. All timing is simulated channel time (true display
//! cycles) — no wall clock touches any number, so records are
//! reproducible bit-for-bit from the seeds.

use inframe_sim::faults::{run_fault_scenario, FaultKind, FaultOutcome, FaultScenarioConfig};
use inframe_sim::pipeline::SimulationConfig;
use inframe_sim::scenarios::Scale;
use inframe_sim::FaultWindow;

const SEED: u64 = 11;
const OBJECT_LEN: usize = 96;
const CYCLES: u32 = 80;
const FAULT_FROM: u64 = 6;
const FAULT_UNTIL: u64 = 12;

struct Sample {
    class: String,
    out: FaultOutcome,
}

fn config(faults: Vec<FaultWindow>) -> FaultScenarioConfig {
    let scale = Scale::Quick;
    let sim = SimulationConfig {
        inframe: scale.inframe(),
        display: scale.display(),
        camera: scale.camera(),
        geometry: scale.geometry(),
        cycles: CYCLES,
        seed: SEED,
    };
    let mut cfg = FaultScenarioConfig::baseline(sim, OBJECT_LEN);
    cfg.object_id = 7;
    cfg.faults = faults;
    cfg
}

fn window(kind: FaultKind) -> FaultWindow {
    FaultWindow {
        kind,
        from_cycle: FAULT_FROM,
        until_cycle: FAULT_UNTIL,
    }
}

fn run(class: &str, faults: Vec<FaultWindow>) -> Sample {
    let out = run_fault_scenario(&config(faults));
    let relock = out.relock_cycles.map_or("-".into(), |c| format!("{c} cyc"));
    let eps = out.epsilon.map_or("-".into(), |e| format!("{e:.3}"));
    println!(
        "{class:<16} complete {:<5}  avail {:>5.1}%  lock losses {}  relock {:<7}  ε {}",
        out.completed,
        out.availability * 100.0,
        out.lock_losses,
        relock,
        eps,
    );
    Sample {
        class: class.to_string(),
        out,
    }
}

fn json_entry(s: &Sample) -> String {
    let opt_f = |v: Option<f64>| v.map_or("null".into(), |x| format!("{x:.6}"));
    let opt_u = |v: Option<u64>| v.map_or("null".into(), |x| x.to_string());
    format!(
        "    {{\"fault_class\": \"{}\", \"completed\": {}, \"object_ok\": {}, \
         \"availability\": {:.6}, \"error_rate\": {:.6}, \"lock_losses\": {}, \
         \"locked_at_end\": {}, \"time_to_relock_cycles\": {}, \"epsilon\": {}, \
         \"completion_cycle\": {}, \"captures_delivered\": {}, \"captures_dropped\": {}, \
         \"captures_duplicated\": {}}}",
        s.class,
        s.out.completed,
        s.out.object_ok,
        s.out.availability,
        s.out.error_rate,
        s.out.lock_losses,
        s.out.locked_at_end,
        opt_u(s.out.relock_cycles),
        opt_f(s.out.epsilon),
        opt_u(s.out.completion_cycle),
        s.out.captures.0,
        s.out.captures.1,
        s.out.captures.2,
    )
}

fn main() {
    println!(
        "fault matrix — {OBJECT_LEN} B object, Quick scale, faults on cycles \
         {FAULT_FROM}..{FAULT_UNTIL} (simulated time)"
    );
    println!();

    let classes: Vec<(&str, Vec<FaultWindow>)> = vec![
        ("clean", vec![]),
        ("drop", vec![window(FaultKind::Drop { rate: 0.5 })]),
        (
            "duplicate",
            vec![window(FaultKind::Duplicate { rate: 0.5 })],
        ),
        (
            "clock_skew",
            vec![window(FaultKind::ClockSkew {
                skew: 2e-3,
                jitter_s: 1.5e-3,
            })],
        ),
        (
            "exposure_drift",
            vec![window(FaultKind::ExposureDrift {
                gain_amplitude: 0.2,
                awb_shift: 6.0,
                period_s: 0.35,
            })],
        ),
        (
            "occlusion",
            vec![window(FaultKind::Occlusion {
                frac: 0.25,
                level: 20.0,
            })],
        ),
        (
            "desync",
            vec![FaultWindow {
                kind: FaultKind::Desync { shift_s: 0.05 },
                from_cycle: 8,
                until_cycle: 9,
            }],
        ),
    ];

    let samples: Vec<Sample> = classes
        .into_iter()
        .map(|(class, faults)| run(class, faults))
        .collect();

    println!();
    let body = samples
        .iter()
        .map(json_entry)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"faults\",\n  \"seed\": {SEED}, \"object_bytes\": {OBJECT_LEN}, \
         \"cycles\": {CYCLES},\n  \"samples\": [\n{body}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, &json).expect("write bench json");
    println!("wrote {path}");
}
