//! Network-layer operating points: aggregate goodput of spatial
//! sub-channels vs one whole-frame channel, occlusion overhead, and
//! multi-stream QoS latency — all over the GOB-granularity channel.
//!
//! ```sh
//! cargo bench -p inframe-bench --bench net_streams
//! ```
//!
//! Prints one line per operating point and writes `BENCH_net.json` to
//! the repository root. The channel model is identical for the tiling
//! comparison: a fixed "dirty" 5×5-GOB patch of the frame (30% GOB
//! erasure) plus 1% uniform background noise, same seed. Whole-frame
//! streamed symbols interleave across the patch, so a single channel
//! pays its erasure on every symbol; the 5×3 tiling confines the damage
//! to one sub-channel that the striped carousel repairs from the other
//! fourteen — aggregate goodput must be ≥ 2× single-channel (ISSUE
//! acceptance, asserted below). A second pair of runs measures a fully
//! occluded tile vs a clean channel. All timing is simulated channel
//! time; records reproduce bit-for-bit from the seeds.

use inframe_core::layout::DataLayout;
use inframe_core::region::RegionMap;
use inframe_core::InFrameConfig;
use inframe_net::stream::DeadlineClass;
use inframe_net::{AddressFilter, MacAddr, NetReceiver, NetSender, StreamQos};

const DST: u16 = 0x0042;
const BULK_BYTES: usize = 4096;
const TICKER: &[u8] = b"HOME 3 : 1 AWAY";
const MAX_CYCLES: u32 = 12000;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bulk_payload() -> Vec<u8> {
    (0..BULK_BYTES as u32).map(|i| (i * 17 + 5) as u8).collect()
}

/// Applies the shared channel: every GOB in the dirty `patch` is erased
/// with probability `patch_p` (its erasure at the sender's operating
/// point), every other GOB with probability `noise`. One RNG draw per
/// GOB regardless of outcome keeps runs comparable across settings.
fn transmit(
    payload: &[bool],
    patch: &[bool],
    patch_p: f64,
    bits_per_gob: usize,
    noise: f64,
    rng: &mut u64,
) -> Vec<Option<bool>> {
    let mut seen: Vec<Option<bool>> = payload.iter().map(|&b| Some(b)).collect();
    for (g, &in_patch) in patch.iter().enumerate() {
        let draw = (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
        if draw < if in_patch { patch_p } else { noise } {
            seen[g * bits_per_gob..(g + 1) * bits_per_gob].fill(None);
        }
    }
    seen
}

struct Sample {
    scenario: &'static str,
    tiles: usize,
    bytes: usize,
    cycles: Option<u32>,
    goodput_bps: f64,
}

fn goodput(bytes: usize, cycles: Option<u32>, cycle_s: f64) -> f64 {
    cycles.map_or(0.0, |c| (bytes * 8) as f64 / ((c + 1) as f64 * cycle_s))
}

fn report(s: &Sample) {
    let cycles = s.cycles.map_or("-".into(), |c| c.to_string());
    println!(
        "{:<22} tiles {:>2}  bytes {:>5}  cycles {:>5}  goodput {:>9.1} b/s",
        s.scenario, s.tiles, s.bytes, cycles, s.goodput_bps,
    );
}

/// Streams one 4 KiB bulk transfer to `DST` through the shared channel
/// under the given tiling, returning the completion sample.
#[allow(clippy::too_many_arguments)]
fn run_bulk(
    scenario: &'static str,
    layout: &DataLayout,
    tiles: (usize, usize),
    patch: &[bool],
    patch_p: f64,
    noise: f64,
    seed: u64,
    cycle_s: f64,
) -> Sample {
    let map = RegionMap::new(layout, tiles.0, tiles.1);
    let bits_per_gob = map.region_payload_bits() / map.gobs_per_region();
    let mut tx = NetSender::new(map.clone(), MacAddr::new(0x0001));
    tx.open_stream(0, StreamQos::bulk(), 64);
    let data = bulk_payload();
    tx.send_datagram(0, MacAddr::new(DST), &data);

    let mut rx = NetReceiver::new(map.clone(), AddressFilter::new(MacAddr::new(DST)));
    rx.open_stream(0, 128, 64, 1 << 16);

    let mut rng = seed;
    let mut out = Vec::new();
    let mut done = None;
    for cycle in 0..MAX_CYCLES {
        let payload = tx.next_cycle_payload();
        rx.push_cycle(&transmit(
            &payload,
            patch,
            patch_p,
            bits_per_gob,
            noise,
            &mut rng,
        ));
        if rx.pop_datagram(0, &mut out) {
            assert_eq!(out, data, "{scenario}: transfer corrupted");
            done = Some(cycle);
            break;
        }
    }
    let s = Sample {
        scenario,
        tiles: map.num_regions(),
        bytes: BULK_BYTES,
        cycles: done,
        goodput_bps: goodput(BULK_BYTES, done, cycle_s),
    };
    report(&s);
    s
}

/// Bulk + interactive ticker multiplexed on one tiled channel: the QoS
/// scheduler must land the ticker long before the bulk transfer ends.
fn run_qos(
    layout: &DataLayout,
    patch: &[bool],
    noise: f64,
    seed: u64,
    cycle_s: f64,
) -> Vec<Sample> {
    let map = RegionMap::new(layout, 5, 3);
    let bits_per_gob = map.region_payload_bits() / map.gobs_per_region();
    let mut tx = NetSender::new(map.clone(), MacAddr::new(0x0001));
    tx.open_stream(0, StreamQos::bulk(), 64);
    tx.open_stream(
        1,
        StreamQos {
            priority: 2,
            weight: 1,
            deadline: DeadlineClass::Interactive,
        },
        32,
    );
    let data = bulk_payload();
    tx.send_datagram(0, MacAddr::new(DST), &data);
    tx.send_datagram(1, MacAddr::BROADCAST, TICKER);

    let mut rx = NetReceiver::new(map.clone(), AddressFilter::new(MacAddr::new(DST)));
    rx.open_stream(0, 128, 64, 1 << 16);
    rx.open_stream(1, 128, 32, 1 << 12);

    let mut rng = seed;
    let mut out = Vec::new();
    let (mut bulk_done, mut tick_done) = (None, None);
    for cycle in 0..MAX_CYCLES {
        let payload = tx.next_cycle_payload();
        rx.push_cycle(&transmit(
            &payload,
            patch,
            1.0,
            bits_per_gob,
            noise,
            &mut rng,
        ));
        if bulk_done.is_none() && rx.pop_datagram(0, &mut out) {
            assert_eq!(out, data, "qos: bulk corrupted");
            bulk_done = Some(cycle);
        }
        if tick_done.is_none() && rx.pop_datagram(1, &mut out) {
            assert_eq!(out, TICKER, "qos: ticker corrupted");
            tick_done = Some(cycle);
        }
        if bulk_done.is_some() && tick_done.is_some() {
            break;
        }
    }
    let samples = vec![
        Sample {
            scenario: "qos_bulk",
            tiles: map.num_regions(),
            bytes: BULK_BYTES,
            cycles: bulk_done,
            goodput_bps: goodput(BULK_BYTES, bulk_done, cycle_s),
        },
        Sample {
            scenario: "qos_interactive",
            tiles: map.num_regions(),
            bytes: TICKER.len(),
            cycles: tick_done,
            goodput_bps: goodput(TICKER.len(), tick_done, cycle_s),
        },
    ];
    for s in &samples {
        report(s);
    }
    assert!(
        tick_done.expect("ticker delivered") <= bulk_done.expect("bulk delivered"),
        "QoS inversion: interactive ticker landed after the bulk transfer"
    );
    samples
}

fn json_entry(s: &Sample) -> String {
    let cycles = s.cycles.map_or("null".into(), |c| c.to_string());
    format!(
        "    {{\"scenario\": \"{}\", \"tiles\": {}, \"bytes\": {}, \
         \"cycles_to_complete\": {}, \"goodput_bps\": {:.3}}}",
        s.scenario, s.tiles, s.bytes, cycles, s.goodput_bps,
    )
}

fn main() {
    let cfg = InFrameConfig::paper();
    let layout = DataLayout::from_config(&cfg);
    let cycle_s = cfg.tau as f64 / cfg.refresh_hz;
    // The dirty patch is tile 7 of the 5×3 grid — a frame property, the
    // same dead GOB set no matter how the sender tiles the frame.
    let patch_map = RegionMap::new(&layout, 5, 3);
    let total_gobs = patch_map.num_regions() * patch_map.gobs_per_region();
    let mut patch = vec![false; total_gobs];
    for &g in patch_map.region_gobs(7) {
        patch[g as usize] = true;
    }
    let noise = 0.01;
    // 30% patch erasure: enough to matter, yet both tilings complete.
    // Whole-frame streamed symbols interleave across the patch, so a
    // single channel pays for the patch on *every* symbol; the tiling
    // confines the damage to one of 15 sub-channels whose striped
    // carousel shard the other 14 repair.
    let patch_p = 0.3;

    println!(
        "net streams — 4 KiB transfer, dirty tile 7/15, {:.0}% background noise",
        noise * 100.0
    );
    println!();

    let mut samples = Vec::new();
    let single = run_bulk(
        "single_channel",
        &layout,
        (1, 1),
        &patch,
        patch_p,
        noise,
        0xA11CE,
        cycle_s,
    );
    let tiled = run_bulk(
        "spatial_tiles",
        &layout,
        (5, 3),
        &patch,
        patch_p,
        noise,
        0xA11CE,
        cycle_s,
    );
    let ratio = tiled.goodput_bps / single.goodput_bps.max(f64::MIN_POSITIVE);
    println!("aggregate goodput ratio (tiled / single): {ratio:.2}x");
    assert!(
        tiled.cycles.is_some() && single.cycles.is_some(),
        "both configurations must complete the transfer"
    );
    assert!(
        ratio >= 2.0,
        "spatial tiling must deliver >= 2x single-channel goodput, got {ratio:.2}x"
    );
    samples.push(single);
    samples.push(tiled);

    // Occlusion overhead: one tile fully dead the whole run (a viewer
    // standing in front of it) vs the same tiling on a clean channel.
    let clean = run_bulk(
        "spatial_clean",
        &layout,
        (5, 3),
        &patch,
        0.0,
        noise,
        0xA11CE,
        cycle_s,
    );
    let occluded = run_bulk(
        "spatial_occluded",
        &layout,
        (5, 3),
        &patch,
        1.0,
        noise,
        0xA11CE,
        cycle_s,
    );
    let occ_cycles = occluded.cycles.expect("occluded run completes") + 1;
    let clean_cycles = clean.cycles.expect("clean run completes") + 1;
    let overhead = occ_cycles as f64 / clean_cycles as f64;
    println!("occlusion overhead (dirty tile / clean): {overhead:.2}x");
    assert!(
        overhead <= 2.0,
        "occluded receiver must complete within 2x clean, got {overhead:.2}x"
    );
    samples.push(clean);
    samples.push(occluded);

    samples.extend(run_qos(&layout, &patch, noise, 0xBEEF5, cycle_s));

    println!();
    let body = samples
        .iter()
        .map(json_entry)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"net_streams\",\n  \"object_bytes\": {BULK_BYTES},\n  \
         \"background_noise\": {noise:.2},\n  \"goodput_ratio\": {ratio:.3},\n  \
         \"occlusion_overhead\": {overhead:.3},\n  \"samples\": [\n{body}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(path, &json).expect("write bench json");
    println!("wrote {path}");
}
