//! Figure 7 — throughput, available-GOB ratio and GOB error rate.
//!
//! Prints the regenerated figure (quick scale by default; set
//! `INFRAME_PAPER_SCALE=1` for the full 1920×1080 geometry), then times
//! the end-to-end channel per data cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inframe_bench::quick_goodput;
use inframe_sim::{fig7, Scale, Scenario};

fn regenerate_figure() {
    let paper = std::env::var("INFRAME_PAPER_SCALE").is_ok_and(|v| v == "1");
    let (scale, cycles, label) = if paper {
        (Scale::Paper, 12, "paper scale (1920x1080)")
    } else {
        (
            Scale::Quick,
            8,
            "quick scale (240x168; INFRAME_PAPER_SCALE=1 for full)",
        )
    };
    println!("\n=== Figure 7: link performance — {label} ===");
    let fig = fig7::run(scale, cycles, 2014);
    print!("{}", fig.render());
    let violations = fig.check_shape();
    if violations.is_empty() {
        println!("shape vs paper: PASS\n");
    } else {
        println!("shape vs paper: {violations:?}\n");
    }
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig7_end_to_end");
    group.sample_size(10);
    for scenario in [Scenario::Gray, Scenario::Video] {
        group.bench_with_input(
            BenchmarkId::new("quick_3cycles", scenario.label()),
            &scenario,
            |b, &s| b.iter(|| quick_goodput(s, 3, 1)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
