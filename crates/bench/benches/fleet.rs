//! Fleet scaling: the batched demux path against the looping
//! single-receiver baseline, plus the per-core receiver capacity of the
//! vectorized fleet and a Quick-scale population run.
//!
//! ```sh
//! cargo bench -p inframe-bench --bench fleet
//! ```
//!
//! Three measurements, all written to `BENCH_fleet.json` at the
//! repository root:
//!
//! 1. **Batched vs sequential** — score one 1080p quantized capture for
//!    N = 1024 receivers through [`BatchScorer`] (shared sweeps + class
//!    folds + assignment fan-out) against the naive fleet that
//!    materializes each receiver's perturbed capture and runs its own
//!    [`Demultiplexer`]. The sequential side is measured at N = 16 and
//!    extrapolated linearly (it is embarrassingly per-receiver); the
//!    acceptance floor is a ×20 speedup.
//! 2. **Per-core capacity** — one full fleet cycle (scored captures,
//!    fan-out merges, per-receiver verdict extraction) at N = 8192 on a
//!    single worker, expressed as receivers per core per real-time
//!    cycle. The acceptance floor is 5 000.
//! 3. **Population run** — a Quick-scale 512-receiver fleet through the
//!    real sender → display → camera → session chain, reporting the
//!    completion CDF, availability percentiles, and decode-ε tails.

use inframe_core::batch::{BatchScorer, ScoreClass, SKIP, UNREADABLE};
use inframe_core::config::KernelBackend;
use inframe_core::demux::{Demultiplexer, RegionCache};
use inframe_core::parallel::ParallelEngine;
use inframe_core::InFrameConfig;
use inframe_frame::geometry::Homography;
use inframe_frame::perturb::{materialized, CaptureTransform, OcclusionRect};
use inframe_frame::Plane;
use inframe_obs::Telemetry;
use inframe_sim::fleet::{run_fleet_with_telemetry, FleetConfig};
use std::sync::Arc;
use std::time::Instant;

/// A fleet-realistic photometric population at 1080p: the AE ladder
/// (five settle points), white-balance shifts (alias the identity sweep),
/// and one occluded cohort.
fn population(sensor_w: usize, sensor_h: usize) -> (Vec<CaptureTransform>, Vec<ScoreClass>) {
    let mut transforms = Vec::new();
    for k in -2i32..=2 {
        let gain_q12 = inframe_camera::perturb::ae_gain_q12(256, k);
        for awb_raw in [-32i16, 0, 32] {
            transforms.push(CaptureTransform {
                gain_q12,
                awb_raw,
                occlusion: None,
            });
        }
    }
    transforms.push(CaptureTransform {
        occlusion: Some(OcclusionRect {
            x0: sensor_w / 4,
            y0: sensor_h / 4,
            w: sensor_w / 3,
            h: sensor_h / 3,
            level_raw: 128 * 128,
        }),
        ..CaptureTransform::IDENTITY
    });
    let mut classes: Vec<ScoreClass> = (0..transforms.len() as u32)
        .map(ScoreClass::clean)
        .collect();
    // Two noised cohorts on the identity sweep (σ = 0.25 and 0.5 code
    // values) — folds, not sweeps, so they are nearly free.
    let identity = transforms
        .iter()
        .position(|t| *t == CaptureTransform::IDENTITY)
        .expect("ladder contains the identity") as u32;
    for sigma in [0.25, 0.5] {
        classes.push(ScoreClass {
            transform: identity,
            noise_raw_sq: ScoreClass::noise_raw_sq_from_sigma(sigma),
        });
    }
    (transforms, classes)
}

fn capture(sensor_w: usize, sensor_h: usize) -> Plane<f32> {
    Plane::from_fn(sensor_w, sensor_h, |x, y| {
        127.0 + if (x / 3 + y / 3) % 2 == 0 { 8.0 } else { -8.0 }
    })
}

struct SpeedupSample {
    n: usize,
    n_ref: usize,
    distinct_transforms: usize,
    distinct_classes: usize,
    batched_ms_per_capture: f64,
    sequential_ms_per_capture_per_receiver: f64,
    speedup: f64,
}

/// Measurement 1: batched fan-out vs looping single-receiver demux on
/// one core, 1080p quantized.
fn measure_speedup(
    cfg: InFrameConfig,
    cache: &Arc<RegionCache>,
    sw: usize,
    sh: usize,
) -> SpeedupSample {
    let n = 1024usize;
    let n_ref = 16usize;
    let rounds = 4u32;
    let (transforms, classes) = population(sw, sh);
    let engine = Arc::new(ParallelEngine::new(1));
    let cap = capture(sw, sh);

    // Batched side: one scorer, N receivers fanned over the class set.
    let mut scorer = BatchScorer::new(cfg, Arc::clone(cache), Arc::clone(&engine));
    let nb = scorer.num_blocks();
    let assign: Vec<u32> = (0..n).map(|r| (r % classes.len()) as u32).collect();
    let mut best = vec![UNREADABLE; n * nb];
    scorer.score_classes(&cap, &transforms, &classes);
    scorer.merge_assigned(&assign, &mut best);
    let t = Instant::now();
    for _ in 0..rounds {
        scorer.score_classes(&cap, &transforms, &classes);
        scorer.merge_assigned(&assign, &mut best);
    }
    let batched_ms = t.elapsed().as_secs_f64() * 1e3 / rounds as f64;

    // Sequential baseline: each receiver owns a streaming demultiplexer
    // and scores its own (pre-materialized — generous to the baseline)
    // perturbed capture. Embarrassingly per-receiver, so N_ref receivers
    // extrapolate linearly to N.
    let planes: Vec<Plane<f32>> = (0..n_ref)
        .map(|r| {
            let class = &classes[r % classes.len()];
            materialized(&cap, &transforms[class.transform as usize])
        })
        .collect();
    let mut demuxes: Vec<Demultiplexer> = (0..n_ref)
        .map(|_| Demultiplexer::with_cache(cfg, Arc::clone(cache), Arc::clone(&engine)))
        .collect();
    let d = demuxes[0].cycle_duration();
    for (demux, plane) in demuxes.iter_mut().zip(&planes) {
        demux.push_capture(plane, 0.01);
    }
    let t = Instant::now();
    for i in 1..=rounds as u64 {
        for (demux, plane) in demuxes.iter_mut().zip(&planes) {
            demux.push_capture(plane, i as f64 * d + 0.01);
        }
    }
    let seq_ms_per_rx = t.elapsed().as_secs_f64() * 1e3 / (rounds as usize * n_ref) as f64;

    SpeedupSample {
        n,
        n_ref,
        distinct_transforms: transforms.len(),
        distinct_classes: classes.len(),
        batched_ms_per_capture: batched_ms,
        sequential_ms_per_capture_per_receiver: seq_ms_per_rx,
        speedup: seq_ms_per_rx * n as f64 / batched_ms,
    }
}

struct CapacitySample {
    n: usize,
    captures_per_cycle: u32,
    cycle_s: f64,
    work_ms_per_cycle: f64,
    receivers_per_core_per_cycle: f64,
}

/// Measurement 2: one full fleet cycle of batched work at N = 8192 on a
/// single worker — scored captures, fan-out merges, and per-receiver
/// verdict extraction — against the real-time cycle duration.
fn measure_capacity(
    cfg: InFrameConfig,
    cache: &Arc<RegionCache>,
    sw: usize,
    sh: usize,
) -> CapacitySample {
    let n = 8192usize;
    // At the paper's 30 FPS camera over 0.1 s cycles, three captures land
    // per cycle and the stable-half phase gate scores two of them.
    let captures_per_cycle = 2u32;
    let rounds = 3u32;
    let (transforms, classes) = population(sw, sh);
    let engine = Arc::new(ParallelEngine::new(1));
    let cap = capture(sw, sh);
    let mut scorer = BatchScorer::new(cfg, Arc::clone(cache), Arc::clone(&engine));
    let nb = scorer.num_blocks();
    let assign: Vec<u32> = (0..n)
        .map(|r| {
            if r % 16 == 7 {
                SKIP // dropped capture
            } else {
                (r % classes.len()) as u32
            }
        })
        .collect();
    let mut best = vec![UNREADABLE; n * nb];
    let mut row = Vec::with_capacity(nb);
    // Warm-up one full cycle.
    scorer.score_classes(&cap, &transforms, &classes);
    scorer.merge_assigned(&assign, &mut best);
    scorer.verdicts_into(&best[..nb], &mut row);
    let t = Instant::now();
    for _ in 0..rounds {
        for _ in 0..captures_per_cycle {
            scorer.score_classes(&cap, &transforms, &classes);
            scorer.merge_assigned(&assign, &mut best);
        }
        for r in 0..n {
            scorer.verdicts_into(&best[r * nb..(r + 1) * nb], &mut row);
        }
        best.fill(UNREADABLE);
    }
    let work_s = t.elapsed().as_secs_f64() / rounds as f64;
    let cycle_s = cfg.tau as f64 / cfg.refresh_hz;
    CapacitySample {
        n,
        captures_per_cycle,
        cycle_s,
        work_ms_per_cycle: work_s * 1e3,
        receivers_per_core_per_cycle: n as f64 * cycle_s / work_s,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("fleet scaling — {cores} core(s) available");
    println!();

    // 1080p quantized, the paper's 2/3 sensor registration (the same
    // operating point BENCH_pipeline's demux stage measures).
    let base = InFrameConfig::paper();
    let cfg = InFrameConfig {
        kernel: KernelBackend::Quantized,
        ..base
    };
    let (sw, sh) = (base.display_w * 2 / 3, base.display_h * 2 / 3);
    let reg = Homography::scale(
        sw as f64 / base.display_w as f64,
        sh as f64 / base.display_h as f64,
    );
    let cache = RegionCache::build(&cfg, &reg, sw, sh);

    let s = measure_speedup(cfg, &cache, sw, sh);
    println!(
        "batched  1080p quantized: {:7.2} ms/capture for N={} ({} transforms, {} classes)",
        s.batched_ms_per_capture, s.n, s.distinct_transforms, s.distinct_classes
    );
    println!(
        "looping  1080p quantized: {:7.3} ms/capture/receiver (measured at N={})",
        s.sequential_ms_per_capture_per_receiver, s.n_ref
    );
    println!("speedup at N={}: ×{:.1}", s.n, s.speedup);
    assert!(
        s.speedup >= 20.0,
        "batched path must beat the looping baseline ×20 at N={}, got ×{:.1}",
        s.n,
        s.speedup
    );

    let c = measure_capacity(cfg, &cache, sw, sh);
    println!(
        "capacity 1080p quantized: {:7.2} ms/cycle of fleet work at N={} \
         ({} scored captures + verdicts) → {:.0} receivers/core/cycle",
        c.work_ms_per_cycle, c.n, c.captures_per_cycle, c.receivers_per_core_per_cycle
    );
    assert!(
        c.receivers_per_core_per_cycle >= 5000.0,
        "fleet capacity must reach 5000 receivers/core/cycle, got {:.0}",
        c.receivers_per_core_per_cycle
    );
    println!();

    // Population run: Quick scale, 512 heterogeneous receivers.
    let fleet_cfg = FleetConfig::quick(512, 16, 7);
    let tele = Telemetry::new();
    let t = Instant::now();
    let report = run_fleet_with_telemetry(&fleet_cfg, &tele);
    let fleet_s = t.elapsed().as_secs_f64();
    let cdf_cycles = [2u64, 4, 8, 12, 16];
    println!(
        "fleet    quick: {} receivers, {} cycles, {} bins → {} completed in {:.2} s \
         ({} classes, {} captures scored, {} drops)",
        report.receivers,
        report.cycles,
        report.phase_bins,
        report.completed,
        fleet_s,
        report.distinct_classes,
        report.captures_scored,
        report.dropped
    );
    for &cyc in &cdf_cycles {
        println!(
            "  completion CDF @ {cyc:2} cycles: {:.3}",
            report.completion_cdf(cyc)
        );
    }
    println!(
        "  availability p10/p50/p90: {:.3} / {:.3} / {:.3}",
        report.availability_percentile(0.1),
        report.availability_percentile(0.5),
        report.availability_percentile(0.9)
    );
    println!(
        "  decode ε (milli) p50/p90/p99: {} / {} / {}",
        report.eps_p50_milli, report.eps_p90_milli, report.eps_p99_milli
    );

    let cdf_json = cdf_cycles
        .iter()
        .map(|&cyc| {
            format!(
                "{{\"cycles\": {cyc}, \"fraction\": {:.4}}}",
                report.completion_cdf(cyc)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let completion_p = |q: f64| {
        report
            .completion_percentile(q)
            .map_or("null".to_string(), |v| v.to_string())
    };
    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"machine_cores\": {cores},\n  \
         \"speedup\": {{\"scale\": \"1080p\", \"backend\": \"quantized\", \"n\": {}, \"n_ref\": {}, \
         \"distinct_transforms\": {}, \"distinct_classes\": {}, \
         \"batched_ms_per_capture\": {:.3}, \"sequential_ms_per_capture_per_receiver\": {:.4}, \
         \"speedup\": {:.1}}},\n  \
         \"capacity\": {{\"n\": {}, \"captures_per_cycle\": {}, \"cycle_s\": {:.3}, \
         \"work_ms_per_cycle\": {:.2}, \"receivers_per_core_per_cycle\": {:.0}}},\n  \
         \"fleet\": {{\"receivers\": {}, \"cycles\": {}, \"phase_bins\": {}, \
         \"distinct_classes\": {}, \"captures_scored\": {}, \"dropped\": {}, \
         \"completed\": {}, \"wall_s\": {:.2},\n    \
         \"completion_cdf\": [{cdf_json}],\n    \
         \"completion_cycles_p50\": {}, \"completion_cycles_p90\": {},\n    \
         \"availability_p10\": {:.4}, \"availability_p50\": {:.4}, \"availability_p90\": {:.4},\n    \
         \"eps_p50_milli\": {}, \"eps_p90_milli\": {}, \"eps_p99_milli\": {}}}\n}}\n",
        s.n,
        s.n_ref,
        s.distinct_transforms,
        s.distinct_classes,
        s.batched_ms_per_capture,
        s.sequential_ms_per_capture_per_receiver,
        s.speedup,
        c.n,
        c.captures_per_cycle,
        c.cycle_s,
        c.work_ms_per_cycle,
        c.receivers_per_core_per_cycle,
        report.receivers,
        report.cycles,
        report.phase_bins,
        report.distinct_classes,
        report.captures_scored,
        report.dropped,
        report.completed,
        fleet_s,
        completion_p(0.5),
        completion_p(0.9),
        report.availability_percentile(0.1),
        report.availability_percentile(0.5),
        report.availability_percentile(0.9),
        report.eps_p50_milli,
        report.eps_p90_milli,
        report.eps_p99_milli,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, &json).expect("write bench json");
    println!();
    println!("wrote {path}");
}
