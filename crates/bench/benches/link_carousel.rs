//! Transport-layer operating points: goodput, decode overhead ε and
//! time-to-first-object of the `inframe-link` fountain-coded carousel
//! over the GOB-granularity link simulator.
//!
//! ```sh
//! cargo bench -p inframe-bench --bench link_carousel
//! ```
//!
//! Prints one line per operating point and writes `BENCH_link.json` to
//! the repository root. All timing is simulated channel time (τ code
//! frames per cycle at the display refresh rate) — no wall clock touches
//! any number, so records are reproducible bit-for-bit from the seeds.

use inframe_sim::linksim::{BurstModel, LinkScenarioConfig, LinkScenarioOutcome};
use inframe_sim::run_link_scenario;

struct Sample {
    scenario: String,
    erasure: f64,
    join_cycle: u64,
    adaptive: bool,
    out: LinkScenarioOutcome,
}

fn run(scenario: &str, cfg: &LinkScenarioConfig) -> Sample {
    let out = run_link_scenario(cfg);
    let eps = out.epsilon_max.map_or("-".into(), |e| format!("{:.3}", e));
    let ttfo = out
        .time_to_first_object_s
        .map_or("-".into(), |t| format!("{:.2} s", t));
    println!(
        "{scenario:<26} erasure {:>4.0}%  complete {:<5}  goodput {:7.1} b/s  ε {:<6}  first object {}",
        cfg.erasure * 100.0,
        out.completed,
        out.goodput_bps,
        eps,
        ttfo,
    );
    Sample {
        scenario: scenario.to_string(),
        erasure: cfg.erasure,
        join_cycle: cfg.join_cycle,
        adaptive: cfg.adaptive,
        out,
    }
}

fn json_entry(s: &Sample) -> String {
    let opt = |v: Option<f64>| v.map_or("null".into(), |x| format!("{x:.6}"));
    let cycles = s
        .out
        .cycles_to_complete
        .map_or("null".into(), |c| c.to_string());
    format!(
        "    {{\"scenario\": \"{}\", \"erasure\": {:.2}, \"join_cycle\": {}, \"adaptive\": {}, \
         \"completed\": {}, \"cycles_to_complete\": {}, \"goodput_bps\": {:.3}, \
         \"epsilon\": {}, \"time_to_first_object_s\": {}, \"modulation_commands\": {}}}",
        s.scenario,
        s.erasure,
        s.join_cycle,
        s.adaptive,
        s.out.completed,
        cycles,
        s.out.goodput_bps,
        opt(s.out.epsilon_max),
        opt(s.out.time_to_first_object_s),
        s.out.commands.len(),
    )
}

fn main() {
    println!("link carousel — 4 KiB object, paper channel, RS-coded GOBs (simulated time)");
    println!();
    let mut samples = Vec::new();

    // Uniform-erasure sweep over the paper's operating range.
    for (i, erasure) in [0.0, 0.05, 0.10, 0.20, 0.30].into_iter().enumerate() {
        let cfg = LinkScenarioConfig::baseline(erasure, 9000 + i as u64);
        samples.push(run("erasure_sweep", &cfg));
    }

    // Late joiners: the receiver tunes in 60% and 90% of a carousel pass
    // (K = 79 cycles) after the broadcast started.
    for join_cycle in [48u64, 71] {
        let mut cfg = LinkScenarioConfig::baseline(0.10, 7000 + join_cycle);
        cfg.join_cycle = join_cycle;
        samples.push(run("late_join", &cfg));
    }

    // Scene-cut bursts on a harsh channel, fixed modulation vs the
    // adaptive δ/τ controller.
    for adaptive in [false, true] {
        let mut cfg = LinkScenarioConfig::baseline(0.35, 3100);
        cfg.burst = Some(BurstModel {
            period: 40,
            len: 6,
            erasure: 0.9,
        });
        cfg.adaptive = adaptive;
        samples.push(run("scene_cut_bursts", &cfg));
    }

    println!();
    let body = samples
        .iter()
        .map(json_entry)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"link_carousel\",\n  \"object_bytes\": 4096,\n  \"samples\": [\n{body}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_link.json");
    std::fs::write(path, &json).expect("write bench json");
    println!("wrote {path}");
}
