//! Pipeline throughput: frames/s and allocations/frame of the band-sliced
//! zero-copy render/demux engine, single- vs multi-thread, at 1080p and
//! 4K, on both kernel backends (f32 reference vs Q8.7 quantized).
//!
//! ```sh
//! cargo bench -p inframe-bench --bench pipeline_throughput
//! ```
//!
//! Prints one line per (backend, stage, scale, workers) and writes two
//! machine records to the repository root: `BENCH_pipeline.json` (the
//! reference-backend samples, schema unchanged since PR 1) and
//! `BENCH_kernels.json` (`"bench": "kernels"` — all samples keyed by
//! backend and SIMD dispatch level, with the machine's CPU features,
//! the forced-level 1080p sweep and the full receiver-chain numbers).
//! Worker counts beyond the
//! machine's core count still run correctly (output is bit-identical by
//! construction) but cannot speed anything up; the JSON records
//! `machine_cores` so readers can interpret the ratios.

use inframe_core::config::KernelBackend;
use inframe_core::demux::{Demultiplexer, RegionCache};
use inframe_core::parallel::ParallelEngine;
use inframe_core::sender::{PrbsPayload, Sender};
use inframe_core::InFrameConfig;
use inframe_frame::geometry::Homography;
use inframe_frame::simd;
use inframe_frame::Plane;
use inframe_video::synth::MovingBarsClip;
use inframe_video::FrameRate;
use std::sync::Arc;

/// One measured operating point.
struct Sample {
    backend: &'static str,
    stage: &'static str,
    scale: &'static str,
    /// SIMD dispatch level the sample ran at (scalar/sse2/avx2).
    simd: &'static str,
    workers: usize,
    frames: u64,
    fps: f64,
    utilization: f64,
    /// Heap allocations per frame in steady state. Render counts pool
    /// planes; demux scoring reuses every buffer (score vector included),
    /// so its steady-state frame path is allocation-free — proven
    /// literally by `tests/alloc_steady_state.rs`.
    allocs_per_frame: f64,
}

fn config_4k() -> InFrameConfig {
    // The paper grid (50×30 Blocks of 9 super-Pixels) scaled to UHD:
    // p = 8 → 72 px Blocks, 3600×2160 of the 3840×2160 panel carries data.
    InFrameConfig {
        display_w: 3840,
        display_h: 2160,
        pixel_size: 8,
        ..InFrameConfig::paper()
    }
}

fn bars(cfg: &InFrameConfig) -> MovingBarsClip {
    MovingBarsClip::new(
        cfg.display_w,
        cfg.display_h,
        23,
        1.5,
        70.0,
        210.0,
        FrameRate(cfg.refresh_hz / 4.0),
    )
}

fn backend_name(b: KernelBackend) -> &'static str {
    match b {
        KernelBackend::Reference => "reference",
        KernelBackend::Quantized => "quantized",
    }
}

/// Runs a measurement three times and keeps the fastest sample. On a
/// loaded (or single-core, time-sliced) machine a single pass swings by
/// ±30% from scheduler noise; the best-of envelope is what the code can
/// actually do, and it is what the worker-scaling regression gate below
/// compares.
fn best_of<F: FnMut() -> Sample>(mut measure: F) -> Sample {
    let mut best = measure();
    for _ in 0..2 {
        let s = measure();
        if s.fps > best.fps {
            best = s;
        }
    }
    best
}

fn measure_render(scale: &'static str, cfg: InFrameConfig, workers: usize, frames: u64) -> Sample {
    let engine = Arc::new(ParallelEngine::new(workers));
    let mut sender = Sender::with_engine(cfg, bars(&cfg), PrbsPayload::new(7), engine);
    // Warm-up: one full data cycle populates the pool and every cache
    // (including the quantized backend's chessboard LUT steps).
    for _ in 0..cfg.tau {
        drop(sender.next_frame().expect("endless clip"));
    }
    let warm_allocs = sender.pool().stats().allocated;
    let before = *sender.meter();
    for _ in 0..frames {
        drop(sender.next_frame().expect("endless clip"));
    }
    let after = *sender.meter();
    let wall = (after.wall() - before.wall()).as_secs_f64();
    let busy = (after.busy() - before.busy()).as_secs_f64();
    Sample {
        backend: backend_name(cfg.kernel),
        stage: "render",
        scale,
        simd: simd::active_level().name(),
        workers,
        frames,
        fps: frames as f64 / wall,
        utilization: (busy / (wall * workers as f64)).clamp(0.0, 1.0),
        allocs_per_frame: (sender.pool().stats().allocated - warm_allocs) as f64 / frames as f64,
    }
}

fn measure_demux(
    scale: &'static str,
    cfg: InFrameConfig,
    sensor_w: usize,
    sensor_h: usize,
    cache: &Arc<RegionCache>,
    workers: usize,
    captures: u64,
) -> Sample {
    let engine = Arc::new(ParallelEngine::new(workers));
    let mut demux = Demultiplexer::with_cache(cfg, Arc::clone(cache), engine);
    let capture = Plane::from_fn(sensor_w, sensor_h, |x, y| {
        127.0 + if (x / 3 + y / 3) % 2 == 0 { 8.0 } else { -8.0 }
    });
    let d = demux.cycle_duration();
    // Warm-up scores once (fills the blur scratch and score buffer), then
    // time; every capture lands in the scored first half of a fresh cycle.
    demux.push_capture(&capture, 0.01);
    let before = *demux.meter();
    for i in 1..=captures {
        demux.push_capture(&capture, i as f64 * d + 0.01);
    }
    let after = *demux.meter();
    let wall = (after.wall() - before.wall()).as_secs_f64();
    let busy = (after.busy() - before.busy()).as_secs_f64();
    Sample {
        backend: backend_name(cfg.kernel),
        stage: "demux",
        scale,
        simd: simd::active_level().name(),
        workers,
        frames: captures,
        fps: captures as f64 / wall,
        utilization: (busy / (wall * workers as f64)).clamp(0.0, 1.0),
        // Scoring reuses the score buffer, blur planes and (quantized)
        // integral tables; per-cycle decode output is the caller's value,
        // not frame-path overhead.
        allocs_per_frame: 0.0,
    }
}

/// `with_backend` selects the extended `BENCH_kernels.json` entry form
/// (backend + per-sample SIMD level); `false` keeps the frozen PR 1
/// `BENCH_pipeline.json` schema.
fn json_entry(s: &Sample, with_backend: bool) -> String {
    let backend = if with_backend {
        format!("\"backend\": \"{}\", \"simd\": \"{}\", ", s.backend, s.simd)
    } else {
        String::new()
    };
    format!(
        "    {{{backend}\"stage\": \"{}\", \"scale\": \"{}\", \"workers\": {}, \"frames\": {}, \
         \"fps\": {:.3}, \"utilization\": {:.4}, \"allocs_per_frame\": {:.4}}}",
        s.stage, s.scale, s.workers, s.frames, s.fps, s.utilization, s.allocs_per_frame
    )
}

fn write_json(path: &str, header: &str, body: String) {
    let json = format!("{{\n{header}\n  \"samples\": [\n{body}\n  ]\n}}\n");
    std::fs::write(path, &json).expect("write bench json");
    println!("wrote {path}");
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let worker_counts = [1usize, 4];
    let backends = [KernelBackend::Reference, KernelBackend::Quantized];
    println!("pipeline throughput — {cores} core(s) available");
    println!();

    let mut samples = Vec::new();
    for (scale, base, frames) in [
        ("1080p", InFrameConfig::paper(), 24u64),
        ("4k", config_4k(), 8u64),
    ] {
        // The paper's sensor keeps the 2/3 capture ratio at both scales;
        // the region cache is geometry-only, shared across backends.
        let (sw, sh) = (base.display_w * 2 / 3, base.display_h * 2 / 3);
        let reg = Homography::scale(
            sw as f64 / base.display_w as f64,
            sh as f64 / base.display_h as f64,
        );
        let cache = RegionCache::build(&base, &reg, sw, sh);
        for backend in backends {
            let cfg = InFrameConfig {
                kernel: backend,
                ..base
            };
            let bname = backend_name(backend);
            for &w in &worker_counts {
                let s = best_of(|| measure_render(scale, cfg, w, frames));
                println!(
                    "render {scale:>5} {bname:>9}  {w} worker(s): {:8.2} frames/s, {:5.1}% utilization, {:.2} allocs/frame",
                    s.fps,
                    s.utilization * 100.0,
                    s.allocs_per_frame
                );
                samples.push(s);
            }
            for &w in &worker_counts {
                let s = best_of(|| measure_demux(scale, cfg, sw, sh, &cache, w, frames.min(12)));
                println!(
                    "demux  {scale:>5} {bname:>9}  {w} worker(s): {:8.2} captures/s, {:5.1}% utilization",
                    s.fps,
                    s.utilization * 100.0
                );
                samples.push(s);
            }
        }
    }

    // Full receiver chain at native 1080p sensor resolution: every push
    // both scores the capture and decodes the previous cycle, so this is
    // the capture→demux→decode path of the real-time target.
    {
        let base = InFrameConfig::paper();
        let (dw, dh) = (base.display_w, base.display_h);
        let cache = RegionCache::build(&base, &Homography::identity(), dw, dh);
        for backend in backends {
            let cfg = InFrameConfig {
                kernel: backend,
                ..base
            };
            let mut s = best_of(|| measure_demux("1080p", cfg, dw, dh, &cache, 1, 12));
            s.stage = "receiver_chain";
            println!(
                "receiver chain 1080p {:>9}  1 worker(s): {:8.2} captures/s",
                backend_name(backend),
                s.fps
            );
            samples.push(s);
        }
    }

    // Forced-level sweep: the quantized 1080p operating points at every
    // SIMD tier this machine supports, so BENCH_kernels.json carries the
    // per-level trajectory (scalar = the bit-exact oracle's speed).
    {
        let base = InFrameConfig::paper();
        let cfg = InFrameConfig {
            kernel: KernelBackend::Quantized,
            ..base
        };
        let (sw, sh) = (base.display_w * 2 / 3, base.display_h * 2 / 3);
        let reg = Homography::scale(
            sw as f64 / base.display_w as f64,
            sh as f64 / base.display_h as f64,
        );
        let cache = RegionCache::build(&base, &reg, sw, sh);
        for level in simd::SimdLevel::supported() {
            simd::force_level(Some(level));
            let r = best_of(|| measure_render("1080p", cfg, 1, 24));
            let d = best_of(|| measure_demux("1080p", cfg, sw, sh, &cache, 1, 12));
            println!(
                "simd {:>6}: quantized 1080p render {:8.2} frames/s, demux {:8.2} captures/s",
                level.name(),
                r.fps,
                d.fps
            );
            samples.push(r);
            samples.push(d);
        }
        simd::force_level(None);
    }

    println!();
    let find = |backend: &str, stage: &str, scale: &str, w: usize| {
        samples
            .iter()
            .find(|s| {
                s.backend == backend && s.stage == stage && s.scale == scale && s.workers == w
            })
            .map(|s| s.fps)
    };
    for stage in ["render", "demux"] {
        for scale in ["1080p", "4k"] {
            if let (Some(f1), Some(f4)) = (
                find("reference", stage, scale, 1),
                find("reference", stage, scale, 4),
            ) {
                println!("{stage} {scale}: 4-worker speedup ×{:.2}", f4 / f1);
                // Regression gate: asking for more workers must never cost
                // throughput. On a multi-core machine 4 workers should win;
                // on a single-core one the engine must fall back to the
                // inline path, so the two runs do the same work and only
                // measurement noise separates them. The historical failure
                // mode (4-worker 1080p render at ~0.91× of 1-worker, from
                // per-band bookkeeping on a box that never spawns) is what
                // the 0.85 floor guards against.
                assert!(
                    f4 >= 0.85 * f1,
                    "{stage} {scale}: 4-worker fps {f4:.2} regressed below 1-worker {f1:.2}"
                );
            }
            if let (Some(r), Some(q)) = (
                find("reference", stage, scale, 1),
                find("quantized", stage, scale, 1),
            ) {
                println!(
                    "{stage} {scale}: quantized single-worker speedup ×{:.2}",
                    q / r
                );
            }
        }
    }
    println!();

    // BENCH_pipeline.json keeps its PR 1 schema: reference-backend samples.
    let pipeline_body = samples
        .iter()
        .filter(|s| s.backend == "reference")
        .map(|s| json_entry(s, false))
        .collect::<Vec<_>>()
        .join(",\n");
    write_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json"),
        &format!("  \"bench\": \"pipeline_throughput\",\n  \"machine_cores\": {cores},"),
        pipeline_body,
    );

    // BENCH_kernels.json: every sample, keyed by backend and SIMD level,
    // under its own bench name plus the machine's CPU feature set so
    // perf trajectories are comparable across machines.
    let kernels_body = samples
        .iter()
        .map(|s| json_entry(s, true))
        .collect::<Vec<_>>()
        .join(",\n");
    write_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json"),
        &format!(
            "  \"bench\": \"kernels\",\n  \"machine_cores\": {cores},\n  \
             \"cpu_features\": \"{}\",\n  \"simd_level\": \"{}\",",
            simd::cpu_features(),
            simd::active_level().name()
        ),
        kernels_body,
    );
}
