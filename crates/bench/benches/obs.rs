//! Telemetry overhead: the cost of a live spine on the 1080p hot paths.
//!
//! ```sh
//! cargo bench -p inframe-bench --bench obs
//! ```
//!
//! Runs the paper-scale (1080p) render and demux paths twice — once with
//! the disabled no-op `Telemetry` handle (one branch per instrument
//! touch) and once with a live spine recording counters, histograms and
//! events — and reports the throughput delta. The acceptance budget is
//! **≤ 2% overhead** per stage; each mode is measured `REPS` times and
//! the best run is kept, so scheduler noise cannot masquerade as
//! instrument cost. Writes `BENCH_obs.json` at the repository root.

use inframe_core::batch::{BatchScorer, ScoreClass, SKIP, UNREADABLE};
use inframe_core::demux::{Demultiplexer, RegionCache};
use inframe_core::parallel::ParallelEngine;
use inframe_core::sender::{PrbsPayload, Sender};
use inframe_core::InFrameConfig;
use inframe_frame::geometry::Homography;
use inframe_frame::perturb::CaptureTransform;
use inframe_frame::Plane;
use inframe_obs::{names, FleetAggregator, Telemetry};
use inframe_video::synth::MovingBarsClip;
use inframe_video::FrameRate;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-N repetitions per (stage, mode).
const REPS: usize = 7;
/// Frames timed per render repetition (after a full-cycle warm-up).
const RENDER_FRAMES: u64 = 36;
/// Captures timed per demux repetition (after a warm-up score).
const DEMUX_CAPTURES: u64 = 36;
/// Batched scoring rounds timed per repetition (after a warm-up round).
const BATCH_ROUNDS: u64 = 12;
/// Receivers fanned out per batch round.
const BATCH_RECEIVERS: usize = 256;
/// Session summaries folded per fleet-merge operation.
const MERGE_SESSIONS: usize = 64;
/// Fleet-merge operations timed per repetition.
const MERGE_OPS: u64 = 200;
/// The acceptance budget, percent.
const BUDGET_PCT: f64 = 2.0;

struct Sample {
    stage: &'static str,
    mode: &'static str,
    frames: u64,
    /// Best frames/s over the repetitions.
    fps: f64,
}

fn bars(cfg: &InFrameConfig) -> MovingBarsClip {
    MovingBarsClip::new(
        cfg.display_w,
        cfg.display_h,
        23,
        1.5,
        70.0,
        210.0,
        FrameRate(cfg.refresh_hz / 4.0),
    )
}

fn telemetry(mode: &str) -> Telemetry {
    if mode == "instrumented" {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    }
}

fn measure_render(cfg: InFrameConfig, mode: &'static str) -> Sample {
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let tele = telemetry(mode);
        let engine = Arc::new(ParallelEngine::new(1));
        let mut sender =
            Sender::with_engine(cfg, bars(&cfg), PrbsPayload::new(7), engine).with_telemetry(&tele);
        // Warm-up: one full data cycle populates the pool and caches.
        for _ in 0..cfg.tau {
            drop(sender.next_frame().expect("endless clip"));
        }
        let t0 = Instant::now();
        for _ in 0..RENDER_FRAMES {
            drop(sender.next_frame().expect("endless clip"));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Sample {
        stage: "render",
        mode,
        frames: RENDER_FRAMES,
        fps: RENDER_FRAMES as f64 / best,
    }
}

fn measure_demux(
    cfg: InFrameConfig,
    cache: &Arc<RegionCache>,
    capture: &Plane<f32>,
    mode: &'static str,
) -> Sample {
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let tele = telemetry(mode);
        let engine = Arc::new(ParallelEngine::new(1));
        let mut demux =
            Demultiplexer::with_cache(cfg, Arc::clone(cache), engine).with_telemetry(&tele);
        let d = demux.cycle_duration();
        // Warm-up fills the blur scratch and score buffer; every timed
        // capture lands in the scored first half of a fresh cycle.
        demux.push_capture(capture, 0.01);
        let t0 = Instant::now();
        for i in 1..=DEMUX_CAPTURES {
            demux.push_capture(capture, i as f64 * d + 0.01);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Sample {
        stage: "demux",
        mode,
        frames: DEMUX_CAPTURES,
        fps: DEMUX_CAPTURES as f64 / best,
    }
}

fn measure_batch(
    cfg: InFrameConfig,
    cache: &Arc<RegionCache>,
    capture: &Plane<f32>,
    mode: &'static str,
) -> Sample {
    // A representative class mix: identity plus an AWB shift, a gain
    // step and a noised fold — two distinct sweeps, four classes.
    let transforms = [
        CaptureTransform::IDENTITY,
        CaptureTransform {
            gain_q12: 4352,
            ..CaptureTransform::IDENTITY
        },
    ];
    let classes = [
        ScoreClass::clean(0),
        ScoreClass::clean(1),
        ScoreClass {
            transform: 0,
            noise_raw_sq: 1024,
        },
        ScoreClass {
            transform: 1,
            noise_raw_sq: 1024,
        },
    ];
    let assign: Vec<u32> = (0..BATCH_RECEIVERS)
        .map(|r| if r % 9 == 5 { SKIP } else { (r % 4) as u32 })
        .collect();
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let tele = telemetry(mode);
        let engine = Arc::new(ParallelEngine::new(1));
        let mut scorer = BatchScorer::new(cfg, Arc::clone(cache), engine).with_telemetry(&tele);
        let nb = scorer.num_blocks();
        let mut merged = vec![UNREADABLE; BATCH_RECEIVERS * nb];
        // Warm-up sizes every per-class buffer.
        scorer.score_classes(capture, &transforms, &classes);
        scorer.merge_assigned(&assign, &mut merged);
        let t0 = Instant::now();
        for _ in 0..BATCH_ROUNDS {
            scorer.score_classes(capture, &transforms, &classes);
            scorer.merge_assigned(&assign, &mut merged);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Sample {
        stage: "batch",
        mode,
        frames: BATCH_ROUNDS,
        fps: BATCH_ROUNDS as f64 / best,
    }
}

/// One synthetic session spine summary, shaped like a real fleet shard
/// (availability + ε histograms, completion counters).
fn session_summary(shard: u64) -> inframe_obs::export::ObsSummary {
    let tele = Telemetry::new();
    let avail = tele.histogram(names::fleet::AVAILABILITY_MILLI);
    let eps = tele.histogram(names::session::DECODE_EPS_MILLI);
    let completions = tele.counter(names::fleet::COMPLETIONS);
    for i in 0..64u64 {
        avail.record(900 + (shard * 31 + i * 7) % 100);
        eps.record((shard * 13 + i * 3) % 400);
        if i % 3 == 0 {
            completions.add(1);
        }
    }
    tele.counter(names::fleet::RECEIVERS).add(64);
    tele.summary()
}

fn measure_fleet_merge(mode: &'static str) -> Sample {
    let sessions: Vec<_> = (0..MERGE_SESSIONS as u64).map(session_summary).collect();
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let tele = telemetry(mode);
        let t0 = Instant::now();
        for _ in 0..MERGE_OPS {
            let mut agg = if tele.is_enabled() {
                FleetAggregator::with_telemetry(&tele)
            } else {
                FleetAggregator::new()
            };
            for s in &sessions {
                agg.absorb(s);
            }
            std::hint::black_box(agg.rollup());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Sample {
        stage: "fleet_merge",
        mode,
        frames: MERGE_OPS,
        fps: MERGE_OPS as f64 / best,
    }
}

fn main() {
    let cfg = InFrameConfig::paper();
    let (sw, sh) = (cfg.display_w * 2 / 3, cfg.display_h * 2 / 3);
    let reg = Homography::scale(
        sw as f64 / cfg.display_w as f64,
        sh as f64 / cfg.display_h as f64,
    );
    let cache = RegionCache::build(&cfg, &reg, sw, sh);
    let capture = Plane::from_fn(sw, sh, |x, y| {
        127.0 + if (x / 3 + y / 3) % 2 == 0 { 8.0 } else { -8.0 }
    });

    println!("telemetry overhead — 1080p, single worker, best of {REPS}");
    println!();

    let mut samples = Vec::new();
    for mode in ["noop", "instrumented"] {
        let s = measure_render(cfg, mode);
        println!("render {mode:>12}: {:8.2} frames/s", s.fps);
        samples.push(s);
        let s = measure_demux(cfg, &cache, &capture, mode);
        println!("demux  {mode:>12}: {:8.2} captures/s", s.fps);
        samples.push(s);
        let s = measure_batch(cfg, &cache, &capture, mode);
        println!(
            "batch  {mode:>12}: {:8.2} rounds/s ({BATCH_RECEIVERS}-receiver fan-out)",
            s.fps
        );
        samples.push(s);
        let s = measure_fleet_merge(mode);
        println!(
            "merge  {mode:>12}: {:8.2} folds/s ({MERGE_SESSIONS} sessions each)",
            s.fps
        );
        samples.push(s);
    }

    println!();
    let fps = |stage: &str, mode: &str| {
        samples
            .iter()
            .find(|s| s.stage == stage && s.mode == mode)
            .map(|s| s.fps)
            .expect("sample present")
    };
    let mut overheads = Vec::new();
    for stage in ["render", "demux", "batch", "fleet_merge"] {
        let overhead_pct = (fps(stage, "noop") / fps(stage, "instrumented") - 1.0) * 100.0;
        let ok = overhead_pct <= BUDGET_PCT;
        println!(
            "{stage}: instrumented overhead {overhead_pct:+.2}% (budget {BUDGET_PCT}%) {}",
            if ok { "OK" } else { "OVER" }
        );
        overheads.push((stage, overhead_pct, ok));
    }

    let body = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"stage\": \"{}\", \"mode\": \"{}\", \"frames\": {}, \"fps\": {:.3}}}",
                s.stage, s.mode, s.frames, s.fps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let summary = overheads
        .iter()
        .map(|(stage, pct, ok)| {
            format!("    {{\"stage\": \"{stage}\", \"overhead_pct\": {pct:.3}, \"within_budget\": {ok}}}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"budget_pct\": {BUDGET_PCT},\n  \"samples\": [\n{body}\n  ],\n  \"overhead\": [\n{summary}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write bench json");
    println!();
    println!("wrote {path}");
}
