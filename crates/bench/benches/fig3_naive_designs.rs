//! Figure 3 — naive multiplexing designs vs InFrame.
//!
//! Prints the flicker comparison table, then times one scheme assessment.

use criterion::{criterion_group, criterion_main, Criterion};
use inframe_display::DisplayConfig;
use inframe_sim::fig3;

fn regenerate_figure() {
    println!("\n=== Figure 3: naive designs vs InFrame (δ = 20) ===");
    let fig = fig3::run(20.0, &DisplayConfig::eizo_fg2421(), 2014);
    print!("{}", fig.render());
    println!();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let display = DisplayConfig::eizo_fg2421();
    let mut group = c.benchmark_group("fig3_naive_designs");
    group.sample_size(10);
    group.bench_function("rate_all_schemes", |b| {
        b.iter(|| fig3::run(20.0, &display, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
