//! §5 parameter ablations: δ, τ, envelope shape, detection threshold,
//! GOB coding, and the shutter/backlight study.
//!
//! Prints each sweep's table, then times a representative sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use inframe_sim::ablation;

fn regenerate_tables() {
    let cycles = 6;
    let seed = 2014;
    for ab in [
        ablation::delta_sweep(cycles, seed),
        ablation::tau_sweep(cycles, seed),
        ablation::envelope_shapes(cycles, seed),
        ablation::threshold_sweep(cycles, seed),
        ablation::coding_modes(cycles, seed),
        ablation::shutter_study(cycles, seed),
        ablation::isp_study(cycles, seed),
        ablation::geometry_study(cycles, seed),
        ablation::pixel_size_sweep(cycles, seed),
        ablation::block_size_sweep(cycles, seed),
    ] {
        println!("\n=== ablation: {} ===", ab.name);
        print!("{}", ab.render());
    }
    println!();
}

fn bench(c: &mut Criterion) {
    regenerate_tables();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("envelope_sweep_2cycles", |b| {
        b.iter(|| ablation::envelope_shapes(2, 7))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
