//! §5 practical issue 3: "What are the associated computational cost and
//! energy overhead?"
//!
//! Times the per-frame cost of each pipeline stage at both scales: sender
//! multiplexing, display emission, camera capture, and receiver scoring —
//! the numbers a deployment study would need.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use inframe_camera::{Camera, CameraConfig, CaptureGeometry};
use inframe_core::dataframe::DataFrame;
use inframe_core::multiplex::{slot, Multiplexer};
use inframe_core::sender::{PrbsPayload, Sender};
use inframe_core::{DataLayout, Demultiplexer, InFrameConfig};
use inframe_display::{DisplayConfig, DisplayStream};
use inframe_frame::Plane;
use inframe_sim::Scale;

fn configs() -> Vec<(&'static str, InFrameConfig, CameraConfig)> {
    vec![
        ("quick", Scale::Quick.inframe(), Scale::Quick.camera()),
        ("paper", Scale::Paper.inframe(), Scale::Paper.camera()),
    ]
}

fn bench_sender(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_sender_per_frame");
    group.sample_size(10);
    for (name, cfg, _) in configs() {
        let layout = DataLayout::from_config(&cfg);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % 2 == 0)
            .collect();
        let cur = DataFrame::encode(&layout, &payload, cfg.coding);
        let next = DataFrame::zero(&layout);
        group.bench_with_input(BenchmarkId::new("multiplex", name), &cfg, |b, cfg| {
            let mut mux = Multiplexer::new(*cfg);
            let mut f = 0u64;
            b.iter(|| {
                let s = slot(cfg, f);
                f += 1;
                mux.render(&s, &video, &cur, &next)
            })
        });
    }
    group.finish();
}

fn bench_receiver(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_receiver_per_capture");
    group.sample_size(10);
    for (name, cfg, cam) in configs() {
        let geometry = CaptureGeometry::Fronto;
        let registration =
            geometry.display_to_sensor(cfg.display_w, cfg.display_h, cam.width, cam.height);
        let mut demux = Demultiplexer::new(cfg, &registration, cam.width, cam.height);
        let capture = Plane::from_fn(cam.width, cam.height, |x, y| {
            127.0 + if (x / 3 + y / 3) % 2 == 0 { 8.0 } else { -8.0 }
        });
        group.bench_with_input(BenchmarkId::new("score_capture", name), &(), |b, ()| {
            b.iter(|| demux.score_capture(&capture))
        });
    }
    group.finish();
}

fn bench_camera(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_camera_per_capture");
    group.sample_size(10);
    for (name, cfg, cam) in configs() {
        // Prepare enough emissions for one capture.
        let mut sender = Sender::new(
            cfg,
            inframe_video::synth::SolidClip::new(
                cfg.display_w,
                cfg.display_h,
                127.0,
                inframe_video::FrameRate(cfg.refresh_hz / 4.0),
            ),
            PrbsPayload::new(1),
        );
        let mut display = DisplayStream::new(DisplayConfig::eizo_fg2421());
        let emissions: Vec<_> = (0..8)
            .map(|_| display.present(&sender.next_frame().expect("endless clip").plane))
            .collect();
        group.bench_with_input(BenchmarkId::new("capture", name), &(), |b, ()| {
            b.iter(|| {
                // Fresh camera each iteration so the clock stays within the
                // buffered emissions.
                let mut camera = Camera::new(cam, CaptureGeometry::Fronto, 3);
                camera.capture(&emissions).expect("window covered")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sender, bench_receiver, bench_camera);
criterion_main!(benches);
