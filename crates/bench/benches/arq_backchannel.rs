//! Closed-loop operating points: selective-repeat ARQ vs the pure
//! fountain schedule across an erasure × back-channel-loss grid, plus
//! per-region δ re-modulation vs open loop on a faulted tile set.
//!
//! ```sh
//! cargo bench -p inframe-bench --bench arq_backchannel
//! ```
//!
//! Prints one line per operating point and writes `BENCH_arq.json` to
//! the repository root. Two scenarios, both on the paper layout's 5×3
//! tiling and fully deterministic per seed:
//!
//! * **Contended unicast** — the measured receiver wants a 1200-byte
//!   datagram while a fat 6000-byte background object contends for
//!   carousel slots. This is where NACK retransmission pays: repeats
//!   preempt WRR slots for exactly the columns the receiver misses.
//!   The grid sweeps per-GOB erasure against back-channel report loss;
//!   at 100% loss the engine must degrade to fountain mode and stay
//!   within 1.1× of the open-loop run (ISSUE acceptance, asserted).
//! * **Bad tiles** — five regions at 4% per-GOB erasure, the
//!   compounding cliff where a ~50-GOB symbol survives ~12% of draws
//!   and a δ 20→40 boost ((20/δ)² response) lifts survival to ~59%.
//!   Closed-loop re-modulation must beat the open loop (asserted).

use inframe_net::ArqPolicy;
use inframe_sim::backchannel::{BackchannelConfig, FeedbackFaultKind, FeedbackFaultWindow};
use inframe_sim::netsim::{
    run_net_scenario, ClosedLoopSpec, NetDatagramSpec, NetReceiverSpec, NetScenarioConfig,
};

const SEED: u64 = 0xBAC4;

/// One unicast the measured receiver wants plus a fat background object
/// contending for carousel slots, at uniform per-GOB erasure `p`.
fn contended(p: f64) -> NetScenarioConfig {
    let mut cfg = NetScenarioConfig::smoke(SEED);
    cfg.datagrams = vec![
        NetDatagramSpec {
            stream: 0,
            dst: 0x0101,
            len: 1200,
        },
        NetDatagramSpec {
            stream: 0,
            dst: 0x0155,
            len: 6000,
        },
    ];
    cfg.receivers = vec![NetReceiverSpec {
        base_erasure: p,
        ..NetReceiverSpec::clean(0x0101)
    }];
    cfg.max_cycles = 6000;
    cfg
}

/// Five regions at 4% per-GOB erasure — the compounding cliff where
/// re-modulating δ on the bad tiles pays.
fn bad_tiles() -> NetScenarioConfig {
    let mut cfg = NetScenarioConfig::smoke(SEED);
    cfg.datagrams = vec![NetDatagramSpec {
        stream: 0,
        dst: 0x0101,
        len: 12000,
    }];
    let mut erasures = vec![0.0; 15];
    for r in [2, 6, 7, 8, 12] {
        erasures[r] = 0.04;
    }
    cfg.receivers = vec![NetReceiverSpec {
        region_erasures: erasures,
        ..NetReceiverSpec::clean(0x0101)
    }];
    cfg.max_cycles = 4000;
    cfg
}

struct Sample {
    scenario: String,
    erasure: f64,
    /// Report-loss probability on the back-channel; `-1` marks an
    /// open-loop run with no back-channel at all.
    feedback_loss: f64,
    cycles: u64,
    retransmits: u64,
    fallbacks: u64,
    commands: u64,
}

fn report(s: &Sample) {
    println!(
        "{:<28} erasure {:.3}  fb-loss {:.1}  cycles {:>5}  rtx {:>4}  fallbacks {:>2}  cmds {:>4}",
        s.scenario, s.erasure, s.feedback_loss, s.cycles, s.retransmits, s.fallbacks, s.commands,
    );
}

fn run(scenario: String, cfg: &NetScenarioConfig, erasure: f64, feedback_loss: f64) -> Sample {
    let out = run_net_scenario(cfg);
    assert!(
        out.all_complete(),
        "{scenario}: the rateless floor must always deliver"
    );
    let stats = out.loop_stats.clone().unwrap_or_default();
    let s = Sample {
        scenario,
        erasure,
        feedback_loss,
        cycles: out.receivers[0].completed_cycle.expect("complete") + 1,
        retransmits: stats.retransmits,
        fallbacks: stats.fallbacks,
        commands: stats.commands_applied,
    };
    report(&s);
    s
}

fn json_entry(s: &Sample) -> String {
    format!(
        "    {{\"scenario\": \"{}\", \"erasure\": {:.4}, \"feedback_loss\": {:.2}, \
         \"cycles_to_complete\": {}, \"retransmits\": {}, \"fallbacks\": {}, \
         \"commands_applied\": {}}}",
        s.scenario, s.erasure, s.feedback_loss, s.cycles, s.retransmits, s.fallbacks, s.commands,
    )
}

fn main() {
    println!("arq/backchannel — contended unicast grid + bad-tile re-modulation");
    println!();

    let mut samples = Vec::new();

    // Grid: per-GOB erasure × back-channel report loss. Re-modulation
    // stays off here so the grid isolates the ARQ contribution.
    let erasures = [0.005, 0.02];
    let losses = [0.0, 0.3, 1.0];
    let mut healthy_wins = 0usize;
    for &p in &erasures {
        let open = run("fountain_only".into(), &contended(p), p, -1.0);
        let open_c = open.cycles;
        samples.push(open);
        for &loss in &losses {
            let mut cfg = contended(p);
            cfg.closed_loop = Some(ClosedLoopSpec {
                arq: ArqPolicy::default(),
                backchannel: BackchannelConfig {
                    loss,
                    ..BackchannelConfig::clean()
                },
                remodulate: false,
                ..ClosedLoopSpec::healthy()
            });
            let s = run(format!("arq_loss{loss:.1}"), &cfg, p, loss);
            if loss == 0.0 {
                if s.cycles < open_c {
                    healthy_wins += 1;
                }
                assert!(s.retransmits > 0, "healthy loop must queue retransmits");
                assert_eq!(s.fallbacks, 0, "healthy loop must not degrade");
            }
            if loss == 1.0 {
                // Graceful degradation bound: a totally lossy
                // back-channel must cost at most 10% over fountain-only.
                assert!(
                    s.cycles as f64 <= open_c as f64 * 1.1,
                    "degraded loop must stay within 1.1x of fountain-only: \
                     {} vs {open_c} at erasure {p}",
                    s.cycles
                );
                assert_eq!(s.retransmits, 0, "no delivered feedback, no retransmits");
            }
            samples.push(s);
        }
    }
    assert!(
        healthy_wins >= 1,
        "ARQ over a healthy back-channel must beat fountain-only somewhere on the grid"
    );

    // Blackout: the loop must fall back mid-run and recover when the
    // window clears, without stalling delivery.
    {
        let mut cfg = contended(0.005);
        cfg.datagrams[0].len = 6000;
        let mut spec = ClosedLoopSpec::healthy();
        spec.remodulate = false;
        spec.backchannel.faults = vec![FeedbackFaultWindow {
            kind: FeedbackFaultKind::Loss { rate: 1.0 },
            from_cycle: 20,
            until_cycle: 100,
        }];
        cfg.closed_loop = Some(spec);
        let s = run("arq_blackout_20_100".into(), &cfg, 0.005, 1.0);
        assert!(s.fallbacks >= 1, "blackout must trip the fountain fallback");
        samples.push(s);
    }

    // Bad tiles: δ re-modulation on, ARQ on — the full closed loop
    // against the open-loop broadcast.
    let open = run("bad_tiles_open".into(), &bad_tiles(), 0.04, -1.0);
    let open_c = open.cycles;
    samples.push(open);
    let mut cfg = bad_tiles();
    cfg.closed_loop = Some(ClosedLoopSpec {
        report_every: 2,
        delta_step: 6.0,
        ..ClosedLoopSpec::healthy()
    });
    let closed = run("bad_tiles_closed".into(), &cfg, 0.04, 0.0);
    let ratio = open_c as f64 / closed.cycles as f64;
    println!();
    println!("bad-tile speedup (open / closed): {ratio:.2}x");
    assert!(
        closed.cycles < open_c,
        "re-modulation must recover the bad tiles: {} vs {open_c}",
        closed.cycles
    );
    assert!(closed.commands > 0, "the bank never re-commanded a region");
    samples.push(closed);

    println!();
    let body = samples
        .iter()
        .map(json_entry)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"arq_backchannel\",\n  \"seed\": {SEED},\n  \
         \"bad_tile_speedup\": {ratio:.3},\n  \"samples\": [\n{body}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_arq.json");
    std::fs::write(path, &json).expect("write bench json");
    println!("wrote {path}");
}
