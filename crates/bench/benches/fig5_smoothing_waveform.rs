//! Figure 5 — the temporal smoothing waveform and its low-pass response.
//!
//! Prints the two curves and the envelope-shape comparison, then times the
//! waveform synthesis + filtering kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use inframe_dsp::envelope::TransitionShape;
use inframe_sim::fig5;

fn regenerate_figure() {
    println!("\n=== Figure 5: smoothing waveform through the verification low-pass ===");
    let fig = fig5::run(TransitionShape::SrrCosine, 12, 20.0, &[true, false, true]);
    for s in fig.series() {
        print!("{}", s.render());
    }
    println!(
        "displayed AC energy above 50 Hz: {:.1}%",
        fig.hf_energy_fraction * 100.0
    );
    println!("filtered ripple: {:.3} code values", fig.filtered_ripple);
    println!("envelope comparison (ripple through 1↔0 transitions):");
    for (name, ripple) in fig5::compare_shapes(12, 20.0) {
        println!("  {name:7} {ripple:7.3}");
    }
    let abrupt = fig5::run(
        TransitionShape::Stair { steps: 1 },
        12,
        20.0,
        &[true, false, true, false, true],
    )
    .filtered_ripple;
    println!("  abrupt  {abrupt:7.3}  (unsmoothed control)\n");
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("fig5_waveform");
    group.bench_function("synthesize_and_filter", |b| {
        b.iter(|| {
            fig5::run(
                TransitionShape::SrrCosine,
                12,
                20.0,
                &[true, false, true, false],
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
