//! Synthetic clip generators.
//!
//! Substitutes for the paper's test inputs (§4): pure gray RGB(127,127,127),
//! pure "dark gray" RGB(180,180,180), and a sun-rising clip. The sunrise is
//! procedural: a rising sun disc over a luminance-graded sky with a textured
//! horizon band and slow lateral pan — giving the controlled spatial
//! texture and motion that degrade GOB availability in Figure 7.

use crate::source::{FrameRate, VideoSource};
use inframe_frame::{draw, Plane};

/// Reshapes `out` to `w × h` if needed (procedural sources synthesize
/// into the caller's buffer; the realloc happens at most once).
fn ensure_shape(out: &mut Plane<f32>, w: usize, h: usize) {
    if out.shape() != (w, h) {
        *out = Plane::filled(w, h, 0.0);
    }
}

/// A tiny deterministic value-noise field used for textures; seeded and
/// dependency-free. Internal helper exposed for the stats tests.
mod inframe_code_shim {
    /// 2-D value noise: hash lattice points, bilinear-interpolate between
    /// them. Deterministic for a given seed.
    #[derive(Debug, Clone, Copy)]
    pub struct ValueNoise {
        seed: u64,
    }

    impl ValueNoise {
        /// Creates a noise field with the given seed.
        pub fn new(seed: u64) -> Self {
            Self { seed }
        }

        fn hash(&self, ix: i64, iy: i64) -> f32 {
            let mut h = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((ix as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add((iy as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
            h ^= h >> 31;
            h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
            h ^= h >> 32;
            (h & 0xFFFF) as f32 / 65535.0
        }

        /// Noise value in `[0, 1]` at continuous position `(x, y)`.
        pub fn at(&self, x: f32, y: f32) -> f32 {
            let ix = x.floor() as i64;
            let iy = y.floor() as i64;
            let fx = x - ix as f32;
            let fy = y - iy as f32;
            // Smoothstep fade for C1 continuity.
            let ux = fx * fx * (3.0 - 2.0 * fx);
            let uy = fy * fy * (3.0 - 2.0 * fy);
            let v00 = self.hash(ix, iy);
            let v10 = self.hash(ix + 1, iy);
            let v01 = self.hash(ix, iy + 1);
            let v11 = self.hash(ix + 1, iy + 1);
            let top = v00 + ux * (v10 - v00);
            let bot = v01 + ux * (v11 - v01);
            top + uy * (bot - top)
        }

        /// Fractal (3-octave) noise in `[0, 1]`, weighted toward low
        /// frequencies the way natural video content is (camera optics and
        /// compression leave little energy at the finest scales).
        pub fn fbm(&self, x: f32, y: f32) -> f32 {
            let a = self.at(x, y);
            let b = self.at(x * 2.0 + 17.0, y * 2.0 + 17.0);
            let c = self.at(x * 4.0 + 41.0, y * 4.0 + 41.0);
            (a * 0.62 + b * 0.3 + c * 0.08).clamp(0.0, 1.0)
        }
    }
}

pub use inframe_code_shim::ValueNoise as Noise;

/// An endless solid-color source — the paper's "pure gray" /
/// "pure dark gray" videos.
#[derive(Debug, Clone)]
pub struct SolidClip {
    width: usize,
    height: usize,
    level: f32,
    rate: FrameRate,
}

impl SolidClip {
    /// Creates a solid clip at the given gray level.
    pub fn new(width: usize, height: usize, level: f32, rate: FrameRate) -> Self {
        Self {
            width,
            height,
            level,
            rate,
        }
    }

    /// The paper's "pure gray" input, RGB (127,127,127).
    pub fn paper_gray(width: usize, height: usize) -> Self {
        Self::new(width, height, 127.0, FrameRate::VIDEO_30)
    }

    /// The paper's second pure input, RGB (180,180,180).
    pub fn paper_dark_gray(width: usize, height: usize) -> Self {
        Self::new(width, height, 180.0, FrameRate::VIDEO_30)
    }
}

impl VideoSource for SolidClip {
    fn width(&self) -> usize {
        self.width
    }
    fn height(&self) -> usize {
        self.height
    }
    fn frame_rate(&self) -> FrameRate {
        self.rate
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        Some(Plane::filled(self.width, self.height, self.level))
    }
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        ensure_shape(out, self.width, self.height);
        out.samples_mut().fill(self.level);
        true
    }
}

/// Vertical bars scrolling horizontally — a high-texture, high-motion
/// stress input for ablation experiments.
#[derive(Debug, Clone)]
pub struct MovingBarsClip {
    width: usize,
    height: usize,
    bar_width: usize,
    speed_px_per_frame: f64,
    lo: f32,
    hi: f32,
    rate: FrameRate,
    t: u64,
}

impl MovingBarsClip {
    /// Creates a moving-bars clip. `bar_width` is the width of one bar in
    /// pixels; bars alternate between `lo` and `hi` code values and shift
    /// by `speed_px_per_frame` each frame.
    pub fn new(
        width: usize,
        height: usize,
        bar_width: usize,
        speed_px_per_frame: f64,
        lo: f32,
        hi: f32,
        rate: FrameRate,
    ) -> Self {
        assert!(bar_width > 0, "bar width must be nonzero");
        Self {
            width,
            height,
            bar_width,
            speed_px_per_frame,
            lo,
            hi,
            rate,
            t: 0,
        }
    }
}

impl VideoSource for MovingBarsClip {
    fn width(&self) -> usize {
        self.width
    }
    fn height(&self) -> usize {
        self.height
    }
    fn frame_rate(&self) -> FrameRate {
        self.rate
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        let mut frame = Plane::filled(self.width, self.height, 0.0);
        self.next_frame_into(&mut frame);
        Some(frame)
    }
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        ensure_shape(out, self.width, self.height);
        let offset = (self.t as f64 * self.speed_px_per_frame) as usize;
        let bw = self.bar_width;
        let (lo, hi) = (self.lo, self.hi);
        // Bars are constant down each column: synthesize the top row once
        // and replicate it, instead of a per-pixel division over the whole
        // frame (the row copies are ~100× cheaper at 4K).
        let w = self.width;
        let samples = out.samples_mut();
        for (x, v) in samples[..w].iter_mut().enumerate() {
            *v = if ((x + offset) / bw).is_multiple_of(2) {
                lo
            } else {
                hi
            };
        }
        let (first, rest) = samples.split_at_mut(w);
        for row in rest.chunks_exact_mut(w) {
            row.copy_from_slice(first);
        }
        self.t += 1;
        true
    }
}

/// Smooth gradient clip whose mean brightness ramps over time — used by the
/// Figure 6 brightness sweep.
#[derive(Debug, Clone)]
pub struct BrightnessRampClip {
    width: usize,
    height: usize,
    start: f32,
    end: f32,
    frames: usize,
    rate: FrameRate,
    t: usize,
}

impl BrightnessRampClip {
    /// Ramps a solid frame from `start` to `end` code value over `frames`
    /// frames, then ends.
    pub fn new(
        width: usize,
        height: usize,
        start: f32,
        end: f32,
        frames: usize,
        rate: FrameRate,
    ) -> Self {
        assert!(frames >= 2, "ramp needs at least two frames");
        Self {
            width,
            height,
            start,
            end,
            frames,
            rate,
            t: 0,
        }
    }
}

impl VideoSource for BrightnessRampClip {
    fn width(&self) -> usize {
        self.width
    }
    fn height(&self) -> usize {
        self.height
    }
    fn frame_rate(&self) -> FrameRate {
        self.rate
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        if self.t >= self.frames {
            return None;
        }
        let a = self.t as f32 / (self.frames - 1) as f32;
        let level = self.start + a * (self.end - self.start);
        self.t += 1;
        Some(Plane::filled(self.width, self.height, level))
    }
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        if self.t >= self.frames {
            return false;
        }
        let a = self.t as f32 / (self.frames - 1) as f32;
        let level = self.start + a * (self.end - self.start);
        self.t += 1;
        ensure_shape(out, self.width, self.height);
        out.samples_mut().fill(level);
        true
    }
}

/// The procedural sun-rising clip: sky gradient brightening over time, a
/// sun disc climbing from the horizon, a textured landscape band below the
/// horizon, and a slow lateral pan.
///
/// Stands in for the paper's "normal sun-rising video clip". Texture and
/// motion are the properties that matter for Figure 7; both are present and
/// deterministic per seed.
#[derive(Debug, Clone)]
pub struct SunriseClip {
    width: usize,
    height: usize,
    rate: FrameRate,
    duration_frames: usize,
    noise: Noise,
    t: usize,
}

impl SunriseClip {
    /// Creates a sunrise clip of `duration_frames` frames.
    pub fn new(width: usize, height: usize, duration_frames: usize, seed: u64) -> Self {
        assert!(duration_frames >= 2, "clip needs at least two frames");
        Self {
            width,
            height,
            rate: FrameRate::VIDEO_30,
            duration_frames,
            noise: Noise::new(seed),
            t: 0,
        }
    }

    /// The horizon height used by the clip (fraction of frame height from
    /// the top).
    pub const HORIZON: f32 = 0.62;

    fn render(&self, t_norm: f32, pan: f32) -> Plane<f32> {
        let w = self.width;
        let h = self.height;
        let horizon_y = (h as f32 * Self::HORIZON) as usize;
        // Sun rises from below the horizon to ~35% height as t goes 0→1.
        let sun_x = w as f32 * (0.35 + 0.1 * t_norm) + pan;
        let sun_y = h as f32 * (Self::HORIZON + 0.1) - h as f32 * (0.35 * t_norm);
        let sun_r = (h as f32 * 0.06).max(3.0);
        // Sky brightens with dawn: top stays darker, horizon glows.
        let dawn = 0.25 + 0.55 * t_norm;
        let mut frame = Plane::from_fn(w, h, |x, y| {
            let xf = x as f32 + pan;
            let yf = y as f32;
            if y < horizon_y {
                // Sky: vertical gradient plus glow around the sun.
                let depth = yf / horizon_y as f32; // 0 top, 1 at horizon
                let base = (40.0 + 150.0 * depth) * dawn;
                let dx = xf - sun_x;
                let dy = yf - sun_y;
                let dist = (dx * dx + dy * dy).sqrt();
                let glow = 60.0 * (-dist / (w as f32 * 0.18)).exp() * (0.3 + 0.7 * t_norm);
                (base + glow).clamp(0.0, 255.0)
            } else {
                // Landscape: textured band, dim at first light and
                // brightening as the sun climbs.
                let tex = self.noise.fbm(xf * 0.05, yf * 0.05);
                let shade = 38.0 + 52.0 * tex;
                (shade * (0.75 + 0.45 * t_norm)).clamp(0.0, 255.0)
            }
        });
        // The sun disc itself (clipped to the sky region by geometry).
        if sun_y < horizon_y as f32 + sun_r {
            draw::filled_disc(
                &mut frame,
                sun_x as f64,
                sun_y as f64,
                sun_r as f64,
                (200.0 + 55.0 * t_norm).min(255.0),
            );
        }
        frame
    }
}

impl VideoSource for SunriseClip {
    fn width(&self) -> usize {
        self.width
    }
    fn height(&self) -> usize {
        self.height
    }
    fn frame_rate(&self) -> FrameRate {
        self.rate
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        if self.t >= self.duration_frames {
            return None;
        }
        let t_norm = self.t as f32 / (self.duration_frames - 1) as f32;
        // Slow pan: ~0.4 px/frame, enough for measurable motion.
        let pan = self.t as f32 * 0.4;
        let frame = self.render(t_norm, pan);
        self.t += 1;
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn solid_clip_is_flat_and_endless() {
        let mut c = SolidClip::paper_gray(16, 9);
        for _ in 0..10 {
            let f = c.next_frame().unwrap();
            assert_eq!(f.min_sample(), 127.0);
            assert_eq!(f.max_sample(), 127.0);
        }
    }

    #[test]
    fn paper_gray_levels_match_section4() {
        let mut g = SolidClip::paper_gray(4, 4);
        let mut d = SolidClip::paper_dark_gray(4, 4);
        assert_eq!(g.next_frame().unwrap().get(0, 0), 127.0);
        assert_eq!(d.next_frame().unwrap().get(0, 0), 180.0);
    }

    #[test]
    fn moving_bars_shift_over_time() {
        let mut c = MovingBarsClip::new(32, 8, 4, 4.0, 0.0, 255.0, FrameRate::VIDEO_30);
        let f0 = c.next_frame().unwrap();
        let f1 = c.next_frame().unwrap();
        // Shifting by exactly one bar width flips every pixel.
        assert_ne!(f0, f1);
        assert_eq!(f0.get(0, 0), f1.get(4, 0));
    }

    #[test]
    fn brightness_ramp_hits_endpoints_and_ends() {
        let mut c = BrightnessRampClip::new(4, 4, 60.0, 200.0, 5, FrameRate::VIDEO_30);
        let frames = c.take_frames(100);
        assert_eq!(frames.len(), 5);
        assert_eq!(frames[0].get(0, 0), 60.0);
        assert_eq!(frames[4].get(0, 0), 200.0);
    }

    #[test]
    fn sunrise_is_deterministic_per_seed() {
        let mut a = SunriseClip::new(64, 36, 10, 7);
        let mut b = SunriseClip::new(64, 36, 10, 7);
        let mut c = SunriseClip::new(64, 36, 10, 8);
        let fa = a.next_frame().unwrap();
        let fb = b.next_frame().unwrap();
        let fc = c.next_frame().unwrap();
        assert_eq!(fa, fb);
        assert_ne!(fa, fc);
    }

    #[test]
    fn sunrise_brightens_over_time() {
        let mut c = SunriseClip::new(64, 36, 30, 1);
        let frames = c.take_frames(30);
        let first_mean = frames.first().unwrap().mean();
        let last_mean = frames.last().unwrap().mean();
        assert!(
            last_mean > first_mean + 10.0,
            "dawn must brighten: {first_mean} -> {last_mean}"
        );
    }

    #[test]
    fn sunrise_has_more_texture_than_solid() {
        let mut sun = SunriseClip::new(64, 36, 4, 1);
        let mut gray = SolidClip::paper_gray(64, 36);
        let fs = sun.next_frame().unwrap();
        let fg = gray.next_frame().unwrap();
        assert!(stats::texture_energy(&fs) > stats::texture_energy(&fg) + 0.2);
    }

    #[test]
    fn sunrise_has_motion() {
        let mut c = SunriseClip::new(64, 36, 10, 1);
        let f0 = c.next_frame().unwrap();
        let f1 = c.next_frame().unwrap();
        assert!(stats::motion_energy(&f0, &f1).unwrap() > 0.0);
    }

    #[test]
    fn noise_is_smooth_and_bounded() {
        let n = Noise::new(5);
        let mut prev = n.at(0.0, 0.0);
        for i in 1..100 {
            let v = n.at(i as f32 * 0.01, 0.0);
            assert!((0.0..=1.0).contains(&v));
            assert!((v - prev).abs() < 0.1, "noise must be locally smooth");
            prev = v;
        }
    }
}
