//! Clip transforms: editing operations over [`VideoSource`]s.
//!
//! Real playback paths do more than decode frames: they concatenate clips
//! (scene cuts), crossfade, letterbox to the display aspect, and adjust
//! levels. Each transform here wraps a source and is itself a source, so
//! experiment inputs compose: a scene-cut stress clip is
//! `Concat(solid, bars)`, a "TV with black bars" is `Letterbox(sunrise)`.
//!
//! Scene cuts matter to InFrame specifically: the video frame `V` changes
//! abruptly, but since both frames of a complementary pair use the *same*
//! `V`, cuts do not corrupt in-flight data cycles — an invariant the
//! integration tests check with these transforms.

use crate::source::{FrameRate, VideoSource};
use inframe_frame::Plane;

/// Plays `first` to completion, then `second` (a hard scene cut).
#[derive(Debug)]
pub struct Concat<A, B> {
    first: A,
    second: B,
    in_second: bool,
}

impl<A: VideoSource, B: VideoSource> Concat<A, B> {
    /// Concatenates two sources.
    ///
    /// # Panics
    /// Panics if the sources disagree in shape or frame rate.
    pub fn new(first: A, second: B) -> Self {
        assert_eq!(
            (first.width(), first.height()),
            (second.width(), second.height()),
            "concatenated clips must share a shape"
        );
        assert!(
            (first.frame_rate().0 - second.frame_rate().0).abs() < 1e-9,
            "concatenated clips must share a frame rate"
        );
        Self {
            first,
            second,
            in_second: false,
        }
    }
}

impl<A: VideoSource, B: VideoSource> VideoSource for Concat<A, B> {
    fn width(&self) -> usize {
        self.first.width()
    }
    fn height(&self) -> usize {
        self.first.height()
    }
    fn frame_rate(&self) -> FrameRate {
        self.first.frame_rate()
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        if !self.in_second {
            if let Some(f) = self.first.next_frame() {
                return Some(f);
            }
            self.in_second = true;
        }
        self.second.next_frame()
    }
}

/// Crossfades from `a` to `b` over `fade_frames` frames, then continues
/// with `b`.
#[derive(Debug)]
pub struct Crossfade<A, B> {
    a: A,
    b: B,
    fade_frames: usize,
    t: usize,
}

impl<A: VideoSource, B: VideoSource> Crossfade<A, B> {
    /// Builds the crossfade.
    ///
    /// # Panics
    /// Panics on shape/rate mismatch or a zero-length fade.
    pub fn new(a: A, b: B, fade_frames: usize) -> Self {
        assert!(fade_frames > 0, "fade must span at least one frame");
        assert_eq!(
            (a.width(), a.height()),
            (b.width(), b.height()),
            "crossfaded clips must share a shape"
        );
        Self {
            a,
            b,
            fade_frames,
            t: 0,
        }
    }
}

impl<A: VideoSource, B: VideoSource> VideoSource for Crossfade<A, B> {
    fn width(&self) -> usize {
        self.a.width()
    }
    fn height(&self) -> usize {
        self.a.height()
    }
    fn frame_rate(&self) -> FrameRate {
        self.a.frame_rate()
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        let t = self.t;
        self.t += 1;
        if t >= self.fade_frames {
            return self.b.next_frame();
        }
        let alpha = (t as f32 + 0.5) / self.fade_frames as f32;
        let fa = self.a.next_frame();
        let fb = self.b.next_frame();
        match (fa, fb) {
            (Some(fa), Some(fb)) => Some(
                inframe_frame::arith::zip_map(&fa, &fb, |x, y| x + alpha * (y - x))
                    .expect("same shape by construction"),
            ),
            (None, some_b) => some_b,
            (some_a, None) => some_a,
        }
    }
}

/// Letterboxes a source into a larger canvas with black bars.
#[derive(Debug)]
pub struct Letterbox<S> {
    inner: S,
    canvas_w: usize,
    canvas_h: usize,
    bar_level: f32,
}

impl<S: VideoSource> Letterbox<S> {
    /// Centers `inner` in a `canvas_w × canvas_h` frame filled with
    /// `bar_level`.
    ///
    /// # Panics
    /// Panics if the canvas is smaller than the clip.
    pub fn new(inner: S, canvas_w: usize, canvas_h: usize, bar_level: f32) -> Self {
        assert!(
            canvas_w >= inner.width() && canvas_h >= inner.height(),
            "canvas must contain the clip"
        );
        Self {
            inner,
            canvas_w,
            canvas_h,
            bar_level,
        }
    }
}

impl<S: VideoSource> VideoSource for Letterbox<S> {
    fn width(&self) -> usize {
        self.canvas_w
    }
    fn height(&self) -> usize {
        self.canvas_h
    }
    fn frame_rate(&self) -> FrameRate {
        self.inner.frame_rate()
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        let frame = self.inner.next_frame()?;
        let mut canvas = Plane::filled(self.canvas_w, self.canvas_h, self.bar_level);
        let x = (self.canvas_w - frame.width()) / 2;
        let y = (self.canvas_h - frame.height()) / 2;
        canvas.blit(&frame, x, y).expect("canvas contains the clip");
        Some(canvas)
    }
}

/// Applies a per-frame brightness/contrast adjustment:
/// `out = (in − 128) · contrast + 128 + brightness`, clamped to `[0, 255]`.
#[derive(Debug)]
pub struct Levels<S> {
    inner: S,
    brightness: f32,
    contrast: f32,
}

impl<S: VideoSource> Levels<S> {
    /// Builds the adjustment (contrast 1.0, brightness 0.0 = identity).
    pub fn new(inner: S, brightness: f32, contrast: f32) -> Self {
        assert!(contrast >= 0.0, "contrast must be non-negative");
        Self {
            inner,
            brightness,
            contrast,
        }
    }
}

impl<S: VideoSource> VideoSource for Levels<S> {
    fn width(&self) -> usize {
        self.inner.width()
    }
    fn height(&self) -> usize {
        self.inner.height()
    }
    fn frame_rate(&self) -> FrameRate {
        self.inner.frame_rate()
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        let mut f = self.inner.next_frame()?;
        let (b, c) = (self.brightness, self.contrast);
        f.map_in_place(|v| ((v - 128.0) * c + 128.0 + b).clamp(0.0, 255.0));
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FrameList, Limited, VideoSource};
    use crate::synth::SolidClip;

    fn solid(level: f32, frames: usize) -> Limited<SolidClip> {
        Limited::new(SolidClip::new(8, 6, level, FrameRate::VIDEO_30), frames)
    }

    #[test]
    fn concat_plays_both_clips_in_order() {
        let mut c = Concat::new(solid(10.0, 2), solid(200.0, 3));
        let frames = c.take_frames(100);
        assert_eq!(frames.len(), 5);
        assert_eq!(frames[0].get(0, 0), 10.0);
        assert_eq!(frames[1].get(0, 0), 10.0);
        assert_eq!(frames[2].get(0, 0), 200.0);
        assert_eq!(frames[4].get(0, 0), 200.0);
    }

    #[test]
    fn crossfade_is_monotone_between_levels() {
        let mut x = Crossfade::new(solid(0.0, 10), solid(100.0, 20), 10);
        let frames = x.take_frames(15);
        assert_eq!(frames.len(), 15);
        for pair in frames.windows(2) {
            assert!(pair[1].get(0, 0) >= pair[0].get(0, 0));
        }
        assert_eq!(frames[14].get(0, 0), 100.0);
        assert!(frames[0].get(0, 0) < 20.0);
    }

    #[test]
    fn letterbox_centers_and_fills_bars() {
        let mut l = Letterbox::new(solid(200.0, 1), 12, 10, 0.0);
        assert_eq!((l.width(), l.height()), (12, 10));
        let f = l.next_frame().unwrap();
        assert_eq!(f.get(0, 0), 0.0); // bar
        assert_eq!(f.get(6, 5), 200.0); // clip centre
        assert_eq!(f.get(2, 2), 200.0); // clip corner (8x6 at (2,2))
        assert_eq!(f.get(1, 1), 0.0);
    }

    #[test]
    fn levels_identity_and_clamping() {
        let mut id = Levels::new(solid(127.0, 1), 0.0, 1.0);
        assert_eq!(id.next_frame().unwrap().get(0, 0), 127.0);
        let mut hot = Levels::new(solid(200.0, 1), 100.0, 2.0);
        assert_eq!(hot.next_frame().unwrap().get(0, 0), 255.0);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn concat_rejects_mismatched_shapes() {
        let a = Limited::new(SolidClip::new(8, 6, 0.0, FrameRate::VIDEO_30), 1);
        let b = Limited::new(SolidClip::new(6, 8, 0.0, FrameRate::VIDEO_30), 1);
        let _ = Concat::new(a, b);
    }

    #[test]
    fn transforms_compose() {
        let cut = Concat::new(solid(50.0, 2), solid(150.0, 2));
        let boxed = Letterbox::new(cut, 16, 12, 0.0);
        let mut leveled = Levels::new(boxed, 10.0, 1.0);
        let frames = leveled.take_frames(10);
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0].get(8, 6), 60.0); // 50 + 10 in the clip area
        assert_eq!(frames[0].get(0, 0), 10.0); // bars get brightness too
        let list = FrameList::new(frames, FrameRate::VIDEO_30);
        assert_eq!(list.remaining(), 4);
    }
}
