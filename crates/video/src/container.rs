//! IFV — a minimal raw planar video container.
//!
//! Experiments must be replayable on byte-identical inputs. IFV stores a
//! fixed-size 8-bit luma clip with a 32-byte header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "IFV1"
//! 4       4     width  (u32 LE)
//! 8       4     height (u32 LE)
//! 12      4     frame count (u32 LE)
//! 16      8     frame rate in micro-FPS (u64 LE, e.g. 30.0 → 30_000_000)
//! 24      8     reserved (zero)
//! 32      w*h   frame 0 (row-major u8), then frame 1, …
//! ```

use crate::source::{FrameList, FrameRate};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use inframe_frame::{FrameError, Plane};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes identifying an IFV stream.
pub const MAGIC: &[u8; 4] = b"IFV1";

/// An in-memory IFV clip: metadata plus 8-bit luma frames.
#[derive(Debug, Clone, PartialEq)]
pub struct IfvClip {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Nominal frame rate.
    pub rate: FrameRate,
    /// The frames, 8-bit luma.
    pub frames: Vec<Plane<u8>>,
}

impl IfvClip {
    /// Builds a clip from f32 frames by 8-bit quantization.
    ///
    /// # Panics
    /// Panics if `frames` is empty or shapes differ.
    pub fn from_f32_frames(frames: &[Plane<f32>], rate: FrameRate) -> Self {
        assert!(!frames.is_empty(), "clip must have at least one frame");
        let shape = frames[0].shape();
        assert!(
            frames.iter().all(|f| f.shape() == shape),
            "all frames must share one shape"
        );
        Self {
            width: shape.0,
            height: shape.1,
            rate,
            frames: frames.iter().map(|f| f.quantize_u8()).collect(),
        }
    }

    /// Converts back to an f32 [`FrameList`] source.
    pub fn to_source(&self) -> FrameList {
        FrameList::new(self.frames.iter().map(|f| f.to_f32()).collect(), self.rate)
    }

    /// Serializes the clip to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + self.frames.len() * self.width * self.height);
        buf.put_slice(MAGIC);
        buf.put_u32_le(self.width as u32);
        buf.put_u32_le(self.height as u32);
        buf.put_u32_le(self.frames.len() as u32);
        buf.put_u64_le((self.rate.0 * 1_000_000.0).round() as u64);
        buf.put_u64_le(0); // reserved
        for f in &self.frames {
            buf.put_slice(f.samples());
        }
        buf.freeze()
    }

    /// Parses a clip from bytes.
    ///
    /// # Errors
    /// Returns [`FrameError::Parse`] on bad magic, truncated data or
    /// invalid dimensions.
    pub fn decode(mut data: Bytes) -> Result<Self, FrameError> {
        if data.len() < 32 {
            return Err(FrameError::Parse("IFV header truncated".into()));
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(FrameError::Parse(format!(
                "bad IFV magic {magic:02X?}, expected {MAGIC:02X?}"
            )));
        }
        let width = data.get_u32_le() as usize;
        let height = data.get_u32_le() as usize;
        let count = data.get_u32_le() as usize;
        let rate_micro = data.get_u64_le();
        let _reserved = data.get_u64_le();
        if width == 0 || height == 0 {
            return Err(FrameError::Parse("IFV frame dimensions are zero".into()));
        }
        let frame_bytes = width * height;
        if data.remaining() != count * frame_bytes {
            return Err(FrameError::Parse(format!(
                "IFV payload has {} bytes, expected {}",
                data.remaining(),
                count * frame_bytes
            )));
        }
        let mut frames = Vec::with_capacity(count);
        for _ in 0..count {
            let mut raw = vec![0u8; frame_bytes];
            data.copy_to_slice(&mut raw);
            frames.push(Plane::from_vec(width, height, raw)?);
        }
        Ok(Self {
            width,
            height,
            rate: FrameRate(rate_micro as f64 / 1_000_000.0),
            frames,
        })
    }

    /// Writes the clip to a file.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), FrameError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.encode())?;
        Ok(())
    }

    /// Reads a clip from a file.
    ///
    /// # Errors
    /// Propagates I/O failures and parse errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FrameError> {
        let mut f = std::fs::File::open(path)?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        Self::decode(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VideoSource;

    fn sample_clip() -> IfvClip {
        let frames: Vec<Plane<f32>> = (0..3)
            .map(|t| Plane::from_fn(6, 4, move |x, y| ((x + y * 6 + t * 24) % 256) as f32))
            .collect();
        IfvClip::from_f32_frames(&frames, FrameRate::VIDEO_30)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let clip = sample_clip();
        let rt = IfvClip::decode(clip.encode()).unwrap();
        assert_eq!(clip, rt);
        assert!((rt.rate.0 - 30.0).abs() < 1e-6);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_clip().encode().to_vec();
        bytes[0] = b'X';
        assert!(IfvClip::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = sample_clip().encode();
        let cut = bytes.slice(0..bytes.len() - 5);
        assert!(IfvClip::decode(cut).is_err());
    }

    #[test]
    fn tiny_header_rejected() {
        assert!(IfvClip::decode(Bytes::from_static(b"IFV1")).is_err());
    }

    #[test]
    fn to_source_replays_frames() {
        let clip = sample_clip();
        let mut src = clip.to_source();
        assert_eq!(src.width(), 6);
        let frames = src.take_frames(10);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].get(1, 1), clip.frames[0].get(1, 1) as f32);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("inframe_ifv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clip.ifv");
        let clip = sample_clip();
        clip.save(&path).unwrap();
        let rt = IfvClip::load(&path).unwrap();
        assert_eq!(clip, rt);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantization_clamps() {
        let frames = vec![Plane::from_vec(2, 1, vec![-20.0f32, 300.0]).unwrap()];
        let clip = IfvClip::from_f32_frames(&frames, FrameRate(24.0));
        assert_eq!(clip.frames[0].samples(), &[0u8, 255]);
    }
}
