//! The [`VideoSource`] trait and stream adapters.
//!
//! A video source yields luma frames (`Plane<f32>`, code values 0–255) at a
//! declared frame rate. The InFrame sender consumes a 30 FPS source and
//! emits 120 Hz multiplexed frames by duplicating each video frame four
//! times (paper Figure 2); [`RateConverter`] implements exactly that
//! duplication.

use inframe_frame::Plane;
use serde::{Deserialize, Serialize};

/// A frame rate in frames per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameRate(pub f64);

impl FrameRate {
    /// The paper's video rate (30 FPS).
    pub const VIDEO_30: FrameRate = FrameRate(30.0);
    /// The paper's display refresh (120 Hz).
    pub const DISPLAY_120: FrameRate = FrameRate(120.0);

    /// Seconds per frame.
    pub fn frame_duration(&self) -> f64 {
        1.0 / self.0
    }
}

/// Copies `src` into `out`, reallocating only on a shape change.
fn copy_plane_into(src: &Plane<f32>, out: &mut Plane<f32>) {
    if out.shape() == src.shape() {
        out.samples_mut().copy_from_slice(src.samples());
    } else {
        *out = src.clone();
    }
}

/// A pull-based stream of luma frames.
///
/// Implementations must yield frames of a constant size; `next_frame`
/// returns `None` at end of stream (infinite procedural sources never end).
pub trait VideoSource {
    /// Frame width in pixels.
    fn width(&self) -> usize;
    /// Frame height in pixels.
    fn height(&self) -> usize;
    /// Nominal frame rate.
    fn frame_rate(&self) -> FrameRate;
    /// Produces the next frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<Plane<f32>>;

    /// Writes the next frame into `out` (resizing it on first use),
    /// returning `false` at end of stream.
    ///
    /// This is the allocation-free twin of [`VideoSource::next_frame`]:
    /// the sender holds one video plane for the life of the stream and
    /// refills it in place at each video boundary, so steady-state
    /// playback never churns full-frame buffers through the allocator
    /// (at 4K a frame is ~33 MB — large enough that repeated
    /// alloc/free round-trips through `mmap` and cost hundreds of
    /// milliseconds on some hosts). The default forwards to
    /// `next_frame` and copies; procedural sources override it to
    /// synthesize directly into `out`.
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        match self.next_frame() {
            Some(f) => {
                // The frame was freshly allocated anyway — move it in
                // rather than paying a copy on top.
                *out = f;
                true
            }
            None => false,
        }
    }

    /// Collects up to `n` frames into a vector (fewer if the stream ends).
    fn take_frames(&mut self, n: usize) -> Vec<Plane<f32>>
    where
        Self: Sized,
    {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_frame() {
                Some(f) => out.push(f),
                None => break,
            }
        }
        out
    }
}

impl<T: VideoSource + ?Sized> VideoSource for Box<T> {
    fn width(&self) -> usize {
        (**self).width()
    }
    fn height(&self) -> usize {
        (**self).height()
    }
    fn frame_rate(&self) -> FrameRate {
        (**self).frame_rate()
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        (**self).next_frame()
    }
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        (**self).next_frame_into(out)
    }
}

/// Replays a fixed list of frames once.
#[derive(Debug, Clone)]
pub struct FrameList {
    frames: Vec<Plane<f32>>,
    rate: FrameRate,
    pos: usize,
}

impl FrameList {
    /// Builds a source from frames (all must share a shape).
    ///
    /// # Panics
    /// Panics if `frames` is empty or shapes differ.
    pub fn new(frames: Vec<Plane<f32>>, rate: FrameRate) -> Self {
        assert!(!frames.is_empty(), "frame list must be nonempty");
        let shape = frames[0].shape();
        assert!(
            frames.iter().all(|f| f.shape() == shape),
            "all frames must share one shape"
        );
        Self {
            frames,
            rate,
            pos: 0,
        }
    }

    /// Number of frames remaining.
    pub fn remaining(&self) -> usize {
        self.frames.len() - self.pos
    }
}

impl VideoSource for FrameList {
    fn width(&self) -> usize {
        self.frames[0].width()
    }
    fn height(&self) -> usize {
        self.frames[0].height()
    }
    fn frame_rate(&self) -> FrameRate {
        self.rate
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        let f = self.frames.get(self.pos).cloned();
        if f.is_some() {
            self.pos += 1;
        }
        f
    }
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        match self.frames.get(self.pos) {
            Some(f) => {
                copy_plane_into(f, out);
                self.pos += 1;
                true
            }
            None => false,
        }
    }
}

/// Duplicates each source frame an integral number of times, converting a
/// 30 FPS stream into the 120 Hz display cadence of Figure 2.
#[derive(Debug)]
pub struct RateConverter<S> {
    inner: S,
    factor: usize,
    pending: Option<(Plane<f32>, usize)>,
}

impl<S: VideoSource> RateConverter<S> {
    /// Wraps `inner`, duplicating each frame `factor` times.
    ///
    /// # Panics
    /// Panics when `factor == 0`.
    pub fn new(inner: S, factor: usize) -> Self {
        assert!(factor > 0, "duplication factor must be nonzero");
        Self {
            inner,
            factor,
            pending: None,
        }
    }

    /// The paper's 30→120 conversion (factor 4).
    pub fn x4(inner: S) -> Self {
        Self::new(inner, 4)
    }
}

impl<S: VideoSource> VideoSource for RateConverter<S> {
    fn width(&self) -> usize {
        self.inner.width()
    }
    fn height(&self) -> usize {
        self.inner.height()
    }
    fn frame_rate(&self) -> FrameRate {
        FrameRate(self.inner.frame_rate().0 * self.factor as f64)
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        if let Some((frame, left)) = self.pending.take() {
            if left > 1 {
                self.pending = Some((frame.clone(), left - 1));
            }
            return Some(frame);
        }
        let frame = self.inner.next_frame()?;
        if self.factor > 1 {
            self.pending = Some((frame.clone(), self.factor - 1));
        }
        Some(frame)
    }
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        if let Some((frame, left)) = &mut self.pending {
            copy_plane_into(frame, out);
            if *left > 1 {
                *left -= 1;
            } else {
                self.pending = None;
            }
            return true;
        }
        if !self.inner.next_frame_into(out) {
            return false;
        }
        if self.factor > 1 {
            self.pending = Some((out.clone(), self.factor - 1));
        }
        true
    }
}

/// Loops an inner finite source forever (rewinding at end of stream).
#[derive(Debug, Clone)]
pub struct Looped {
    frames: Vec<Plane<f32>>,
    rate: FrameRate,
    pos: usize,
}

impl Looped {
    /// Materializes `inner` fully and loops it.
    ///
    /// # Panics
    /// Panics if `inner` yields no frames.
    pub fn from_source(mut inner: impl VideoSource) -> Self {
        let mut frames = Vec::new();
        while let Some(f) = inner.next_frame() {
            frames.push(f);
            assert!(
                frames.len() < 1_000_000,
                "refusing to materialize an endless source"
            );
        }
        assert!(!frames.is_empty(), "source yielded no frames");
        Self {
            rate: inner.frame_rate(),
            frames,
            pos: 0,
        }
    }
}

impl VideoSource for Looped {
    fn width(&self) -> usize {
        self.frames[0].width()
    }
    fn height(&self) -> usize {
        self.frames[0].height()
    }
    fn frame_rate(&self) -> FrameRate {
        self.rate
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        let f = self.frames[self.pos].clone();
        self.pos = (self.pos + 1) % self.frames.len();
        Some(f)
    }
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        copy_plane_into(&self.frames[self.pos], out);
        self.pos = (self.pos + 1) % self.frames.len();
        true
    }
}

/// Truncates an inner source to at most `n` frames.
#[derive(Debug)]
pub struct Limited<S> {
    inner: S,
    left: usize,
}

impl<S: VideoSource> Limited<S> {
    /// Wraps `inner`, yielding at most `n` frames.
    pub fn new(inner: S, n: usize) -> Self {
        Self { inner, left: n }
    }
}

impl<S: VideoSource> VideoSource for Limited<S> {
    fn width(&self) -> usize {
        self.inner.width()
    }
    fn height(&self) -> usize {
        self.inner.height()
    }
    fn frame_rate(&self) -> FrameRate {
        self.inner.frame_rate()
    }
    fn next_frame(&mut self) -> Option<Plane<f32>> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.inner.next_frame()
    }
    fn next_frame_into(&mut self, out: &mut Plane<f32>) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        self.inner.next_frame_into(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Vec<Plane<f32>> {
        (0..n).map(|i| Plane::filled(4, 3, i as f32)).collect()
    }

    #[test]
    fn frame_list_yields_in_order_then_ends() {
        let mut s = FrameList::new(frames(3), FrameRate::VIDEO_30);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_frame().unwrap().get(0, 0), 0.0);
        assert_eq!(s.next_frame().unwrap().get(0, 0), 1.0);
        assert_eq!(s.next_frame().unwrap().get(0, 0), 2.0);
        assert!(s.next_frame().is_none());
    }

    #[test]
    #[should_panic(expected = "share one shape")]
    fn mixed_shapes_rejected() {
        let a = Plane::filled(4, 3, 0.0);
        let b = Plane::filled(3, 4, 0.0);
        let _ = FrameList::new(vec![a, b], FrameRate::VIDEO_30);
    }

    #[test]
    fn rate_converter_duplicates_four_times() {
        let src = FrameList::new(frames(2), FrameRate::VIDEO_30);
        let mut conv = RateConverter::x4(src);
        assert_eq!(conv.frame_rate().0, 120.0);
        let out = conv.take_frames(100);
        assert_eq!(out.len(), 8);
        for i in 0..4 {
            assert_eq!(out[i].get(0, 0), 0.0);
            assert_eq!(out[4 + i].get(0, 0), 1.0);
        }
    }

    #[test]
    fn rate_converter_factor_one_is_passthrough() {
        let src = FrameList::new(frames(3), FrameRate::VIDEO_30);
        let mut conv = RateConverter::new(src, 1);
        assert_eq!(conv.take_frames(10).len(), 3);
    }

    #[test]
    fn looped_source_wraps_around() {
        let src = FrameList::new(frames(2), FrameRate::VIDEO_30);
        let mut looped = Looped::from_source(src);
        let out = looped.take_frames(5);
        let vals: Vec<f32> = out.iter().map(|f| f.get(0, 0)).collect();
        assert_eq!(vals, vec![0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn limited_truncates() {
        let src = FrameList::new(frames(10), FrameRate::VIDEO_30);
        let mut lim = Limited::new(src, 4);
        assert_eq!(lim.take_frames(100).len(), 4);
        assert!(lim.next_frame().is_none());
    }

    #[test]
    fn frame_rate_duration() {
        assert!((FrameRate::DISPLAY_120.frame_duration() - 1.0 / 120.0).abs() < 1e-12);
    }
}
