//! # inframe-video
//!
//! Video sources and synthetic clip generation for the InFrame
//! reproduction.
//!
//! The paper evaluates against three inputs: "a pure gray video, a pure
//! dark gray video, and a normal sun-rising video clip" (§4). The physical
//! clips are unavailable, so this crate synthesizes equivalents whose
//! *channel-relevant* properties — spatial texture, local contrast, motion
//! — are controlled and documented (see DESIGN.md, substitution table):
//!
//! * [`source`] — the [`VideoSource`] trait: a pull-based stream of luma
//!   frames at a fixed rate, plus adapters (frame-rate conversion by
//!   duplication, clip looping, length limiting).
//! * [`synth`] — generators: solid color, gradients, moving bars, value
//!   noise, and the procedural [`synth::SunriseClip`] standing in for the
//!   paper's sun-rising clip.
//! * [`container`] — a minimal raw planar container ("IFV") for persisting
//!   clips to disk and reading them back, so experiments can be re-run on
//!   identical inputs.
//! * [`stats`] — luma histograms, spatial-texture and motion metrics used
//!   by experiments to characterize inputs (and explain why textured clips
//!   decode worse, Figure 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod source;
pub mod stats;
pub mod synth;
pub mod transform;

pub use source::{FrameRate, VideoSource};
