//! Input-characterization metrics.
//!
//! Figure 7 shows decoded throughput dropping from pure-color clips to the
//! real video — the paper attributes this to content interference. These
//! metrics quantify the responsible properties (spatial texture, local
//! contrast, motion) so the reproduction can *demonstrate* the causal link
//! rather than assert it.

use inframe_frame::{arith, FrameError, Plane};

/// Mean absolute horizontal+vertical gradient — a cheap spatial-texture
/// measure. Zero for solid frames, large for busy content.
pub fn texture_energy(frame: &Plane<f32>) -> f64 {
    let (w, h) = frame.shape();
    let mut acc = 0.0f64;
    let mut count = 0u64;
    for y in 0..h {
        for x in 0..w {
            let v = frame.get(x, y);
            if x + 1 < w {
                acc += (frame.get(x + 1, y) - v).abs() as f64;
                count += 1;
            }
            if y + 1 < h {
                acc += (frame.get(x, y + 1) - v).abs() as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        acc / count as f64
    }
}

/// Mean absolute frame difference — a motion proxy.
///
/// # Errors
/// Returns [`FrameError::ShapeMismatch`] when shapes differ.
pub fn motion_energy(a: &Plane<f32>, b: &Plane<f32>) -> Result<f64, FrameError> {
    arith::mae(a, b)
}

/// 256-bin luma histogram (code values clamped into `[0, 255]`).
pub fn luma_histogram(frame: &Plane<f32>) -> [u64; 256] {
    let mut hist = [0u64; 256];
    for &v in frame.samples() {
        let bin = v.round().clamp(0.0, 255.0) as usize;
        hist[bin] += 1;
    }
    hist
}

/// Fraction of pixels within `margin` code values of the 0/255 rails —
/// where the sender must locally reduce the chessboard amplitude (§3.3
/// "for bright or dark areas, we locally adjust the amplitude").
pub fn clipping_fraction(frame: &Plane<f32>, delta: f32) -> f64 {
    let n = frame
        .samples()
        .iter()
        .filter(|&&v| v < delta || v > 255.0 - delta)
        .count();
    n as f64 / frame.len() as f64
}

/// Summary of a clip's channel-relevant properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipProfile {
    /// Mean luma over all frames.
    pub mean_luma: f64,
    /// Mean texture energy over all frames.
    pub texture: f64,
    /// Mean inter-frame motion energy.
    pub motion: f64,
    /// Mean clipping fraction at δ = 20.
    pub clipping_at_20: f64,
}

/// Profiles a sequence of frames.
///
/// # Panics
/// Panics on an empty slice.
pub fn profile(frames: &[Plane<f32>]) -> ClipProfile {
    assert!(!frames.is_empty(), "cannot profile an empty clip");
    let mean_luma = frames.iter().map(|f| f.mean()).sum::<f64>() / frames.len() as f64;
    let texture = frames.iter().map(texture_energy).sum::<f64>() / frames.len() as f64;
    let motion = if frames.len() < 2 {
        0.0
    } else {
        frames
            .windows(2)
            .map(|w| motion_energy(&w[0], &w[1]).expect("profiled frames share a shape"))
            .sum::<f64>()
            / (frames.len() - 1) as f64
    };
    let clipping_at_20 = frames
        .iter()
        .map(|f| clipping_fraction(f, 20.0))
        .sum::<f64>()
        / frames.len() as f64;
    ClipProfile {
        mean_luma,
        texture,
        motion,
        clipping_at_20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_frame_has_zero_texture() {
        let p = Plane::filled(16, 16, 127.0);
        assert_eq!(texture_energy(&p), 0.0);
    }

    #[test]
    fn checkerboard_has_maximal_texture() {
        let p = Plane::from_fn(16, 16, |x, y| if (x + y) % 2 == 0 { 0.0 } else { 255.0 });
        assert!((texture_energy(&p) - 255.0).abs() < 1e-6);
    }

    #[test]
    fn motion_energy_zero_for_identical_frames() {
        let p = Plane::filled(8, 8, 50.0);
        assert_eq!(motion_energy(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn histogram_sums_to_pixel_count() {
        let p = Plane::from_fn(10, 10, |x, y| (x * 25 + y) as f32);
        let h = luma_histogram(&p);
        assert_eq!(h.iter().sum::<u64>(), 100);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let p = Plane::from_vec(2, 1, vec![-50.0f32, 400.0]).unwrap();
        let h = luma_histogram(&p);
        assert_eq!(h[0], 1);
        assert_eq!(h[255], 1);
    }

    #[test]
    fn clipping_fraction_detects_rails() {
        let p = Plane::from_vec(4, 1, vec![5.0f32, 127.0, 250.0, 127.0]).unwrap();
        assert!((clipping_fraction(&p, 20.0) - 0.5).abs() < 1e-12);
        assert_eq!(clipping_fraction(&p, 1.0), 0.0);
    }

    #[test]
    fn profile_of_static_gray_clip() {
        let frames = vec![Plane::filled(8, 8, 127.0); 5];
        let pr = profile(&frames);
        assert!((pr.mean_luma - 127.0).abs() < 1e-9);
        assert_eq!(pr.texture, 0.0);
        assert_eq!(pr.motion, 0.0);
        assert_eq!(pr.clipping_at_20, 0.0);
    }

    #[test]
    fn profile_orders_gray_vs_textured() {
        let gray = vec![Plane::filled(16, 16, 127.0); 3];
        let busy: Vec<Plane<f32>> = (0..3)
            .map(|t| Plane::from_fn(16, 16, move |x, y| ((x + y * 3 + t * 5) % 97) as f32 * 2.5))
            .collect();
        let pg = profile(&gray);
        let pb = profile(&busy);
        assert!(pb.texture > pg.texture);
        assert!(pb.motion > pg.motion);
    }
}
