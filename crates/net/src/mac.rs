//! The MAC frame codec: compact addressed frames packed back-to-back
//! inside fountain-coded objects.
//!
//! Wire layout (big-endian multi-byte fields):
//!
//! ```text
//! offset  size  field
//!      0     2  destination address (nonzero; 0x0000 ⇒ padding, stop)
//!      2     2  source address
//!      4     1  stream id
//!      5     1  flags (bit 0: last fragment of the datagram)
//!      6     2  per-(stream, destination) fragment sequence number
//!      8     2  payload length L
//!     10     L  payload
//!   10+L     2  CRC-16/CCITT over bytes [0, 10+L)
//! ```
//!
//! Frames are concatenated without gaps; an object's tail may be zero
//! padding (a zero destination cannot start a frame). The scanner is
//! zero-copy — [`MacFrameView`] borrows the payload — and resynchronizes
//! after corruption by sliding one byte at a time until a frame
//! validates, so one flipped bit costs at most its own frame.

use crate::addr::MacAddr;
use inframe_code::crc::{crc16_ccitt_update, CRC16_CCITT_INIT};

/// Header bytes before the payload.
pub const HEADER_BYTES: usize = 10;

/// Total per-frame overhead (header + CRC-16).
pub const OVERHEAD_BYTES: usize = HEADER_BYTES + 2;

/// Hard cap on a frame payload, bounding receiver reassembly buffers.
pub const MAX_PAYLOAD_BYTES: usize = 1024;

/// Flag bit: this fragment completes its datagram.
pub const FLAG_LAST: u8 = 0x01;

/// A decoded MAC frame borrowing its payload from the scanned bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacFrameView<'a> {
    /// Destination address.
    pub dst: MacAddr,
    /// Source address.
    pub src: MacAddr,
    /// Logical stream id.
    pub stream: u8,
    /// Flags ([`FLAG_LAST`], rest reserved).
    pub flags: u8,
    /// Per-(stream, destination) fragment sequence number (wrapping).
    pub seq: u16,
    /// Fragment payload.
    pub payload: &'a [u8],
}

impl MacFrameView<'_> {
    /// Whether this fragment completes its datagram.
    pub fn is_last(&self) -> bool {
        self.flags & FLAG_LAST != 0
    }
}

/// Appends one encoded frame to `out`.
///
/// # Panics
/// Panics on a zero destination/source or an oversized payload.
pub fn encode_frame_into(
    dst: MacAddr,
    src: MacAddr,
    stream: u8,
    flags: u8,
    seq: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    assert!(dst.0 != 0 && src.0 != 0, "zero address is reserved");
    assert!(
        payload.len() <= MAX_PAYLOAD_BYTES,
        "payload exceeds MAX_PAYLOAD_BYTES"
    );
    let start = out.len();
    out.extend_from_slice(&dst.0.to_be_bytes());
    out.extend_from_slice(&src.0.to_be_bytes());
    out.push(stream);
    out.push(flags);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    out.extend_from_slice(payload);
    let mut crc = CRC16_CCITT_INIT;
    for &b in &out[start..] {
        crc = crc16_ccitt_update(crc, b);
    }
    out.extend_from_slice(&crc.to_be_bytes());
}

/// Tries to decode one frame at the start of `buf`. Returns the view and
/// the encoded size, or `None` if no valid frame starts here.
pub fn decode_frame(buf: &[u8]) -> Option<(MacFrameView<'_>, usize)> {
    if buf.len() < OVERHEAD_BYTES {
        return None;
    }
    let dst = u16::from_be_bytes([buf[0], buf[1]]);
    if dst == 0 {
        return None;
    }
    let src = u16::from_be_bytes([buf[2], buf[3]]);
    if src == 0 {
        return None;
    }
    let len = u16::from_be_bytes([buf[8], buf[9]]) as usize;
    if len > MAX_PAYLOAD_BYTES || buf.len() < OVERHEAD_BYTES + len {
        return None;
    }
    let total = HEADER_BYTES + len;
    let mut crc = CRC16_CCITT_INIT;
    for &b in &buf[..total] {
        crc = crc16_ccitt_update(crc, b);
    }
    if crc != u16::from_be_bytes([buf[total], buf[total + 1]]) {
        return None;
    }
    Some((
        MacFrameView {
            dst: MacAddr(dst),
            src: MacAddr(src),
            stream: buf[4],
            flags: buf[5],
            seq: u16::from_be_bytes([buf[6], buf[7]]),
            payload: &buf[HEADER_BYTES..total],
        },
        OVERHEAD_BYTES + len,
    ))
}

/// A zero-copy iterator over the frames of an object bundle.
///
/// Valid frames are yielded in order; bytes that do not start a valid
/// frame are skipped one at a time (counted in
/// [`MacScanner::rejected_bytes`]), so the scanner recovers after a
/// corrupted frame at the next intact one. Padding zeros at the bundle
/// tail are skipped silently (not counted as rejections).
#[derive(Debug)]
pub struct MacScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    rejected: usize,
}

impl<'a> MacScanner<'a> {
    /// A scanner over `bundle`.
    pub fn new(bundle: &'a [u8]) -> Self {
        Self {
            buf: bundle,
            pos: 0,
            rejected: 0,
        }
    }

    /// Bytes skipped because they did not start a valid frame (padding
    /// zeros excluded).
    pub fn rejected_bytes(&self) -> usize {
        self.rejected
    }
}

impl<'a> Iterator for MacScanner<'a> {
    type Item = MacFrameView<'a>;

    fn next(&mut self) -> Option<MacFrameView<'a>> {
        while self.pos < self.buf.len() {
            if let Some((view, used)) = decode_frame(&self.buf[self.pos..]) {
                self.pos += used;
                return Some(view);
            }
            if self.buf[self.pos] != 0 {
                self.rejected += 1;
            }
            self.pos += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn frame(seq: u16, last: bool, payload: &[u8], out: &mut Vec<u8>) {
        encode_frame_into(
            MacAddr::new(0x0042),
            MacAddr::new(0x0001),
            3,
            if last { FLAG_LAST } else { 0 },
            seq,
            payload,
            out,
        );
    }

    #[test]
    fn roundtrip_and_padding() {
        let mut bundle = Vec::new();
        frame(0, false, b"hello", &mut bundle);
        frame(1, true, b" world", &mut bundle);
        bundle.resize(bundle.len() + 17, 0); // object tail padding
        let mut scan = MacScanner::new(&bundle);
        let a = scan.next().expect("frame 0");
        assert_eq!((a.seq, a.is_last(), a.payload), (0, false, &b"hello"[..]));
        let b = scan.next().expect("frame 1");
        assert_eq!((b.seq, b.is_last(), b.payload), (1, true, &b" world"[..]));
        assert!(scan.next().is_none());
        assert_eq!(scan.rejected_bytes(), 0);
    }

    #[test]
    fn corruption_loses_one_frame_and_resyncs() {
        let mut bundle = Vec::new();
        frame(0, true, &[7; 40], &mut bundle);
        let second_start = bundle.len();
        frame(1, true, &[9; 40], &mut bundle);
        frame(2, true, &[11; 40], &mut bundle);
        // Flip a bit in the middle of frame 1's payload.
        bundle[second_start + HEADER_BYTES + 20] ^= 0x10;
        let got: Vec<u16> = MacScanner::new(&bundle).map(|f| f.seq).collect();
        assert_eq!(got, vec![0, 2], "corrupted frame dropped, rest recovered");
    }

    /// Deterministic frame-parameter generator (the vendored proptest
    /// stub has no tuple strategies, so cases derive from one seed).
    fn gen_frames(seed: u64, n: usize) -> Vec<(u16, u16, u8, bool, u16, Vec<u8>)> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let d = (next() % 0xFFFE + 1) as u16;
                let s = (next() % 0xFFFE + 1) as u16;
                let stream = next() as u8;
                let last = next() & 1 == 0;
                let seq = next() as u16;
                let len = (next() % 96) as usize;
                let payload = (0..len).map(|_| next() as u8).collect();
                (d, s, stream, last, seq, payload)
            })
            .collect()
    }

    proptest! {
        #[test]
        fn prop_roundtrip_identity(
            seed in any::<u64>(),
            n in 0usize..8,
            pad in 0usize..32,
        ) {
            let frames = gen_frames(seed, n);
            let mut bundle = Vec::new();
            for (d, s, stream, last, seq, payload) in &frames {
                encode_frame_into(
                    MacAddr::new(*d), MacAddr::new(*s), *stream,
                    if *last { FLAG_LAST } else { 0 }, *seq, payload, &mut bundle,
                );
            }
            bundle.resize(bundle.len() + pad, 0);
            let decoded: Vec<_> = MacScanner::new(&bundle).collect();
            prop_assert_eq!(decoded.len(), frames.len());
            for (got, (d, s, stream, last, seq, payload)) in decoded.iter().zip(&frames) {
                prop_assert_eq!(got.dst.0, *d);
                prop_assert_eq!(got.src.0, *s);
                prop_assert_eq!(got.stream, *stream);
                prop_assert_eq!(got.is_last(), *last);
                prop_assert_eq!(got.seq, *seq);
                prop_assert_eq!(got.payload, &payload[..]);
            }
        }

        #[test]
        fn prop_truncation_never_yields_phantom_content(
            payload in proptest::collection::vec(any::<u8>(), 0..64),
            cut in 1usize..OVERHEAD_BYTES,
        ) {
            let mut bundle = Vec::new();
            frame(5, true, &payload, &mut bundle);
            bundle.truncate(bundle.len() - cut);
            // A truncated frame must never be delivered.
            prop_assert_eq!(MacScanner::new(&bundle).count(), 0);
        }

        #[test]
        fn prop_bit_flip_never_delivers_altered_payload(
            payload in proptest::collection::vec(any::<u8>(), 1..64),
            flip_byte in 0usize..32,
            flip_bit in 0u32..8,
        ) {
            let mut bundle = Vec::new();
            frame(9, true, &payload, &mut bundle);
            let i = flip_byte % bundle.len();
            bundle[i] ^= 1 << flip_bit;
            // CRC-16 detects every single-bit error, so a frame carrying
            // the original header must carry the original payload — the
            // altered bytes are never delivered under that identity. (A
            // resync at a shifted offset could in principle parse as some
            // unrelated frame; it cannot reproduce this header.)
            for f in MacScanner::new(&bundle) {
                if f.dst == MacAddr(0x0042) && f.src == MacAddr(0x0001) && f.seq == 9 {
                    prop_assert_eq!(f.payload, &payload[..]);
                }
            }
        }

        #[test]
        fn prop_arbitrary_bytes_never_panic(
            junk in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let n = MacScanner::new(&junk).count();
            prop_assert!(n <= junk.len() / OVERHEAD_BYTES + 1);
        }
    }
}
