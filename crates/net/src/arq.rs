//! Selective-repeat ARQ for unicast streams, with graceful degradation
//! to pure fountain repair.
//!
//! The carousel is rateless, so retransmission is never *required* for
//! correctness — any K independent symbols complete an object. What a
//! back-channel buys is latency: a NACK names the exact systematic
//! columns a receiver is missing, and retransmitting those (instead of
//! waiting for the carousel to cycle back around or for enough repair
//! combinations to accumulate) closes the tail in a handful of cycles.
//!
//! The [`ArqEngine`] therefore treats feedback as an *accelerator*, not
//! a dependency:
//!
//! * **Closed mode** — fresh [`FeedbackReport`]s arrive within the
//!   policy timeout. NACKed systematic symbols are queued onto the
//!   spatial carousel's retransmit ring (which preempts the WRR schedule
//!   without perturbing credit), under a per-object retry budget, a
//!   per-report cap (no retry storms), and an exponential backoff with
//!   seeded jitter that opens only when a round shows no progress.
//! * **Fountain mode** — the back-channel has gone silent (dead link,
//!   stale reports beyond the timeout, or never any feedback at all).
//!   All pending retransmits are cancelled and the flow degrades to the
//!   open-loop rateless schedule, which still completes every object.
//!   The engine re-enters closed mode automatically on the next fresh
//!   report.
//!
//! Everything is deterministic per seed and allocation-free in steady
//! state: per-object records live in a preallocated pool reused across
//! object lifetimes, and jitter comes from a SplitMix64 stream.

use crate::spatial::SpatialMux;
use inframe_link::feedback::{FeedbackAggregator, ObjectNack};
use inframe_obs::{names, Counter, Gauge, Telemetry};

/// Tuning knobs for the selective-repeat engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArqPolicy {
    /// Total retransmit credits per object = `retry_budget × K`.
    pub retry_budget: u32,
    /// Feedback older than this many cycles (or absent) degrades the
    /// engine to fountain mode.
    pub feedback_timeout_cycles: u64,
    /// Minimum cycles between retransmit rounds for one object, even
    /// with progress — roughly the feedback round-trip, so a repair in
    /// flight is not re-queued by the next report that predates it.
    pub min_round_spacing_cycles: u64,
    /// First no-progress backoff, in cycles.
    pub backoff_base_cycles: u64,
    /// Backoff ceiling, in cycles.
    pub backoff_max_cycles: u64,
    /// Retransmits queued per NACK report, at most (storm damping).
    pub max_retransmits_per_report: u32,
    /// Cycles a repeated symbol is immune to re-repeating — covers the
    /// emit → scan → report → return pipeline, during which the hole
    /// still shows in fresh NACKs even though its repair is in flight.
    pub repeat_holdoff_cycles: u64,
    /// Jitter seed (deterministic per seed).
    pub seed: u64,
}

impl Default for ArqPolicy {
    fn default() -> Self {
        Self {
            retry_budget: 3,
            feedback_timeout_cycles: 24,
            min_round_spacing_cycles: 4,
            backoff_base_cycles: 2,
            backoff_max_cycles: 32,
            max_retransmits_per_report: 16,
            repeat_holdoff_cycles: 8,
            seed: 0x4152_5131,
        }
    }
}

/// Whether the engine currently trusts the back-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArqMode {
    /// Fresh feedback: NACKs drive selective retransmission.
    Closed,
    /// Back-channel silent or stale: pure rateless repair.
    Fountain,
}

/// Per-object retransmission record.
#[derive(Debug, Clone, Copy)]
struct ObjectArq {
    id: u16,
    /// Remaining retransmit credits (0 ⇒ budget exhausted, fountain
    /// repair finishes the object).
    budget: u32,
    /// Hole count in the last processed NACK — progress detector.
    last_holes: u32,
    /// Consecutive no-progress rounds.
    round: u32,
    /// Earliest cycle the next retransmit round may run.
    next_allowed: u64,
    exhausted_noted: bool,
    /// Ring of recently repeated symbols: `(seq, queued_at_cycle)`.
    /// Sized for two full rounds at the per-report cap.
    recent: [(u32, u64); RECENT_REPEATS],
    recent_head: usize,
}

/// Capacity of the per-object recently-repeated ring.
const RECENT_REPEATS: usize = 32;

struct ArqObs {
    nacks_rx: Counter,
    retransmits: Counter,
    budget_exhausted: Counter,
    timeouts: Counter,
    degraded: Counter,
    restored: Counter,
    backoff_cycles: Gauge,
}

impl ArqObs {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            nacks_rx: telemetry.counter(names::arq::NACKS_RX),
            retransmits: telemetry.counter(names::arq::RETRANSMITS),
            budget_exhausted: telemetry.counter(names::arq::BUDGET_EXHAUSTED),
            timeouts: telemetry.counter(names::arq::TIMEOUTS),
            degraded: telemetry.counter(names::arq::DEGRADED),
            restored: telemetry.counter(names::arq::RESTORED),
            backoff_cycles: telemetry.gauge(names::arq::BACKOFF_CYCLES),
        }
    }
}

/// The sender-side selective-repeat state machine.
pub struct ArqEngine {
    policy: ArqPolicy,
    mode: ArqMode,
    objects: Vec<ObjectArq>,
    rng: u64,
    retransmits: u64,
    suppressed: u64,
    mode_changes: u64,
    obs: ArqObs,
}

impl ArqEngine {
    /// An engine under `policy`, starting in fountain mode (no feedback
    /// has been seen yet).
    pub fn new(policy: ArqPolicy) -> Self {
        assert!(policy.retry_budget > 0, "retry budget must be positive");
        assert!(
            policy.backoff_base_cycles > 0,
            "backoff base must be positive"
        );
        Self {
            policy,
            mode: ArqMode::Fountain,
            objects: Vec::with_capacity(64),
            rng: policy.seed ^ 0x9E37_79B9_7F4A_7C15,
            retransmits: 0,
            suppressed: 0,
            mode_changes: 0,
            obs: ArqObs::new(&Telemetry::disabled()),
        }
    }

    /// Attaches a telemetry spine (`arq.*`).
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.obs = ArqObs::new(telemetry);
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> &ArqPolicy {
        &self.policy
    }

    /// Current mode.
    pub fn mode(&self) -> ArqMode {
        self.mode
    }

    /// Total retransmits queued over the engine's lifetime.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// NACK rounds suppressed by backoff or fountain mode.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Closed↔fountain transitions (degradations + recoveries).
    pub fn mode_changes(&self) -> u64 {
        self.mode_changes
    }

    /// Deterministic jitter in `[0, span]`.
    fn jitter(&mut self, span: u64) -> u64 {
        // SplitMix64 step: deterministic per seed, no wall clock.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if span == 0 {
            0
        } else {
            z % (span + 1)
        }
    }

    /// Re-evaluates the back-channel each cycle: degrades to fountain
    /// when feedback ages past the policy timeout (cancelling every
    /// pending retransmit — a silent receiver must not be sprayed with
    /// stale repairs), restores to closed mode when fresh reports
    /// return. Returns the mode now in force.
    pub fn on_cycle(
        &mut self,
        now_cycle: u64,
        agg: &FeedbackAggregator,
        mux: &mut SpatialMux,
    ) -> ArqMode {
        let fresh = matches!(
            agg.feedback_age(now_cycle),
            Some(age) if age <= self.policy.feedback_timeout_cycles
        );
        match (self.mode, fresh) {
            (ArqMode::Closed, false) => {
                self.mode = ArqMode::Fountain;
                self.mode_changes += 1;
                self.obs.timeouts.incr();
                self.obs.degraded.incr();
                for o in &self.objects {
                    mux.cancel_retransmits(o.id);
                }
                // A later recovery starts from a clean slate: no stale
                // backoff gates, no stale progress watermarks.
                for o in &mut self.objects {
                    o.round = 0;
                    o.next_allowed = 0;
                    o.last_holes = u32::MAX;
                }
                self.obs.backoff_cycles.set(0);
            }
            (ArqMode::Fountain, true) => {
                self.mode = ArqMode::Closed;
                self.mode_changes += 1;
                self.obs.restored.incr();
            }
            _ => {}
        }
        self.mode
    }

    /// Processes one NACK: queues the missing systematic symbols onto
    /// the carousel's retransmit ring, bounded by the per-object budget,
    /// the per-report cap, and the no-progress backoff gate. Returns the
    /// number of retransmits queued.
    pub fn on_nack(&mut self, nack: &ObjectNack, now_cycle: u64, mux: &mut SpatialMux) -> u32 {
        self.obs.nacks_rx.incr();
        if self.mode == ArqMode::Fountain {
            self.suppressed += 1;
            return 0;
        }
        let holes = nack.holes();
        if holes == 0 {
            return 0;
        }
        let idx = match self.objects.iter().position(|o| o.id == nack.object_id) {
            Some(i) => i,
            None => {
                let budget = self
                    .policy
                    .retry_budget
                    .saturating_mul(nack.k.max(1) as u32);
                self.objects.push(ObjectArq {
                    id: nack.object_id,
                    budget,
                    last_holes: u32::MAX,
                    round: 0,
                    next_allowed: 0,
                    exhausted_noted: false,
                    recent: [(u32::MAX, 0); RECENT_REPEATS],
                    recent_head: 0,
                });
                self.objects.len() - 1
            }
        };
        let o = &mut self.objects[idx];
        if now_cycle < o.next_allowed {
            self.suppressed += 1;
            return 0;
        }
        if o.budget == 0 {
            if !o.exhausted_noted {
                o.exhausted_noted = true;
                self.obs.budget_exhausted.incr();
            }
            self.suppressed += 1;
            return 0;
        }
        // Progress detector: a shrinking hole count re-arms fast
        // retries; a stagnant one opens the exponential backoff.
        if holes < o.last_holes {
            o.round = 0;
        } else {
            o.round = o.round.saturating_add(1);
        }
        o.last_holes = holes;
        if !mux.has_object(nack.object_id) {
            // Object already retired from the carousel: the NACK is
            // from a receiver behind the retire — nothing to repeat.
            return 0;
        }
        // The NACK bitmap localizes the fault: stride classes holding
        // two or more holes mark tiles this receiver cannot see well,
        // and repeats routed back through them would mostly die there.
        let classes = mux.num_regions().min(64);
        let mut per_class = [0u8; 64];
        for seq in nack.missing() {
            let c = (seq as usize) % classes;
            per_class[c] = per_class[c].saturating_add(1);
        }
        let mut avoid = 0u64;
        for (c, &n) in per_class.iter().enumerate().take(classes) {
            if n >= 2 {
                avoid |= 1u64 << c;
            }
        }
        let cap = self.policy.max_retransmits_per_report.min(o.budget);
        let holdoff = self.policy.repeat_holdoff_cycles;
        let mut queued = 0u32;
        for seq in nack.missing() {
            if queued >= cap {
                break;
            }
            // A hole the schedule has not reached yet is not a loss —
            // the regular pass will carry it; repeating it now would
            // only duplicate that emission.
            if !mux.seq_emitted(nack.object_id, seq) {
                continue;
            }
            // A repeat emitted within the holdoff is still traversing
            // the scan → report pipeline; the hole it fixes shows in
            // this NACK even though the fix is already in flight.
            let o = &self.objects[idx];
            if o.recent
                .iter()
                .any(|&(s, t)| s == seq && now_cycle.saturating_sub(t) < holdoff)
            {
                continue;
            }
            // `false` here means the symbol is already pending on some
            // shard — skip it without spending budget.
            if mux.queue_retransmit_avoiding(nack.object_id, seq, avoid) {
                let o = &mut self.objects[idx];
                o.recent[o.recent_head] = (seq, now_cycle);
                o.recent_head = (o.recent_head + 1) % RECENT_REPEATS;
                queued += 1;
            }
        }
        let round = {
            let o = &mut self.objects[idx];
            o.budget -= queued;
            if o.budget == 0 && !o.exhausted_noted {
                o.exhausted_noted = true;
                self.obs.budget_exhausted.incr();
            }
            o.round
        };
        // Round 0 (progress) paces at the feedback round-trip; stalled
        // rounds open the exponential backoff on top of that floor.
        let delay = if round == 0 {
            self.policy.min_round_spacing_cycles
        } else {
            let shift = round.min(16);
            (self.policy.backoff_base_cycles << shift)
                .min(self.policy.backoff_max_cycles)
                .max(self.policy.min_round_spacing_cycles)
        };
        let jitter = self.jitter(delay / 2);
        self.objects[idx].next_allowed = now_cycle + delay + jitter;
        self.obs.backoff_cycles.set(delay + jitter);
        self.retransmits += queued as u64;
        self.obs.retransmits.add(queued as u64);
        queued
    }

    /// Drops the record of a retired object and cancels its pending
    /// retransmits.
    pub fn object_retired(&mut self, id: u16, mux: &mut SpatialMux) {
        mux.cancel_retransmits(id);
        self.objects.retain(|o| o.id != id);
    }

    /// Objects with live ARQ state.
    pub fn tracked_objects(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::SpatialMux;
    use inframe_core::layout::DataLayout;
    use inframe_core::region::RegionMap;
    use inframe_core::InFrameConfig;
    use inframe_link::feedback::{FeedbackReport, RegionQuality};

    fn mux_with_object(id: u16) -> SpatialMux {
        let layout = DataLayout::from_config(&InFrameConfig::paper());
        let mut mux = SpatialMux::new(RegionMap::new(&layout, 5, 3));
        let data: Vec<u8> = (0..400u32).map(|i| i as u8).collect();
        mux.add_object(id, 1, &data);
        // One emitted cycle: every shard passes its first strided seqs,
        // so low-numbered columns count as lost (not merely unsent).
        mux.next_cycle_payload();
        mux
    }

    fn nack(id: u16, k: u16, missing: &[u32]) -> ObjectNack {
        let mut words = [0u64; 4];
        for &m in missing {
            words[m as usize / 64] |= 1 << (m % 64);
        }
        ObjectNack {
            object_id: id,
            k,
            rank: k - missing.len() as u16,
            words,
        }
    }

    fn fresh_agg(now: u64) -> FeedbackAggregator {
        let mut agg = FeedbackAggregator::new(1);
        let mut rep = FeedbackReport::new(7, now);
        rep.push_region(RegionQuality::quantize(1.0, 0.0));
        agg.ingest(&rep, now);
        agg
    }

    #[test]
    fn nacks_queue_retransmits_in_closed_mode() {
        let mut mux = mux_with_object(42);
        let mut arq = ArqEngine::new(ArqPolicy::default());
        let agg = fresh_agg(10);
        assert_eq!(arq.on_cycle(10, &agg, &mut mux), ArqMode::Closed);
        let queued = arq.on_nack(&nack(42, 7, &[1, 3, 5]), 10, &mut mux);
        assert_eq!(queued, 3);
        assert_eq!(mux.retransmit_backlog(), 3);
    }

    #[test]
    fn fountain_mode_suppresses_and_cancels() {
        let mut mux = mux_with_object(42);
        let mut arq = ArqEngine::new(ArqPolicy::default());
        let agg = fresh_agg(0);
        arq.on_cycle(0, &agg, &mut mux);
        arq.on_nack(&nack(42, 7, &[0, 1]), 0, &mut mux);
        assert_eq!(mux.retransmit_backlog(), 2);
        // Feedback ages out: degrade, cancel pending retransmits.
        let stale = arq.policy.feedback_timeout_cycles + 1;
        assert_eq!(arq.on_cycle(stale, &agg, &mut mux), ArqMode::Fountain);
        assert_eq!(mux.retransmit_backlog(), 0);
        assert_eq!(arq.on_nack(&nack(42, 7, &[0]), stale, &mut mux), 0);
        // Fresh feedback restores closed mode.
        let mut agg2 = fresh_agg(stale + 1);
        let mut rep = FeedbackReport::new(7, stale + 1);
        rep.push_region(RegionQuality::quantize(1.0, 0.0));
        agg2.ingest(&rep, stale + 1);
        assert_eq!(arq.on_cycle(stale + 1, &agg2, &mut mux), ArqMode::Closed);
        assert_eq!(arq.mode_changes(), 3);
    }

    #[test]
    fn budget_exhaustion_stops_retransmits() {
        let mut mux = mux_with_object(9);
        let policy = ArqPolicy {
            retry_budget: 1,
            backoff_base_cycles: 1,
            backoff_max_cycles: 1,
            ..ArqPolicy::default()
        };
        let mut arq = ArqEngine::new(policy);
        let agg = fresh_agg(0);
        arq.on_cycle(0, &agg, &mut mux);
        // k=2 ⇒ budget 2 total credits.
        assert_eq!(arq.on_nack(&nack(9, 2, &[0, 1]), 0, &mut mux), 2);
        let later = 100;
        assert_eq!(arq.on_nack(&nack(9, 2, &[0, 1]), later, &mut mux), 0);
        assert!(arq.suppressed() > 0);
    }

    #[test]
    fn no_progress_opens_backoff() {
        let mut mux = mux_with_object(5);
        let policy = ArqPolicy {
            backoff_base_cycles: 4,
            backoff_max_cycles: 64,
            max_retransmits_per_report: 1,
            ..ArqPolicy::default()
        };
        let mut arq = ArqEngine::new(policy);
        let agg = fresh_agg(0);
        arq.on_cycle(0, &agg, &mut mux);
        // Same hole set twice: second round counts as no progress, and
        // the gate after it must exceed the base delay.
        assert_eq!(arq.on_nack(&nack(5, 7, &[2]), 0, &mut mux), 1);
        // Gate from round 0 is at most spacing + jitter ≤ 6. The repeat
        // of seq 2 is still pending on the ring, so the second round
        // queues nothing (dedup) but still opens the backoff.
        assert_eq!(arq.on_nack(&nack(5, 7, &[2]), 7, &mut mux), 0);
        let gate = arq.objects[0].next_allowed;
        assert!(gate >= 7 + 8, "no-progress round must back off: {gate}");
        // Progress (fewer holes) re-arms the fast path.
        assert_eq!(arq.on_nack(&nack(5, 7, &[]), gate, &mut mux), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut mux = mux_with_object(3);
            let policy = ArqPolicy {
                seed,
                ..ArqPolicy::default()
            };
            let mut arq = ArqEngine::new(policy);
            let agg = fresh_agg(0);
            arq.on_cycle(0, &agg, &mut mux);
            let mut gates = Vec::new();
            for i in 0..10u64 {
                arq.on_nack(&nack(3, 7, &[1, 2]), i * 40, &mut mux);
                gates.push(arq.objects[0].next_allowed);
            }
            gates
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "jitter must depend on the seed");
    }

    #[test]
    fn retired_objects_are_forgotten() {
        let mut mux = mux_with_object(11);
        let mut arq = ArqEngine::new(ArqPolicy::default());
        let agg = fresh_agg(0);
        arq.on_cycle(0, &agg, &mut mux);
        arq.on_nack(&nack(11, 7, &[0]), 0, &mut mux);
        assert_eq!(arq.tracked_objects(), 1);
        arq.object_retired(11, &mut mux);
        assert_eq!(arq.tracked_objects(), 0);
        assert_eq!(mux.retransmit_backlog(), 0);
    }
}
