//! The network-layer receiver: cycle payload bits → per-region symbols
//! → shared object decoders → MAC filtering → per-lane in-order
//! delivery (one reassembly lane per (stream, destination) pair, since
//! sequence numbers are per destination on the send side).
//!
//! One [`SymbolScanner`] per spatial region keeps framing damage local —
//! an occluded tile corrupts only its own scanner's alignment — while
//! all regions feed one shared decoder pool (every shard carries slices
//! of the *same* objects, so per-region decoders would each see only
//! `1/R` of an object's symbols and never complete).
//!
//! Filtering happens twice. Symbols whose object-id hint the receiver's
//! [`AddressFilter`] does not admit are dropped before any decoder state
//! is bought; frames inside completed objects are then checked against
//! the exact destination address. The frame-to-stream path
//! ([`NetReceiver::ingest_bytes`]) is the steady-state hot path and
//! performs no heap allocation: MAC views borrow the object bytes and
//! every [`StreamRx`] buffer is preallocated at stream-open time.

use crate::addr::AddressFilter;
use crate::mac::MacScanner;
use crate::stream::StreamRx;
use inframe_code::parity::GobStats;
use inframe_core::region::RegionMap;
use inframe_link::feedback::{FeedbackReport, ObjectNack, RegionQuality, NACK_WORDS};
use inframe_link::rlc::ObjectDecoder;
use inframe_link::session::SymbolScanner;
use inframe_link::symbol::object_hint;
use inframe_link::SymbolGeometry;
use inframe_obs::{names, Counter, Telemetry};
use std::collections::BTreeMap;

struct RecvObs {
    telemetry: Telemetry,
    frames_rx: Counter,
    frames_filtered: Counter,
    frames_rejected: Counter,
    datagrams_rx: Counter,
    bytes_rx: Counter,
    objects_ingested: Counter,
}

impl RecvObs {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            telemetry: telemetry.clone(),
            frames_rx: telemetry.counter(names::net::FRAMES_RX),
            frames_filtered: telemetry.counter(names::net::FRAMES_FILTERED),
            frames_rejected: telemetry.counter(names::net::FRAMES_REJECTED),
            datagrams_rx: telemetry.counter(names::net::DATAGRAMS_RX),
            bytes_rx: telemetry.counter(names::net::BYTES_RX),
            objects_ingested: telemetry.counter(names::net::OBJECTS_INGESTED),
        }
    }
}

/// Strided rounds the global reception frontier must lead a hole by
/// before the hole counts as lost without any same-class evidence —
/// covers the scan pipeline (a symbol spans multiple cycles) plus the
/// slight shard drift retransmit preemption introduces.
const FRONTIER_SLACK_ROUNDS: u32 = 3;

/// One reassembly lane: the [`StreamRx`] for a single (stream,
/// destination) pair, matching the sender's per-destination sequence
/// spaces.
struct Lane {
    dst: u16,
    rx: StreamRx,
}

/// One open receive stream: a lane per destination this receiver
/// accepts, plus its delivered-bytes counter (name resolved once at
/// open time). Lanes for the own address, broadcast, and every joined
/// group are preallocated at open time; only a promiscuous tap ever
/// binds (and allocates) further lanes, on first traffic per flow.
struct OpenStream {
    lanes: Vec<Lane>,
    window: usize,
    max_fragment: usize,
    arena_bytes: usize,
    bytes: Counter,
}

/// The receiver side of the network layer.
pub struct NetReceiver {
    filter: AddressFilter,
    map: RegionMap,
    geometry: SymbolGeometry,
    scanners: Vec<SymbolScanner>,
    /// Symbol-level admission mask derived from `filter`.
    admission: u64,
    decoders: BTreeMap<u16, ObjectDecoder>,
    /// Per-object reception frontiers, one per stride class (`seq % R`):
    /// `max received seq + 1` in that class. A systematic hole below its
    /// class frontier was provably emitted and lost; one at or past it
    /// may simply not have been scheduled yet, and must not be NACKed.
    frontiers: BTreeMap<u16, Vec<u32>>,
    /// Completed object ids in completion order.
    completed: Vec<u16>,
    /// How many completed objects have been MAC-ingested.
    ingested: usize,
    streams: BTreeMap<u8, OpenStream>,
    /// Scratch region payload (gather target).
    region_buf: Vec<Option<bool>>,
    /// Scratch completed-object bytes (ingest staging).
    object_buf: Vec<u8>,
    /// Per-region decode-quality window since the last feedback report.
    region_window: Vec<GobStats>,
    /// Per-region scanner-rejection watermarks (error attribution).
    rejected_mark: Vec<u64>,
    symbols_filtered: u64,
    frames_rx: u64,
    frames_filtered: u64,
    frames_rejected: u64,
    cycles: u64,
    obs: RecvObs,
}

impl NetReceiver {
    /// A receiver with the given address filter over the frame tiling.
    /// The symbol geometry must match the sender's per-region geometry
    /// (it is fully determined by the tiling, so constructing both ends
    /// from the same `RegionMap` guarantees agreement).
    pub fn new(map: RegionMap, filter: AddressFilter) -> Self {
        let geometry = SymbolGeometry::for_payload_bits(map.region_payload_bits());
        let scanners = (0..map.num_regions())
            .map(|_| SymbolScanner::new(geometry.symbol_bytes))
            .collect();
        let admission = filter.admission_mask();
        let region_buf = Vec::with_capacity(map.region_payload_bits());
        let region_window = vec![GobStats::default(); map.num_regions()];
        let rejected_mark = vec![0u64; map.num_regions()];
        Self {
            filter,
            map,
            geometry,
            scanners,
            admission,
            decoders: BTreeMap::new(),
            frontiers: BTreeMap::new(),
            completed: Vec::new(),
            ingested: 0,
            streams: BTreeMap::new(),
            region_buf,
            object_buf: Vec::new(),
            region_window,
            rejected_mark,
            symbols_filtered: 0,
            frames_rx: 0,
            frames_filtered: 0,
            frames_rejected: 0,
            cycles: 0,
            obs: RecvObs::new(&Telemetry::disabled()),
        }
    }

    /// Attaches a telemetry spine (`net.frames_*`, `net.datagrams_rx`,
    /// `net.bytes_rx`, `net.objects_ingested`, `net.stream.*.bytes_rx`).
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.obs = RecvObs::new(telemetry);
        self
    }

    /// Opens a receive stream: one reassembly lane per destination the
    /// address filter accepts (own, broadcast, joined groups), each with
    /// a `window`-fragment reorder window, fragments up to
    /// `max_fragment` bytes, and `arena_bytes` of undelivered-datagram
    /// arena. All buffers are allocated here, once — except under a
    /// promiscuous filter, where new flows bind lanes lazily.
    ///
    /// # Panics
    /// Panics on a duplicate stream id.
    pub fn open_stream(&mut self, id: u8, window: usize, max_fragment: usize, arena_bytes: usize) {
        assert!(!self.streams.contains_key(&id), "stream {id} already open");
        // Per-stream counter names are dynamic; the leak is one small
        // string per stream open (bounded by 256 stream ids), never on
        // the per-frame path.
        let name: &'static str = Box::leak(names::net::stream_bytes(id).into_boxed_str());
        let mut dsts = vec![self.filter.own_addr().0, crate::addr::MacAddr::BROADCAST.0];
        dsts.extend_from_slice(self.filter.groups());
        self.streams.insert(
            id,
            OpenStream {
                lanes: dsts
                    .into_iter()
                    .map(|dst| Lane {
                        dst,
                        rx: StreamRx::new(window, max_fragment, arena_bytes),
                    })
                    .collect(),
                window,
                max_fragment,
                arena_bytes,
                bytes: self.obs.telemetry.counter(name),
            },
        );
    }

    /// The receiver's address filter.
    pub fn filter(&self) -> &AddressFilter {
        &self.filter
    }

    /// The per-region symbol geometry.
    pub fn geometry(&self) -> SymbolGeometry {
        self.geometry
    }

    /// The symbol-level admission mask in force.
    pub fn admission_mask(&self) -> u64 {
        self.admission
    }

    /// Absorbs one full-frame cycle payload (channel order, per-GOB
    /// losses as `None`): gathers each region's bits, scans them for
    /// symbols, admission-filters on the object-id hint, and feeds the
    /// shared decoder pool. Newly completed objects are MAC-ingested
    /// before returning.
    pub fn push_cycle(&mut self, full: &[Option<bool>]) {
        for r in 0..self.scanners.len() {
            // Decode-quality accounting for the feedback loop: per-GOB
            // availability from the erasure pattern, symbol-CRC
            // rejections as the in-region error proxy (GOB parity is
            // resolved below this layer).
            let (ok, lost) = self.map.region_availability(full, r);
            self.region_window[r].available += ok;
            self.region_window[r].unavailable += lost;
            // A fully-erased region yields no symbols, but still keeps
            // its own scanner: damage to one tile's framing alignment
            // never leaks into another tile.
            self.map.gather(full, r, &mut self.region_buf);
            for symbol in self.scanners[r].push_payload(&self.region_buf) {
                let id = symbol.header.object_id;
                if self.admission & (1u64 << object_hint(id)) == 0 {
                    self.symbols_filtered += 1;
                    continue;
                }
                let regions = self.scanners.len();
                let fr = self
                    .frontiers
                    .entry(id)
                    .or_insert_with(|| vec![0u32; regions]);
                let class = (symbol.header.seq as usize) % fr.len();
                fr[class] = fr[class].max(symbol.header.seq + 1);
                let decoder = self
                    .decoders
                    .entry(id)
                    .or_insert_with(|| ObjectDecoder::for_symbol(&symbol));
                let was_complete = decoder.is_complete();
                decoder.absorb(&symbol);
                if decoder.is_complete() && !was_complete {
                    self.completed.push(id);
                    self.obs.objects_ingested.incr();
                }
            }
            let rejected = self.scanners[r].rejected();
            let delta = rejected - self.rejected_mark[r];
            self.rejected_mark[r] = rejected;
            // Attribute CRC-failed symbols to this region's window,
            // capped so error_rate stays ≤ 1.
            let w = &mut self.region_window[r];
            w.erroneous = (w.erroneous + delta).min(w.available);
        }
        self.cycles += 1;
        self.ingest_completed();
    }

    /// Builds one back-channel report: the per-region decode-quality
    /// window accumulated since the previous report (then reset), plus
    /// NACK bitmaps for up to [`inframe_link::feedback::MAX_NACK_OBJECTS`]
    /// in-progress objects (lowest object id first; the bitmap covers the
    /// first [`inframe_link::feedback::NACK_SPAN`] systematic columns).
    /// Stack-only — nothing allocates.
    pub fn build_feedback(&mut self, cycle: u64) -> FeedbackReport {
        let mut report = FeedbackReport::new(self.filter.own_addr().0, cycle);
        for w in &mut self.region_window {
            let availability = if w.total() == 0 {
                1.0
            } else {
                w.available_ratio()
            };
            report.push_region(RegionQuality::quantize(availability, w.error_rate()));
            *w = GobStats::default();
        }
        for (&id, d) in &self.decoders {
            if d.is_complete() || d.received() == 0 {
                continue;
            }
            let mut words = [0u64; NACK_WORDS];
            if d.missing_systematic_into(&mut words) == 0 {
                continue;
            }
            // Selective-repeat discipline: only NACK holes the schedule
            // has provably passed — anything else is in flight (or not
            // yet scheduled) and NACKing it only provokes duplicate
            // repeats. Two proofs of "passed":
            //  * class frontier — a later symbol of the same stride
            //    class arrived, so the hole's shard emitted and lost it;
            //  * round frontier — the shards emit in lockstep, so a
            //    symbol received `FRONTIER_SLACK` strided rounds past
            //    the hole proves every shard (even one so occluded that
            //    nothing of its class ever arrives) emitted it long ago.
            let mut holes = 0u32;
            if let Some(fr) = self.frontiers.get(&id) {
                let classes = fr.len() as u32;
                let round_frontier = fr
                    .iter()
                    .map(|&f| f.saturating_sub(1) / classes)
                    .max()
                    .unwrap_or(0);
                for (w, word) in words.iter_mut().enumerate() {
                    let mut bits = *word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        bits &= bits - 1;
                        let j = w as u32 * 64 + b;
                        let class_passed = j + 1 < fr[(j as usize) % fr.len()];
                        let round_passed = j / classes + FRONTIER_SLACK_ROUNDS <= round_frontier;
                        if class_passed || round_passed {
                            holes += 1;
                        } else {
                            *word &= !(1u64 << b);
                        }
                    }
                }
            } else {
                words = [0u64; NACK_WORDS];
            }
            if holes == 0 {
                continue;
            }
            let nack = ObjectNack {
                object_id: id,
                k: d.k().min(u16::MAX as usize) as u16,
                rank: d.rank().min(u16::MAX as usize) as u16,
                words,
            };
            if !report.push_nack(nack) {
                break;
            }
        }
        report
    }

    /// MAC-ingests completed objects not yet processed.
    fn ingest_completed(&mut self) {
        while self.ingested < self.completed.len() {
            let id = self.completed[self.ingested];
            self.ingested += 1;
            self.object_buf.clear();
            let obj = self.decoders[&id].object().expect("completed object");
            self.object_buf.extend_from_slice(obj);
            let buf = std::mem::take(&mut self.object_buf);
            self.ingest_bytes(&buf);
            self.object_buf = buf;
        }
    }

    /// Scans `bytes` for MAC frames, applies the exact address filter,
    /// and pushes accepted fragments into their streams. This is the
    /// steady-state hot path: it performs no heap allocation (frames
    /// borrow `bytes`; stream buffers are preallocated).
    pub fn ingest_bytes(&mut self, bytes: &[u8]) {
        let mut scanner = MacScanner::new(bytes);
        for frame in &mut scanner {
            self.frames_rx += 1;
            self.obs.frames_rx.incr();
            if !self.filter.accepts(frame.dst) {
                self.frames_filtered += 1;
                self.obs.frames_filtered.incr();
                continue;
            }
            match self.streams.get_mut(&frame.stream) {
                Some(open) => {
                    let lane = match open.lanes.iter_mut().position(|l| l.dst == frame.dst.0) {
                        Some(i) => &mut open.lanes[i],
                        None => {
                            // Only reachable under a promiscuous filter:
                            // a normal filter's accepted destinations all
                            // have eager lanes. Binding allocates — once
                            // per observed flow, a tap's warmup cost.
                            open.lanes.push(Lane {
                                dst: frame.dst.0,
                                rx: StreamRx::new(open.window, open.max_fragment, open.arena_bytes),
                            });
                            open.lanes.last_mut().expect("just pushed")
                        }
                    };
                    lane.rx
                        .push_fragment(frame.seq, frame.is_last(), frame.payload);
                }
                None => {
                    self.frames_rejected += 1;
                    self.obs.frames_rejected.incr();
                }
            }
        }
        if scanner.rejected_bytes() > 0 {
            self.frames_rejected += 1;
            self.obs.frames_rejected.incr();
        }
    }

    /// Copies the next in-order datagram of `stream` into `out`,
    /// scanning the stream's lanes in bind order (own, broadcast,
    /// groups). Returns whether one was delivered.
    pub fn pop_datagram(&mut self, stream: u8, out: &mut Vec<u8>) -> bool {
        let Some(open) = self.streams.get_mut(&stream) else {
            return false;
        };
        for lane in open.lanes.iter_mut() {
            if lane.rx.pop_datagram_into(out) {
                self.obs.datagrams_rx.incr();
                self.obs.bytes_rx.add(out.len() as u64);
                open.bytes.add(out.len() as u64);
                return true;
            }
        }
        false
    }

    /// Read access to one lane's reassembly state (delivered bytes,
    /// digest, drop counters): the lane of `stream` carrying traffic
    /// addressed to `dst`.
    pub fn stream_lane(&self, id: u8, dst: crate::addr::MacAddr) -> Option<&StreamRx> {
        self.streams
            .get(&id)?
            .lanes
            .iter()
            .find(|l| l.dst == dst.0)
            .map(|l| &l.rx)
    }

    /// Total bytes delivered on `stream` across all its lanes.
    pub fn stream_delivered_bytes(&self, id: u8) -> u64 {
        self.streams
            .get(&id)
            .map(|s| s.lanes.iter().map(|l| l.rx.delivered_bytes()).sum())
            .unwrap_or(0)
    }

    /// Total datagrams delivered on `stream` across all its lanes.
    pub fn stream_delivered_datagrams(&self, id: u8) -> u64 {
        self.streams
            .get(&id)
            .map(|s| s.lanes.iter().map(|l| l.rx.delivered_datagrams()).sum())
            .unwrap_or(0)
    }

    /// Completed object ids in completion order.
    pub fn completed_objects(&self) -> &[u16] {
        &self.completed
    }

    /// Drops the decoder state of a completed, already-ingested object
    /// (its id may then be reused by the sender). Returns whether state
    /// was held.
    pub fn forget_object(&mut self, id: u16) -> bool {
        if self.completed.contains(&id) && self.decoders.contains_key(&id) {
            self.decoders.remove(&id);
            self.frontiers.remove(&id);
            return true;
        }
        false
    }

    /// Symbols dropped by the admission pre-filter.
    pub fn symbols_filtered(&self) -> u64 {
        self.symbols_filtered
    }

    /// MAC frames scanned out of completed objects.
    pub fn frames_rx(&self) -> u64 {
        self.frames_rx
    }

    /// Frames dropped by the exact address filter.
    pub fn frames_filtered(&self) -> u64 {
        self.frames_filtered
    }

    /// Frames rejected (unknown stream, or residual bytes that framed no
    /// valid MAC frame).
    pub fn frames_rejected(&self) -> u64 {
        self.frames_rejected
    }

    /// Cycles absorbed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// In-progress (admitted, incomplete) decoder count.
    pub fn open_decoders(&self) -> usize {
        self.decoders.values().filter(|d| !d.is_complete()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::sender::NetSender;
    use crate::stream::StreamQos;
    use inframe_core::layout::DataLayout;
    use inframe_core::InFrameConfig;

    fn map() -> RegionMap {
        let layout = DataLayout::from_config(&InFrameConfig::paper());
        RegionMap::new(&layout, 5, 3)
    }

    fn wired_pair(dst: MacAddr) -> (NetSender, NetReceiver) {
        let mut tx = NetSender::new(map(), MacAddr::new(0x0001));
        tx.open_stream(0, StreamQos::bulk(), 64);
        let mut rx = NetReceiver::new(map(), AddressFilter::new(MacAddr::new(0x0042)));
        rx.open_stream(0, 64, 64, 1 << 16);
        let _ = dst;
        (tx, rx)
    }

    fn some(bits: &[bool]) -> Vec<Option<bool>> {
        bits.iter().map(|&b| Some(b)).collect()
    }

    #[test]
    fn end_to_end_unicast_delivery() {
        let (mut tx, mut rx) = wired_pair(MacAddr::new(0x0042));
        let data: Vec<u8> = (0..700u32).map(|i| (i * 3) as u8).collect();
        tx.send_datagram(0, MacAddr::new(0x0042), &data);
        let mut out = Vec::new();
        for _ in 0..300 {
            let payload = tx.next_cycle_payload();
            rx.push_cycle(&some(&payload));
            if rx.pop_datagram(0, &mut out) {
                assert_eq!(out, data);
                return;
            }
        }
        panic!("datagram never delivered");
    }

    #[test]
    fn foreign_unicast_is_invisible_past_the_filters() {
        let (mut tx, mut rx) = wired_pair(MacAddr::new(0x0042));
        // Addressed to someone else entirely.
        tx.send_datagram(0, MacAddr::new(0x0077), &[9; 400]);
        for _ in 0..100 {
            let payload = tx.next_cycle_payload();
            rx.push_cycle(&some(&payload));
        }
        let mut out = Vec::new();
        assert!(!rx.pop_datagram(0, &mut out));
        // Either the hint pre-filter caught it (no decoder ever built)
        // or — on a hint collision — the MAC filter did.
        let hint_collision = MacAddr::new(0x0077).hint() == MacAddr::new(0x0042).hint();
        if hint_collision {
            assert!(rx.frames_filtered() > 0);
        } else {
            assert!(rx.symbols_filtered() > 0);
            assert_eq!(rx.frames_rx(), 0);
            assert_eq!(rx.open_decoders(), 0, "no decoder state bought");
        }
        assert_eq!(rx.stream_delivered_bytes(0), 0);
    }

    #[test]
    fn broadcast_reaches_every_receiver() {
        let (mut tx, mut rx_a) = wired_pair(MacAddr::BROADCAST);
        let mut rx_b = NetReceiver::new(map(), AddressFilter::new(MacAddr::new(0x0099)));
        rx_b.open_stream(0, 64, 64, 1 << 16);
        tx.send_datagram(0, MacAddr::BROADCAST, b"hear ye, hear ye");
        let (mut got_a, mut got_b) = (false, false);
        let mut out = Vec::new();
        for _ in 0..200 {
            let payload = tx.next_cycle_payload();
            rx_a.push_cycle(&some(&payload));
            rx_b.push_cycle(&some(&payload));
            got_a |= rx_a.pop_datagram(0, &mut out);
            got_b |= rx_b.pop_datagram(0, &mut out);
            if got_a && got_b {
                return;
            }
        }
        panic!("broadcast incomplete: a={got_a} b={got_b}");
    }

    #[test]
    fn mixed_destinations_on_one_stream_reassemble_per_lane() {
        let (mut tx, mut rx) = wired_pair(MacAddr::new(0x0042));
        // A foreign unicast shares the stream: its fragments must not
        // punch sequence gaps into the lanes this receiver does accept.
        tx.send_datagram(0, MacAddr::new(0x0077), &[1; 300]);
        tx.send_datagram(0, MacAddr::new(0x0042), b"mine");
        tx.send_datagram(0, MacAddr::BROADCAST, b"everyone");
        let (mut got, mut out) = (Vec::new(), Vec::new());
        for _ in 0..300 {
            let payload = tx.next_cycle_payload();
            rx.push_cycle(&some(&payload));
            while rx.pop_datagram(0, &mut out) {
                got.push(out.clone());
            }
            if got.len() == 2 {
                break;
            }
        }
        assert!(got.contains(&b"mine".to_vec()), "unicast lane stalled");
        assert!(
            got.contains(&b"everyone".to_vec()),
            "broadcast lane stalled"
        );
        let own = rx.stream_lane(0, MacAddr::new(0x0042)).unwrap();
        assert_eq!(own.delivered_bytes(), 4);
        let bcast = rx.stream_lane(0, MacAddr::BROADCAST).unwrap();
        assert_eq!(bcast.delivered_bytes(), 8);
    }

    #[test]
    fn occluded_region_still_completes() {
        let (mut tx, mut rx) = wired_pair(MacAddr::new(0x0042));
        let data: Vec<u8> = (0..900u32).map(|i| (i * 7) as u8).collect();
        tx.send_datagram(0, MacAddr::new(0x0042), &data);
        let m = map();
        let mut out = Vec::new();
        for _ in 0..600 {
            let payload = tx.next_cycle_payload();
            let mut seen: Vec<Option<bool>> = some(&payload);
            // Region 3 permanently occluded.
            for &g in m.region_gobs(3) {
                let bits = m.region_payload_bits() / m.gobs_per_region();
                let lo = g as usize * bits;
                seen[lo..lo + bits].fill(None);
            }
            rx.push_cycle(&seen);
            if rx.pop_datagram(0, &mut out) {
                assert_eq!(out, data);
                return;
            }
        }
        panic!("occluded receiver never completed");
    }

    #[test]
    fn forget_object_releases_decoder_state() {
        let (mut tx, mut rx) = wired_pair(MacAddr::new(0x0042));
        tx.send_datagram(0, MacAddr::new(0x0042), &[1; 100]);
        let mut out = Vec::new();
        for _ in 0..200 {
            let payload = tx.next_cycle_payload();
            rx.push_cycle(&some(&payload));
            if rx.pop_datagram(0, &mut out) {
                break;
            }
        }
        let ids = rx.completed_objects().to_vec();
        assert_eq!(ids.len(), 1);
        assert!(rx.forget_object(ids[0]));
        assert!(!rx.forget_object(ids[0]));
    }
}
