//! # inframe-net
//!
//! The network layer over the InFrame carousel: one full-frame display
//! serving many devices *selectively*, with multiple logical streams and
//! throughput that scales with display area.
//!
//! The transport below ([`inframe_link`]) delivers anonymous objects to
//! whoever listens. This crate layers three mechanisms on top:
//!
//! * [`addr`] / [`mac`] — **addressed MAC frames**: a compact codec
//!   (destination/source address, stream id, fragment sequence, length,
//!   CRC-16) packed back-to-back into fountain-coded objects, plus a
//!   per-receiver [`addr::AddressFilter`] (unicast, group, broadcast,
//!   promiscuous). Filtering happens twice: cheaply at the symbol level
//!   — the high 6 bits of every object id carry a destination hint
//!   ([`inframe_link::symbol::object_hint`]) that the receiver's
//!   admission mask screens before buying any decoder state — and
//!   exactly at the MAC level once an object completes.
//! * [`stream`] — **multi-stream QoS**: N logical streams, each with a
//!   [`stream::StreamQos`] (priority, min-goodput weight, deadline
//!   class) that maps onto the priority-WRR carousel share, and a
//!   per-stream zero-allocation reassembly window + in-order delivery
//!   queue on the receiver.
//! * [`spatial`] — **spatial sub-channels**: the frame tiled into
//!   per-GOB-region channels ([`inframe_core::region::RegionMap`]), each
//!   with its own carousel shard (symbol sequences strided so the shards
//!   jointly emit every sequence exactly once), its own symbol scanner
//!   alignment, and its own δ controller state
//!   ([`spatial::RegionControllerBank`]). A receiver with one tile
//!   occluded loses exactly that shard's symbols and completes through
//!   rateless repair on the visible tiles.
//! * [`arq`] — **closed-loop repair**: when a (lossy, delayed) back-
//!   channel exists, receivers report per-region decode quality and
//!   per-object NACK bitmaps ([`inframe_link::feedback`]); the sender
//!   aggregates them, re-modulates δ per region through the
//!   [`spatial::RegionControllerBank`], and selectively retransmits
//!   NACKed symbols under retry budgets and no-progress backoff. A
//!   silent back-channel degrades the whole loop gracefully to the
//!   open-loop fountain schedule, recovering when feedback returns.
//!
//! [`NetSender`] and [`NetReceiver`] assemble the full stack:
//! datagrams → MAC frames → objects → carousel shards → cycle payload
//! bits on the way down, and the exact inverse — with address filtering
//! and in-order per-stream delivery — on the way up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod arq;
pub mod mac;
pub mod receiver;
pub mod sender;
pub mod spatial;
pub mod stream;

pub use addr::{AddressFilter, MacAddr};
pub use arq::{ArqEngine, ArqMode, ArqPolicy};
pub use mac::{MacFrameView, MacScanner};
pub use receiver::NetReceiver;
pub use sender::NetSender;
pub use spatial::{RegionControllerBank, SpatialMux};
pub use stream::{DeadlineClass, StreamQos, StreamRx, StreamTx};
