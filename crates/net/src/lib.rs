//! # inframe-net
//!
//! The network layer over the InFrame carousel: one full-frame display
//! serving many devices *selectively*, with multiple logical streams and
//! throughput that scales with display area.
//!
//! The transport below ([`inframe_link`]) delivers anonymous objects to
//! whoever listens. This crate layers three mechanisms on top:
//!
//! * [`addr`] / [`mac`] — **addressed MAC frames**: a compact codec
//!   (destination/source address, stream id, fragment sequence, length,
//!   CRC-16) packed back-to-back into fountain-coded objects, plus a
//!   per-receiver [`addr::AddressFilter`] (unicast, group, broadcast,
//!   promiscuous). Filtering happens twice: cheaply at the symbol level
//!   — the high 6 bits of every object id carry a destination hint
//!   ([`inframe_link::symbol::object_hint`]) that the receiver's
//!   admission mask screens before buying any decoder state — and
//!   exactly at the MAC level once an object completes.
//! * [`stream`] — **multi-stream QoS**: N logical streams, each with a
//!   [`stream::StreamQos`] (priority, min-goodput weight, deadline
//!   class) that maps onto the priority-WRR carousel share, and a
//!   per-stream zero-allocation reassembly window + in-order delivery
//!   queue on the receiver.
//! * [`spatial`] — **spatial sub-channels**: the frame tiled into
//!   per-GOB-region channels ([`inframe_core::region::RegionMap`]), each
//!   with its own carousel shard (symbol sequences strided so the shards
//!   jointly emit every sequence exactly once), its own symbol scanner
//!   alignment, and its own δ controller state
//!   ([`spatial::RegionControllerBank`]). A receiver with one tile
//!   occluded loses exactly that shard's symbols and completes through
//!   rateless repair on the visible tiles.
//!
//! [`NetSender`] and [`NetReceiver`] assemble the full stack:
//! datagrams → MAC frames → objects → carousel shards → cycle payload
//! bits on the way down, and the exact inverse — with address filtering
//! and in-order per-stream delivery — on the way up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod mac;
pub mod receiver;
pub mod sender;
pub mod spatial;
pub mod stream;

pub use addr::{AddressFilter, MacAddr};
pub use mac::{MacFrameView, MacScanner};
pub use receiver::NetReceiver;
pub use sender::NetSender;
pub use spatial::{RegionControllerBank, SpatialMux};
pub use stream::{DeadlineClass, StreamQos, StreamRx, StreamTx};
