//! The network-layer sender: datagrams → MAC frames → addressed objects
//! → spatial carousel shards.
//!
//! A [`NetSender`] owns one [`StreamTx`] per open stream and one
//! [`SpatialMux`] over the frame tiling. Submitted datagrams fragment
//! into MAC frames batched per destination; at flush time each batch
//! becomes one fountain-coded object whose id carries the destination's
//! 6-bit hint in its high bits (the receiver's symbol-level pre-filter
//! keys on it) and rides every carousel shard at the stream's QoS
//! priority. Completed objects are retired explicitly — the carousel is
//! rateless, so only the application knows when everyone it cares about
//! has finished.

use crate::addr::MacAddr;
use crate::arq::{ArqEngine, ArqMode, ArqPolicy};
use crate::spatial::{RegionControllerBank, SpatialMux};
use crate::stream::{StreamQos, StreamTx};
use inframe_core::region::RegionMap;
use inframe_core::sender::PayloadSource;
use inframe_link::carousel::SymbolGeometry;
use inframe_link::feedback::{FeedbackAggregator, FeedbackReport};
use inframe_obs::{names, Counter, Gauge, Telemetry};
use std::collections::BTreeMap;

struct SenderObs {
    telemetry: Telemetry,
    frames_tx: Counter,
    datagrams_tx: Counter,
    regions: Gauge,
    reports_rx: Counter,
    reports_stale: Counter,
    commands_applied: Counter,
    fallbacks: Counter,
    recoveries: Counter,
    closed: Gauge,
    feedback_age: Gauge,
}

impl SenderObs {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            telemetry: telemetry.clone(),
            frames_tx: telemetry.counter(names::net::FRAMES_TX),
            datagrams_tx: telemetry.counter(names::net::DATAGRAMS_TX),
            regions: telemetry.gauge(names::net::REGIONS),
            reports_rx: telemetry.counter(names::ctrl_loop::REPORTS_RX),
            reports_stale: telemetry.counter(names::ctrl_loop::REPORTS_STALE),
            commands_applied: telemetry.counter(names::ctrl_loop::COMMANDS_APPLIED),
            fallbacks: telemetry.counter(names::ctrl_loop::FALLBACKS),
            recoveries: telemetry.counter(names::ctrl_loop::RECOVERIES),
            closed: telemetry.gauge(names::ctrl_loop::CLOSED),
            feedback_age: telemetry.gauge(names::ctrl_loop::FEEDBACK_AGE),
        }
    }
}

/// The sender side of the network layer.
pub struct NetSender {
    src: MacAddr,
    mux: SpatialMux,
    streams: BTreeMap<u8, StreamTx>,
    /// Rolling low 10 bits of the next object id.
    next_lo: u16,
    /// Cycles emitted (the ARQ / feedback clock).
    cycles: u64,
    /// Selective-repeat engine, present once [`NetSender::enable_arq`]
    /// ran.
    arq: Option<ArqEngine>,
    /// Multi-receiver feedback aggregator, paired with `arq`.
    agg: Option<FeedbackAggregator>,
    /// Mode at the end of the previous cycle (fallback edge detector).
    last_mode: ArqMode,
    obs: SenderObs,
}

impl NetSender {
    /// A sender at address `src` over the given frame tiling.
    pub fn new(map: RegionMap, src: MacAddr) -> Self {
        let mux = SpatialMux::new(map);
        let obs = SenderObs::new(&Telemetry::disabled());
        Self {
            src,
            mux,
            streams: BTreeMap::new(),
            next_lo: 0,
            cycles: 0,
            arq: None,
            agg: None,
            last_mode: ArqMode::Fountain,
            obs,
        }
    }

    /// Attaches a telemetry spine (`net.frames_tx`, `net.datagrams_tx`,
    /// `net.regions`).
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.obs = SenderObs::new(telemetry);
        self.obs.regions.set(self.mux.num_regions() as u64);
        self
    }

    /// Opens a logical stream.
    ///
    /// # Panics
    /// Panics on a duplicate stream id or an invalid fragment size.
    pub fn open_stream(&mut self, id: u8, qos: StreamQos, max_fragment: usize) {
        assert!(!self.streams.contains_key(&id), "stream {id} already open");
        self.streams
            .insert(id, StreamTx::new(id, qos, self.src, max_fragment));
    }

    /// The sender's own address.
    pub fn src_addr(&self) -> MacAddr {
        self.src
    }

    /// The per-region symbol geometry.
    pub fn geometry(&self) -> SymbolGeometry {
        self.mux.geometry()
    }

    /// The spatial multiplexer (e.g. to hand to a core `Sender` or to
    /// pull cycle payloads directly).
    pub fn mux_mut(&mut self) -> &mut SpatialMux {
        &mut self.mux
    }

    /// The region map of the tiling.
    pub fn region_map(&self) -> &RegionMap {
        self.mux.region_map()
    }

    /// Queues one datagram on `stream` to `dst`.
    ///
    /// # Panics
    /// Panics on an unopened stream or an empty datagram.
    pub fn send_datagram(&mut self, stream: u8, dst: MacAddr, datagram: &[u8]) {
        let tx = self
            .streams
            .get_mut(&stream)
            .unwrap_or_else(|| panic!("stream {stream} not open"));
        let before = tx.frames_sent();
        tx.send_datagram(dst, datagram);
        self.obs.frames_tx.add(tx.frames_sent() - before);
        self.obs.datagrams_tx.incr();
    }

    /// Bundles every pending per-destination frame batch into addressed
    /// objects on the carousel shards. Returns the new object ids.
    pub fn flush(&mut self) -> Vec<u16> {
        let mut new_ids = Vec::new();
        // Collect (priority, dst, bundle) first: allocating object ids
        // needs `&self.mux` while streams are borrowed.
        let mut batches = Vec::new();
        for tx in self.streams.values_mut() {
            if tx.has_pending() {
                let priority = tx.qos().carousel_priority();
                for (dst, bundle) in tx.take_pending() {
                    batches.push((priority, dst, bundle));
                }
            }
        }
        for (priority, dst, bundle) in batches {
            let id = self.alloc_object_id(dst);
            self.mux.add_object(id, priority, &bundle);
            new_ids.push(id);
        }
        new_ids
    }

    /// The next free object id carrying `dst`'s hint in its high bits.
    ///
    /// # Panics
    /// Panics when all 1024 ids of the hint are live on the carousel
    /// (the application must retire completed objects).
    fn alloc_object_id(&mut self, dst: MacAddr) -> u16 {
        let hint = (dst.hint() as u16) << 10;
        let live = self.mux.object_ids();
        for _ in 0..1024 {
            let id = hint | (self.next_lo & 0x3FF);
            self.next_lo = self.next_lo.wrapping_add(1);
            if !live.contains(&id) {
                return id;
            }
        }
        panic!("all 1024 object ids of hint {:#x} are live", hint >> 10);
    }

    /// Retires a completed object from every shard (dropping any ARQ
    /// state and pending retransmits it held). Returns whether it was
    /// present.
    pub fn retire_object(&mut self, id: u16) -> bool {
        if let Some(arq) = &mut self.arq {
            arq.object_retired(id, &mut self.mux);
        }
        self.mux.remove_object(id)
    }

    /// Turns on the closed control loop: a multi-receiver
    /// [`FeedbackAggregator`] plus a selective-repeat [`ArqEngine`]
    /// under `policy`. Until the first fresh report arrives the sender
    /// behaves exactly as before (pure fountain).
    pub fn enable_arq(&mut self, policy: ArqPolicy) {
        self.agg = Some(FeedbackAggregator::new(self.mux.num_regions()));
        self.arq = Some(ArqEngine::new(policy).with_telemetry(&self.obs.telemetry));
        self.last_mode = ArqMode::Fountain;
    }

    /// Ingests one receiver report from the back-channel: folds its
    /// per-region quality into the aggregation window and routes its
    /// NACKs to the ARQ engine. Returns whether the report was fresh
    /// (stale/duplicate reports are dropped, counted on
    /// `ctrl.loop.reports_stale`).
    ///
    /// # Panics
    /// Panics unless [`NetSender::enable_arq`] ran first.
    pub fn ingest_feedback(&mut self, report: &FeedbackReport) -> bool {
        let agg = self.agg.as_mut().expect("enable_arq first");
        let arq = self.arq.as_mut().expect("enable_arq first");
        if !agg.ingest(report, self.cycles) {
            self.obs.reports_stale.incr();
            return false;
        }
        self.obs.reports_rx.incr();
        for nack in report.nacks() {
            arq.on_nack(nack, self.cycles, &mut self.mux);
        }
        true
    }

    /// Feeds the closed aggregation window to a per-region controller
    /// bank and resets the window. Returns whether any region's δ/τ
    /// command (and thus the scale fan-out) changed; the caller then
    /// re-applies `bank.block_scales(..)` and the τ/δ envelope to the
    /// in-flight core sender. While the ARQ engine is degraded the bank
    /// is left alone — the open-loop controller policy owns the channel.
    ///
    /// # Panics
    /// Panics unless [`NetSender::enable_arq`] ran first.
    pub fn observe_feedback_window(&mut self, bank: &mut RegionControllerBank) -> bool {
        let agg = self.agg.as_mut().expect("enable_arq first");
        if self.last_mode == ArqMode::Fountain {
            agg.reset_window();
            return false;
        }
        let changed = bank.observe_feedback(agg);
        agg.reset_window();
        if changed {
            self.obs.commands_applied.incr();
        }
        changed
    }

    /// The feedback aggregator, when the loop is enabled.
    pub fn aggregator(&self) -> Option<&FeedbackAggregator> {
        self.agg.as_ref()
    }

    /// The ARQ engine, when the loop is enabled.
    pub fn arq(&self) -> Option<&ArqEngine> {
        self.arq.as_ref()
    }

    /// Current loop mode: `Some(Closed)` with a healthy back-channel,
    /// `Some(Fountain)` when degraded, `None` when ARQ is not enabled.
    pub fn arq_mode(&self) -> Option<ArqMode> {
        self.arq.as_ref().map(|a| a.mode())
    }

    /// Cycles emitted so far (the feedback clock).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-cycle loop upkeep: ages the back-channel, degrades or
    /// restores the ARQ mode, and maintains the `ctrl.loop.*` gauges.
    fn loop_upkeep(&mut self) {
        let (Some(arq), Some(agg)) = (&mut self.arq, &self.agg) else {
            return;
        };
        let mode = arq.on_cycle(self.cycles, agg, &mut self.mux);
        match (self.last_mode, mode) {
            (ArqMode::Closed, ArqMode::Fountain) => self.obs.fallbacks.incr(),
            (ArqMode::Fountain, ArqMode::Closed) => self.obs.recoveries.incr(),
            _ => {}
        }
        self.last_mode = mode;
        self.obs
            .closed
            .set(if mode == ArqMode::Closed { 1 } else { 0 });
        self.obs
            .feedback_age
            .set(agg.feedback_age(self.cycles).unwrap_or(u64::MAX));
    }

    /// Object ids currently riding the carousel.
    pub fn live_objects(&self) -> Vec<u16> {
        self.mux.object_ids()
    }

    /// Emits one full-frame cycle payload (flushing pending datagrams
    /// first).
    ///
    /// # Panics
    /// Panics when nothing has ever been queued (the carousel is empty).
    pub fn next_cycle_payload(&mut self) -> Vec<bool> {
        self.flush();
        self.loop_upkeep();
        self.cycles += 1;
        self.mux.next_cycle_payload()
    }
}

impl PayloadSource for NetSender {
    fn next_payload(&mut self, bits: usize) -> Vec<bool> {
        self.flush();
        self.loop_upkeep();
        self.cycles += 1;
        PayloadSource::next_payload(&mut self.mux, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BROADCAST_HINT;
    use inframe_core::layout::DataLayout;
    use inframe_core::InFrameConfig;
    use inframe_link::symbol::object_hint;

    fn sender() -> NetSender {
        let layout = DataLayout::from_config(&InFrameConfig::paper());
        NetSender::new(RegionMap::new(&layout, 5, 3), MacAddr::new(0x0001))
    }

    #[test]
    fn object_ids_carry_the_destination_hint() {
        let mut s = sender();
        s.open_stream(0, StreamQos::bulk(), 64);
        s.send_datagram(0, MacAddr::new(0x0042), b"unicast");
        s.send_datagram(0, MacAddr::BROADCAST, b"everyone");
        let ids = s.flush();
        assert_eq!(ids.len(), 2);
        let hints: Vec<u8> = ids.iter().map(|&id| object_hint(id)).collect();
        assert!(hints.contains(&MacAddr::new(0x0042).hint()));
        assert!(hints.contains(&BROADCAST_HINT));
    }

    #[test]
    fn retire_frees_the_id_for_reuse() {
        let mut s = sender();
        s.open_stream(0, StreamQos::bulk(), 64);
        s.send_datagram(0, MacAddr::new(7), b"one");
        let ids = s.flush();
        assert_eq!(s.live_objects(), ids);
        assert!(s.retire_object(ids[0]));
        assert!(!s.retire_object(ids[0]));
        assert!(s.live_objects().is_empty());
    }

    #[test]
    fn payloads_flush_implicitly() {
        let mut s = sender();
        s.open_stream(0, StreamQos::bulk(), 64);
        s.send_datagram(0, MacAddr::new(9), &[0x5A; 300]);
        let p = s.next_cycle_payload();
        let layout = DataLayout::from_config(&InFrameConfig::paper());
        assert_eq!(p.len(), layout.payload_bits_parity());
        assert_eq!(s.live_objects().len(), 1);
    }

    #[test]
    #[should_panic(expected = "not open")]
    fn unopened_stream_rejected() {
        let mut s = sender();
        s.send_datagram(3, MacAddr::new(2), b"x");
    }
}
