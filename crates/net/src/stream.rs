//! Logical streams: per-stream QoS on the send side, zero-allocation
//! reassembly and in-order delivery on the receive side.
//!
//! A datagram submitted to a [`StreamTx`] is fragmented into MAC frames
//! (consecutive per-stream sequence numbers, [`crate::mac::FLAG_LAST`] on
//! the final fragment) and batched into object-sized bundles for the
//! carousel. A [`StreamRx`] holds a fixed reorder window — objects
//! complete in any order, so fragments arrive out of order across
//! objects — and releases fragments in sequence into an assembly arena,
//! cutting a datagram loose at each `LAST` flag. All receive-side
//! buffers are preallocated at stream-open time; the steady-state push/
//! deliver path performs no heap allocation (proven in
//! `tests/alloc_steady_state.rs`).

use crate::addr::MacAddr;
use crate::mac::{self, FLAG_LAST};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Delivery-urgency class of a stream, boosting its carousel share and
/// driving the receiver's stale-object eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlineClass {
    /// Elastic background transfer.
    Bulk,
    /// Human-facing; prefers low latency.
    Interactive,
    /// Hard cadence; late data is worthless.
    Realtime,
}

impl DeadlineClass {
    /// Multiplicative carousel-share boost of the class.
    pub fn boost(self) -> u32 {
        match self {
            DeadlineClass::Bulk => 1,
            DeadlineClass::Interactive => 2,
            DeadlineClass::Realtime => 4,
        }
    }
}

/// Per-stream quality of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamQos {
    /// Strict importance tier (multiplies into the carousel share).
    pub priority: u8,
    /// Min-goodput weight: the stream's share of the symbol schedule is
    /// proportional to `weight × priority × class boost` under the
    /// smooth-WRR carousel, which is work-conserving — an idle stream's
    /// share redistributes instead of going dark.
    pub weight: u32,
    /// Deadline class.
    pub deadline: DeadlineClass,
}

impl StreamQos {
    /// A neutral bulk QoS.
    pub fn bulk() -> Self {
        Self {
            priority: 1,
            weight: 1,
            deadline: DeadlineClass::Bulk,
        }
    }

    /// The carousel priority this QoS maps to.
    ///
    /// # Panics
    /// Panics on a zero weight or priority (the WRR carousel requires a
    /// positive share).
    pub fn carousel_priority(&self) -> u32 {
        assert!(
            self.weight > 0 && self.priority > 0,
            "QoS weight and priority must be positive"
        );
        self.weight * self.priority as u32 * self.deadline.boost()
    }
}

/// The send side of one logical stream: fragments datagrams into MAC
/// frames and batches them into per-destination object bundles.
#[derive(Debug)]
pub struct StreamTx {
    id: u8,
    qos: StreamQos,
    src: MacAddr,
    /// Largest fragment payload, bytes.
    max_fragment: usize,
    /// One fragment sequence space per destination: a receiver only sees
    /// the fragments addressed to it, so a seq space shared across
    /// destinations would leave permanent gaps at every receiver that
    /// filters a subset and stall its in-order release forever.
    seqs: Vec<(u16, u16)>,
    /// Encoded frames awaiting bundling, one batch per destination (a
    /// bundle's object id carries a single destination hint, so bundles
    /// never mix destinations).
    pending: Vec<(MacAddr, Vec<u8>)>,
    datagrams_sent: u64,
    frames_sent: u64,
}

impl StreamTx {
    /// A stream sender with the given fragment cap.
    ///
    /// # Panics
    /// Panics on a zero or over-[`mac::MAX_PAYLOAD_BYTES`] fragment size.
    pub fn new(id: u8, qos: StreamQos, src: MacAddr, max_fragment: usize) -> Self {
        assert!(
            (1..=mac::MAX_PAYLOAD_BYTES).contains(&max_fragment),
            "fragment size out of range"
        );
        let _ = qos.carousel_priority(); // validate eagerly
        Self {
            id,
            qos,
            src,
            max_fragment,
            seqs: Vec::new(),
            pending: Vec::new(),
            datagrams_sent: 0,
            frames_sent: 0,
        }
    }

    /// The stream id.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// The stream's QoS.
    pub fn qos(&self) -> StreamQos {
        self.qos
    }

    /// Fragments `datagram` to `dst` into pending MAC frames.
    ///
    /// # Panics
    /// Panics on an empty datagram.
    pub fn send_datagram(&mut self, dst: MacAddr, datagram: &[u8]) {
        assert!(!datagram.is_empty(), "empty datagram");
        let seq = match self.seqs.iter_mut().find(|(d, _)| *d == dst.0) {
            Some((_, s)) => s,
            None => {
                self.seqs.push((dst.0, 0));
                &mut self.seqs.last_mut().expect("just pushed").1
            }
        };
        let batch = match self.pending.iter_mut().find(|(d, _)| *d == dst) {
            Some((_, b)) => b,
            None => {
                self.pending.push((dst, Vec::new()));
                &mut self.pending.last_mut().expect("just pushed").1
            }
        };
        let chunks = datagram.chunks(self.max_fragment);
        let n = chunks.len();
        for (i, chunk) in chunks.enumerate() {
            let flags = if i + 1 == n { FLAG_LAST } else { 0 };
            mac::encode_frame_into(dst, self.src, self.id, flags, *seq, chunk, batch);
            *seq = seq.wrapping_add(1);
            self.frames_sent += 1;
        }
        self.datagrams_sent += 1;
    }

    /// Drains the pending per-destination bundles (for object creation).
    pub fn take_pending(&mut self) -> Vec<(MacAddr, Vec<u8>)> {
        std::mem::take(&mut self.pending)
    }

    /// Whether any frames await bundling.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Datagrams accepted so far.
    pub fn datagrams_sent(&self) -> u64 {
        self.datagrams_sent
    }

    /// MAC frames encoded so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }
}

/// One reorder slot of a [`StreamRx`] window.
#[derive(Debug)]
struct Slot {
    present: bool,
    last: bool,
    buf: Vec<u8>,
}

/// The receive side of one delivery lane — one (stream, destination)
/// pair, matching the sender's per-destination sequence spaces: a fixed
/// reorder window, an assembly arena, and an in-order datagram queue.
/// Every buffer is preallocated; the steady-state path allocates nothing
/// while the arena and queue capacities hold (they are sized at open
/// time and recycled whenever the consumer drains the queue).
#[derive(Debug)]
pub struct StreamRx {
    /// Window size (power of two).
    window: usize,
    slots: Vec<Slot>,
    next_seq: u16,
    /// Datagram under assembly (fragments released in order, last not
    /// yet seen).
    partial: Vec<u8>,
    /// Completed datagrams, contiguous in the arena.
    arena: Vec<u8>,
    /// `(offset, len)` of each undelivered datagram in `arena`.
    ready: VecDeque<(usize, usize)>,
    /// Read cursor into `ready`/arena.
    delivered_bytes: u64,
    delivered_datagrams: u64,
    /// FNV-1a over every delivered payload byte, in delivery order —
    /// the bit-identity witness used by the determinism tests.
    digest: u64,
    /// Fragments dropped as stale/duplicate (behind the window).
    stale: u64,
    /// Fragments dropped because they landed beyond the window.
    overflow: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01B3;

impl StreamRx {
    /// A receiver with a `window`-fragment reorder window (rounded up to
    /// a power of two), fragments up to `max_fragment` bytes, and an
    /// arena sized for `arena_bytes` of undelivered datagram payload.
    pub fn new(window: usize, max_fragment: usize, arena_bytes: usize) -> Self {
        let window = window.max(2).next_power_of_two();
        Self {
            window,
            slots: (0..window)
                .map(|_| Slot {
                    present: false,
                    last: false,
                    buf: Vec::with_capacity(max_fragment),
                })
                .collect(),
            next_seq: 0,
            partial: Vec::with_capacity(arena_bytes),
            arena: Vec::with_capacity(arena_bytes),
            ready: VecDeque::with_capacity(64),
            delivered_bytes: 0,
            delivered_datagrams: 0,
            digest: FNV_OFFSET,
            stale: 0,
            overflow: 0,
        }
    }

    /// Accepts one fragment. Stale and out-of-window fragments are
    /// dropped (the transport below retransmits nothing — carousel
    /// repair symbols make losses transient, so the window only has to
    /// ride out object-completion reordering).
    pub fn push_fragment(&mut self, seq: u16, last: bool, payload: &[u8]) {
        let ahead = seq.wrapping_sub(self.next_seq);
        if ahead as usize >= self.window {
            if ahead >= 0x8000 {
                self.stale += 1; // behind the window: duplicate or ancient
            } else {
                self.overflow += 1; // too far ahead to hold
            }
            return;
        }
        let slot = &mut self.slots[seq as usize % self.window];
        if slot.present {
            self.stale += 1; // duplicate inside the window
            return;
        }
        slot.present = true;
        slot.last = last;
        slot.buf.clear();
        slot.buf.extend_from_slice(payload);
        self.release_in_order();
    }

    /// Releases every in-order fragment at the window head into the
    /// assembly arena, cutting datagrams at `LAST` flags.
    fn release_in_order(&mut self) {
        loop {
            let idx = self.next_seq as usize % self.window;
            if !self.slots[idx].present {
                return;
            }
            let last = self.slots[idx].last;
            self.partial.extend_from_slice(&self.slots[idx].buf);
            self.slots[idx].present = false;
            self.next_seq = self.next_seq.wrapping_add(1);
            if last {
                let start = self.arena.len();
                self.arena.extend_from_slice(&self.partial);
                self.ready.push_back((start, self.partial.len()));
                self.partial.clear();
            }
        }
    }

    /// Copies the next in-order datagram into `out` (cleared first) and
    /// folds it into the delivery digest. Returns whether a datagram was
    /// delivered. When the queue empties the arena is recycled, so a
    /// consumer that keeps up pins the arena at its warm capacity.
    pub fn pop_datagram_into(&mut self, out: &mut Vec<u8>) -> bool {
        let Some((start, len)) = self.ready.pop_front() else {
            return false;
        };
        out.clear();
        out.extend_from_slice(&self.arena[start..start + len]);
        for &b in out.iter() {
            self.digest = (self.digest ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.delivered_bytes += len as u64;
        self.delivered_datagrams += 1;
        if self.ready.is_empty() {
            self.arena.clear();
        }
        true
    }

    /// Undelivered datagrams currently queued.
    pub fn ready_datagrams(&self) -> usize {
        self.ready.len()
    }

    /// Bytes delivered in order so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Datagrams delivered in order so far.
    pub fn delivered_datagrams(&self) -> u64 {
        self.delivered_datagrams
    }

    /// FNV-1a digest over every delivered byte, in order.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Fragments dropped as stale or duplicate.
    pub fn stale_fragments(&self) -> u64 {
        self.stale
    }

    /// Fragments dropped beyond the reorder window.
    pub fn overflow_fragments(&self) -> u64 {
        self.overflow
    }

    /// The next expected fragment sequence number.
    pub fn next_seq(&self) -> u16 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacScanner;

    fn rx() -> StreamRx {
        StreamRx::new(16, 64, 4096)
    }

    #[test]
    fn tx_fragments_and_rx_reassembles_through_mac() {
        let mut tx = StreamTx::new(5, StreamQos::bulk(), MacAddr::new(1), 10);
        let data: Vec<u8> = (0..33u8).collect();
        tx.send_datagram(MacAddr::new(0x42), &data);
        let pending = tx.take_pending();
        assert_eq!(pending.len(), 1);
        let mut rx = rx();
        for f in MacScanner::new(&pending[0].1) {
            assert_eq!(f.stream, 5);
            rx.push_fragment(f.seq, f.is_last(), f.payload);
        }
        let mut out = Vec::new();
        assert!(rx.pop_datagram_into(&mut out));
        assert_eq!(out, data);
        assert!(!rx.pop_datagram_into(&mut out));
        assert_eq!(rx.delivered_bytes(), 33);
        assert_eq!(rx.delivered_datagrams(), 1);
    }

    #[test]
    fn out_of_order_fragments_deliver_in_order() {
        let mut rx = rx();
        // Datagram A = seq 0 (last), B = seq 1,2 (last at 2).
        rx.push_fragment(2, true, b"tail");
        rx.push_fragment(0, true, b"first");
        rx.push_fragment(1, false, b"head-");
        let mut out = Vec::new();
        assert!(rx.pop_datagram_into(&mut out));
        assert_eq!(out, b"first");
        assert!(rx.pop_datagram_into(&mut out));
        assert_eq!(out, b"head-tail");
    }

    #[test]
    fn duplicates_and_window_overflow_are_dropped() {
        let mut rx = rx();
        rx.push_fragment(1, false, b"x");
        rx.push_fragment(1, false, b"x");
        assert_eq!(rx.stale_fragments(), 1);
        rx.push_fragment(400, true, b"far");
        assert_eq!(rx.overflow_fragments(), 1);
        rx.push_fragment(0, false, b"w");
        rx.push_fragment(2, true, b"yz");
        let mut out = Vec::new();
        assert!(rx.pop_datagram_into(&mut out));
        assert_eq!(out, b"wxyz");
    }

    #[test]
    fn seq_wraparound_is_seamless() {
        let mut rx = rx();
        // Fast-forward the window to just before wrap.
        let mut expect = Vec::new();
        for seq in 0u16..=u16::MAX {
            rx.push_fragment(seq, true, &seq.to_be_bytes());
            expect.push(seq);
            if rx.ready_datagrams() > 8 {
                let mut out = Vec::new();
                while rx.pop_datagram_into(&mut out) {}
            }
        }
        // Cross the wrap boundary.
        for seq in [0u16, 1, 2] {
            rx.push_fragment(seq, true, &seq.to_be_bytes());
        }
        let mut out = Vec::new();
        while rx.pop_datagram_into(&mut out) {}
        assert_eq!(rx.next_seq(), 3);
        assert_eq!(rx.delivered_datagrams(), 65536 + 3);
        assert_eq!(rx.stale_fragments(), 0);
        assert_eq!(rx.overflow_fragments(), 0);
    }

    #[test]
    fn digest_witnesses_delivery_order_and_content() {
        let deliver = |order: &[(u16, bool, &[u8])]| {
            let mut rx = rx();
            for &(seq, last, p) in order {
                rx.push_fragment(seq, last, p);
            }
            let mut out = Vec::new();
            while rx.pop_datagram_into(&mut out) {}
            rx.digest()
        };
        let a = deliver(&[(0, true, b"ab"), (1, true, b"cd")]);
        // Same bytes pushed out of order: delivery is reordered back, so
        // the digest matches.
        let b = deliver(&[(1, true, b"cd"), (0, true, b"ab")]);
        assert_eq!(a, b);
        // Different content differs.
        let c = deliver(&[(0, true, b"ab"), (1, true, b"ce")]);
        assert_ne!(a, c);
    }

    #[test]
    fn qos_maps_to_carousel_priority() {
        let q = StreamQos {
            priority: 3,
            weight: 5,
            deadline: DeadlineClass::Realtime,
        };
        assert_eq!(q.carousel_priority(), 60);
        assert_eq!(StreamQos::bulk().carousel_priority(), 1);
    }

    #[test]
    fn tx_batches_per_destination() {
        let mut tx = StreamTx::new(1, StreamQos::bulk(), MacAddr::new(1), 32);
        tx.send_datagram(MacAddr::new(2), b"to-two");
        tx.send_datagram(MacAddr::new(3), b"to-three");
        tx.send_datagram(MacAddr::new(2), b"more-two");
        let pending = tx.take_pending();
        assert_eq!(pending.len(), 2);
        assert_eq!(MacScanner::new(&pending[0].1).count(), 2);
        assert_eq!(MacScanner::new(&pending[1].1).count(), 1);
        assert!(!tx.has_pending());
        // Each destination runs its own sequence space, so a receiver
        // seeing only its own frames sees no gaps.
        let seqs: Vec<u16> = MacScanner::new(&pending[0].1).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        let seqs: Vec<u16> = MacScanner::new(&pending[1].1).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0]);
    }
}
