//! MAC addresses and the per-receiver address filter.
//!
//! Addresses are 16-bit and nonzero (`0x0000` is the bundle padding
//! sentinel, so no frame may start with it): `0xFFFF` is broadcast,
//! `0xFF00..=0xFFFE` are group addresses any number of receivers may
//! join, everything else is unicast. Each address also hashes to a 6-bit
//! *hint* that rides in the high bits of every object id carrying frames
//! for it — the symbol-level pre-filter
//! ([`inframe_link::session::ReceiverSession::set_admission_hints`])
//! screens on hints, the MAC filter re-checks the exact address, so hint
//! collisions cost a little decode work and never correctness.

use serde::{Deserialize, Serialize};

/// A 16-bit MAC address (nonzero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub u16);

/// Most group slots a filter can join.
pub const MAX_GROUPS: usize = 4;

/// The broadcast hint value (reserved: no unicast/group address hashes
/// to it).
pub const BROADCAST_HINT: u8 = 63;

impl MacAddr {
    /// The all-stations broadcast address.
    pub const BROADCAST: MacAddr = MacAddr(0xFFFF);

    /// A checked constructor.
    ///
    /// # Panics
    /// Panics on the reserved zero address.
    pub fn new(raw: u16) -> Self {
        assert!(raw != 0, "address 0x0000 is the padding sentinel");
        MacAddr(raw)
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Whether this is a group address (`0xFF00..=0xFFFE`).
    pub fn is_group(self) -> bool {
        (0xFF00..=0xFFFE).contains(&self.0)
    }

    /// The 6-bit destination hint carried in object ids addressed to
    /// this address: broadcast maps to the reserved [`BROADCAST_HINT`],
    /// every other address hashes (SplitMix-style) into `0..=62`.
    pub fn hint(self) -> u8 {
        if self.is_broadcast() {
            return BROADCAST_HINT;
        }
        let mut z = (self.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % 63) as u8
    }
}

/// Which destinations a receiver accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressFilter {
    own: MacAddr,
    groups: [u16; MAX_GROUPS],
    n_groups: u8,
    promiscuous: bool,
}

impl AddressFilter {
    /// A filter accepting `own`, broadcast, and nothing else yet.
    ///
    /// # Panics
    /// Panics on a broadcast or group `own` address.
    pub fn new(own: MacAddr) -> Self {
        assert!(
            !own.is_broadcast() && !own.is_group(),
            "own address must be unicast"
        );
        Self {
            own,
            groups: [0; MAX_GROUPS],
            n_groups: 0,
            promiscuous: false,
        }
    }

    /// A filter that accepts every frame (monitoring taps).
    pub fn promiscuous(own: MacAddr) -> Self {
        Self {
            promiscuous: true,
            ..Self::new(own)
        }
    }

    /// Joins a group address.
    ///
    /// # Panics
    /// Panics on a non-group address or when all [`MAX_GROUPS`] slots
    /// are taken.
    pub fn join_group(&mut self, group: MacAddr) {
        assert!(group.is_group(), "not a group address");
        if self.groups[..self.n_groups as usize].contains(&group.0) {
            return;
        }
        assert!(
            (self.n_groups as usize) < MAX_GROUPS,
            "all group slots taken"
        );
        self.groups[self.n_groups as usize] = group.0;
        self.n_groups += 1;
    }

    /// The receiver's own unicast address.
    pub fn own_addr(&self) -> MacAddr {
        self.own
    }

    /// The joined group addresses (raw).
    pub fn groups(&self) -> &[u16] {
        &self.groups[..self.n_groups as usize]
    }

    /// Whether this filter accepts every destination.
    pub fn is_promiscuous(&self) -> bool {
        self.promiscuous
    }

    /// Whether a frame addressed to `dst` should be accepted. Branch-free
    /// of allocation and loops over at most [`MAX_GROUPS`] slots — this
    /// runs per frame on the receive hot path.
    pub fn accepts(&self, dst: MacAddr) -> bool {
        self.promiscuous
            || dst.is_broadcast()
            || dst == self.own
            || self.groups[..self.n_groups as usize].contains(&dst.0)
    }

    /// The symbol-level admission mask implied by this filter: one bit
    /// per object-id hint, covering broadcast, the own address, and every
    /// joined group. Promiscuous filters admit everything.
    pub fn admission_mask(&self) -> u64 {
        if self.promiscuous {
            return u64::MAX;
        }
        let mut mask = (1u64 << BROADCAST_HINT) | (1u64 << self.own.hint());
        for &g in &self.groups[..self.n_groups as usize] {
            mask |= 1u64 << MacAddr(g).hint();
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_stay_in_range_and_broadcast_is_reserved() {
        assert_eq!(MacAddr::BROADCAST.hint(), BROADCAST_HINT);
        for raw in 1..=0xFFFEu16 {
            let h = MacAddr(raw).hint();
            assert!(h < BROADCAST_HINT, "addr {raw:#06x} hint {h}");
        }
    }

    #[test]
    fn filter_accepts_own_broadcast_and_groups_only() {
        let mut f = AddressFilter::new(MacAddr::new(0x0042));
        f.join_group(MacAddr::new(0xFF07));
        assert!(f.accepts(MacAddr::new(0x0042)));
        assert!(f.accepts(MacAddr::BROADCAST));
        assert!(f.accepts(MacAddr::new(0xFF07)));
        assert!(!f.accepts(MacAddr::new(0x0043)));
        assert!(!f.accepts(MacAddr::new(0xFF08)));
        assert!(AddressFilter::promiscuous(MacAddr::new(1)).accepts(MacAddr::new(0x1234)));
    }

    #[test]
    fn admission_mask_covers_exactly_the_accepted_hints() {
        let mut f = AddressFilter::new(MacAddr::new(0x0042));
        f.join_group(MacAddr::new(0xFF07));
        let mask = f.admission_mask();
        assert_ne!(mask & (1 << BROADCAST_HINT), 0);
        assert_ne!(mask & (1 << MacAddr::new(0x0042).hint()), 0);
        assert_ne!(mask & (1 << MacAddr::new(0xFF07).hint()), 0);
        // A hint none of the accepted addresses map to is not admitted.
        let foreign = (0..63u8)
            .find(|&h| h != MacAddr::new(0x0042).hint() && h != MacAddr::new(0xFF07).hint())
            .unwrap();
        assert_eq!(mask & (1 << foreign), 0);
        assert_eq!(
            AddressFilter::promiscuous(MacAddr::new(1)).admission_mask(),
            u64::MAX
        );
    }

    #[test]
    fn duplicate_group_join_is_idempotent() {
        let mut f = AddressFilter::new(MacAddr::new(7));
        for _ in 0..10 {
            f.join_group(MacAddr::new(0xFF01));
        }
        f.join_group(MacAddr::new(0xFF02));
        assert!(f.accepts(MacAddr::new(0xFF01)));
        assert!(f.accepts(MacAddr::new(0xFF02)));
    }

    #[test]
    #[should_panic(expected = "padding sentinel")]
    fn zero_address_rejected() {
        MacAddr::new(0);
    }
}
