//! Spatial sub-channels: one carousel shard and one modulation
//! controller per frame region.
//!
//! A [`SpatialMux`] tiles the cycle payload with a
//! [`RegionMap`] and runs one [`Carousel`] shard per region. Every
//! object is added to all `R` shards with strided symbol sequences
//! (shard `r` emits seqs `r, r+R, …`); smooth WRR schedules the shards
//! identically, so together they emit every sequence exactly once — a
//! receiver seeing the whole frame loses nothing to the sharding, while
//! a receiver with one tile occluded loses exactly `1/R` of each
//! object's symbols and completes through rateless repair on the rest.
//!
//! A [`RegionControllerBank`] gives each region its own δ/τ controller
//! fed by that region's GOB availability, and folds the per-region δ
//! commands into per-Block amplitude scales for
//! [`inframe_core::sender::Sender::set_block_amp_scales`]. δ is spatial
//! for real (each Block carries its region's amplitude); τ is a
//! frame-global display property, so per-region τ commands are exposed
//! for GOB-level simulation but only the *maximum* τ across regions can
//! drive a physical display.

use inframe_code::parity::GobStats;
use inframe_core::layout::DataLayout;
use inframe_core::region::RegionMap;
use inframe_core::sender::PayloadSource;
use inframe_core::InFrameConfig;
use inframe_link::carousel::{Carousel, SymbolGeometry};
use inframe_link::control::{ControllerPolicy, ModulationCommand, ModulationController};

/// Per-region carousel shards assembling full-frame cycle payloads.
#[derive(Debug, Clone)]
pub struct SpatialMux {
    map: RegionMap,
    geometry: SymbolGeometry,
    shards: Vec<Carousel>,
    frame_bits: usize,
    /// Scratch full-frame payload (reused across cycles).
    full: Vec<bool>,
    cycles_emitted: u64,
    /// Round-robin cursor spreading retransmits across shards.
    retransmit_rr: usize,
}

impl SpatialMux {
    /// A spatial multiplexer over `map` (Parity coding: regions own
    /// contiguous payload runs). All regions share one symbol geometry —
    /// the map's tiles are equal by construction.
    pub fn new(map: RegionMap) -> Self {
        let geometry = SymbolGeometry::for_payload_bits(map.region_payload_bits());
        let shards = vec![Carousel::new(geometry); map.num_regions()];
        let frame_bits = map.region_payload_bits() * map.num_regions();
        Self {
            map,
            geometry,
            shards,
            frame_bits,
            full: vec![false; frame_bits],
            cycles_emitted: 0,
            retransmit_rr: 0,
        }
    }

    /// The per-region symbol geometry.
    pub fn geometry(&self) -> SymbolGeometry {
        self.geometry
    }

    /// The region map.
    pub fn region_map(&self) -> &RegionMap {
        &self.map
    }

    /// Number of regions / shards.
    pub fn num_regions(&self) -> usize {
        self.map.num_regions()
    }

    /// Full-frame payload bits per cycle.
    pub fn frame_payload_bits(&self) -> usize {
        self.frame_bits
    }

    /// Adds an object to every shard with strided sequences.
    ///
    /// # Panics
    /// Panics on a duplicate id, zero priority, or empty data.
    pub fn add_object(&mut self, id: u16, priority: u32, data: &[u8]) {
        let r_total = self.shards.len() as u32;
        for (r, shard) in self.shards.iter_mut().enumerate() {
            shard.add_object_strided(id, priority, data, r as u32, r_total);
        }
    }

    /// Removes an object from every shard. Returns whether it was
    /// present.
    pub fn remove_object(&mut self, id: u16) -> bool {
        let mut any = false;
        for shard in &mut self.shards {
            any |= shard.remove_object(id);
        }
        any
    }

    /// Object ids currently riding the shards.
    pub fn object_ids(&self) -> Vec<u16> {
        self.shards[0].object_ids()
    }

    /// Whether any objects are loaded.
    pub fn has_objects(&self) -> bool {
        !self.shards[0].object_ids().is_empty()
    }

    /// Cycles emitted so far.
    pub fn cycles_emitted(&self) -> u64 {
        self.cycles_emitted
    }

    /// Queues symbol `seq` of object `id` for retransmission. Symbols
    /// are self-describing (object id + sequence ride the header), so a
    /// repeat need not retrace the strided shard that first carried it —
    /// and deliberately must not: a symbol is usually NACKed *because*
    /// its home region is faulted, so repeats rotate round-robin across
    /// all shards and mostly ride healthy tiles. Returns `false` when
    /// the object is not loaded or that symbol is already pending on
    /// some shard (re-NACK racing an in-flight repair).
    pub fn queue_retransmit(&mut self, id: u16, seq: u32) -> bool {
        self.queue_retransmit_avoiding(id, seq, 0)
    }

    /// Like [`Self::queue_retransmit`], but skips shards whose region
    /// index is set in `avoid` (a bitmask, bit `r` = shard `r`). The
    /// NACK bitmap localizes the faulted tiles — the very classes being
    /// NACKed — and a repeat routed back through a faulted tile mostly
    /// dies there. Falls back to plain rotation when every shard is
    /// avoided.
    pub fn queue_retransmit_avoiding(&mut self, id: u16, seq: u32, avoid: u64) -> bool {
        if self.shards[0].k_of(id).is_none() {
            return false;
        }
        if self.shards.iter().any(|s| s.retransmit_pending(id, seq)) {
            return false;
        }
        let n = self.shards.len();
        let mut r = self.retransmit_rr % n;
        self.retransmit_rr = self.retransmit_rr.wrapping_add(1);
        if avoid != 0 {
            for _ in 0..n {
                if avoid & (1u64 << (r as u32 & 63)) == 0 {
                    break;
                }
                r = (r + 1) % n;
                self.retransmit_rr = self.retransmit_rr.wrapping_add(1);
            }
        }
        self.shards[r].queue_retransmit(id, seq)
    }

    /// Whether object `id` is loaded on the shards.
    pub fn has_object(&self, id: u16) -> bool {
        self.shards[0].k_of(id).is_some()
    }

    /// Whether the strided schedule has emitted symbol `seq` of object
    /// `id` at least once. A receiver's NACK bitmap cannot tell "lost"
    /// from "not sent yet" — the sender can, and must not burn repeat
    /// slots on columns the regular schedule is about to carry anyway.
    pub fn seq_emitted(&self, id: u16, seq: u32) -> bool {
        let r = (seq as usize) % self.shards.len();
        self.shards[r].symbols_sent(id).is_some_and(|n| seq < n)
    }

    /// Drops queued retransmissions of `id` on every shard.
    pub fn cancel_retransmits(&mut self, id: u16) {
        for shard in &mut self.shards {
            shard.cancel_retransmits(id);
        }
    }

    /// NACKed symbols queued and not yet re-emitted, across all shards.
    pub fn retransmit_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.retransmit_backlog()).sum()
    }

    /// Symbols re-emitted from retransmit rings, across all shards.
    pub fn symbols_retransmitted(&self) -> u64 {
        self.shards.iter().map(|s| s.symbols_retransmitted()).sum()
    }

    /// Emits one full-frame cycle payload: each shard fills its own
    /// region's payload run, scattered into channel order.
    ///
    /// # Panics
    /// Panics when no objects are loaded.
    pub fn next_cycle_payload(&mut self) -> Vec<bool> {
        for (r, shard) in self.shards.iter_mut().enumerate() {
            let region_payload = shard.next_cycle_payload();
            self.map.scatter(&region_payload, r, &mut self.full);
        }
        self.cycles_emitted += 1;
        self.full.clone()
    }
}

impl PayloadSource for SpatialMux {
    fn next_payload(&mut self, bits: usize) -> Vec<bool> {
        assert_eq!(
            bits, self.frame_bits,
            "sender capacity disagrees with the region tiling"
        );
        self.next_cycle_payload()
    }
}

/// One δ/τ controller per region, with per-Block amplitude scale
/// fan-out.
///
/// Per-Block scales can only *attenuate* the sender's global δ (the HVS
/// ceiling is absolute), so the bank works in envelope form: the sender
/// runs at [`RegionControllerBank::delta_envelope`] — the largest δ any
/// region demands — and every region's scale is its own commanded δ
/// divided by that envelope. A lossy region climbs toward the ceiling at
/// scale 1; clean regions reclaim imperceptibility margin by scaling
/// down.
#[derive(Debug)]
pub struct RegionControllerBank {
    map: RegionMap,
    controllers: Vec<ModulationController>,
    /// Latest per-region amplitude scale (`command δ / envelope δ`, ≤ 1).
    scales: Vec<f32>,
    /// Scratch per-Block expansion of `scales`.
    blocks: Vec<f32>,
}

impl RegionControllerBank {
    /// One controller per region of `map`, all starting from `policy`.
    pub fn new(config: &InFrameConfig, policy: ControllerPolicy, map: RegionMap) -> Self {
        let n = map.num_regions();
        Self {
            map,
            controllers: (0..n)
                .map(|_| ModulationController::new(config, policy.clone()))
                .collect(),
            scales: vec![1.0; n],
            blocks: Vec::new(),
        }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.controllers.len()
    }

    /// Feeds one decoded cycle to every region's controller: region `r`
    /// sees its own GOB availability split out of the cycle payload.
    /// Parity-error attribution is frame-wide, so each region is charged
    /// the frame's error *rate* applied to its own available count.
    /// Returns `true` when the per-region scales changed (the caller
    /// should re-apply the global δ from
    /// [`RegionControllerBank::delta_envelope`] and the per-Block scales
    /// from [`RegionControllerBank::block_scales`]).
    pub fn observe_cycle(&mut self, full: &[Option<bool>], frame_stats: &GobStats) -> bool {
        let error_rate = frame_stats.error_rate();
        let mut any_command = false;
        for r in 0..self.controllers.len() {
            let (ok, lost) = self.map.region_availability(full, r);
            let region_stats = GobStats {
                available: ok,
                erroneous: (ok as f64 * error_rate).round() as u64,
                unavailable: lost,
            };
            any_command |= self.controllers[r].observe_cycle(&region_stats).is_some();
        }
        if !any_command {
            return false;
        }
        self.recompute_scales()
    }

    /// Feeds one aggregated feedback window to the bank — the
    /// closed-loop sibling of [`RegionControllerBank::observe_cycle`]
    /// for a sender whose only view of the channel is receiver reports.
    /// Region `r`'s controller observes the aggregator's folded window
    /// for `r`; regions no fresh report touched observe nothing (their
    /// controllers hold). Returns `true` when the per-region scales
    /// changed.
    pub fn observe_feedback(&mut self, agg: &inframe_link::FeedbackAggregator) -> bool {
        let mut any_command = false;
        for (r, ctl) in self.controllers.iter_mut().enumerate() {
            if let Some(stats) = agg.window_stats(r) {
                any_command |= ctl.observe_cycle(stats).is_some();
            }
        }
        if !any_command {
            return false;
        }
        self.recompute_scales()
    }

    /// Open-loop fallback: forgets the per-region differentiation (all
    /// scales back to 1.0 — uniform modulation at the envelope), used
    /// when the back-channel goes silent and per-region knowledge can
    /// no longer be trusted. Returns `true` when any scale changed.
    pub fn reset_scales(&mut self) -> bool {
        let mut changed = false;
        for s in &mut self.scales {
            if *s != 1.0 {
                *s = 1.0;
                changed = true;
            }
        }
        changed
    }

    fn recompute_scales(&mut self) -> bool {
        let envelope = self.delta_envelope();
        let mut changed = false;
        for r in 0..self.controllers.len() {
            let scale = (self.controllers[r].command().delta / envelope).clamp(0.0, 1.0);
            if scale != self.scales[r] {
                self.scales[r] = scale;
                changed = true;
            }
        }
        changed
    }

    /// The largest δ any region currently demands — the global amplitude
    /// the sender should run at (per-Block scales attenuate from here).
    pub fn delta_envelope(&self) -> f32 {
        self.controllers
            .iter()
            .map(|c| c.command().delta)
            .fold(f32::MIN, f32::max)
    }

    /// The current command of region `r`'s controller.
    pub fn command(&self, r: usize) -> ModulationCommand {
        self.controllers[r].command()
    }

    /// The largest τ any region currently demands — the only τ a real
    /// display (one refresh cadence for the whole panel) can honor.
    /// GOB-level simulation may honor per-region τ individually.
    pub fn tau_envelope(&self) -> u32 {
        self.controllers
            .iter()
            .map(|c| c.command().tau)
            .max()
            .expect("bank has at least one region")
    }

    /// Latest per-region amplitude scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Expands the per-region scales to per-Block scales for
    /// [`inframe_core::sender::Sender::set_block_amp_scales`].
    pub fn block_scales(&mut self, layout: &DataLayout) -> &[f32] {
        let scales = std::mem::take(&mut self.scales);
        self.map.block_scales(layout, &scales, &mut self.blocks);
        self.scales = scales;
        &self.blocks
    }

    /// Direct access to region `r`'s controller.
    pub fn controller_mut(&mut self, r: usize) -> &mut ModulationController {
        &mut self.controllers[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inframe_code::framing;
    use inframe_link::rlc::ObjectDecoder;
    use inframe_link::symbol::Symbol;
    use std::collections::BTreeMap;

    fn layout() -> DataLayout {
        // paper(): 25×15 GOBs, 3 payload bits per GOB.
        DataLayout::from_config(&InFrameConfig::paper())
    }

    fn mux(tiles_x: usize, tiles_y: usize) -> SpatialMux {
        SpatialMux::new(RegionMap::new(&layout(), tiles_x, tiles_y))
    }

    #[test]
    fn shards_fill_the_whole_frame() {
        let mut m = mux(5, 3);
        m.add_object(1, 1, &[0xA5; 200]);
        let p = m.next_cycle_payload();
        assert_eq!(p.len(), layout().payload_bits_parity());
        assert_eq!(m.frame_payload_bits(), p.len());
    }

    #[test]
    fn full_view_decodes_each_regions_symbols() {
        // 5×3 tiling → 75-bit regions → *streamed* geometry: symbols
        // cross cycle boundaries, so each region's bits accumulate into
        // a persistent per-region stream before scanning.
        let data: Vec<u8> = (0..900u32).map(|i| (i * 13) as u8).collect();
        let mut m = mux(5, 3);
        m.add_object(7, 1, &data);
        let map = m.region_map().clone();
        let mut streams: Vec<Vec<bool>> = vec![Vec::new(); map.num_regions()];
        let mut region_buf = Vec::new();
        for _ in 0..200 {
            let full = m.next_cycle_payload();
            for (r, stream) in streams.iter_mut().enumerate() {
                map.gather(&full, r, &mut region_buf);
                stream.extend_from_slice(&region_buf);
            }
        }
        let mut dec: Option<ObjectDecoder> = None;
        let mut seqs = BTreeMap::new();
        for stream in &streams {
            for f in framing::scan(stream) {
                let s = Symbol::from_frame_payload(&f.payload).expect("valid");
                *seqs.entry(s.header.seq).or_insert(0u32) += 1;
                let d = dec.get_or_insert_with(|| ObjectDecoder::for_symbol(&s));
                d.absorb(&s);
            }
        }
        let d = dec.expect("symbols recovered");
        assert!(d.is_complete(), "full view must complete");
        assert_eq!(d.object().unwrap(), &data[..]);
        assert!(
            seqs.values().all(|&n| n == 1),
            "strided shards never repeat a sequence"
        );
    }

    #[test]
    fn losing_one_region_still_completes() {
        // 5×1 tiling → 225-bit regions → aligned geometry (one 14-byte
        // symbol per region per cycle), so per-cycle scanning is exact.
        let data: Vec<u8> = (0..600u32).map(|i| (i * 31) as u8).collect();
        let mut m = mux(5, 1);
        m.add_object(3, 1, &data);
        let map = m.region_map().clone();
        let mut dec: Option<ObjectDecoder> = None;
        let mut region_buf = Vec::new();
        'outer: for _ in 0..400 {
            let full = m.next_cycle_payload();
            for r in 0..map.num_regions() {
                if r == 1 {
                    continue; // region 1 occluded: its symbols never arrive
                }
                map.gather(&full, r, &mut region_buf);
                for f in framing::scan(&region_buf) {
                    let s = Symbol::from_frame_payload(&f.payload).expect("valid");
                    let d = dec.get_or_insert_with(|| ObjectDecoder::for_symbol(&s));
                    d.absorb(&s);
                    if d.is_complete() {
                        break 'outer;
                    }
                }
            }
        }
        let d = dec.expect("decoder started");
        assert!(d.is_complete(), "4 of 5 regions must suffice via repair");
        assert_eq!(d.object().unwrap(), &data[..]);
    }

    #[test]
    fn remove_object_clears_every_shard() {
        let mut m = mux(5, 3);
        m.add_object(1, 1, &[1; 64]);
        m.add_object(2, 1, &[2; 64]);
        assert!(m.remove_object(1));
        assert!(!m.remove_object(1));
        assert_eq!(m.object_ids(), vec![2]);
    }

    #[test]
    fn bank_backs_off_only_the_lossy_region() {
        let l = layout();
        let map = RegionMap::new(&l, 5, 3);
        let policy = ControllerPolicy::default();
        let window = policy.window_cycles;
        let mut bank = RegionControllerBank::new(&InFrameConfig::paper(), policy, map.clone());
        let bits = l.payload_bits_parity();
        // Region 7 erased, everything else clean.
        let mut full: Vec<Option<bool>> = vec![Some(false); bits];
        for &g in map.region_gobs(7) {
            let lo = g as usize * 3;
            full[lo..lo + 3].fill(None);
        }
        let stats = GobStats {
            available: (l.num_gobs() - map.gobs_per_region()) as u64,
            erroneous: 0,
            unavailable: map.gobs_per_region() as u64,
        };
        let mut changed = false;
        for _ in 0..2 * window {
            changed |= bank.observe_cycle(&full, &stats);
        }
        assert!(changed, "lossy region must trigger a δ change");
        // A fully-erased region cannot be saved by δ alone: the
        // controller first stretches τ (amplitude unchanged), so assert
        // the region *commanded* a defensive move while clean regions
        // did not.
        let defensive = bank.command(7);
        let clean = bank.command(0);
        assert!(
            defensive.tau > clean.tau || defensive.delta > clean.delta,
            "region 7 must degrade relative to clean regions: {defensive:?} vs {clean:?}"
        );
        assert!(bank.tau_envelope() >= defensive.tau);
        // The lossy region rides the envelope at full scale; clean
        // regions attenuate below it.
        assert!((bank.delta_envelope() - defensive.delta).abs() < 1e-6);
        assert!((bank.scales()[7] - 1.0).abs() < 1e-6);
        assert!(bank.scales()[0] < 1.0);
        let blocks = bank.block_scales(&l);
        assert_eq!(blocks.len(), l.num_blocks());
        // Every Block of region 7 carries scale 1.0.
        let m = l.gob_size;
        let (gobs_x, _) = l.gob_grid();
        for by in 0..l.blocks_y {
            for bx in 0..l.blocks_x {
                let gob = (by / m) * gobs_x + bx / m;
                if map.region_of_gob(gob) == 7 {
                    assert!((blocks[by * l.blocks_x + bx] - 1.0).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn payload_source_contract_checks_capacity() {
        let mut m = mux(5, 5);
        m.add_object(1, 1, &[9; 32]);
        let p = PayloadSource::next_payload(&mut m, layout().payload_bits_parity());
        assert_eq!(p.len(), layout().payload_bits_parity());
    }
}
