//! A minimal in-camera ISP (image signal processor) stage.
//!
//! Phone cameras never hand applications raw sensor data: between the
//! sensor and the app sit denoising and sharpening, both of which act at
//! exactly the spatial scale of InFrame's chessboard. Denoising
//! (edge-preserving smoothing) *attenuates* the pattern; sharpening
//! (unsharp masking) *amplifies* it. The ISP ablation quantifies how much
//! each setting moves the link — a deployment consideration the paper's
//! §5 "practical issues" invites.

use inframe_frame::filter::{box_blur, gaussian_blur};
use inframe_frame::Plane;
use serde::{Deserialize, Serialize};

/// ISP processing applied to captured frames before the application sees
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IspConfig {
    /// Denoise strength in `[0, 1]`: blend toward a 3×3 smoothed frame.
    /// 0 disables.
    pub denoise: f32,
    /// Unsharp-mask amount (typical phone default ~0.5). 0 disables.
    pub sharpen_amount: f32,
    /// Unsharp-mask radius, pixels.
    pub sharpen_sigma: f32,
}

impl IspConfig {
    /// Pass-through ISP (what the rest of the workspace assumes).
    pub fn off() -> Self {
        Self {
            denoise: 0.0,
            sharpen_amount: 0.0,
            sharpen_sigma: 1.0,
        }
    }

    /// A phone-like default: light denoise, moderate sharpening.
    pub fn phone_default() -> Self {
        Self {
            denoise: 0.25,
            sharpen_amount: 0.5,
            sharpen_sigma: 1.0,
        }
    }

    /// A heavy-handed beauty-mode pipeline (worst case for the channel).
    pub fn aggressive_denoise() -> Self {
        Self {
            denoise: 0.8,
            sharpen_amount: 0.0,
            sharpen_sigma: 1.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics when a parameter is outside its documented range.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.denoise),
            "denoise must be in [0, 1]"
        );
        assert!(self.sharpen_amount >= 0.0, "sharpen amount must be >= 0");
        assert!(self.sharpen_sigma > 0.0, "sharpen sigma must be positive");
    }

    /// Whether this configuration changes the image at all.
    pub fn is_passthrough(&self) -> bool {
        self.denoise == 0.0 && self.sharpen_amount == 0.0
    }

    /// Processes a captured code-value frame.
    pub fn process(&self, frame: &Plane<f32>) -> Plane<f32> {
        self.validate();
        if self.is_passthrough() {
            return frame.clone();
        }
        // 1. Denoise: blend toward the local mean.
        let mut out = if self.denoise > 0.0 {
            let smooth = box_blur(frame, 1);
            inframe_frame::arith::zip_map(frame, &smooth, |orig, sm| {
                orig + self.denoise * (sm - orig)
            })
            .expect("same shape by construction")
        } else {
            frame.clone()
        };
        // 2. Unsharp mask: out + amount · (out − blur(out)).
        if self.sharpen_amount > 0.0 {
            let blurred = gaussian_blur(&out, self.sharpen_sigma);
            out = inframe_frame::arith::zip_map(&out, &blurred, |v, b| {
                (v + self.sharpen_amount * (v - b)).clamp(0.0, 255.0)
            })
            .expect("same shape by construction");
        }
        out
    }
}

impl Default for IspConfig {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chessboard() -> Plane<f32> {
        Plane::from_fn(32, 32, |x, y| {
            if ((x / 3) + (y / 3)) % 2 == 1 {
                137.0
            } else {
                117.0
            }
        })
    }

    /// Pattern contrast proxy: sample standard deviation.
    fn contrast(p: &Plane<f32>) -> f64 {
        p.variance().sqrt()
    }

    #[test]
    fn passthrough_is_identity() {
        let p = chessboard();
        assert_eq!(IspConfig::off().process(&p), p);
        assert!(IspConfig::off().is_passthrough());
    }

    #[test]
    fn denoise_attenuates_the_chessboard() {
        let p = chessboard();
        let out = IspConfig::aggressive_denoise().process(&p);
        assert!(
            contrast(&out) < contrast(&p) * 0.8,
            "{} vs {}",
            contrast(&out),
            contrast(&p)
        );
    }

    #[test]
    fn sharpening_amplifies_the_chessboard() {
        let p = chessboard();
        let isp = IspConfig {
            denoise: 0.0,
            sharpen_amount: 1.0,
            sharpen_sigma: 1.0,
        };
        let out = isp.process(&p);
        assert!(
            contrast(&out) > contrast(&p) * 1.1,
            "{} vs {}",
            contrast(&out),
            contrast(&p)
        );
    }

    #[test]
    fn phone_default_roughly_preserves_contrast() {
        // Light denoise and moderate sharpening partially cancel.
        let p = chessboard();
        let out = IspConfig::phone_default().process(&p);
        let ratio = contrast(&out) / contrast(&p);
        assert!((0.6..=1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sharpening_clamps_to_code_range() {
        let p = Plane::from_fn(16, 16, |x, _| if x % 2 == 0 { 250.0 } else { 5.0 });
        let isp = IspConfig {
            denoise: 0.0,
            sharpen_amount: 2.0,
            sharpen_sigma: 1.0,
        };
        let out = isp.process(&p);
        assert!(out.max_sample() <= 255.0);
        assert!(out.min_sample() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "denoise must be in")]
    fn invalid_denoise_rejected() {
        let bad = IspConfig {
            denoise: 1.5,
            ..IspConfig::off()
        };
        bad.validate();
    }
}
