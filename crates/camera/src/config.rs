//! Camera configuration and presets.

use crate::isp::IspConfig;
use serde::{Deserialize, Serialize};

/// Shutter mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shutter {
    /// All rows expose over the same interval.
    Global,
    /// Rows start exposing sequentially; the last row starts `readout_s`
    /// seconds after the first. CMOS phone sensors (like the Lumia 1020's)
    /// are rolling.
    Rolling {
        /// Time to sweep the exposure start across the full sensor height,
        /// in seconds.
        readout_s: f64,
    },
}

/// Parameters of a simulated camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraConfig {
    /// Captured frame width in pixels.
    pub width: usize,
    /// Captured frame height in pixels.
    pub height: usize,
    /// Capture rate in frames per second.
    pub fps: f64,
    /// Exposure time per row in seconds.
    pub exposure_s: f64,
    /// Shutter mechanism.
    pub shutter: Shutter,
    /// Phase offset of the first frame against display time zero, seconds.
    pub phase_s: f64,
    /// Fractional clock skew of the camera against the display
    /// (e.g. `1e-4` = camera runs 100 ppm fast). Models the unsynchronized
    /// clocks the paper's τ-cycle design tolerates.
    pub clock_skew: f64,
    /// Gaussian read noise, σ in normalized linear light units.
    pub read_noise_sigma: f64,
    /// Shot-noise scale: per-photosite variance is
    /// `shot_noise_scale · light`. Zero disables shot noise.
    pub shot_noise_scale: f64,
    /// Optics point-spread σ in captured pixels (0 = pinhole-sharp).
    pub psf_sigma_px: f64,
    /// Linear gain applied to integrated light before encoding (exposure
    /// compensation).
    pub gain: f64,
    /// Number of rolling-shutter bands simulated per frame. More bands =
    /// finer temporal granularity across rows (and more compute). Ignored
    /// for global shutter.
    pub shutter_bands: usize,
    /// In-camera image processing applied to the captured frame.
    pub isp: IspConfig,
}

impl CameraConfig {
    /// The paper's receiver: Lumia-1020-like, 1280×720 at 30 FPS, indoor
    /// exposure.
    pub fn lumia_1020() -> Self {
        Self {
            width: 1280,
            height: 720,
            fps: 30.0,
            // Indoor office video exposure: ~1/120 s — short enough to
            // resolve individual 120 Hz display frames most of the time.
            exposure_s: 1.0 / 120.0,
            // A ~24 ms readout sweep, typical for phone CMOS at 30 FPS
            // (and leaving room for the 1/120 s exposure in each period).
            shutter: Shutter::Rolling { readout_s: 0.024 },
            phase_s: 0.0,
            clock_skew: 5e-5,
            read_noise_sigma: 0.004,
            shot_noise_scale: 2.0e-4,
            psf_sigma_px: 0.7,
            gain: 1.0,
            shutter_bands: 16,
            isp: IspConfig::off(),
        }
    }

    /// An idealized noiseless global-shutter camera synchronized to the
    /// display — isolates coding-layer behaviour in tests and ablations.
    pub fn ideal(width: usize, height: usize, fps: f64, exposure_s: f64) -> Self {
        Self {
            width,
            height,
            fps,
            exposure_s,
            shutter: Shutter::Global,
            phase_s: 0.0,
            clock_skew: 0.0,
            read_noise_sigma: 0.0,
            shot_noise_scale: 0.0,
            psf_sigma_px: 0.0,
            gain: 1.0,
            shutter_bands: 1,
            isp: IspConfig::off(),
        }
    }

    /// Seconds between captured frame starts (camera clock).
    pub fn frame_period(&self) -> f64 {
        (1.0 / self.fps) * (1.0 + self.clock_skew)
    }

    /// Start time of capture frame `j` in display time.
    pub fn frame_start(&self, j: u64) -> f64 {
        self.phase_s + j as f64 * self.frame_period()
    }

    /// Full time window touched by capture frame `j` (first row's exposure
    /// start through last row's exposure end).
    pub fn frame_window(&self, j: u64) -> (f64, f64) {
        let t0 = self.frame_start(j);
        let readout = match self.shutter {
            Shutter::Global => 0.0,
            Shutter::Rolling { readout_s } => readout_s,
        };
        (t0, t0 + readout + self.exposure_s)
    }

    /// Validates physical plausibility.
    ///
    /// # Panics
    /// Panics on nonpositive dimensions/rates, nonpositive exposure,
    /// negative noise, or an exposure+readout longer than the frame period.
    pub fn validate(&self) {
        assert!(self.width > 0 && self.height > 0, "sensor must be nonempty");
        assert!(self.fps > 0.0, "fps must be positive");
        assert!(self.exposure_s > 0.0, "exposure must be positive");
        assert!(self.read_noise_sigma >= 0.0, "read noise must be >= 0");
        assert!(self.shot_noise_scale >= 0.0, "shot noise must be >= 0");
        assert!(self.psf_sigma_px >= 0.0, "psf sigma must be >= 0");
        assert!(self.gain > 0.0, "gain must be positive");
        assert!(self.shutter_bands >= 1, "need at least one shutter band");
        self.isp.validate();
        let readout = match self.shutter {
            Shutter::Global => 0.0,
            Shutter::Rolling { readout_s } => {
                assert!(readout_s >= 0.0, "readout must be >= 0");
                readout_s
            }
        };
        assert!(
            readout + self.exposure_s <= 1.0 / self.fps + 1e-9,
            "exposure+readout must fit within the frame period"
        );
    }
}

impl Default for CameraConfig {
    fn default() -> Self {
        Self::lumia_1020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lumia_preset_matches_paper_setup() {
        let c = CameraConfig::lumia_1020();
        assert_eq!((c.width, c.height), (1280, 720));
        assert_eq!(c.fps, 30.0);
        assert!(matches!(c.shutter, Shutter::Rolling { .. }));
        c.validate();
    }

    #[test]
    fn frame_times_advance_with_skew() {
        let mut c = CameraConfig::ideal(64, 36, 30.0, 0.001);
        c.clock_skew = 0.01;
        let p = c.frame_period();
        assert!((p - (1.0 / 30.0) * 1.01).abs() < 1e-12);
        assert!((c.frame_start(3) - 3.0 * p).abs() < 1e-12);
    }

    #[test]
    fn frame_window_includes_readout() {
        let mut c = CameraConfig::lumia_1020();
        c.phase_s = 0.5;
        let (t0, t1) = c.frame_window(0);
        assert_eq!(t0, 0.5);
        assert!((t1 - (0.5 + 0.024 + 1.0 / 120.0)).abs() < 1e-12);
    }

    #[test]
    fn ideal_camera_validates() {
        CameraConfig::ideal(640, 360, 30.0, 1.0 / 60.0).validate();
    }

    #[test]
    #[should_panic(expected = "fit within the frame period")]
    fn over_long_exposure_rejected() {
        let c = CameraConfig::ideal(64, 36, 30.0, 0.05);
        c.validate();
    }
}
