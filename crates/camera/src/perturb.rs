//! Per-receiver photometric perturbation as a capture tap.
//!
//! Re-exports the integer-domain [`CaptureTransform`] algebra from
//! `inframe-frame` and wraps it as a [`CaptureTap`], so a single
//! receiver in the streaming pipeline can be given exactly the
//! photometric profile the fleet simulator models in batch: the tap
//! materializes every capture through the quantized bridge
//! (`quantize → integer transform → dequantize`), which is the same
//! lossless mapping the batched scorer's per-class transforms assume —
//! a sequential receiver behind this tap and a batched receiver with
//! the same transform decode bit-identically.

use crate::tap::{CaptureTap, TappedCapture};
pub use inframe_frame::perturb::{
    materialize_in_place, materialized, CaptureTransform, OcclusionRect, GAIN_ONE_Q12,
};
use inframe_frame::qplane::QPlane;

/// Discrete auto-exposure gain ladder: step `k` is the Q4.12 gain
/// `(1 + step/4096)^k`, rounded — receivers whose AE settled a few
/// steps apart snap onto a shared transform, which is what keeps the
/// fleet's distinct-variant count small.
pub fn ae_gain_q12(step_q12: i32, k: i32) -> i32 {
    let ratio = 1.0 + step_q12 as f64 / GAIN_ONE_Q12 as f64;
    (GAIN_ONE_Q12 as f64 * ratio.powi(k)).round().max(0.0) as i32
}

/// Applies one fixed [`CaptureTransform`] to every capture flowing
/// through the tap.
#[derive(Debug)]
pub struct TransformTap {
    transform: CaptureTransform,
    qscratch: QPlane,
}

impl TransformTap {
    /// Creates a tap applying `transform` to every capture.
    pub fn new(transform: CaptureTransform) -> Self {
        Self {
            transform,
            qscratch: QPlane::new(0, 0),
        }
    }

    /// The transform this tap applies.
    pub fn transform(&self) -> &CaptureTransform {
        &self.transform
    }
}

impl CaptureTap for TransformTap {
    fn tap(&mut self, mut cap: TappedCapture) -> Vec<TappedCapture> {
        materialize_in_place(&mut cap.plane, &self.transform, &mut self.qscratch);
        vec![cap]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inframe_frame::Plane;

    #[test]
    fn ae_ladder_is_monotone_and_snaps_to_unity() {
        let step = 256; // 1/16 per step
        assert_eq!(ae_gain_q12(step, 0), GAIN_ONE_Q12);
        let mut prev = 0;
        for k in -4..=4 {
            let g = ae_gain_q12(step, k);
            assert!(g > prev, "ladder must be strictly increasing");
            prev = g;
        }
    }

    #[test]
    fn tap_materializes_the_transform() {
        let t = CaptureTransform {
            awb_raw: 128, // +1 code value
            ..CaptureTransform::IDENTITY
        };
        let mut tap = TransformTap::new(t);
        let cap = TappedCapture {
            plane: Plane::filled(8, 6, 100.0),
            t_mid: 0.25,
        };
        let out = tap.tap(cap);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].t_mid, 0.25);
        assert!(out[0].plane.samples().iter().all(|&v| v == 101.0));
    }
}
