//! Auto-exposure: the gain control loop every phone camera runs.
//!
//! The paper's receiver inherits whatever exposure the phone picked; a
//! deployment can't assume manual control. This module implements the
//! classic mean-luminance AE servo: measure the captured frame's mean code
//! value, nudge the gain toward an 18%-gray target, clamp to the gain
//! range, damp to avoid oscillation. The robustness tests use it to show
//! the InFrame channel keeps working while AE settles — and that AE
//! reacts to scene changes (a bright scene cut) without breaking decoding.

use inframe_frame::Plane;
use serde::{Deserialize, Serialize};

/// Auto-exposure controller state and tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoExposure {
    /// Target mean code value (18% gray ≈ 118 in sRGB code space).
    pub target_code: f32,
    /// Proportional damping in `(0, 1]`: fraction of the full correction
    /// applied per frame (phones converge over ~5–15 frames).
    pub damping: f64,
    /// Minimum gain.
    pub min_gain: f64,
    /// Maximum gain.
    pub max_gain: f64,
    /// Current gain (multiplies integrated light before encoding).
    pub gain: f64,
}

impl AutoExposure {
    /// A phone-like controller starting at unity gain.
    pub fn phone_default() -> Self {
        Self {
            target_code: 118.0,
            damping: 0.35,
            min_gain: 0.25,
            max_gain: 8.0,
            gain: 1.0,
        }
    }

    /// Validates the tuning.
    ///
    /// # Panics
    /// Panics for out-of-range parameters.
    pub fn validate(&self) {
        assert!(
            self.target_code > 0.0 && self.target_code < 255.0,
            "target must be inside the code range"
        );
        assert!(
            self.damping > 0.0 && self.damping <= 1.0,
            "damping must be in (0, 1]"
        );
        assert!(
            self.min_gain > 0.0 && self.min_gain <= self.max_gain,
            "gain range must be positive and ordered"
        );
    }

    /// Observes a captured frame and updates the gain for the next one.
    /// Returns the new gain.
    ///
    /// The update works in linear light (gain acts there): the correction
    /// factor is the ratio of target to measured linear means, damped
    /// geometrically.
    pub fn observe(&mut self, captured: &Plane<f32>) -> f64 {
        self.validate();
        let measured_code = captured.mean() as f32;
        let measured_lin = inframe_frame::color::code_to_linear(measured_code.max(1.0)) as f64;
        let target_lin = inframe_frame::color::code_to_linear(self.target_code) as f64;
        let correction = (target_lin / measured_lin.max(1e-6)).clamp(0.1, 10.0);
        // Damped geometric step toward the correction.
        self.gain = (self.gain * correction.powf(self.damping)).clamp(self.min_gain, self.max_gain);
        self.gain
    }

    /// Whether the controller has effectively converged for a frame of the
    /// given mean code value (within ±10% of target in linear light).
    pub fn is_settled(&self, mean_code: f32) -> bool {
        let m = inframe_frame::color::code_to_linear(mean_code) as f64;
        let t = inframe_frame::color::code_to_linear(self.target_code) as f64;
        (m / t - 1.0).abs() < 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake scene: captured mean code responds to gain as
    /// `code(gain × scene_linear)`.
    fn capture_with_gain(scene_linear: f64, gain: f64) -> Plane<f32> {
        let code =
            inframe_frame::color::linear_to_code((scene_linear * gain).clamp(0.0, 1.0) as f32);
        Plane::filled(8, 8, code)
    }

    #[test]
    fn converges_on_a_dim_scene() {
        let mut ae = AutoExposure::phone_default();
        let scene = 0.04; // dim (needs ~4.5x gain, inside the range)
        let mut mean = 0.0f32;
        for _ in 0..30 {
            let frame = capture_with_gain(scene, ae.gain);
            mean = frame.mean() as f32;
            ae.observe(&frame);
        }
        assert!(ae.is_settled(mean), "mean {mean}, gain {}", ae.gain);
        assert!(ae.gain > 1.0, "dim scene needs gain > 1, got {}", ae.gain);
    }

    #[test]
    fn converges_on_a_bright_scene() {
        let mut ae = AutoExposure::phone_default();
        let scene = 0.7;
        let mut mean = 0.0f32;
        for _ in 0..30 {
            let frame = capture_with_gain(scene, ae.gain);
            mean = frame.mean() as f32;
            ae.observe(&frame);
        }
        assert!(ae.is_settled(mean), "mean {mean}, gain {}", ae.gain);
        assert!(
            ae.gain < 1.0,
            "bright scene needs gain < 1, got {}",
            ae.gain
        );
    }

    #[test]
    fn gain_respects_clamps() {
        let mut ae = AutoExposure::phone_default();
        // Nearly black scene: wants infinite gain, must stop at max.
        for _ in 0..60 {
            let frame = capture_with_gain(1e-5, ae.gain);
            ae.observe(&frame);
        }
        assert!(ae.gain <= ae.max_gain + 1e-9);
        assert!((ae.gain - ae.max_gain).abs() < 1e-6);
    }

    #[test]
    fn reacts_to_scene_cut() {
        let mut ae = AutoExposure::phone_default();
        for _ in 0..25 {
            let frame = capture_with_gain(0.05, ae.gain);
            ae.observe(&frame);
        }
        let dim_gain = ae.gain;
        for _ in 0..25 {
            let frame = capture_with_gain(0.6, ae.gain);
            ae.observe(&frame);
        }
        assert!(
            ae.gain < dim_gain * 0.5,
            "cut to bright must slash gain: {} -> {}",
            dim_gain,
            ae.gain
        );
    }

    #[test]
    fn damping_bounds_per_frame_change() {
        let mut ae = AutoExposure::phone_default();
        let before = ae.gain;
        let frame = capture_with_gain(0.01, ae.gain);
        let after = ae.observe(&frame);
        // One step cannot jump the full 10x correction.
        assert!(after / before < 3.0, "{before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn bad_damping_rejected() {
        let mut ae = AutoExposure::phone_default();
        ae.damping = 0.0;
        ae.observe(&Plane::filled(2, 2, 100.0));
    }
}
