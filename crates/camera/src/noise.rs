//! Sensor noise model.
//!
//! Photon shot noise is signal-dependent (variance proportional to signal);
//! read noise is additive Gaussian. Both act in linear light, before gamma
//! encoding — which is why dark regions of a capture look noisier after
//! encoding, a behaviour the decoder's threshold must tolerate.

use inframe_frame::Plane;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic per-camera noise source.
#[derive(Debug)]
pub struct NoiseSource {
    rng: StdRng,
    /// Read noise σ (linear light units).
    pub read_sigma: f64,
    /// Shot noise scale `k`: variance = `k · light`.
    pub shot_scale: f64,
}

impl NoiseSource {
    /// Creates a seeded noise source.
    pub fn new(seed: u64, read_sigma: f64, shot_scale: f64) -> Self {
        assert!(read_sigma >= 0.0 && shot_scale >= 0.0, "noise must be >= 0");
        Self {
            rng: StdRng::seed_from_u64(seed),
            read_sigma,
            shot_scale,
        }
    }

    /// One standard normal deviate (Box–Muller; one branch kept).
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-300);
        let u2: f64 = self.rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Applies shot + read noise to a linear-light plane in place, clamping
    /// the result to non-negative light.
    pub fn apply(&mut self, light: &mut Plane<f32>) {
        if self.read_sigma == 0.0 && self.shot_scale == 0.0 {
            return;
        }
        let read = self.read_sigma;
        let shot = self.shot_scale;
        for v in light.samples_mut() {
            let l = (*v as f64).max(0.0);
            let sigma = (read * read + shot * l).sqrt();
            let noisy = l + sigma * self.gaussian();
            *v = noisy.max(0.0) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_identity() {
        let mut src = NoiseSource::new(1, 0.0, 0.0);
        let mut p = Plane::filled(8, 8, 0.5);
        let orig = p.clone();
        src.apply(&mut p);
        assert_eq!(p, orig);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = NoiseSource::new(42, 0.01, 0.0);
        let mut b = NoiseSource::new(42, 0.01, 0.0);
        let mut pa = Plane::filled(16, 16, 0.5);
        let mut pb = Plane::filled(16, 16, 0.5);
        a.apply(&mut pa);
        b.apply(&mut pb);
        assert_eq!(pa, pb);
    }

    #[test]
    fn read_noise_statistics_match_sigma() {
        let mut src = NoiseSource::new(7, 0.02, 0.0);
        let mut p = Plane::filled(128, 128, 0.5);
        src.apply(&mut p);
        let mean = p.mean();
        let std = p.variance().sqrt();
        assert!((mean - 0.5).abs() < 0.002, "mean {mean}");
        assert!((std - 0.02).abs() < 0.002, "std {std}");
    }

    #[test]
    fn shot_noise_grows_with_signal() {
        let mut src = NoiseSource::new(9, 0.0, 0.01);
        let mut dark = Plane::filled(128, 128, 0.05);
        let mut bright = Plane::filled(128, 128, 0.8);
        src.apply(&mut dark);
        let mut src2 = NoiseSource::new(9, 0.0, 0.01);
        src2.apply(&mut bright);
        assert!(bright.variance() > dark.variance() * 4.0);
    }

    #[test]
    fn light_never_goes_negative() {
        let mut src = NoiseSource::new(3, 0.5, 0.0); // absurdly noisy
        let mut p = Plane::filled(64, 64, 0.01);
        src.apply(&mut p);
        assert!(p.min_sample() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "noise must be >= 0")]
    fn negative_sigma_rejected() {
        let _ = NoiseSource::new(0, -0.1, 0.0);
    }
}
