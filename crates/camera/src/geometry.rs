//! Display→sensor capture geometry.
//!
//! At the paper's 50 cm desk distance the screen fills most of the frame
//! and the view is nearly fronto-parallel; [`CaptureGeometry::Fronto`]
//! models that with an exact area-average resample. Off-axis captures use
//! a full homography. The receiver is assumed registered (it knows the
//! geometry), matching the paper's fixed lab setup.

use inframe_frame::geometry::{warp_inverse, Homography};
use inframe_frame::resample::downsample_area;
use inframe_frame::Plane;
use serde::{Deserialize, Serialize};

/// How the display plane projects onto the sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CaptureGeometry {
    /// Fronto-parallel, screen exactly filling the sensor: a pure
    /// anisotropic scale (display resolution → sensor resolution).
    Fronto,
    /// General projective view; the homography maps display pixel
    /// coordinates to sensor pixel coordinates.
    Projective(Homography),
}

impl CaptureGeometry {
    /// A slightly off-axis handheld pose: the screen corners land inside
    /// the sensor with a mild keystone. `wobble` in `[0, 0.1]` controls
    /// the keystone strength.
    ///
    /// # Panics
    /// Panics if the resulting quad degenerates (cannot happen for
    /// `wobble ≤ 0.1`).
    pub fn handheld(
        display_w: usize,
        display_h: usize,
        sensor_w: usize,
        sensor_h: usize,
        wobble: f64,
    ) -> Self {
        let (dw, dh) = (display_w as f64, display_h as f64);
        let (sw, sh) = (sensor_w as f64, sensor_h as f64);
        let in_x = sw * (0.04 + wobble);
        let in_y = sh * (0.04 + wobble * 0.5);
        let src = [(0.0, 0.0), (dw, 0.0), (dw, dh), (0.0, dh)];
        let dst = [
            (in_x, in_y * 0.8),
            (sw - in_x * 0.6, in_y),
            (sw - in_x, sh - in_y * 0.7),
            (in_x * 0.7, sh - in_y),
        ];
        let h = Homography::quad_to_quad(src, dst)
            .expect("handheld quad is non-degenerate by construction");
        CaptureGeometry::Projective(h)
    }

    /// Projects an integrated display-space light plane to sensor space.
    pub fn project(
        &self,
        display_plane: &Plane<f32>,
        sensor_w: usize,
        sensor_h: usize,
    ) -> Plane<f32> {
        match self {
            CaptureGeometry::Fronto => downsample_area(display_plane, sensor_w, sensor_h),
            CaptureGeometry::Projective(h) => {
                let inv = h
                    .inverse()
                    .expect("projective capture homography must be invertible");
                warp_inverse(display_plane, &inv, sensor_w, sensor_h, 0.0)
            }
        }
    }

    /// The display→sensor homography (exact for `Projective`, the implied
    /// scale for `Fronto`). Receivers invert this for registration.
    pub fn display_to_sensor(
        &self,
        display_w: usize,
        display_h: usize,
        sensor_w: usize,
        sensor_h: usize,
    ) -> Homography {
        match self {
            CaptureGeometry::Fronto => Homography::scale(
                sensor_w as f64 / display_w as f64,
                sensor_h as f64 / display_h as f64,
            ),
            CaptureGeometry::Projective(h) => *h,
        }
    }

    /// For fronto capture the display row band `[y0, y1)` lands in sensor
    /// rows `[y0·s, y1·s)`; used by the rolling-shutter band mapper.
    pub fn is_fronto(&self) -> bool {
        matches!(self, CaptureGeometry::Fronto)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fronto_projects_by_area_average() {
        let display = Plane::from_fn(8, 8, |x, _| (x * 10) as f32);
        let geo = CaptureGeometry::Fronto;
        let sensor = geo.project(&display, 4, 4);
        assert_eq!(sensor.shape(), (4, 4));
        // 2x downsample: first sensor pixel = mean of columns 0..2.
        assert!((sensor.get(0, 0) - 5.0).abs() < 1e-4);
    }

    #[test]
    fn fronto_homography_is_pure_scale() {
        let geo = CaptureGeometry::Fronto;
        let h = geo.display_to_sensor(1920, 1080, 1280, 720);
        let (x, y) = h.apply(1920.0, 1080.0).unwrap();
        assert!((x - 1280.0).abs() < 1e-9);
        assert!((y - 720.0).abs() < 1e-9);
    }

    #[test]
    fn handheld_maps_screen_inside_sensor() {
        let geo = CaptureGeometry::handheld(1920, 1080, 1280, 720, 0.05);
        let h = geo.display_to_sensor(1920, 1080, 1280, 720);
        for corner in [(0.0, 0.0), (1920.0, 0.0), (1920.0, 1080.0), (0.0, 1080.0)] {
            let (x, y) = h.apply(corner.0, corner.1).unwrap();
            assert!(x > 0.0 && x < 1280.0, "corner {corner:?} -> x={x}");
            assert!(y > 0.0 && y < 720.0, "corner {corner:?} -> y={y}");
        }
    }

    #[test]
    fn handheld_projection_keeps_center_bright() {
        let display = Plane::filled(64, 36, 1.0);
        let geo = CaptureGeometry::handheld(64, 36, 64, 36, 0.05);
        let sensor = geo.project(&display, 64, 36);
        // Screen center projected somewhere bright; border filled dark.
        assert!(sensor.get(32, 18) > 0.9);
        assert!(sensor.get(0, 0) < 0.5);
    }

    #[test]
    fn projective_roundtrip_identityish() {
        // A pure scale homography must agree closely with fronto downsample
        // on a smooth image.
        let display = Plane::from_fn(32, 32, |x, y| (x + y) as f32);
        let h = Homography::scale(0.5, 0.5);
        let a = CaptureGeometry::Projective(h).project(&display, 16, 16);
        let b = CaptureGeometry::Fronto.project(&display, 16, 16);
        let diff: f32 = a
            .samples()
            .iter()
            .zip(b.samples())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / a.len() as f32;
        assert!(diff < 1.0, "mean diff {diff}");
    }
}
