//! The capture pipeline: exposure integration, rolling shutter, optics,
//! noise and encoding.

use crate::config::{CameraConfig, Shutter};
use crate::geometry::CaptureGeometry;
use crate::noise::NoiseSource;
use inframe_display::FrameEmission;
use inframe_frame::color;
use inframe_frame::filter::gaussian_blur;
use inframe_frame::Plane;

/// Errors raised during capture.
#[derive(Debug, Clone, PartialEq)]
pub enum CaptureError {
    /// The provided emissions do not cover the needed exposure window.
    WindowNotCovered {
        /// Window required by the frame being captured (seconds).
        needed: (f64, f64),
        /// Window covered by the supplied emissions (seconds).
        available: (f64, f64),
    },
    /// No emissions were provided.
    NoEmissions,
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::WindowNotCovered { needed, available } => write!(
                f,
                "exposure window [{:.6}, {:.6}] not covered by emissions [{:.6}, {:.6}]",
                needed.0, needed.1, available.0, available.1
            ),
            CaptureError::NoEmissions => write!(f, "no emissions supplied"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// One captured frame: 8-bit-scale luma code values plus timing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedFrame {
    /// Captured luma, code values 0–255 (already quantized to integers,
    /// stored as f32 for downstream math).
    pub plane: Plane<f32>,
    /// Display-time at which this frame's first row began exposing.
    pub t_start: f64,
    /// Zero-based capture index.
    pub index: u64,
}

/// A stateful camera: owns its clock, geometry and noise generator.
#[derive(Debug)]
pub struct Camera {
    config: CameraConfig,
    geometry: CaptureGeometry,
    noise: NoiseSource,
    frame_index: u64,
}

impl Camera {
    /// Creates a camera with the given configuration, geometry and noise
    /// seed.
    pub fn new(config: CameraConfig, geometry: CaptureGeometry, seed: u64) -> Self {
        config.validate();
        let noise = NoiseSource::new(seed, config.read_noise_sigma, config.shot_noise_scale);
        Self {
            config,
            geometry,
            noise,
            frame_index: 0,
        }
    }

    /// The camera configuration.
    pub fn config(&self) -> &CameraConfig {
        &self.config
    }

    /// The capture geometry.
    pub fn geometry(&self) -> &CaptureGeometry {
        &self.geometry
    }

    /// Index of the next frame to be captured.
    pub fn next_index(&self) -> u64 {
        self.frame_index
    }

    /// Display-time window the next capture needs emissions for.
    pub fn required_window(&self) -> (f64, f64) {
        self.config.frame_window(self.frame_index)
    }

    /// Advances the camera clock without producing a frame (dropped frame).
    pub fn skip_frame(&mut self) {
        self.frame_index += 1;
    }

    /// Captures the next frame from the supplied display emissions, which
    /// must cover [`Camera::required_window`].
    ///
    /// # Errors
    /// Returns [`CaptureError::WindowNotCovered`] if coverage is
    /// insufficient, [`CaptureError::NoEmissions`] for an empty slice.
    pub fn capture(&mut self, emissions: &[FrameEmission]) -> Result<CapturedFrame, CaptureError> {
        if emissions.is_empty() {
            return Err(CaptureError::NoEmissions);
        }
        let needed = self.required_window();
        let avail = (
            emissions[0].t_start,
            emissions
                .last()
                .map(|e| e.t_start + e.duration)
                .expect("nonempty"),
        );
        if needed.0 < avail.0 - 1e-9 || needed.1 > avail.1 + 1e-9 {
            return Err(CaptureError::WindowNotCovered {
                needed,
                available: avail,
            });
        }

        let display_h = emissions[0].target.height();
        let sensor_w = self.config.width;
        let sensor_h = self.config.height;
        let t_frame = self.config.frame_start(self.frame_index);

        // 1. Exposure integration per rolling-shutter band, in display
        //    space, then geometric projection to sensor space.
        let mut linear = Plane::<f32>::filled(sensor_w, sensor_h, 0.0);
        let bands = match self.config.shutter {
            Shutter::Global => 1,
            Shutter::Rolling { .. } => self.config.shutter_bands.min(sensor_h),
        };
        for b in 0..bands {
            let sr0 = b * sensor_h / bands;
            let sr1 = ((b + 1) * sensor_h / bands).max(sr0 + 1);
            let (t0, t1) = self.band_exposure(t_frame, b, bands);
            // Display rows feeding this sensor band (fronto mapping; the
            // projective path integrates the full display height because
            // rows mix under perspective).
            let (dy0, dy1) = if self.geometry.is_fronto() {
                (
                    sr0 * display_h / sensor_h,
                    (sr1 * display_h / sensor_h).max(sr0 * display_h / sensor_h + 1),
                )
            } else {
                (0, display_h)
            };
            let band_light = integrate_display_rows(emissions, dy0, dy1, t0, t1);
            let band_sensor = self.geometry.project(&band_light, sensor_w, sr1 - sr0);
            linear
                .blit(&band_sensor, 0, sr0)
                .expect("band geometry is in range by construction");
        }

        // 2. Optics blur in linear light.
        let blurred = if self.config.psf_sigma_px > 0.0 {
            gaussian_blur(&linear, self.config.psf_sigma_px as f32)
        } else {
            linear
        };

        // 3. Sensor noise in linear light.
        let mut noisy = blurred;
        self.noise.apply(&mut noisy);

        // 4. Gain, gamma encoding, 8-bit quantization.
        let gain = self.config.gain as f32;
        let mut code = noisy.map(|l| color::linear_to_code((l * gain).clamp(0.0, 1.0)));
        code.map_in_place(|c| c.round().clamp(0.0, 255.0));

        // 5. In-camera processing (denoise/sharpen), then re-quantize.
        if !self.config.isp.is_passthrough() {
            code = self.config.isp.process(&code);
            code.map_in_place(|c| c.round().clamp(0.0, 255.0));
        }

        let frame = CapturedFrame {
            plane: code,
            t_start: t_frame,
            index: self.frame_index,
        };
        self.frame_index += 1;
        Ok(frame)
    }

    /// Exposure interval of band `b` of `bands` for the frame starting at
    /// `t_frame`.
    fn band_exposure(&self, t_frame: f64, b: usize, bands: usize) -> (f64, f64) {
        let offset = match self.config.shutter {
            Shutter::Global => 0.0,
            Shutter::Rolling { readout_s } => {
                // Band centre's position in the readout sweep.
                readout_s * (b as f64 + 0.5) / bands as f64
            }
        };
        let t0 = t_frame + offset;
        (t0, t0 + self.config.exposure_s)
    }
}

/// Mean emitted light of display rows `[y0, y1)` over the window
/// `[t0, t1]`, combining the piecewise-exponential emissions in closed
/// form.
///
/// # Panics
/// Panics if the emissions do not cover the window (checked by callers) or
/// the row range is empty/out of bounds.
pub fn integrate_display_rows(
    emissions: &[FrameEmission],
    y0: usize,
    y1: usize,
    t0: f64,
    t1: f64,
) -> Plane<f32> {
    assert!(y1 > y0, "empty row range");
    let w = emissions[0].target.width();
    let h = emissions[0].target.height();
    assert!(y1 <= h, "row range out of bounds");
    assert!(t1 > t0, "empty time window");
    let mut acc = Plane::<f32>::filled(w, y1 - y0, 0.0);
    let total = t1 - t0;
    let mut covered = 0.0f64;
    for e in emissions {
        let s = t0.max(e.t_start);
        let t = t1.min(e.t_start + e.duration);
        if t - s <= 1e-12 {
            continue;
        }
        let weight = ((t - s) / total) as f32;
        covered += t - s;
        let (ls, lt) = (s - e.t_start, t - e.t_start);
        for y in y0..y1 {
            for x in 0..w {
                let v = e.average_pixel(x, y, ls, lt);
                let cur = acc.get(x, y - y0);
                acc.put(x, y - y0, cur + weight * v);
            }
        }
    }
    assert!(
        (covered - total).abs() < total * 1e-6 + 1e-9,
        "emissions cover only {covered:.6}s of a {total:.6}s window"
    );
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use inframe_display::{DisplayConfig, DisplayStream};

    /// Presents `frames` on an ideal 120 Hz panel and returns emissions.
    fn emit(frames: &[Plane<f32>]) -> Vec<FrameEmission> {
        let mut s = DisplayStream::new(DisplayConfig::ideal_120hz());
        s.present_all(frames)
    }

    fn ideal_camera(w: usize, h: usize) -> Camera {
        Camera::new(
            CameraConfig::ideal(w, h, 30.0, 1.0 / 120.0),
            CaptureGeometry::Fronto,
            1,
        )
    }

    #[test]
    fn capture_of_static_gray_is_uniform() {
        let frames = vec![Plane::filled(64, 36, 127.0); 8];
        let em = emit(&frames);
        let mut cam = ideal_camera(32, 18);
        let cap = cam.capture(&em).unwrap();
        assert_eq!(cap.plane.shape(), (32, 18));
        assert_eq!(cap.index, 0);
        // Ideal camera with sRGB encode inverts the display's sRGB decode:
        // code values round-trip to ~127.
        let mean = cap.plane.mean();
        assert!((mean - 127.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn exposure_across_complementary_pair_cancels_pattern() {
        // V+D then V−D with a checkerboard D: a camera exposing across the
        // full pair in linear light sees ~V only. (Gamma makes the
        // cancellation approximate — about a code value at δ=20 — which is
        // itself a real InFrame effect.)
        let v = 127.0f32;
        let d = 20.0f32;
        let plus = Plane::from_fn(64, 36, |x, y| if (x + y) % 2 == 1 { v + d } else { v });
        let minus = Plane::from_fn(64, 36, |x, y| if (x + y) % 2 == 1 { v - d } else { v });
        let seq: Vec<Plane<f32>> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    plus.clone()
                } else {
                    minus.clone()
                }
            })
            .collect();
        let em = emit(&seq);
        // Exposure = exactly one pair (1/60 s).
        let mut cam = Camera::new(
            CameraConfig::ideal(64, 36, 30.0, 1.0 / 60.0),
            CaptureGeometry::Fronto,
            1,
        );
        let cap = cam.capture(&em).unwrap();
        // Pattern variance across pixels stays tiny.
        let std = cap.plane.variance().sqrt();
        assert!(std < 1.5, "residual pattern std {std}");
    }

    #[test]
    fn short_exposure_resolves_single_frame() {
        let v = 127.0f32;
        let d = 20.0f32;
        let plus = Plane::from_fn(16, 16, |x, y| if (x + y) % 2 == 1 { v + d } else { v });
        let minus = Plane::from_fn(16, 16, |x, y| if (x + y) % 2 == 1 { v - d } else { v });
        let seq: Vec<Plane<f32>> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    plus.clone()
                } else {
                    minus.clone()
                }
            })
            .collect();
        let em = emit(&seq);
        let mut cam = ideal_camera(16, 16);
        let cap = cam.capture(&em).unwrap();
        // Exposure = one display frame: full chessboard contrast visible.
        let std = cap.plane.variance().sqrt();
        assert!(std > 5.0, "chessboard must be visible, std {std}");
    }

    #[test]
    fn window_not_covered_is_reported() {
        let frames = vec![Plane::filled(8, 8, 100.0); 2];
        let em = emit(&frames); // covers 1/60 s
        let mut cam = Camera::new(
            CameraConfig::ideal(8, 8, 30.0, 1.0 / 30.0),
            CaptureGeometry::Fronto,
            1,
        );
        match cam.capture(&em) {
            Err(CaptureError::WindowNotCovered { .. }) => {}
            other => panic!("expected WindowNotCovered, got {other:?}"),
        }
    }

    #[test]
    fn empty_emissions_rejected() {
        let mut cam = ideal_camera(8, 8);
        assert_eq!(cam.capture(&[]), Err(CaptureError::NoEmissions));
    }

    #[test]
    fn clock_advances_and_skip_works() {
        let frames = vec![Plane::filled(8, 8, 100.0); 8];
        let em = emit(&frames);
        let mut cam = ideal_camera(8, 8);
        let c0 = cam.capture(&em).unwrap();
        cam.skip_frame();
        assert_eq!(cam.next_index(), 2);
        assert_eq!(c0.t_start, 0.0);
        let (t0, _) = cam.required_window();
        assert!((t0 - 2.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn rolling_shutter_bands_see_different_times() {
        // Display switches from black to white mid-way; a rolling-shutter
        // camera capturing across the switch shows a gradient down the
        // frame (top rows exposed earlier = darker).
        let mut frames = vec![Plane::filled(32, 32, 0.0); 3];
        frames.extend(vec![Plane::filled(32, 32, 255.0); 3]);
        let em = emit(&frames);
        let cfg = CameraConfig {
            width: 32,
            height: 32,
            fps: 30.0,
            exposure_s: 1.0 / 120.0,
            shutter: Shutter::Rolling { readout_s: 0.020 },
            phase_s: 0.0,
            clock_skew: 0.0,
            read_noise_sigma: 0.0,
            shot_noise_scale: 0.0,
            psf_sigma_px: 0.0,
            gain: 1.0,
            shutter_bands: 8,
            isp: crate::isp::IspConfig::off(),
        };
        let mut cam = Camera::new(cfg, CaptureGeometry::Fronto, 1);
        let cap = cam.capture(&em).unwrap();
        let top = cap.plane.get(16, 1);
        let bottom = cap.plane.get(16, 30);
        assert!(
            bottom > top + 50.0,
            "rolling shutter gradient: top {top} bottom {bottom}"
        );
    }

    #[test]
    fn noise_changes_output_but_is_seeded() {
        let frames = vec![Plane::filled(16, 16, 127.0); 8];
        let em = emit(&frames);
        let mut cfg = CameraConfig::ideal(16, 16, 30.0, 1.0 / 120.0);
        cfg.read_noise_sigma = 0.01;
        let mut cam_a = Camera::new(cfg, CaptureGeometry::Fronto, 5);
        let mut cam_b = Camera::new(cfg, CaptureGeometry::Fronto, 5);
        let mut cam_c = Camera::new(cfg, CaptureGeometry::Fronto, 6);
        let a = cam_a.capture(&em).unwrap();
        let b = cam_b.capture(&em).unwrap();
        let c = cam_c.capture(&em).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.plane.variance() > 0.0);
    }

    #[test]
    fn integrate_rows_respects_weights() {
        // Two ideal emissions: light 0.2 then 0.8. Integrating across both
        // halves equally gives 0.5.
        let mut s = DisplayStream::new(DisplayConfig::ideal_120hz());
        // code values chosen so linear light is easy: use direct targets.
        let e1 = s.present(&Plane::filled(4, 4, 119.0));
        let e2 = s.present(&Plane::filled(4, 4, 235.0));
        let l1 = e1.target.get(0, 0) as f64;
        let l2 = e2.target.get(0, 0) as f64;
        let span = e1.duration + e2.duration;
        let avg = integrate_display_rows(&[e1, e2], 0, 4, 0.0, span);
        assert!((avg.get(0, 0) as f64 - (l1 + l2) / 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "cover only")]
    fn uncovered_integration_panics() {
        let mut s = DisplayStream::new(DisplayConfig::ideal_120hz());
        let e = s.present(&Plane::filled(4, 4, 100.0));
        let _ = integrate_display_rows(&[e], 0, 4, 0.0, 1.0);
    }
}
