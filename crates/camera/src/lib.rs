//! # inframe-camera
//!
//! Camera simulation for the InFrame reproduction.
//!
//! The paper captures the display with a Lumia 1020 at 1280×720, 30 FPS,
//! from 50 cm (§4), and the receiver design explicitly targets camera
//! impairments: "frame rate mismatch, rolling shutter effect, poor capture
//! quality" (§1). This crate models each of them:
//!
//! * **Exposure integration** — each photosite averages the display's
//!   emitted light over the exposure window, computed in closed form from
//!   [`inframe_display::FrameEmission`]s (no time stepping).
//! * **Rolling shutter** — sensor rows start their exposure sequentially
//!   across the readout time, so different image bands sample different
//!   display intervals. Global shutter is available for ablations.
//! * **Rate mismatch and phase drift** — the camera clock runs at
//!   `30 × (1 + skew)` with an arbitrary phase offset against the display.
//! * **Optics** — Gaussian point-spread blur and the display→sensor
//!   geometry (fronto-parallel scale by default, arbitrary homography for
//!   off-axis capture).
//! * **Sensor noise** — signal-dependent shot noise plus Gaussian read
//!   noise in linear light, then gamma encoding and 8-bit quantization.
//!
//! The output of [`Camera::capture`] is what application code would get
//! from a phone camera API: an 8-bit-scale luma frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoexposure;
pub mod capture;
pub mod config;
pub mod geometry;
pub mod isp;
pub mod noise;
pub mod perturb;
pub mod tap;

pub use autoexposure::AutoExposure;
pub use capture::{Camera, CapturedFrame};
pub use config::{CameraConfig, Shutter};
pub use geometry::CaptureGeometry;
pub use isp::IspConfig;
pub use tap::{CaptureTap, NullTap, TappedCapture};
