//! Capture-boundary taps: hooks between the camera and the receiver.
//!
//! A tap sits where a real deployment's capture driver sits — after the
//! sensor produced a frame, before the receiver consumes it. Fault
//! injectors (frame drops, duplicates, clock perturbations, photometric
//! drift) implement [`CaptureTap`] and rewrite the stream; the identity
//! [`NullTap`] is the clean channel.

use inframe_frame::Plane;

/// One capture as the receiver will see it: the encoded luma plane plus
/// the timestamp the *receiver's clock* assigns to its exposure midpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TappedCapture {
    /// Captured luma, code values 0–255.
    pub plane: Plane<f32>,
    /// Exposure midpoint in receiver seconds.
    pub t_mid: f64,
}

/// A transformation of the captured-frame stream.
///
/// Each sensor frame maps to zero (dropped), one, or several (duplicated)
/// frames delivered downstream; implementations may also perturb the
/// plane or the timestamp. Taps must be deterministic for a fixed seed —
/// the fault-matrix suite relies on byte-identical replays.
pub trait CaptureTap {
    /// Rewrites one capture into the frames actually delivered.
    fn tap(&mut self, cap: TappedCapture) -> Vec<TappedCapture>;
}

/// The identity tap: every capture passes through untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl CaptureTap for NullTap {
    fn tap(&mut self, cap: TappedCapture) -> Vec<TappedCapture> {
        vec![cap]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tap_is_identity() {
        let cap = TappedCapture {
            plane: Plane::filled(4, 4, 9.0f32),
            t_mid: 0.25,
        };
        let out = NullTap.tap(cap.clone());
        assert_eq!(out, vec![cap]);
    }
}
