//! Capture-boundary taps: hooks between the camera and the receiver.
//!
//! A tap sits where a real deployment's capture driver sits — after the
//! sensor produced a frame, before the receiver consumes it. Fault
//! injectors (frame drops, duplicates, clock perturbations, photometric
//! drift) implement [`CaptureTap`] and rewrite the stream; the identity
//! [`NullTap`] is the clean channel.

use inframe_frame::Plane;
use inframe_obs::{names, Counter, Telemetry};

/// One capture as the receiver will see it: the encoded luma plane plus
/// the timestamp the *receiver's clock* assigns to its exposure midpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TappedCapture {
    /// Captured luma, code values 0–255.
    pub plane: Plane<f32>,
    /// Exposure midpoint in receiver seconds.
    pub t_mid: f64,
}

/// A transformation of the captured-frame stream.
///
/// Each sensor frame maps to zero (dropped), one, or several (duplicated)
/// frames delivered downstream; implementations may also perturb the
/// plane or the timestamp. Taps must be deterministic for a fixed seed —
/// the fault-matrix suite relies on byte-identical replays.
pub trait CaptureTap {
    /// Rewrites one capture into the frames actually delivered.
    fn tap(&mut self, cap: TappedCapture) -> Vec<TappedCapture>;
}

/// The identity tap: every capture passes through untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl CaptureTap for NullTap {
    fn tap(&mut self, cap: TappedCapture) -> Vec<TappedCapture> {
        vec![cap]
    }
}

/// A telemetry shim around any [`CaptureTap`]: counts captures entering
/// from the sensor, captures delivered downstream, and captures the
/// inner tap swallowed entirely — the boundary numbers a post-mortem
/// needs to tell "the channel went dark" from "the receiver went deaf".
#[derive(Debug, Clone)]
pub struct InstrumentedTap<T> {
    inner: T,
    captures_in: Counter,
    captures_out: Counter,
    swallowed: Counter,
}

impl<T: CaptureTap> InstrumentedTap<T> {
    /// Wraps `inner`, reporting to `telemetry`.
    pub fn new(inner: T, telemetry: &Telemetry) -> Self {
        Self {
            inner,
            captures_in: telemetry.counter(names::tap::CAPTURES_IN),
            captures_out: telemetry.counter(names::tap::CAPTURES_OUT),
            swallowed: telemetry.counter(names::tap::SWALLOWED),
        }
    }

    /// The wrapped tap.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped tap, mutably.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwraps, returning the inner tap.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: CaptureTap> CaptureTap for InstrumentedTap<T> {
    fn tap(&mut self, cap: TappedCapture) -> Vec<TappedCapture> {
        self.captures_in.incr();
        let out = self.inner.tap(cap);
        if out.is_empty() {
            self.swallowed.incr();
        }
        self.captures_out.add(out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tap_is_identity() {
        let cap = TappedCapture {
            plane: Plane::filled(4, 4, 9.0f32),
            t_mid: 0.25,
        };
        let out = NullTap.tap(cap.clone());
        assert_eq!(out, vec![cap]);
    }

    /// Swallows every other capture, duplicates the rest.
    struct Flicker(u64);

    impl CaptureTap for Flicker {
        fn tap(&mut self, cap: TappedCapture) -> Vec<TappedCapture> {
            self.0 += 1;
            if self.0.is_multiple_of(2) {
                Vec::new()
            } else {
                vec![cap.clone(), cap]
            }
        }
    }

    #[test]
    fn instrumented_tap_counts_boundary_traffic() {
        let tele = Telemetry::new();
        let mut tap = InstrumentedTap::new(Flicker(0), &tele);
        let cap = TappedCapture {
            plane: Plane::filled(2, 2, 1.0f32),
            t_mid: 0.0,
        };
        for _ in 0..4 {
            let _ = tap.tap(cap.clone());
        }
        let s = tele.summary();
        assert_eq!(s.counter(names::tap::CAPTURES_IN), 4);
        assert_eq!(s.counter(names::tap::CAPTURES_OUT), 4); // 2 × duplicated
        assert_eq!(s.counter(names::tap::SWALLOWED), 2);
        assert_eq!(tap.inner().0, 4);
    }
}
