//! Throughput accounting — the arithmetic behind Figure 7.
//!
//! A data frame carries `payload_bits` and refreshes every τ displayed
//! frames, so the raw rate is `payload_bits · refresh/τ` bit/s. Only
//! available GOBs deliver bits, and erroneous GOBs deliver wrong ones, so
//! goodput is `raw · availableRatio · (1 − errorRate)` — which reproduces
//! every bar of Figure 7 from its printed annotations (e.g. gray, δ=20,
//! τ=10: `1125 · 12 · 0.952 · 0.985 ≈ 12.6 kbps`).

use inframe_code::parity::GobStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Aggregated link performance over a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Payload bits per data frame.
    pub payload_bits: usize,
    /// Data frames per second (`refresh / τ`).
    pub data_frame_rate: f64,
    /// Available-GOB ratio (Figure 7 top annotation).
    pub available_ratio: f64,
    /// GOB error rate among available GOBs (Figure 7 bracketed annotation).
    pub error_rate: f64,
    /// Fraction of decoded payload bits that match the sent ground truth
    /// (1.0 when no ground truth was supplied).
    pub bit_accuracy: f64,
    /// Data cycles observed.
    pub cycles: u64,
}

impl ThroughputReport {
    /// Builds a report from the telemetry spine's channel roll-up — the
    /// unified accounting path: every layer reports into the well-known
    /// `inframe_obs::names::chan` instruments and the report is a pure
    /// function of that summary, so `sim`, examples, and benches can no
    /// longer drift apart by recomputing from raw `GobStats`.
    pub fn from_channel_summary(ch: &inframe_obs::ChannelSummary) -> Self {
        Self {
            payload_bits: ch.payload_bits as usize,
            data_frame_rate: ch.data_frame_rate,
            available_ratio: ch.available_ratio(),
            error_rate: ch.error_rate(),
            bit_accuracy: ch.bit_accuracy(),
            cycles: ch.cycles,
        }
    }

    /// Builds a report from GOB statistics.
    pub fn from_stats(
        payload_bits: usize,
        data_frame_rate: f64,
        stats: &GobStats,
        bit_accuracy: f64,
        cycles: u64,
    ) -> Self {
        Self {
            payload_bits,
            data_frame_rate,
            available_ratio: stats.available_ratio(),
            error_rate: stats.error_rate(),
            bit_accuracy,
            cycles,
        }
    }

    /// Raw channel rate in kbit/s, before losses.
    pub fn raw_kbps(&self) -> f64 {
        self.payload_bits as f64 * self.data_frame_rate / 1000.0
    }

    /// Goodput in kbit/s: raw rate × availability × (1 − error rate), the
    /// paper's Figure 7 metric.
    pub fn goodput_kbps(&self) -> f64 {
        self.raw_kbps() * self.available_ratio * (1.0 - self.error_rate)
    }

    /// Formats one Figure 7 annotation line:
    /// `"<goodput> kbps  (avail <a>%  err <e>%)"`.
    pub fn annotation(&self) -> String {
        format!(
            "{:5.1} kbps  (avail {:5.1}%  err {:5.2}%)",
            self.goodput_kbps(),
            self.available_ratio * 100.0,
            self.error_rate * 100.0
        )
    }
}

/// Live pipeline performance: processed frames per wall-clock second and
/// worker utilization, fed by [`crate::sender::Sender`] and
/// [`crate::demux::Demultiplexer`] as they run.
///
/// Utilization is accumulated worker busy time divided by `wall × workers`
/// — 1.0 means every worker of the [`crate::parallel::ParallelEngine`] was
/// saturated for the whole measured span, and the gap to 1.0 is the
/// band-merge / checkout overhead the engine adds on top of pixel math.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputMeter {
    workers: usize,
    frames: u64,
    wall: Duration,
    busy: Duration,
}

impl ThroughputMeter {
    /// Creates an empty meter for an engine with `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            frames: 0,
            wall: Duration::ZERO,
            busy: Duration::ZERO,
        }
    }

    /// Records one processed frame: its wall-clock duration and the worker
    /// busy time it accumulated.
    pub fn record_frame(&mut self, wall: Duration, busy: Duration) {
        self.frames += 1;
        self.wall += wall;
        self.busy += busy;
    }

    /// Frames recorded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Worker count of the engine being measured.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total measured wall-clock time.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Total accumulated worker busy time.
    pub fn busy(&self) -> Duration {
        self.busy
    }

    /// Processed frames per second of measured wall time (0.0 before the
    /// first frame).
    pub fn fps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.frames as f64 / self.wall.as_secs_f64()
    }

    /// Mean worker utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        (self.busy.as_secs_f64() / (self.wall.as_secs_f64() * self.workers as f64)).clamp(0.0, 1.0)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:8.1} frames/s over {} frames ({} worker(s), {:.0}% utilization)",
            self.fps(),
            self.frames,
            self.workers,
            self.utilization() * 100.0
        )
    }

    /// Clears the counters (the worker count is kept).
    pub fn reset(&mut self) {
        *self = Self::new(self.workers);
    }
}

/// Compares decoded payload bits to ground truth: returns
/// `(correct, compared)` counting only bits that were actually recovered.
pub fn bit_accuracy(decoded: &[Option<bool>], truth: &[bool]) -> (usize, usize) {
    let mut correct = 0;
    let mut compared = 0;
    for (d, &t) in decoded.iter().zip(truth) {
        if let Some(b) = d {
            compared += 1;
            if *b == t {
                correct += 1;
            }
        }
    }
    (correct, compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inframe_code::parity::GobStatus;

    fn stats(ok: u64, err: u64, unavail: u64) -> GobStats {
        let mut s = GobStats::default();
        for _ in 0..ok {
            s.record(GobStatus::Ok);
        }
        for _ in 0..err {
            s.record(GobStatus::Erroneous);
        }
        for _ in 0..unavail {
            s.record(GobStatus::Unavailable);
        }
        s
    }

    #[test]
    fn reproduces_figure7_gray_tau10_bar() {
        // Paper: δ=20, τ=10, gray → 95.2% available, 1.5% err → 12.6 kbps.
        let s = stats(952, 14, 48); // 1000 GOBs: 95.2% avail, ~1.47% err
        let r = ThroughputReport::from_stats(1125, 12.0, &s, 1.0, 100);
        assert!((r.raw_kbps() - 13.5).abs() < 1e-9);
        let g = r.goodput_kbps();
        assert!((g - 12.66).abs() < 0.08, "goodput {g}");
    }

    #[test]
    fn reproduces_figure7_video_bar() {
        // Paper: video δ=30, τ=12 → 68.5% available, 9.54% err → 7.0 kbps.
        let s = stats(620, 65, 315); // 685 available (620 ok + 65 err), 31.5% unavailable
        let r = ThroughputReport::from_stats(1125, 10.0, &s, 1.0, 100);
        let g = r.goodput_kbps();
        assert!((g - 6.97).abs() < 0.1, "goodput {g}");
    }

    #[test]
    fn channel_summary_report_matches_from_stats() {
        let s = stats(952, 14, 48);
        let direct = ThroughputReport::from_stats(1125, 12.0, &s, 0.99, 100);
        let ch = inframe_obs::ChannelSummary {
            cycles: 100,
            gobs_ok: 952,
            gobs_erroneous: 14,
            gobs_unavailable: 48,
            bits_correct: 990,
            bits_compared: 1000,
            payload_bits: 1125,
            data_frame_rate: 12.0,
        };
        let unified = ThroughputReport::from_channel_summary(&ch);
        assert_eq!(unified.payload_bits, direct.payload_bits);
        assert_eq!(unified.data_frame_rate, direct.data_frame_rate);
        assert!((unified.available_ratio - direct.available_ratio).abs() < 1e-12);
        assert!((unified.error_rate - direct.error_rate).abs() < 1e-12);
        assert!((unified.bit_accuracy - direct.bit_accuracy).abs() < 1e-12);
        assert_eq!(unified.cycles, direct.cycles);
        assert!((unified.goodput_kbps() - direct.goodput_kbps()).abs() < 1e-9);
    }

    #[test]
    fn goodput_zero_when_nothing_available() {
        let s = stats(0, 0, 100);
        let r = ThroughputReport::from_stats(1125, 10.0, &s, 0.0, 10);
        assert_eq!(r.goodput_kbps(), 0.0);
    }

    #[test]
    fn annotation_contains_key_numbers() {
        let s = stats(95, 1, 5);
        let r = ThroughputReport::from_stats(1125, 12.0, &s, 1.0, 10);
        let a = r.annotation();
        assert!(a.contains("kbps"));
        assert!(a.contains("avail"));
        assert!(a.contains("err"));
    }

    #[test]
    fn meter_computes_fps_and_utilization() {
        let mut m = ThroughputMeter::new(4);
        assert_eq!(m.fps(), 0.0);
        assert_eq!(m.utilization(), 0.0);
        // 10 frames, 10 ms wall each, 20 ms busy each (2 of 4 workers hot).
        for _ in 0..10 {
            m.record_frame(Duration::from_millis(10), Duration::from_millis(20));
        }
        assert_eq!(m.frames(), 10);
        assert!((m.fps() - 100.0).abs() < 1e-9, "fps {}", m.fps());
        assert!((m.utilization() - 0.5).abs() < 1e-9);
        assert!(m.summary().contains("frames/s"));
        m.reset();
        assert_eq!(m.frames(), 0);
        assert_eq!(m.workers(), 4);
    }

    #[test]
    fn meter_utilization_is_clamped() {
        let mut m = ThroughputMeter::new(1);
        // Busy exceeding wall (timer jitter) must not exceed 1.0.
        m.record_frame(Duration::from_millis(5), Duration::from_millis(9));
        assert_eq!(m.utilization(), 1.0);
    }

    #[test]
    fn bit_accuracy_counts_only_recovered() {
        let decoded = vec![Some(true), None, Some(false), Some(true)];
        let truth = vec![true, true, true, true];
        let (correct, compared) = bit_accuracy(&decoded, &truth);
        assert_eq!(compared, 3);
        assert_eq!(correct, 2);
    }
}
