//! # inframe-core
//!
//! The InFrame system (HotNets 2014): dual-mode, full-frame visible
//! communication. A data channel for cameras is multiplexed onto ordinary
//! video so that human viewers see the unmodified content while devices
//! decode embedded bits.
//!
//! ## How it works
//!
//! * Every 30 FPS video frame is shown four times on a 120 Hz display.
//! * A data frame is a grid of *Blocks* (one bit each); a `1` Block carries
//!   a chessboard of super-*Pixels* at amplitude δ, a `0` Block leaves the
//!   video untouched ([`pattern`], [`layout`]).
//! * Displayed frames alternate `V + D, V − D, …` — complementary pairs
//!   whose average is exactly `V`, so flicker fusion hides the data from
//!   the eye ([`multiplex`]).
//! * Data-frame transitions are amplitude-shaped over the cycle τ with a
//!   square-root raised-cosine envelope to suppress phantom-array flicker
//!   ([`inframe_dsp::envelope`]).
//! * 2×2 Blocks form a GOB with an XOR parity bit; Reed–Solomon coding is
//!   available for larger GOBs ([`dataframe`]).
//! * The receiver smooths each captured Block, differences it against the
//!   smoothed version, removes the frame-wide mean difference, and
//!   thresholds the residual to detect the chessboard ([`demux`]).
//!
//! The [`sender`] and [`demux`] modules expose the end-to-end API used by
//! examples and the `inframe-sim` experiment harness; [`naive`] implements
//! the paper's Figure 3 strawmen for comparison.
//!
//! Both hot paths — chessboard rendering and per-Block scoring — run on a
//! band-sliced worker pool ([`parallel`]) over pooled frame buffers
//! ([`inframe_frame::pool`]), with output guaranteed bit-identical at any
//! worker count; [`metrics::ThroughputMeter`] reports the achieved
//! frames/s and worker utilization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod dataframe;
pub mod demux;
pub mod layout;
pub mod metrics;
pub mod multiplex;
pub mod naive;
pub mod parallel;
pub mod pattern;
pub mod region;
pub mod rgbmux;
pub mod sender;
pub mod sync;

pub use batch::{BatchScorer, ScoreClass};
pub use config::{CodingMode, InFrameConfig, KernelBackend};
pub use dataframe::DataFrame;
pub use demux::{BlockScore, DecodedDataFrame, Demultiplexer};
pub use layout::DataLayout;
pub use metrics::{ThroughputMeter, ThroughputReport};
pub use parallel::ParallelEngine;
pub use region::RegionMap;
pub use sender::Sender;
