//! Batched demultiplexing: score N perturbed receivers of one displayed
//! cycle against **shared** state.
//!
//! InFrame is one-to-many broadcast — one display, arbitrarily many
//! cameras — so the receiver-side work for a fleet factors cleanly:
//!
//! 1. Every receiver of the same capture instant sees the same emitted
//!    light; its capture differs by a cheap photometric transform
//!    ([`CaptureTransform`]: AE gain, AWB shift, occlusion) plus sensor
//!    noise. Receivers therefore collapse into a small set of **variant
//!    sweeps** (one direct row sweep per *distinct* transform, shared by
//!    every receiver carrying it) and **score classes** (a variant plus
//!    a noise power folded into the slice energies — pure accumulator
//!    arithmetic, no pixels touched).
//! 2. A pure AWB shift never even needs its own sweep: the high-pass is
//!    shift-invariant under the replicate-border box means (verified by
//!    [`CaptureTransform::shifts_without_clamp`] eligibility plus the
//!    fleet equivalence suite), so those classes alias the identity
//!    variant's accumulators outright.
//! 3. Per-receiver state is then one `f32` row per receiver, folded by
//!    [`BatchScorer::merge_assigned`] — a branch-free max loop the
//!    engine band-slices over *receivers* when N is large.
//!
//! The batch path reuses the exact kernels of the streaming
//! [`Demultiplexer`] (`direct_sweep`, `score_from_slices`,
//! `demodulate`), so its decode decisions are bit-identical to looping
//! `push_capture` over per-receiver materialized captures — enforced by
//! `tests/fleet_equivalence.rs` across backends, SIMD levels, and
//! worker counts. It is also the kernel-launch shape a GPU
//! `KernelBackend` port would batch: V sweeps + C folds + one N×B max
//! reduction per capture.

use crate::config::{InFrameConfig, KernelBackend};
use crate::demux::{
    demodulate_noised, direct_sweep, score_from_slices_noised, BlockScore, RegionCache,
};
use crate::parallel::ParallelEngine;
use inframe_frame::integral::{box_blur_fast_into, BlurScratch};
use inframe_frame::perturb::CaptureTransform;
use inframe_frame::qplane::{self, horizontal_window_sums_band, QPlane};
use inframe_frame::Plane;
use inframe_obs::{names, Telemetry};
use std::sync::Arc;

/// Score encoding of [`BlockScore::Unreadable`] in the flat `f32`
/// tables: negative infinity loses every `max` against a readable score
/// and never satisfies the `< T − margin` verdict test, so the flat
/// encoding is value-identical to [`BlockScore::merge_max`] folding.
pub const UNREADABLE: f32 = f32::NEG_INFINITY;

/// Receiver-class sentinel for [`BatchScorer::merge_assigned`]: the
/// receiver did not see this capture (dropped frame, not yet joined).
pub const SKIP: u32 = u32::MAX;

/// Encodes a [`BlockScore`] into the flat representation.
#[inline]
pub fn encode_score(s: BlockScore) -> f32 {
    s.value().unwrap_or(UNREADABLE)
}

/// Decodes the flat representation back into a [`BlockScore`].
#[inline]
pub fn decode_score(enc: f32) -> BlockScore {
    if enc == UNREADABLE {
        BlockScore::Unreadable
    } else {
        BlockScore::Readable(enc)
    }
}

/// One scoring class: a photometric variant plus a sensor-noise power.
/// Many receivers share a class; scoring cost scales with distinct
/// classes, not with receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScoreClass {
    /// Index into the `transforms` slice given to
    /// [`BatchScorer::score_classes`].
    pub transform: u32,
    /// Expected per-cell sensor-noise power in squared Q8.7 raw units,
    /// folded into each slice's energy term (see
    /// `score_from_slices_noised`); `0` reproduces the noiseless scores
    /// bit-exactly.
    pub noise_raw_sq: i64,
}

impl ScoreClass {
    /// The identity-transform, noiseless class (requires the identity
    /// transform at index `transform`).
    pub fn clean(transform: u32) -> Self {
        Self {
            transform,
            noise_raw_sq: 0,
        }
    }

    /// Converts a noise standard deviation in code values (e.g. a read
    /// noise of 2.5 code steps) into the squared-raw units this class
    /// carries.
    pub fn noise_raw_sq_from_sigma(sigma_code: f64) -> i64 {
        let raw = sigma_code * qplane::ONE as f64;
        (raw * raw).round() as i64
    }
}

/// Scores every distinct receiver class of one capture against shared
/// sweeps, then folds per-receiver bests with a flat max. See the
/// module docs for the three-level sharing scheme.
pub struct BatchScorer {
    config: InFrameConfig,
    cache: Arc<RegionCache>,
    engine: Arc<ParallelEngine>,
    // Quantized-backend working set (allocated on either backend — the
    // reference path also materializes variants through the quantized
    // bridge so both backends score the same capture bytes).
    qbase: QPlane,
    qvar: QPlane,
    rowsum: Vec<i32>,
    col: Vec<i32>,
    row_s: Vec<i32>,
    row_q: Vec<i64>,
    acc_s: Vec<i64>,
    acc_q: Vec<i64>,
    /// Identity-variant accumulators, kept across the transform loop so
    /// pure-AWB-shift variants can alias them without a sweep.
    base_acc_s: Vec<i64>,
    base_acc_q: Vec<i64>,
    // Reference-backend working set.
    fvar: Plane<f32>,
    smoothed: Plane<f32>,
    blur: BlurScratch,
    /// `classes × num_blocks` encoded scores of the last
    /// [`BatchScorer::score_classes`] call.
    class_scores: Vec<f32>,
    num_classes: usize,
    /// Histogram (ns): one `score_classes` fan-out (all sweeps + folds).
    score_ns: inframe_obs::Histogram,
    /// Counter: per-receiver scorings fanned out by `merge_assigned`.
    fanout: inframe_obs::Counter,
}

impl BatchScorer {
    /// Creates a batch scorer over a prebuilt region cache. The kernel
    /// backend follows `config.kernel`, exactly like the streaming
    /// [`Demultiplexer`].
    pub fn new(
        config: InFrameConfig,
        cache: Arc<RegionCache>,
        engine: Arc<ParallelEngine>,
    ) -> Self {
        config.validate();
        let (w, h) = cache.sensor_shape();
        let total_slices = cache.program.total_slices;
        Self {
            config,
            engine,
            qbase: QPlane::new(w, h),
            qvar: QPlane::new(w, h),
            rowsum: vec![0; w * h],
            col: Vec::new(),
            row_s: vec![0; w + 1],
            row_q: vec![0; w + 1],
            acc_s: vec![0; total_slices],
            acc_q: vec![0; total_slices],
            base_acc_s: vec![0; total_slices],
            base_acc_q: vec![0; total_slices],
            fvar: Plane::filled(w, h, 0.0),
            smoothed: Plane::filled(w, h, 0.0),
            blur: BlurScratch::default(),
            class_scores: Vec::new(),
            num_classes: 0,
            score_ns: inframe_obs::Histogram::noop(),
            fanout: inframe_obs::Counter::noop(),
            cache,
        }
    }

    /// Attaches telemetry: `core.batch.score_ns` times each
    /// `score_classes` fan-out and `core.batch.fanout` counts receiver
    /// scorings folded by `merge_assigned`. Builder-style, like the
    /// streaming [`Demultiplexer`].
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.score_ns = telemetry.histogram(names::batch::SCORE_NS);
        self.fanout = telemetry.counter(names::batch::FANOUT);
        self
    }

    /// Blocks per receiver (the width of every score row).
    pub fn num_blocks(&self) -> usize {
        self.cache.num_regions()
    }

    /// Classes scored by the last [`BatchScorer::score_classes`] call.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The scoring engine.
    pub fn engine(&self) -> &Arc<ParallelEngine> {
        &self.engine
    }

    /// The shared per-geometry region/template cache.
    pub fn region_cache(&self) -> &Arc<RegionCache> {
        &self.cache
    }

    /// Scores one shared capture under every class. `transforms` lists
    /// the distinct photometric variants; `classes` pair a transform
    /// with a noise power. Cost: one sweep per transform that needs one
    /// (identity and unclamped pure AWB shifts share a single sweep),
    /// plus one accumulator fold per class — independent of how many
    /// receivers later map onto each class. Allocation-free once the
    /// buffers are warm for this class count.
    ///
    /// # Panics
    /// Panics if the capture's shape differs from the cache's sensor
    /// shape or a class references a transform out of range.
    pub fn score_classes(
        &mut self,
        base: &Plane<f32>,
        transforms: &[CaptureTransform],
        classes: &[ScoreClass],
    ) {
        assert_eq!(
            base.shape(),
            self.cache.sensor_shape(),
            "batch capture must match the cache's sensor shape"
        );
        assert!(
            classes
                .iter()
                .all(|c| (c.transform as usize) < transforms.len()),
            "class references a transform out of range"
        );
        let nb = self.num_blocks();
        self.num_classes = classes.len();
        self.class_scores.clear();
        self.class_scores.resize(classes.len() * nb, UNREADABLE);
        // Owned clone of the handle so the span guard does not hold a
        // borrow of `self` across the &mut dispatch below.
        let timer = self.score_ns.clone();
        let _span = timer.span();
        match self.config.kernel {
            KernelBackend::Quantized => self.score_classes_quantized(base, transforms, classes),
            KernelBackend::Reference => self.score_classes_reference(base, transforms, classes),
        }
    }

    /// Quantized backend: quantize the shared capture once, run one
    /// direct row sweep per distinct transform, fold each class from
    /// the transform's accumulators. The sweep is the exact
    /// `direct_sweep` of the streaming single-worker path (bit-identical
    /// to the multi-worker prefix-table path by the PR-6 equivalence
    /// guarantee), so batched scores equal the sequential reference at
    /// every worker count.
    fn score_classes_quantized(
        &mut self,
        base: &Plane<f32>,
        transforms: &[CaptureTransform],
        classes: &[ScoreClass],
    ) {
        let Self {
            ref cache,
            ref engine,
            ref mut qbase,
            ref mut qvar,
            ref mut rowsum,
            ref mut col,
            ref mut row_s,
            ref mut row_q,
            ref mut acc_s,
            ref mut acc_q,
            ref mut base_acc_s,
            ref mut base_acc_q,
            ref mut class_scores,
            ..
        } = *self;
        let (w, h) = cache.sensor_shape();
        let r = cache.smooth_radius();
        let nb = cache.num_regions();
        let prog = &cache.program;
        qbase.quantize_from(base);
        // Raw range of the shared capture, for AWB shift-aliasing
        // eligibility (a shift that would clamp any pixel gets its own
        // sweep instead). Scanned lazily — only if a candidate exists.
        let mut raw_range: Option<(i16, i16)> = None;
        let mut have_base_sweep = false;
        for (ti, t) in transforms.iter().enumerate() {
            let ti = ti as u32;
            if !classes.iter().any(|c| c.transform == ti) {
                continue;
            }
            let aliases_identity = t.is_identity() || {
                t.gain_q12 == inframe_frame::perturb::GAIN_ONE_Q12
                    && t.occlusion.is_none_or(|o| o.is_empty())
                    && {
                        let (lo, hi) = *raw_range.get_or_insert_with(|| {
                            qbase
                                .samples()
                                .iter()
                                .fold((i16::MAX, i16::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)))
                        });
                        t.shifts_without_clamp(lo, hi)
                    }
            };
            let (var_s, var_q): (&[i64], &[i64]) = if aliases_identity {
                if !have_base_sweep {
                    engine.for_each_row_band(h, w, rowsum, |rows, rs| {
                        for (i, y) in rows.enumerate() {
                            let src = &qbase.samples()[y * w..(y + 1) * w];
                            horizontal_window_sums_band(src, w, r, &mut rs[i * w..(i + 1) * w]);
                        }
                    });
                    direct_sweep(
                        prog, qbase, rowsum, r, col, row_s, row_q, base_acc_s, base_acc_q,
                    );
                    have_base_sweep = true;
                }
                (base_acc_s, base_acc_q)
            } else {
                // Variant stage 1, band-parallel like the streaming
                // path: apply the transform row-wise from the shared
                // quantized capture and take horizontal window sums
                // while the row is in L1.
                let qb: &QPlane = qbase;
                engine.for_each_row_band2(
                    h,
                    w,
                    qvar.samples_mut(),
                    w,
                    rowsum,
                    |_, rows, cap, rs| {
                        for (i, y) in rows.enumerate() {
                            let dst = &mut cap[i * w..(i + 1) * w];
                            t.apply_row(y, &qb.samples()[y * w..(y + 1) * w], dst);
                            horizontal_window_sums_band(dst, w, r, &mut rs[i * w..(i + 1) * w]);
                        }
                    },
                );
                direct_sweep(prog, qvar, rowsum, r, col, row_s, row_q, acc_s, acc_q);
                (acc_s, acc_q)
            };
            // Fold every class of this transform: pure accumulator
            // arithmetic, parallel over regions.
            for (ci, cl) in classes.iter().enumerate() {
                if cl.transform != ti {
                    continue;
                }
                let out = &mut class_scores[ci * nb..(ci + 1) * nb];
                engine.map_into(&cache.regions, out, |ri, region| {
                    let base_slot = prog.slice_base[ri] as usize;
                    let n = region.qt.slice_weights.len();
                    encode_score(score_from_slices_noised(
                        &region.qt,
                        &var_s[base_slot..base_slot + n],
                        &var_q[base_slot..base_slot + n],
                        cl.noise_raw_sq,
                    ))
                });
            }
        }
    }

    /// Reference backend (the oracle): fully materialize each variant
    /// through the quantized bridge — exactly the capture a sequential
    /// receiver would push — blur it, and demodulate per class with the
    /// noise power folded into the slice energies.
    fn score_classes_reference(
        &mut self,
        base: &Plane<f32>,
        transforms: &[CaptureTransform],
        classes: &[ScoreClass],
    ) {
        let Self {
            ref cache,
            ref engine,
            ref mut qbase,
            ref mut qvar,
            ref mut fvar,
            ref mut smoothed,
            ref mut blur,
            ref mut class_scores,
            ..
        } = *self;
        let r = cache.smooth_radius();
        let nb = cache.num_regions();
        let scale = qplane::LSB as f64;
        qbase.quantize_from(base);
        for (ti, t) in transforms.iter().enumerate() {
            let ti = ti as u32;
            if !classes.iter().any(|c| c.transform == ti) {
                continue;
            }
            t.apply_raw(qbase, qvar);
            for (d, &raw) in fvar.samples_mut().iter_mut().zip(qvar.samples()) {
                *d = qplane::dequantize(raw);
            }
            box_blur_fast_into(fvar, r, blur, smoothed);
            for (ci, cl) in classes.iter().enumerate() {
                if cl.transform != ti {
                    continue;
                }
                let noise_cell_sq = cl.noise_raw_sq as f64 * scale * scale;
                let out = &mut class_scores[ci * nb..(ci + 1) * nb];
                let (fvar, smoothed) = (&*fvar, &*smoothed);
                engine.map_into(&cache.regions, out, |_, region| {
                    encode_score(demodulate_noised(fvar, smoothed, region, noise_cell_sq))
                });
            }
        }
    }

    /// Encoded scores of one class from the last
    /// [`BatchScorer::score_classes`] call (one entry per Block;
    /// [`UNREADABLE`] encodes an unreadable Block).
    pub fn class_scores(&self, class: usize) -> &[f32] {
        let nb = self.num_blocks();
        &self.class_scores[class * nb..(class + 1) * nb]
    }

    /// Folds the last scored classes into per-receiver best tables:
    /// receiver `i` (owning `best[i·B..(i+1)·B]`) takes the elementwise
    /// max with class `assign[i]`'s scores, or is left untouched when
    /// `assign[i] == `[`SKIP`]. Band-sliced over receivers; the inner
    /// fold is a branch-free autovectorizable max loop — this is the
    /// only per-receiver work in the whole batch path.
    ///
    /// # Panics
    /// Panics if `best.len() != assign.len() * num_blocks()` or an
    /// assignment references a class out of range.
    pub fn merge_assigned(&self, assign: &[u32], best: &mut [f32]) {
        let nb = self.num_blocks();
        assert_eq!(
            best.len(),
            assign.len() * nb,
            "best table must be receivers × blocks"
        );
        assert!(
            assign
                .iter()
                .all(|&c| c == SKIP || (c as usize) < self.num_classes),
            "assignment references a class out of range"
        );
        self.fanout
            .add(assign.iter().filter(|&&c| c != SKIP).count() as u64);
        let scores = &self.class_scores;
        self.engine
            .for_each_row_band(assign.len(), nb, best, |rows, band| {
                for (i, rcv) in rows.enumerate() {
                    let c = assign[rcv];
                    if c == SKIP {
                        continue;
                    }
                    let src = &scores[c as usize * nb..(c as usize + 1) * nb];
                    let dst = &mut band[i * nb..(i + 1) * nb];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = d.max(s);
                    }
                }
            });
    }

    /// Converts one receiver's best-score row into Block verdicts, with
    /// exactly the `T ± margin` dead-zone rule of
    /// [`Demultiplexer::finish`]. `out` is cleared first.
    ///
    /// [`Demultiplexer::finish`]: crate::demux::Demultiplexer::finish
    pub fn verdicts_into(&self, best: &[f32], out: &mut Vec<Option<bool>>) {
        let t = self.config.threshold;
        let m = self.config.margin;
        out.clear();
        out.extend(best.iter().map(|&enc| {
            if enc == UNREADABLE {
                None
            } else if enc > t + m {
                Some(true)
            } else if enc < t - m {
                Some(false)
            } else {
                None
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demux::Demultiplexer;
    use inframe_frame::geometry::Homography;
    use inframe_frame::perturb::{materialized, OcclusionRect};

    fn small_cfg(kernel: KernelBackend) -> InFrameConfig {
        InFrameConfig {
            display_w: 96,
            display_h: 64,
            pixel_size: 4,
            block_size: 4,
            blocks_x: 6,
            blocks_y: 4,
            kernel,
            ..InFrameConfig::paper()
        }
    }

    fn checker_capture(cfg: &InFrameConfig) -> Plane<f32> {
        Plane::from_fn(cfg.display_w, cfg.display_h, |x, y| {
            127.0 + if (x / 4 + y / 4) % 2 == 0 { 9.0 } else { -9.0 }
        })
    }

    fn scorer(cfg: InFrameConfig, workers: usize) -> BatchScorer {
        let cache = RegionCache::build(&cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        BatchScorer::new(cfg, cache, Arc::new(ParallelEngine::new(workers)))
    }

    #[test]
    fn identity_class_matches_streaming_demux() {
        for kernel in [KernelBackend::Reference, KernelBackend::Quantized] {
            let cfg = small_cfg(kernel);
            let capture = checker_capture(&cfg);
            let mut batch = scorer(cfg, 1);
            batch.score_classes(
                &capture,
                &[CaptureTransform::IDENTITY],
                &[ScoreClass::clean(0)],
            );
            let mut demux = Demultiplexer::with_cache(
                cfg,
                Arc::clone(batch.region_cache()),
                Arc::new(ParallelEngine::new(1)),
            );
            demux.push_capture(&capture, 0.01);
            let want: Vec<f32> = demux
                .last_scores()
                .iter()
                .map(|&s| encode_score(s))
                .collect();
            assert_eq!(batch.class_scores(0), &want[..], "kernel {kernel:?}");
        }
    }

    #[test]
    fn awb_shift_aliases_identity_sweep_exactly() {
        let cfg = small_cfg(KernelBackend::Quantized);
        let capture = checker_capture(&cfg);
        let shift = CaptureTransform {
            awb_raw: 640, // +5 code values
            ..CaptureTransform::IDENTITY
        };
        let mut batch = scorer(cfg, 1);
        batch.score_classes(
            &capture,
            &[CaptureTransform::IDENTITY, shift],
            &[ScoreClass::clean(0), ScoreClass::clean(1)],
        );
        // The aliased class reuses the identity accumulators…
        assert_eq!(batch.class_scores(0), batch.class_scores(1));
        // …and that is also what a from-scratch scoring of the shifted
        // capture produces (shift invariance is real, not assumed).
        let shifted = materialized(&capture, &shift);
        let mut direct = scorer(cfg, 1);
        direct.score_classes(
            &shifted,
            &[CaptureTransform::IDENTITY],
            &[ScoreClass::clean(0)],
        );
        assert_eq!(batch.class_scores(1), direct.class_scores(0));
    }

    #[test]
    fn noise_class_lowers_scores_deterministically() {
        for kernel in [KernelBackend::Reference, KernelBackend::Quantized] {
            let cfg = small_cfg(kernel);
            let capture = checker_capture(&cfg);
            let mut batch = scorer(cfg, 1);
            let noisy = ScoreClass {
                transform: 0,
                noise_raw_sq: ScoreClass::noise_raw_sq_from_sigma(3.0),
            };
            batch.score_classes(
                &capture,
                &[CaptureTransform::IDENTITY],
                &[ScoreClass::clean(0), noisy],
            );
            let clean: Vec<f32> = batch.class_scores(0).to_vec();
            let degraded: Vec<f32> = batch.class_scores(1).to_vec();
            assert!(
                clean
                    .iter()
                    .zip(&degraded)
                    .all(|(c, d)| d <= c && *d > UNREADABLE),
                "noise must lower (never raise) every readable score; kernel {kernel:?}"
            );
            assert!(
                clean.iter().zip(&degraded).any(|(c, d)| d < c),
                "a 3-code-sigma noise class must actually bite; kernel {kernel:?}"
            );
        }
    }

    #[test]
    fn merge_assigned_folds_per_receiver_maxima() {
        let cfg = small_cfg(KernelBackend::Quantized);
        let capture = checker_capture(&cfg);
        let occluded = CaptureTransform {
            occlusion: Some(OcclusionRect {
                x0: 0,
                y0: 0,
                w: cfg.display_w,
                h: cfg.display_h / 2,
                level_raw: qplane::quantize(127.0),
            }),
            ..CaptureTransform::IDENTITY
        };
        let mut batch = scorer(cfg, 1);
        batch.score_classes(
            &capture,
            &[CaptureTransform::IDENTITY, occluded],
            &[ScoreClass::clean(0), ScoreClass::clean(1)],
        );
        let nb = batch.num_blocks();
        let mut best = vec![UNREADABLE; 3 * nb];
        batch.merge_assigned(&[0, 1, SKIP], &mut best);
        assert_eq!(&best[..nb], batch.class_scores(0));
        assert_eq!(&best[nb..2 * nb], batch.class_scores(1));
        assert!(best[2 * nb..].iter().all(|&v| v == UNREADABLE));
        // Merging the identity class on top upgrades the occluded
        // receiver to the elementwise max.
        batch.merge_assigned(&[SKIP, 0, SKIP], &mut best);
        for (i, (&got, (&a, &b))) in best[nb..2 * nb]
            .iter()
            .zip(batch.class_scores(0).iter().zip(batch.class_scores(1)))
            .enumerate()
        {
            assert_eq!(got, a.max(b), "block {i}");
        }
    }

    #[test]
    fn verdicts_match_streaming_finish_rule() {
        let cfg = small_cfg(KernelBackend::Quantized);
        let batch = scorer(cfg, 1);
        let t = cfg.threshold;
        let m = cfg.margin;
        let mut out = Vec::new();
        batch.verdicts_into(
            &[UNREADABLE, t + m + 0.1, t + m, t - m, t - m - 0.1, 0.0],
            &mut out,
        );
        assert_eq!(
            out,
            vec![None, Some(true), None, None, Some(false), Some(false)]
        );
    }

    #[test]
    #[should_panic(expected = "transform out of range")]
    fn out_of_range_class_rejected() {
        let cfg = small_cfg(KernelBackend::Quantized);
        let capture = checker_capture(&cfg);
        let mut batch = scorer(cfg, 1);
        batch.score_classes(
            &capture,
            &[CaptureTransform::IDENTITY],
            &[ScoreClass::clean(1)],
        );
    }
}
