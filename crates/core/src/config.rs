//! System configuration.

use crate::pattern::Complementation;
use inframe_dsp::envelope::TransitionShape;
use serde::{Deserialize, Serialize};

/// GOB-level channel coding (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodingMode {
    /// The paper's prototype: within every m×m GOB the last Block is the
    /// XOR parity of the others.
    Parity,
    /// "Common error correction code such as RS code": data bits are packed
    /// into bytes and protected by RS(n, k) across the whole data frame,
    /// with undecodable Blocks treated as erasures. `parity_bytes` is
    /// `n − k` per ≤255-byte codeword.
    ReedSolomon {
        /// Parity bytes per codeword.
        parity_bytes: usize,
    },
}

/// Which kernel implementations the pipeline's hot stages run on.
///
/// Both backends implement the same pipeline; [`KernelBackend::Reference`]
/// is the scalar f32/f64 oracle, [`KernelBackend::Quantized`] routes the
/// render and demux inner loops through the Q8.7 fixed-point layer
/// (`inframe_frame::qplane`, `QIntegral`, the chessboard LUT). Decoded
/// bits are identical across backends on the test corpus; raw block
/// scores agree within 1 LSB of Q8.7 (1/128 code value) — enforced by
/// `tests/kernel_equivalence.rs`.
///
/// The quantized backend's hot loops additionally dispatch to explicit
/// SSE2/AVX2 paths via [`inframe_frame::simd`]; the `INFRAME_SIMD`
/// environment variable (`off`/`sse2`/`avx2`) caps the level for
/// testing, and every level decodes bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelBackend {
    /// Scalar f32/f64 kernels — the bit-exact oracle.
    Reference,
    /// i16 Q8.7 fixed-point kernels: O(1) sliding-window blur,
    /// integral-image demodulation, LUT-based chessboard render.
    Quantized,
}

impl KernelBackend {
    /// Parses an `INFRAME_KERNEL` value. Accepts `quantized`/`quant`/`q`
    /// and `reference`/`ref`/`f32` (case-insensitive); anything else —
    /// including `None` — selects [`KernelBackend::Reference`].
    pub fn parse(value: Option<&str>) -> Self {
        match value.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
            Some("quantized" | "quant" | "q") => Self::Quantized,
            _ => Self::Reference,
        }
    }

    /// Backend from the `INFRAME_KERNEL` environment variable (default
    /// [`KernelBackend::Reference`]). Config constructors call this, so
    /// `INFRAME_KERNEL=quantized cargo test` runs the whole corpus on the
    /// fixed-point path.
    pub fn from_env() -> Self {
        Self::parse(std::env::var("INFRAME_KERNEL").ok().as_deref())
    }
}

/// Full InFrame configuration: geometry, amplitude, timing, detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InFrameConfig {
    /// Display frame width in pixels.
    pub display_w: usize,
    /// Display frame height in pixels.
    pub display_h: usize,
    /// Display refresh rate in Hz; the video runs at a quarter of this.
    pub refresh_hz: f64,
    /// Super-Pixel side `p` in display pixels (paper: 4 at 1920×1080).
    pub pixel_size: usize,
    /// Block side `s` in super-Pixels (one Block carries one bit).
    pub block_size: usize,
    /// Blocks per data-frame row (paper: 50).
    pub blocks_x: usize,
    /// Blocks per data-frame column (paper: 30).
    pub blocks_y: usize,
    /// GOB side `m` in Blocks (paper: 2).
    pub gob_size: usize,
    /// Chessboard amplitude δ in code values (paper sweeps 20–50).
    pub delta: f32,
    /// Data-frame cycle τ in *displayed frames* (paper sweeps 10–14; the
    /// data rate is `refresh_hz / τ` data frames per second).
    pub tau: u32,
    /// Amplitude envelope shape for bit transitions.
    pub envelope: TransitionShape,
    /// Complementary-pair balancing rule. [`Complementation::Luminance`]
    /// (the default) zeroes the gamma-convexity ripple; the paper's
    /// original code-symmetric rule is available for ablation.
    pub complementation: Complementation,
    /// Detection threshold `T` on the normalized block noise score.
    pub threshold: f32,
    /// Dead-zone half-width around `T`: blocks scoring within
    /// `T ± margin` are declared undecodable (their GOB becomes
    /// unavailable).
    pub margin: f32,
    /// Channel coding mode.
    pub coding: CodingMode,
    /// Kernel backend for the render/demux hot paths. Defaults to the
    /// `INFRAME_KERNEL` environment variable (see
    /// [`KernelBackend::from_env`]).
    pub kernel: KernelBackend,
}

impl InFrameConfig {
    /// The paper's experimental setup (§4): 1920×1080 at 120 Hz, p = 4,
    /// 36×36-pixel Blocks in a 50×30 grid (15×25 GOBs of 2×2), δ = 20,
    /// τ = 12.
    pub fn paper() -> Self {
        Self {
            display_w: 1920,
            display_h: 1080,
            refresh_hz: 120.0,
            pixel_size: 4,
            block_size: 9,
            blocks_x: 50,
            blocks_y: 30,
            gob_size: 2,
            delta: 20.0,
            tau: 12,
            envelope: TransitionShape::SrrCosine,
            complementation: Complementation::Luminance,
            threshold: 2.0,
            margin: 1.0,
            coding: CodingMode::Parity,
            kernel: KernelBackend::from_env(),
        }
    }

    /// A small configuration for unit tests and quick demos: 192×144
    /// display, 12×12-pixel Blocks in a 16×12 grid.
    pub fn small_test() -> Self {
        Self {
            display_w: 192,
            display_h: 144,
            refresh_hz: 120.0,
            pixel_size: 3,
            block_size: 4,
            blocks_x: 16,
            blocks_y: 12,
            gob_size: 2,
            delta: 20.0,
            tau: 12,
            envelope: TransitionShape::SrrCosine,
            complementation: Complementation::Luminance,
            threshold: 2.0,
            margin: 1.0,
            coding: CodingMode::Parity,
            kernel: KernelBackend::from_env(),
        }
    }

    /// Block side length in display pixels (`p · s`).
    pub fn block_px(&self) -> usize {
        self.pixel_size * self.block_size
    }

    /// Displayed frames per video frame (refresh / 30 in the paper; fixed
    /// at 4 here as in Figure 2).
    pub const DUPLICATES_PER_VIDEO_FRAME: usize = 4;

    /// Data frames per second: `refresh_hz / τ`.
    pub fn data_frame_rate(&self) -> f64 {
        self.refresh_hz / self.tau as f64
    }

    /// Complementary pairs per data-frame cycle (`τ / 2`).
    pub fn pairs_per_cycle(&self) -> u32 {
        self.tau / 2
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if the data grid does not fit on the display, τ is not an
    /// even value ≥ 2, the GOB size does not divide the block grid, δ is
    /// out of range, or the threshold/margin are inconsistent.
    pub fn validate(&self) {
        assert!(
            self.display_w > 0 && self.display_h > 0,
            "display must be nonempty"
        );
        assert!(self.refresh_hz > 0.0, "refresh rate must be positive");
        assert!(self.pixel_size >= 1, "pixel size must be >= 1");
        assert!(self.block_size >= 2, "block must be at least 2 Pixels");
        assert!(
            self.blocks_x * self.block_px() <= self.display_w,
            "data grid wider than display"
        );
        assert!(
            self.blocks_y * self.block_px() <= self.display_h,
            "data grid taller than display"
        );
        assert!(self.gob_size >= 2, "GOB must be at least 2x2");
        assert!(
            self.blocks_x.is_multiple_of(self.gob_size)
                && self.blocks_y.is_multiple_of(self.gob_size),
            "GOB size must divide the block grid"
        );
        assert!(
            self.tau >= 2 && self.tau.is_multiple_of(2),
            "tau must be even and >= 2"
        );
        assert!(
            self.delta > 0.0 && self.delta <= 127.0,
            "delta must be in (0, 127]"
        );
        assert!(self.threshold > 0.0, "threshold must be positive");
        assert!(
            self.margin >= 0.0 && self.margin < self.threshold,
            "margin must be in [0, threshold)"
        );
        if let CodingMode::ReedSolomon { parity_bytes } = self.coding {
            assert!(parity_bytes >= 2, "RS needs at least 2 parity bytes");
        }
    }
}

impl Default for InFrameConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section4() {
        let c = InFrameConfig::paper();
        c.validate();
        assert_eq!(c.block_px(), 36);
        assert_eq!(c.blocks_x * c.blocks_y, 1500);
        // 15*25 GOBs.
        assert_eq!(
            (c.blocks_x / c.gob_size) * (c.blocks_y / c.gob_size),
            25 * 15
        );
        // Data grid fits 1920x1080 with a margin.
        assert!(c.blocks_x * c.block_px() <= 1920);
        assert_eq!(c.blocks_y * c.block_px(), 1080);
    }

    #[test]
    fn data_frame_rate_reproduces_paper_throughput_math() {
        // Gray δ=20 τ=10: 1125 payload bits × 12 Hz = 13.5 kbps raw, which
        // after the paper's 95.2% availability and 1.5% error rate lands at
        // the reported ~12.6 kbps.
        let mut c = InFrameConfig::paper();
        c.tau = 10;
        let gobs = (c.blocks_x / c.gob_size) * (c.blocks_y / c.gob_size);
        let payload_bits = gobs * (c.gob_size * c.gob_size - 1);
        assert_eq!(payload_bits, 1125);
        let raw_kbps = payload_bits as f64 * c.data_frame_rate() / 1000.0;
        assert!((raw_kbps - 13.5).abs() < 1e-9);
        let effective = raw_kbps * 0.952 * (1.0 - 0.015);
        assert!((effective - 12.66).abs() < 0.05);
    }

    #[test]
    fn small_config_validates() {
        InFrameConfig::small_test().validate();
    }

    #[test]
    #[should_panic(expected = "tau must be even")]
    fn odd_tau_rejected() {
        let mut c = InFrameConfig::small_test();
        c.tau = 11;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "wider than display")]
    fn oversized_grid_rejected() {
        let mut c = InFrameConfig::small_test();
        c.blocks_x = 1000;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "GOB size must divide")]
    fn misaligned_gob_rejected() {
        let mut c = InFrameConfig::small_test();
        c.blocks_x = 15; // not divisible by 2
        c.validate();
    }

    #[test]
    fn kernel_backend_parses_env_values() {
        for v in ["quantized", "quant", "q", " Quantized ", "QUANT"] {
            assert_eq!(KernelBackend::parse(Some(v)), KernelBackend::Quantized);
        }
        for v in ["reference", "ref", "f32", "", "garbage"] {
            assert_eq!(KernelBackend::parse(Some(v)), KernelBackend::Reference);
        }
        assert_eq!(KernelBackend::parse(None), KernelBackend::Reference);
    }

    #[test]
    fn pairs_per_cycle_is_half_tau() {
        let mut c = InFrameConfig::paper();
        for tau in [10u32, 12, 14] {
            c.tau = tau;
            assert_eq!(c.pairs_per_cycle(), tau / 2);
        }
    }
}
