//! Spatial layout of the data frame: Pixels, Blocks and GOBs on the
//! display.
//!
//! The hierarchy (paper §3.3): `p×p` display pixels form one super-Pixel,
//! `s×s` Pixels form one Block (one bit), `m×m` Blocks form one GOB. The
//! grid is centered on the display; at the paper's parameters the
//! 50×30-Block grid spans 1800×1080 of the 1920×1080 panel.

use crate::config::InFrameConfig;
use serde::{Deserialize, Serialize};

/// A rectangle in display pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PxRect {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
}

/// Resolved geometry of the data grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataLayout {
    /// Super-Pixel side in display pixels.
    pub pixel_size: usize,
    /// Block side in super-Pixels.
    pub block_size: usize,
    /// Blocks per row.
    pub blocks_x: usize,
    /// Blocks per column.
    pub blocks_y: usize,
    /// GOB side in Blocks.
    pub gob_size: usize,
    /// Left edge of the grid on the display.
    pub origin_x: usize,
    /// Top edge of the grid on the display.
    pub origin_y: usize,
}

impl DataLayout {
    /// Computes the centered layout for a configuration.
    pub fn from_config(c: &InFrameConfig) -> Self {
        c.validate();
        let grid_w = c.blocks_x * c.block_px();
        let grid_h = c.blocks_y * c.block_px();
        Self {
            pixel_size: c.pixel_size,
            block_size: c.block_size,
            blocks_x: c.blocks_x,
            blocks_y: c.blocks_y,
            gob_size: c.gob_size,
            origin_x: (c.display_w - grid_w) / 2,
            origin_y: (c.display_h - grid_h) / 2,
        }
    }

    /// Block side in display pixels.
    pub fn block_px(&self) -> usize {
        self.pixel_size * self.block_size
    }

    /// Total number of Blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks_x * self.blocks_y
    }

    /// GOB grid dimensions `(gobs_x, gobs_y)`.
    pub fn gob_grid(&self) -> (usize, usize) {
        (self.blocks_x / self.gob_size, self.blocks_y / self.gob_size)
    }

    /// Total number of GOBs.
    pub fn num_gobs(&self) -> usize {
        let (gx, gy) = self.gob_grid();
        gx * gy
    }

    /// Blocks per GOB (`m²`).
    pub fn blocks_per_gob(&self) -> usize {
        self.gob_size * self.gob_size
    }

    /// Payload bits per data frame under parity coding
    /// (`gobs × (m² − 1)`).
    pub fn payload_bits_parity(&self) -> usize {
        self.num_gobs() * (self.blocks_per_gob() - 1)
    }

    /// Display-pixel rectangle of Block `(bx, by)`.
    ///
    /// # Panics
    /// Panics for out-of-range block coordinates.
    pub fn block_rect(&self, bx: usize, by: usize) -> PxRect {
        assert!(
            bx < self.blocks_x && by < self.blocks_y,
            "block out of range"
        );
        let bp = self.block_px();
        PxRect {
            x: self.origin_x + bx * bp,
            y: self.origin_y + by * bp,
            w: bp,
            h: bp,
        }
    }

    /// Linear Block index of `(bx, by)` in GOB-major order: GOBs row-major
    /// over the GOB grid, Blocks row-major within each GOB. This is the
    /// order in which bits are laid into the frame.
    pub fn block_channel_index(&self, bx: usize, by: usize) -> usize {
        let m = self.gob_size;
        let (gx_count, _) = self.gob_grid();
        let gx = bx / m;
        let gy = by / m;
        let gob_index = gy * gx_count + gx;
        let lx = bx % m;
        let ly = by % m;
        gob_index * m * m + ly * m + lx
    }

    /// Inverse of [`DataLayout::block_channel_index`].
    pub fn block_at_channel_index(&self, idx: usize) -> (usize, usize) {
        let m = self.gob_size;
        let (gx_count, _) = self.gob_grid();
        let gob_index = idx / (m * m);
        let within = idx % (m * m);
        let gx = gob_index % gx_count;
        let gy = gob_index / gx_count;
        (gx * m + within % m, gy * m + within / m)
    }

    /// Iterates over all Block coordinates in channel order.
    pub fn blocks_in_channel_order(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_blocks()).map(move |i| self.block_at_channel_index(i))
    }

    /// GOB index of Block `(bx, by)`.
    pub fn gob_of_block(&self, bx: usize, by: usize) -> usize {
        self.block_channel_index(bx, by) / self.blocks_per_gob()
    }

    /// Whether the Block at channel position `idx % m²` within its GOB is
    /// the parity slot (the last one).
    pub fn is_parity_slot(&self, channel_idx: usize) -> bool {
        channel_idx % self.blocks_per_gob() == self.blocks_per_gob() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InFrameConfig;
    use proptest::prelude::*;

    fn paper_layout() -> DataLayout {
        DataLayout::from_config(&InFrameConfig::paper())
    }

    #[test]
    fn paper_grid_is_centered() {
        let l = paper_layout();
        assert_eq!(l.block_px(), 36);
        assert_eq!(l.origin_x, (1920 - 50 * 36) / 2);
        assert_eq!(l.origin_y, 0);
        assert_eq!(l.num_blocks(), 1500);
        assert_eq!(l.num_gobs(), 375);
        assert_eq!(l.payload_bits_parity(), 1125);
    }

    #[test]
    fn block_rects_tile_without_overlap() {
        let l = DataLayout::from_config(&InFrameConfig::small_test());
        let r00 = l.block_rect(0, 0);
        let r10 = l.block_rect(1, 0);
        let r01 = l.block_rect(0, 1);
        assert_eq!(r00.x + r00.w, r10.x);
        assert_eq!(r00.y + r00.h, r01.y);
        assert_eq!(r00.w, l.block_px());
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn out_of_range_block_panics() {
        let l = paper_layout();
        let _ = l.block_rect(50, 0);
    }

    #[test]
    fn channel_index_groups_gobs_contiguously() {
        let l = DataLayout::from_config(&InFrameConfig::small_test());
        // The four blocks of GOB (0,0) occupy channel indices 0..4.
        let mut idxs = vec![
            l.block_channel_index(0, 0),
            l.block_channel_index(1, 0),
            l.block_channel_index(0, 1),
            l.block_channel_index(1, 1),
        ];
        idxs.sort_unstable();
        assert_eq!(idxs, vec![0, 1, 2, 3]);
        // Parity slot is the last within the GOB.
        assert!(l.is_parity_slot(3));
        assert!(!l.is_parity_slot(2));
    }

    #[test]
    fn gob_of_block_matches_grid() {
        let l = DataLayout::from_config(&InFrameConfig::small_test());
        assert_eq!(l.gob_of_block(0, 0), 0);
        assert_eq!(l.gob_of_block(2, 0), 1);
        assert_eq!(l.gob_of_block(0, 2), l.gob_grid().0);
    }

    proptest! {
        #[test]
        fn channel_index_roundtrip(bx in 0usize..16, by in 0usize..12) {
            let l = DataLayout::from_config(&InFrameConfig::small_test());
            let idx = l.block_channel_index(bx, by);
            prop_assert!(idx < l.num_blocks());
            prop_assert_eq!(l.block_at_channel_index(idx), (bx, by));
        }

        #[test]
        fn channel_order_is_a_permutation(_x in 0..1) {
            let l = DataLayout::from_config(&InFrameConfig::small_test());
            let mut seen = vec![false; l.num_blocks()];
            for (bx, by) in l.blocks_in_channel_order() {
                let i = by * l.blocks_x + bx;
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}
