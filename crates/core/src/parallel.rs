//! The band-sliced worker engine behind the streaming pipeline.
//!
//! Both hot paths of the system are embarrassingly parallel over rows:
//! sender-side chessboard rendering writes each display row exactly once,
//! and receiver-side block scoring reads disjoint sensor regions. A
//! [`ParallelEngine`] partitions that work across scoped worker threads
//! using the canonical band partition of
//! [`inframe_frame::plane::band_rows`], with two guarantees:
//!
//! 1. **Bit-identical output at any worker count.** Work items are pure
//!    per-row / per-region functions and results are merged in a fixed
//!    deterministic order, so `workers = 1` and `workers = N` produce the
//!    same bytes. The equivalence is enforced by property tests in the
//!    workspace root.
//! 2. **No persistent threads.** Workers are scoped (vendored
//!    `crossbeam::thread::scope` over `std::thread::scope`), so the engine
//!    is `Sync`, has no shutdown protocol, and `workers = 1` runs inline
//!    with zero thread overhead.
//!
//! The engine also accumulates per-worker busy time, which
//! [`crate::metrics::ThroughputMeter`] turns into a utilization figure.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use inframe_frame::plane::band_rows;
use inframe_frame::Plane;

/// Cached machine parallelism. On a single-core box (or one the
/// scheduler has confined to one CPU) spawned band workers only time-
/// slice against each other, so the engine runs its bands inline there.
fn machine_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Minimum per-band element count that amortizes a scoped thread spawn.
/// A spawn+join costs tens of µs; at the ~1 ns/element the band kernels
/// run at, bands below this are faster inline (the measured 4-worker
/// quantized render regression at 1080p came from exactly this).
const SPAWN_GRAIN: usize = 64 * 1024;

/// Minimum per-chunk item count for [`ParallelEngine::map`] /
/// [`ParallelEngine::map_into`] (items are Block demodulations — far
/// heavier than one band element).
const SPAWN_ITEMS: usize = 8;

/// A fixed-width pool of band workers (see module docs).
#[derive(Debug)]
pub struct ParallelEngine {
    workers: usize,
    busy_nanos: AtomicU64,
}

impl ParallelEngine {
    /// Creates an engine with the given worker count (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// A single-worker engine: all work runs inline on the calling thread.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Worker count from the environment: `INFRAME_WORKERS` if set to a
    /// positive integer, otherwise the machine's available parallelism
    /// (capped at 8 — the pipeline's row bands stop paying off beyond
    /// that at paper-scale frame heights).
    pub fn from_env() -> Self {
        let from_var = std::env::var("INFRAME_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1);
        let workers = from_var.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        });
        Self::new(workers)
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total busy time accumulated across all workers since creation.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }

    fn note(&self, elapsed: Duration) {
        self.busy_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Whether band work of `per_band_elems` elements justifies spawning
    /// worker threads. Where banding is semantically visible (the indexed
    /// [`ParallelEngine::for_each_row_band2`], whose callers key per-band
    /// scratch off the band index), the non-spawn path still applies the
    /// exact same band partition sequentially. The plane-band methods'
    /// callbacks are pure per-row, so their non-spawn path makes one
    /// full-range call instead — bit-identical output, and it skips the
    /// band bookkeeping that cost the 1080p 4-worker render ~9% against
    /// 1-worker on a single-core machine (where spawning never engages).
    fn spawn_bands(&self, per_band_elems: usize) -> bool {
        self.workers > 1 && machine_cores() > 1 && per_band_elems >= SPAWN_GRAIN
    }

    /// [`ParallelEngine::spawn_bands`] for item-chunked work.
    fn spawn_chunks(&self, items: usize) -> bool {
        self.workers > 1 && machine_cores() > 1 && items / self.workers >= SPAWN_ITEMS
    }

    /// Runs `f` over matching horizontal bands of two same-shaped planes
    /// (the sender's `P⁺`/`P⁻` offset pair). Each invocation receives the
    /// band's row range and the two mutable band slices; bands are
    /// disjoint, so the closure may write freely.
    ///
    /// # Panics
    /// Panics if the planes' shapes differ or a worker panics.
    pub fn for_each_band_pair<F>(&self, a: &mut Plane<f32>, b: &mut Plane<f32>, f: F)
    where
        F: Fn(Range<usize>, &mut [f32], &mut [f32]) + Sync,
    {
        assert_eq!(a.shape(), b.shape(), "band pair must be same-shaped");
        let height = a.height();
        let width = a.width();
        if self.workers == 1
            || height <= 1
            || !self.spawn_bands(height.div_ceil(self.workers) * width * 2)
        {
            let t = Instant::now();
            f(0..height, a.samples_mut(), b.samples_mut());
            self.note(t.elapsed());
            return;
        }
        let bands_a = a.bands_mut(self.workers);
        let bands_b = b.bands_mut(self.workers);
        let f = &f;
        crossbeam::thread::scope(|s| {
            for ((range, slice_a), (range_b, slice_b)) in bands_a.into_iter().zip(bands_b) {
                debug_assert_eq!(range, range_b);
                s.spawn(move |_| {
                    let t = Instant::now();
                    f(range, slice_a, slice_b);
                    self.note(t.elapsed());
                });
            }
        })
        .expect("band workers must not panic");
    }

    /// Runs `f` over horizontal bands of a single plane — the one-plane
    /// sibling of [`ParallelEngine::for_each_band_pair`], used by the
    /// quantized fused render (video copy + LUT add in one pass).
    ///
    /// # Panics
    /// Panics if a worker panics.
    pub fn for_each_band<F>(&self, plane: &mut Plane<f32>, f: F)
    where
        F: Fn(Range<usize>, &mut [f32]) + Sync,
    {
        let height = plane.height();
        let width = plane.width();
        if self.workers == 1
            || height <= 1
            || !self.spawn_bands(height.div_ceil(self.workers) * width)
        {
            let t = Instant::now();
            f(0..height, plane.samples_mut());
            self.note(t.elapsed());
            return;
        }
        let bands = plane.bands_mut(self.workers);
        let f = &f;
        crossbeam::thread::scope(|s| {
            for (range, slice) in bands {
                s.spawn(move |_| {
                    let t = Instant::now();
                    f(range, slice);
                    self.note(t.elapsed());
                });
            }
        })
        .expect("band workers must not panic");
    }

    /// Runs `f` over matching row bands of two row-major buffers with
    /// independent element types and strides — the raw-buffer sibling of
    /// [`ParallelEngine::for_each_band_pair`], used by the quantized
    /// receiver front end (capture plane + window sums, then the paired
    /// prefix tables). The closure receives the band's index (stable for
    /// a given height and worker count, so callers can key per-band
    /// scratch off it), its row range, and the two mutable band slices.
    ///
    /// # Panics
    /// Panics if a buffer's length is not `height` times its stride, or a
    /// worker panics.
    pub fn for_each_row_band2<A, B, F>(
        &self,
        height: usize,
        stride_a: usize,
        a: &mut [A],
        stride_b: usize,
        b: &mut [B],
        f: F,
    ) where
        A: Send,
        B: Send,
        F: Fn(usize, Range<usize>, &mut [A], &mut [B]) + Sync,
    {
        assert_eq!(a.len(), height * stride_a, "buffer a must be h × stride");
        assert_eq!(b.len(), height * stride_b, "buffer b must be h × stride");
        if self.workers == 1 || height <= 1 {
            let t = Instant::now();
            f(0, 0..height, a, b);
            self.note(t.elapsed());
            return;
        }
        if !self.spawn_bands(height.div_ceil(self.workers) * (stride_a + stride_b)) {
            let t = Instant::now();
            let mut rest_a = a;
            let mut rest_b = b;
            for (band, range) in band_rows(height, self.workers).into_iter().enumerate() {
                let (band_a, tail_a) = rest_a.split_at_mut(range.len() * stride_a);
                let (band_b, tail_b) = rest_b.split_at_mut(range.len() * stride_b);
                rest_a = tail_a;
                rest_b = tail_b;
                f(band, range, band_a, band_b);
            }
            self.note(t.elapsed());
            return;
        }
        let f = &f;
        crossbeam::thread::scope(|s| {
            let mut rest_a = a;
            let mut rest_b = b;
            for (band, range) in band_rows(height, self.workers).into_iter().enumerate() {
                let (band_a, tail_a) = rest_a.split_at_mut(range.len() * stride_a);
                let (band_b, tail_b) = rest_b.split_at_mut(range.len() * stride_b);
                rest_a = tail_a;
                rest_b = tail_b;
                s.spawn(move |_| {
                    let t = Instant::now();
                    f(band, range, band_a, band_b);
                    self.note(t.elapsed());
                });
            }
        })
        .expect("row band workers must not panic");
    }

    /// Runs `f` over row bands of a single row-major buffer — the
    /// one-buffer sibling of [`ParallelEngine::for_each_row_band2`], used
    /// by the fleet simulator to band-slice over *receivers* rather than
    /// pixel rows (each receiver owns `stride` consecutive elements: its
    /// per-block score row, or a single session slot at stride 1). The
    /// closure receives the band's row range and its mutable band slice;
    /// callbacks must be pure per-row, as the non-spawn path makes one
    /// full-range call.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not `height * stride`, or a worker
    /// panics.
    pub fn for_each_row_band<T, F>(&self, height: usize, stride: usize, buf: &mut [T], f: F)
    where
        T: Send,
        F: Fn(Range<usize>, &mut [T]) + Sync,
    {
        assert_eq!(buf.len(), height * stride, "buffer must be h × stride");
        if self.workers == 1
            || height <= 1
            || !self.spawn_bands(height.div_ceil(self.workers) * stride)
        {
            let t = Instant::now();
            f(0..height, buf);
            self.note(t.elapsed());
            return;
        }
        let f = &f;
        crossbeam::thread::scope(|s| {
            let mut rest = buf;
            for range in band_rows(height, self.workers) {
                let (band, tail) = rest.split_at_mut(range.len() * stride);
                rest = tail;
                s.spawn(move |_| {
                    let t = Instant::now();
                    f(range, band);
                    self.note(t.elapsed());
                });
            }
        })
        .expect("row band workers must not panic");
    }

    /// Zero-allocation sibling of [`ParallelEngine::map`]: maps `f` over
    /// `items` **into** a caller-provided slice, chunked with the same
    /// deterministic band partition (results land at their item's index,
    /// so output is identical for every worker count). The streaming
    /// demultiplexer keeps one score buffer alive across captures and
    /// refills it through this method — the last per-frame allocation of
    /// the demux hot path.
    ///
    /// # Panics
    /// Panics if `out.len() != items.len()` or a worker panics.
    pub fn map_into<I, O, F>(&self, items: &[I], out: &mut [O], f: F)
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        assert_eq!(
            items.len(),
            out.len(),
            "map_into output must match item count"
        );
        if !self.spawn_chunks(items.len()) {
            let t = Instant::now();
            for (i, (o, it)) in out.iter_mut().zip(items).enumerate() {
                *o = f(i, it);
            }
            self.note(t.elapsed());
            return;
        }
        let chunks = band_rows(items.len(), self.workers);
        let f = &f;
        crossbeam::thread::scope(|s| {
            let mut rest = out;
            for range in chunks {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                s.spawn(move |_| {
                    let t = Instant::now();
                    for (o, i) in chunk.iter_mut().zip(range) {
                        *o = f(i, &items[i]);
                    }
                    self.note(t.elapsed());
                });
            }
        })
        .expect("map_into workers must not panic");
    }

    /// Maps `f` over `items` and returns the results **in input order**
    /// regardless of worker scheduling (each worker owns one contiguous
    /// chunk; chunks are concatenated in index order).
    ///
    /// # Panics
    /// Panics if a worker panics.
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        if !self.spawn_chunks(items.len()) {
            let t = Instant::now();
            let out = items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
            self.note(t.elapsed());
            return out;
        }
        let chunks = band_rows(items.len(), self.workers);
        let f = &f;
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|r| {
                    s.spawn(move |_| {
                        let t = Instant::now();
                        let out: Vec<O> = r.map(|i| f(i, &items[i])).collect();
                        self.note(t.elapsed());
                        out
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for h in handles {
                out.extend(h.join().expect("map worker must not panic"));
            }
            out
        })
        .expect("map workers must not panic")
    }
}

impl Default for ParallelEngine {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(ParallelEngine::new(0).workers(), 1);
        assert_eq!(ParallelEngine::new(3).workers(), 3);
        assert_eq!(ParallelEngine::sequential().workers(), 1);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u32> = (0..103).collect();
        for workers in [1usize, 2, 3, 7] {
            let engine = ParallelEngine::new(workers);
            let out = engine.map(&items, |i, &v| {
                assert_eq!(i as u32, v);
                v * 2
            });
            let expect: Vec<u32> = items.iter().map(|v| v * 2).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn map_handles_fewer_items_than_workers() {
        let engine = ParallelEngine::new(8);
        assert_eq!(engine.map(&[10, 20], |_, &v| v + 1), vec![11, 21]);
        assert_eq!(engine.map(&[] as &[i32], |_, &v| v), Vec::<i32>::new());
    }

    #[test]
    fn map_into_matches_map_for_every_worker_count() {
        let items: Vec<u32> = (0..97).collect();
        let reference = ParallelEngine::new(1).map(&items, |i, &v| v * 3 + i as u32);
        for workers in [1usize, 2, 3, 5, 8] {
            let engine = ParallelEngine::new(workers);
            let mut out = vec![0u32; items.len()];
            engine.map_into(&items, &mut out, |i, &v| v * 3 + i as u32);
            assert_eq!(out, reference, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "map_into output must match item count")]
    fn map_into_rejects_mismatched_output() {
        let engine = ParallelEngine::new(2);
        let mut out = vec![0u32; 3];
        engine.map_into(&[1u32, 2], &mut out, |_, &v| v);
    }

    #[test]
    fn single_band_writes_are_identical_across_worker_counts() {
        let render = |workers: usize| {
            let engine = ParallelEngine::new(workers);
            let mut p = Plane::filled(5, 19, 0.0);
            engine.for_each_band(&mut p, |rows, slice| {
                for (i, v) in slice.iter_mut().enumerate() {
                    let y = rows.start + i / 5;
                    let x = i % 5;
                    *v = (y * 13 + x * 7) as f32;
                }
            });
            p
        };
        let reference = render(1);
        for workers in [2usize, 3, 6] {
            assert_eq!(render(workers), reference, "workers = {workers}");
        }
    }

    #[test]
    fn band_pair_writes_are_identical_across_worker_counts() {
        let render = |workers: usize| {
            let engine = ParallelEngine::new(workers);
            let mut a = Plane::filled(7, 23, 0.0);
            let mut b = Plane::filled(7, 23, 0.0);
            engine.for_each_band_pair(&mut a, &mut b, |rows, sa, sb| {
                for (i, (va, vb)) in sa.iter_mut().zip(sb.iter_mut()).enumerate() {
                    let y = rows.start + i / 7;
                    let x = i % 7;
                    *va = (y * 31 + x) as f32;
                    *vb = (y * 7 + x * 3) as f32;
                }
            });
            (a, b)
        };
        let (a1, b1) = render(1);
        for workers in [2usize, 3, 5] {
            let (a, b) = render(workers);
            assert_eq!(a, a1, "plus plane, workers = {workers}");
            assert_eq!(b, b1, "minus plane, workers = {workers}");
        }
    }

    #[test]
    fn row_band_writes_are_identical_across_worker_counts() {
        let run = |workers: usize| {
            let engine = ParallelEngine::new(workers);
            let mut buf = vec![0u64; 29 * 3];
            engine.for_each_row_band(29, 3, &mut buf, |rows, band| {
                for (i, v) in band.iter_mut().enumerate() {
                    let row = rows.start + i / 3;
                    *v = (row * 100 + i % 3) as u64;
                }
            });
            buf
        };
        let reference = run(1);
        for workers in [2usize, 4, 7] {
            assert_eq!(run(workers), reference, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "buffer must be h × stride")]
    fn row_band_rejects_mismatched_buffer() {
        let engine = ParallelEngine::new(2);
        let mut buf = vec![0u8; 10];
        engine.for_each_row_band(3, 4, &mut buf, |_, _| {});
    }

    #[test]
    fn busy_time_accumulates() {
        let engine = ParallelEngine::new(2);
        let items: Vec<u64> = (0..64).collect();
        let _ = engine.map(&items, |_, &v| {
            // Some actual work so the timer registers.
            (0..200u64).fold(v, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        assert!(engine.busy() > Duration::ZERO);
    }
}
