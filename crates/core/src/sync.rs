//! Blind cycle synchronization.
//!
//! The streaming [`crate::Demultiplexer`] assigns captures to data cycles
//! by timestamp, which assumes the receiver knows the sender's cycle
//! phase. Real deployments don't get that for free — the paper cites
//! LightSync for the general unsynchronized-link problem. This module
//! recovers the cycle phase *from the captures themselves*:
//!
//! Captures taken in the first (stable) half of a cycle show crisp
//! chessboards (high block scores); captures during the transition half
//! show faded ones. Score a window of captures, fold capture times by the
//! known cycle duration, and the phase that maximizes mean score over the
//! "stable" half-window is the sender's cycle origin. The cycle duration
//! itself is known from the (public) configuration — only the origin is
//! blind.

use crate::config::InFrameConfig;
use inframe_obs::{names, Telemetry};
use serde::{Deserialize, Serialize};

/// One observation for the estimator: a capture's time and a scalar
/// "pattern crispness" (e.g. the mean of the top-quartile block scores).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncObservation {
    /// Capture midpoint in receiver time, seconds.
    pub t_mid: f64,
    /// Aggregate pattern score of the capture.
    pub crispness: f64,
}

/// Result of a phase estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncEstimate {
    /// Estimated cycle origin in `[0, cycle_duration)` — subtract from
    /// capture times before cycle assignment.
    pub phase: f64,
    /// Contrast of the folded score profile (peak mean / trough mean);
    /// values near 1 mean the estimate is unreliable (e.g. an idle
    /// channel).
    pub confidence: f64,
}

/// Estimates the sender's cycle phase from scored captures.
///
/// Needs observations spanning at least a few cycles; 8–10 captures are
/// plenty in practice (the camera sees 2.5–3 captures per cycle).
#[derive(Debug, Clone)]
pub struct CycleSynchronizer {
    cycle_duration: f64,
    observations: Vec<SyncObservation>,
    /// Number of trial phases evaluated over one cycle.
    resolution: usize,
    /// Optional bound on the observation history (rolling window).
    window: Option<usize>,
}

impl CycleSynchronizer {
    /// Creates a synchronizer for the configuration.
    pub fn new(config: &InFrameConfig) -> Self {
        Self {
            cycle_duration: config.tau as f64 / config.refresh_hz,
            observations: Vec::new(),
            resolution: 48,
            window: None,
        }
    }

    /// The cycle duration being assumed, seconds.
    pub fn cycle_duration(&self) -> f64 {
        self.cycle_duration
    }

    /// Bounds the observation history to the `window` most recent
    /// captures. Long-running receivers need this: stale observations
    /// from before a clock disturbance would otherwise outvote the
    /// current channel forever.
    pub fn set_window(&mut self, window: usize) {
        assert!(window >= 4, "estimation needs at least 4 observations");
        self.window = Some(window);
        let excess = self.observations.len().saturating_sub(window);
        self.observations.drain(..excess);
    }

    /// Discards every observation (re-acquisition from scratch).
    pub fn clear(&mut self) {
        self.observations.clear();
    }

    /// Records one scored capture.
    pub fn observe(&mut self, t_mid: f64, crispness: f64) {
        self.observations.push(SyncObservation { t_mid, crispness });
        if let Some(w) = self.window {
            let excess = self.observations.len().saturating_sub(w);
            self.observations.drain(..excess);
        }
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Estimates the phase, or `None` with fewer than 4 observations.
    ///
    /// For each trial phase the observations are folded into the cycle and
    /// split into the stable half (`[0, 0.45)` of the cycle, where the
    /// demultiplexer scores captures) and the transition half; the trial
    /// maximizing the stable-half mean is returned.
    pub fn estimate(&self) -> Option<SyncEstimate> {
        if self.observations.len() < 4 {
            return None;
        }
        let d = self.cycle_duration;
        // Evaluate the folded stable-half mean at each trial phase.
        let mut means = vec![f64::NEG_INFINITY; self.resolution];
        let mut worst_mean = f64::INFINITY;
        let mut best_mean = f64::NEG_INFINITY;
        for (i, mean_slot) in means.iter_mut().enumerate() {
            let trial = d * i as f64 / self.resolution as f64;
            let mut stable_sum = 0.0;
            let mut stable_n = 0u32;
            for obs in &self.observations {
                let folded = ((obs.t_mid - trial) % d + d) % d;
                if folded / d < 0.45 {
                    stable_sum += obs.crispness;
                    stable_n += 1;
                }
            }
            if stable_n == 0 {
                continue;
            }
            let mean = stable_sum / stable_n as f64;
            *mean_slot = mean;
            best_mean = best_mean.max(mean);
            worst_mean = worst_mean.min(mean);
        }
        if !best_mean.is_finite() {
            return None;
        }
        // A 30 FPS camera folds to only a few positions per cycle, so the
        // optimum is a plateau, not a point: take the circular centre of
        // the longest near-best run.
        let near: Vec<bool> = means
            .iter()
            .map(|&m| m >= best_mean - (best_mean - worst_mean).abs() * 0.02 - 1e-12)
            .collect();
        let n = self.resolution;
        let mut best_run = (0usize, 0usize); // (start, len)
        let mut i = 0;
        while i < n {
            if near[i] {
                // Walk the run circularly (but at most n steps).
                let mut len = 0;
                while len < n && near[(i + len) % n] {
                    len += 1;
                }
                if len > best_run.1 {
                    best_run = (i, len);
                }
                i += len.max(1);
            } else {
                i += 1;
            }
        }
        let centre = (best_run.0 + best_run.1 / 2) % n;
        let best_phase = d * centre as f64 / n as f64;
        let confidence = if worst_mean > 1e-12 {
            best_mean / worst_mean
        } else {
            f64::INFINITY
        };
        Some(SyncEstimate {
            phase: best_phase,
            confidence,
        })
    }

    /// Convenience: aggregate block scores into a crispness value — the
    /// mean of the top quartile (robust to frames where most blocks carry
    /// bit 0).
    pub fn crispness_of_scores(scores: &[f32]) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f32> = scores.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("scores must not be NaN"));
        let quartile = (sorted.len() / 4).max(1);
        sorted[..quartile].iter().map(|&v| v as f64).sum::<f64>() / quartile as f64
    }

    /// The sharper sync signal for real channels: the mean normalized
    /// distance of Block scores from the decision threshold.
    ///
    /// Stable-half captures are bimodal (scores near 0 or near the clean
    /// amplitude, both far from `T`); transition-half captures put the
    /// Blocks that flip next cycle at intermediate amplitudes near `T` —
    /// so this statistic dips in the transition half even when plenty of
    /// crisp stable bits remain. Distances are capped at `T + m` so one
    /// very strong block cannot mask many ambiguous ones.
    pub fn decisiveness_of_scores(scores: &[f32], threshold: f32, margin: f32) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        let _ = margin;
        let cap = threshold as f64;
        scores
            .iter()
            .map(|&s| ((s - threshold).abs() as f64).min(cap) / cap)
            .sum::<f64>()
            / scores.len() as f64
    }
}

/// Lock state of a [`PhaseTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockState {
    /// No phase yet: observing captures for a first estimate.
    Acquiring,
    /// Phase locked and the stable-half crispness looks healthy.
    Locked,
    /// Stable-half crispness collapsed: the lock is doubted but still
    /// used (the disturbance may be transient).
    Suspect,
    /// The lock was dropped; re-estimating from a fresh window.
    Reacquiring,
}

/// Tuning of the tracker's confidence scoring and re-acquisition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerPolicy {
    /// Rolling observation window used for (re-)estimates.
    pub window: usize,
    /// Observations required before attempting a (re-)lock.
    pub min_captures: usize,
    /// Folded-profile contrast required to accept a (re-)lock.
    pub min_confidence: f64,
    /// `recent/baseline` crispness ratio below which a stable-half
    /// capture counts as suspect.
    pub suspect_ratio: f64,
    /// Consecutive suspect captures before entering [`LockState::Suspect`].
    pub suspect_after: u32,
    /// Further consecutive suspect captures before the lock is dropped.
    pub reacquire_after: u32,
    /// EWMA factor of the short-horizon crispness estimate.
    pub recent_alpha: f64,
    /// EWMA factor of the healthy-channel baseline.
    pub baseline_alpha: f64,
}

impl Default for TrackerPolicy {
    fn default() -> Self {
        Self {
            window: 24,
            min_captures: 12,
            min_confidence: 1.3,
            suspect_ratio: 0.62,
            suspect_after: 3,
            reacquire_after: 6,
            recent_alpha: 0.45,
            baseline_alpha: 0.05,
        }
    }
}

impl TrackerPolicy {
    /// A low-latency recovery profile for receivers that must re-lock
    /// within a few cycles of a fault clearing (the default profile is
    /// conservative — it tolerates long transients before giving up a
    /// lock, at the cost of slow re-acquisition).
    ///
    /// The worst case drives the numbers: a half-cycle desync leaves
    /// only ~1 receiver-stable capture per cycle as evidence, so at
    /// 30 FPS / τ = 12 this profile drops a dead lock within ~4 cycles
    /// and re-estimates from 9 captures (3 full cycles) — bounding
    /// loss-to-relock at roughly 7 cycles.
    pub fn fast_recovery() -> Self {
        Self {
            min_captures: 9,
            min_confidence: 1.08,
            suspect_after: 2,
            reacquire_after: 2,
            ..Self::default()
        }
    }
}

/// A state transition reported by [`PhaseTracker::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackerEvent {
    /// A phase was (re-)acquired.
    Locked {
        /// The accepted cycle origin, seconds.
        phase: f64,
    },
    /// Stable-half crispness collapsed; the lock is now doubted.
    Suspect,
    /// A suspect lock recovered without re-acquisition.
    Recovered,
    /// The lock was dropped; re-acquisition begins.
    LockLost,
}

impl LockState {
    /// This state in the telemetry vocabulary (the obs crate cannot
    /// depend on core, so the mapping lives here; `link` and `sim` reuse
    /// it when they report session health).
    pub fn obs_state(self) -> inframe_obs::PhaseState {
        match self {
            LockState::Acquiring => inframe_obs::PhaseState::Acquiring,
            LockState::Locked => inframe_obs::PhaseState::Locked,
            LockState::Suspect => inframe_obs::PhaseState::Suspect,
            LockState::Reacquiring => inframe_obs::PhaseState::Reacquiring,
        }
    }
}

/// Tracker-side telemetry instruments, registered once per tracker.
#[derive(Debug, Clone, Default)]
struct TrackerObs {
    telemetry: Telemetry,
    transitions: inframe_obs::Counter,
    relocks: inframe_obs::Counter,
    lock_losses: inframe_obs::Counter,
    in_state_us: inframe_obs::Histogram,
}

impl TrackerObs {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            transitions: telemetry.counter(names::sync::TRANSITIONS),
            relocks: telemetry.counter(names::sync::RELOCKS),
            lock_losses: telemetry.counter(names::sync::LOCK_LOSSES),
            in_state_us: telemetry.histogram(names::sync::IN_STATE_US),
            telemetry: telemetry.clone(),
        }
    }
}

/// Confidence-scored phase tracking over a capture stream.
///
/// [`CycleSynchronizer`] answers "what is the phase, given a window of
/// observations"; this wrapper answers the operational question — *is the
/// phase we are decoding with still right?* It watches the crispness of
/// the captures the current lock classifies as stable-half. A healthy
/// lock keeps those crisp; a desync, accumulated clock skew, or a capture
/// path gone bad collapses them. The state machine is
///
/// ```text
/// ACQUIRING ──(confident estimate)──▶ LOCKED ◀──(recovered)── SUSPECT
///      ▲                                │  ─(crispness collapse)──▲
///      └──────── REACQUIRING ◀──(collapse persists: lock dropped)─┘
/// ```
///
/// Re-acquisition is *bounded*: the observation window is cleared on lock
/// loss (and re-cleared if it fills twice without a confident estimate),
/// so a relock needs only `min_captures` healthy captures — it can never
/// be outvoted by an unbounded tail of pre-fault history, and it never
/// silently decodes garbage in the meantime.
#[derive(Debug, Clone)]
pub struct PhaseTracker {
    sync: CycleSynchronizer,
    policy: TrackerPolicy,
    state: LockState,
    phase: Option<f64>,
    baseline: Option<f64>,
    recent: Option<f64>,
    low_streak: u32,
    obs_since_clear: usize,
    relocks: u64,
    lock_losses: u64,
    obs: TrackerObs,
    /// Channel time the current state was entered (time-in-state base).
    state_entered_t: f64,
    /// Most recent observation time, used to stamp forced transitions.
    last_t: f64,
}

impl PhaseTracker {
    fn build(config: &InFrameConfig, policy: TrackerPolicy, phase: Option<f64>) -> Self {
        assert!(
            policy.min_captures <= policy.window,
            "min_captures cannot exceed the window"
        );
        assert!(policy.suspect_after >= 1 && policy.reacquire_after >= 1);
        let mut sync = CycleSynchronizer::new(config);
        sync.set_window(policy.window);
        Self {
            sync,
            policy,
            state: if phase.is_some() {
                LockState::Locked
            } else {
                LockState::Acquiring
            },
            phase,
            baseline: None,
            recent: None,
            low_streak: 0,
            obs_since_clear: 0,
            relocks: 0,
            lock_losses: 0,
            obs: TrackerObs::default(),
            state_entered_t: 0.0,
            last_t: 0.0,
        }
    }

    /// Attaches telemetry: every state transition becomes a
    /// [`inframe_obs::Event::SyncTransition`] (with time-in-state) and
    /// the transition/relock/loss counters go live. Constructors default
    /// to the disabled handle.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.obs = TrackerObs::new(telemetry);
        self
    }

    /// Records a state transition into telemetry and resets the
    /// time-in-state base. `t` is channel time, seconds.
    fn note_transition(&mut self, from: LockState, to: LockState, t: f64) {
        let in_state_us = ((t - self.state_entered_t).max(0.0) * 1e6) as u64;
        self.state_entered_t = t;
        self.obs.transitions.incr();
        self.obs.in_state_us.record(in_state_us);
        if to == LockState::Reacquiring {
            self.obs.lock_losses.incr();
        }
        self.obs
            .telemetry
            .event(inframe_obs::Event::SyncTransition {
                from: from.obs_state(),
                to: to.obs_state(),
                in_state_us,
            });
    }

    /// A tracker that must acquire the phase blindly.
    pub fn acquiring(config: &InFrameConfig, policy: TrackerPolicy) -> Self {
        Self::build(config, policy, None)
    }

    /// A tracker starting locked at a known phase (shared clock).
    pub fn locked_at(config: &InFrameConfig, policy: TrackerPolicy, phase: f64) -> Self {
        Self::build(config, policy, Some(phase))
    }

    /// Replaces the tuning policy (e.g. with
    /// [`TrackerPolicy::fast_recovery`]). Takes effect from the next
    /// observation; the rolling window is resized immediately.
    pub fn set_policy(&mut self, policy: TrackerPolicy) {
        assert!(
            policy.min_captures <= policy.window,
            "min_captures cannot exceed the window"
        );
        assert!(policy.suspect_after >= 1 && policy.reacquire_after >= 1);
        self.sync.set_window(policy.window);
        self.policy = policy;
    }

    /// Current lock state.
    pub fn state(&self) -> LockState {
        self.state
    }

    /// The phase currently in force (kept through SUSPECT, dropped only
    /// by a relock).
    pub fn phase(&self) -> Option<f64> {
        self.phase
    }

    /// Whether the current phase should be trusted for decoding.
    pub fn is_decodable(&self) -> bool {
        matches!(self.state, LockState::Locked | LockState::Suspect)
    }

    /// Successful (re-)locks so far.
    pub fn relocks(&self) -> u64 {
        self.relocks
    }

    /// Locks dropped so far.
    pub fn lock_losses(&self) -> u64 {
        self.lock_losses
    }

    /// Feeds one scored capture; returns a state transition if one fired.
    pub fn observe(&mut self, t_mid: f64, crispness: f64) -> Option<TrackerEvent> {
        self.last_t = t_mid;
        match self.state {
            LockState::Acquiring | LockState::Reacquiring => {
                self.observe_unlocked(t_mid, crispness)
            }
            LockState::Locked | LockState::Suspect => self.observe_locked(t_mid, crispness),
        }
    }

    /// Registers externally detected degradation — evidence the tracker's
    /// own crispness metric cannot see. The canonical case is a
    /// half-cycle desync: captures land on the *complementary* pattern
    /// half, whose magnitude crispness is just as high as the stable
    /// half's, while decode quality collapses. Moves a healthy lock to
    /// [`LockState::Suspect`].
    pub fn force_suspect(&mut self) -> Option<TrackerEvent> {
        if self.state == LockState::Locked {
            self.state = LockState::Suspect;
            self.low_streak = self.low_streak.max(self.policy.suspect_after);
            self.note_transition(LockState::Locked, LockState::Suspect, self.last_t);
            return Some(TrackerEvent::Suspect);
        }
        None
    }

    /// Registers an externally detected lock loss: drops the phase and
    /// starts bounded re-acquisition, exactly as a crispness collapse
    /// would (see [`PhaseTracker::force_suspect`] for why the caller may
    /// know better than the crispness metric).
    pub fn force_lock_lost(&mut self) -> Option<TrackerEvent> {
        match self.state {
            from @ (LockState::Locked | LockState::Suspect) => {
                self.state = LockState::Reacquiring;
                self.lock_losses += 1;
                self.low_streak = 0;
                self.recent = None;
                self.baseline = None;
                self.sync.clear();
                self.obs_since_clear = 0;
                self.note_transition(from, LockState::Reacquiring, self.last_t);
                Some(TrackerEvent::LockLost)
            }
            LockState::Acquiring | LockState::Reacquiring => None,
        }
    }

    fn observe_unlocked(&mut self, t_mid: f64, crispness: f64) -> Option<TrackerEvent> {
        self.sync.observe(t_mid, crispness);
        self.obs_since_clear += 1;
        if self.sync.len() >= self.policy.min_captures {
            if let Some(est) = self.sync.estimate() {
                if est.confidence >= self.policy.min_confidence {
                    let from = self.state;
                    self.phase = Some(est.phase);
                    self.state = LockState::Locked;
                    self.relocks += 1;
                    self.low_streak = 0;
                    self.recent = None;
                    self.baseline = None;
                    self.obs_since_clear = 0;
                    self.obs.relocks.incr();
                    self.note_transition(from, LockState::Locked, t_mid);
                    return Some(TrackerEvent::Locked { phase: est.phase });
                }
            }
        }
        // Keep re-acquisition bounded: if a full double-window of captures
        // never produced a confident estimate, the window is polluted
        // (mid-fault garbage) — start over rather than averaging it in.
        if self.obs_since_clear >= 2 * self.policy.min_captures.max(1) {
            self.sync.clear();
            self.obs_since_clear = 0;
        }
        None
    }

    fn observe_locked(&mut self, t_mid: f64, crispness: f64) -> Option<TrackerEvent> {
        let d = self.sync.cycle_duration();
        let phase = self.phase.expect("locked states carry a phase");
        let folded = ((t_mid - phase) % d + d) % d;
        if folded / d >= 0.45 {
            // Transition-half capture: carries no verdict on the lock.
            return None;
        }
        let a = self.policy.recent_alpha;
        let recent = match self.recent {
            Some(r) => r * (1.0 - a) + crispness * a,
            None => crispness,
        };
        self.recent = Some(recent);
        let baseline = *self.baseline.get_or_insert(crispness);
        let healthy = recent >= self.policy.suspect_ratio * baseline;
        if healthy {
            // Only a healthy channel may move the baseline — a fault must
            // not drag the reference down to its own level.
            let b = self.policy.baseline_alpha;
            self.baseline = Some(baseline * (1.0 - b) + crispness * b);
            self.low_streak = 0;
            if self.state == LockState::Suspect {
                self.state = LockState::Locked;
                self.note_transition(LockState::Suspect, LockState::Locked, t_mid);
                return Some(TrackerEvent::Recovered);
            }
            return None;
        }
        self.low_streak += 1;
        if self.state == LockState::Locked && self.low_streak >= self.policy.suspect_after {
            self.state = LockState::Suspect;
            self.note_transition(LockState::Locked, LockState::Suspect, t_mid);
            return Some(TrackerEvent::Suspect);
        }
        if self.state == LockState::Suspect
            && self.low_streak >= self.policy.suspect_after + self.policy.reacquire_after
        {
            self.state = LockState::Reacquiring;
            self.lock_losses += 1;
            self.low_streak = 0;
            self.recent = None;
            self.sync.clear();
            self.obs_since_clear = 0;
            self.note_transition(LockState::Suspect, LockState::Reacquiring, t_mid);
            return Some(TrackerEvent::LockLost);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InFrameConfig;

    fn synchronizer() -> CycleSynchronizer {
        CycleSynchronizer::new(&InFrameConfig::small_test()) // τ=12 → 0.1 s
    }

    /// Synthetic channel: crispness is high in the first half of the true
    /// cycle, low in the second.
    fn observe_synthetic(sync: &mut CycleSynchronizer, true_phase: f64, captures: usize) {
        let d = sync.cycle_duration();
        for j in 0..captures {
            let t = j as f64 * (1.0 / 30.0); // 30 FPS camera
            let folded = ((t - true_phase) % d + d) % d;
            let crisp = if folded / d < 0.5 { 6.0 } else { 1.5 };
            sync.observe(t, crisp);
        }
    }

    #[test]
    fn recovers_known_phase() {
        for true_phase in [0.0, 0.02, 0.05, 0.083] {
            let mut sync = synchronizer();
            observe_synthetic(&mut sync, true_phase, 40);
            let est = sync.estimate().expect("enough observations");
            let d = sync.cycle_duration();
            // Phase error measured circularly.
            let err = {
                let e = (est.phase - true_phase).abs() % d;
                e.min(d - e)
            };
            assert!(
                err < d * 0.15,
                "phase {true_phase}: estimated {} (err {err})",
                est.phase
            );
            assert!(est.confidence > 1.5, "confidence {}", est.confidence);
        }
    }

    #[test]
    fn too_few_observations_is_none() {
        let mut sync = synchronizer();
        sync.observe(0.0, 5.0);
        sync.observe(0.03, 5.0);
        assert!(sync.estimate().is_none());
        assert_eq!(sync.len(), 2);
        assert!(!sync.is_empty());
    }

    #[test]
    fn flat_scores_report_low_confidence() {
        let mut sync = synchronizer();
        for j in 0..30 {
            sync.observe(j as f64 / 30.0, 3.0); // idle channel: flat
        }
        let est = sync.estimate().expect("enough observations");
        assert!(
            est.confidence < 1.2,
            "flat profile must not look confident: {}",
            est.confidence
        );
    }

    #[test]
    fn crispness_uses_top_quartile() {
        // Mostly 0-blocks with a few strong 1-blocks: crispness tracks the
        // strong ones.
        let mut scores = vec![0.2f32; 12];
        scores.extend([6.0, 6.2, 5.8, 6.1]);
        let c = CycleSynchronizer::crispness_of_scores(&scores);
        assert!(c > 5.5, "crispness {c}");
        assert_eq!(CycleSynchronizer::crispness_of_scores(&[]), 0.0);
    }

    #[test]
    fn decisiveness_separates_stable_from_transition() {
        // Bimodal (stable) scores sit far from the threshold on both
        // sides; mid-transition scores hug it.
        let stable = vec![0.2f32, 0.3, 6.1, 6.3, 0.1, 5.9];
        let d1 = CycleSynchronizer::decisiveness_of_scores(&stable, 2.0, 1.0);
        let transition = vec![0.2f32, 2.1, 2.5, 6.3, 1.8, 2.9];
        let d2 = CycleSynchronizer::decisiveness_of_scores(&transition, 2.0, 1.0);
        assert!(d1 > d2 * 1.5, "stable {d1} vs transition {d2}");
        assert_eq!(
            CycleSynchronizer::decisiveness_of_scores(&[], 2.0, 1.0),
            0.0
        );
    }

    #[test]
    fn end_to_end_with_real_scores() {
        // Score real captures rendered with a known (nonzero) phase and
        // recover it.
        use crate::dataframe::DataFrame;
        use crate::demux::Demultiplexer;
        use crate::layout::DataLayout;
        use crate::pattern::{complementary_pair, Complementation};
        use inframe_frame::geometry::Homography;
        use inframe_frame::Plane;

        let cfg = InFrameConfig::small_test();
        let layout = DataLayout::from_config(&cfg);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % 2 == 0)
            .collect();
        let data = DataFrame::encode(&layout, &payload, cfg.coding);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let (crisp_frame, _) = complementary_pair(
            &layout,
            &video,
            &data,
            cfg.delta,
            Complementation::Code,
            |bx, by| {
                if data.bit(bx, by) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let faded = video.clone(); // transition-half capture: washed out

        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        let mut sync = CycleSynchronizer::new(&cfg);
        let d = sync.cycle_duration();
        let true_phase = 0.04;
        for j in 0..36 {
            let t = j as f64 / 30.0;
            let folded = ((t - true_phase) % d + d) % d;
            let capture = if folded / d < 0.5 {
                &crisp_frame
            } else {
                &faded
            };
            let scores = demux.score_capture(capture);
            sync.observe(t, CycleSynchronizer::crispness_of_scores(&scores));
        }
        let est = sync.estimate().unwrap();
        let err = {
            let e = (est.phase - true_phase).abs() % d;
            e.min(d - e)
        };
        assert!(err < d * 0.15, "estimated {} err {err}", est.phase);
    }

    #[test]
    fn forced_degradation_walks_the_state_machine() {
        // External evidence (decode-quality collapse) must drive the same
        // LOCKED → SUSPECT → REACQUIRING path as a crispness collapse.
        let cfg = InFrameConfig::small_test();
        let mut tracker = PhaseTracker::locked_at(&cfg, TrackerPolicy::default(), 0.0);
        assert_eq!(tracker.force_suspect(), Some(TrackerEvent::Suspect));
        assert_eq!(tracker.force_suspect(), None, "already suspect");
        assert_eq!(tracker.state(), LockState::Suspect);
        assert_eq!(tracker.force_lock_lost(), Some(TrackerEvent::LockLost));
        assert_eq!(tracker.state(), LockState::Reacquiring);
        assert_eq!(tracker.lock_losses(), 1);
        assert_eq!(tracker.force_lock_lost(), None, "nothing left to lose");
        assert!(tracker.phase().is_some(), "stale phase kept for telemetry");
    }

    #[test]
    fn instrumented_tracker_reports_transitions_and_dumps_on_loss() {
        let cfg = InFrameConfig::small_test();
        let tele = Telemetry::new();
        let mut tracker =
            PhaseTracker::locked_at(&cfg, TrackerPolicy::default(), 0.0).with_telemetry(&tele);
        let d = cfg.tau as f64 / cfg.refresh_hz;
        let _ = feed(&mut tracker, 0.0, 0, 12, d);
        tracker.force_suspect();
        tracker.force_lock_lost();
        let summary = tele.summary();
        assert_eq!(summary.counter(names::sync::LOCK_LOSSES), 1);
        assert_eq!(summary.counter(names::sync::TRANSITIONS), 2);
        assert_eq!(
            summary
                .histogram(names::sync::IN_STATE_US)
                .expect("in-state histogram registered")
                .count,
            2
        );
        let dump = tele.lock_loss_dump();
        assert!(
            dump.iter().any(|r| matches!(
                r.event,
                inframe_obs::Event::SyncTransition {
                    from: inframe_obs::PhaseState::Suspect,
                    to: inframe_obs::PhaseState::Reacquiring,
                    ..
                }
            )),
            "recorder must capture the SUSPECT→REACQUIRING loss: {dump:?}"
        );
    }

    #[test]
    fn window_bounds_history() {
        let mut sync = synchronizer();
        sync.set_window(10);
        for j in 0..50 {
            sync.observe(j as f64 / 30.0, 3.0);
        }
        assert_eq!(sync.len(), 10);
        sync.clear();
        assert!(sync.is_empty());
    }

    #[test]
    fn set_window_trims_existing_history() {
        let mut sync = synchronizer();
        for j in 0..20 {
            sync.observe(j as f64 / 30.0, 3.0);
        }
        sync.set_window(6);
        assert_eq!(sync.len(), 6);
    }

    /// Synthetic stream for tracker tests: crisp in the true stable half,
    /// faded otherwise, starting at capture index `j0`.
    fn feed(
        tracker: &mut PhaseTracker,
        true_phase: f64,
        j0: usize,
        captures: usize,
        d: f64,
    ) -> Vec<TrackerEvent> {
        let mut events = Vec::new();
        for j in j0..j0 + captures {
            let t = j as f64 / 30.0;
            let folded = ((t - true_phase) % d + d) % d;
            let crisp = if folded / d < 0.5 { 6.0 } else { 1.2 };
            if let Some(e) = tracker.observe(t, crisp) {
                events.push(e);
            }
        }
        events
    }

    #[test]
    fn tracker_acquires_then_stays_locked_on_a_clean_channel() {
        let cfg = InFrameConfig::small_test();
        let mut tracker = PhaseTracker::acquiring(&cfg, TrackerPolicy::default());
        assert_eq!(tracker.state(), LockState::Acquiring);
        assert!(!tracker.is_decodable());
        let d = cfg.tau as f64 / cfg.refresh_hz;
        let events = feed(&mut tracker, 0.04, 0, 40, d);
        assert!(matches!(events.first(), Some(TrackerEvent::Locked { .. })));
        assert_eq!(tracker.state(), LockState::Locked);
        assert_eq!(events.len(), 1, "no spurious transitions: {events:?}");
        let err = {
            let p = tracker.phase().unwrap();
            let e = (p - 0.04).abs() % d;
            e.min(d - e)
        };
        assert!(err < d * 0.15);
    }

    #[test]
    fn tracker_suspects_then_drops_then_relocks_after_a_desync() {
        let cfg = InFrameConfig::small_test();
        let d = cfg.tau as f64 / cfg.refresh_hz;
        let mut tracker = PhaseTracker::locked_at(&cfg, TrackerPolicy::default(), 0.0);
        let mut events = feed(&mut tracker, 0.0, 0, 30, d);
        assert!(events.is_empty(), "healthy lock must hold: {events:?}");
        // The sender's cycle origin jumps by half a cycle: everything the
        // old lock calls stable-half is now faded.
        let shifted = 0.5 * d;
        events = feed(&mut tracker, shifted, 30, 60, d);
        let kinds: Vec<&TrackerEvent> = events.iter().collect();
        assert!(
            matches!(kinds[0], TrackerEvent::Suspect),
            "first SUSPECT: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, TrackerEvent::LockLost)),
            "lock must drop: {events:?}"
        );
        let relock = events
            .iter()
            .find_map(|e| match e {
                TrackerEvent::Locked { phase } => Some(*phase),
                _ => None,
            })
            .expect("must relock");
        let err = {
            let e = (relock - shifted).abs() % d;
            e.min(d - e)
        };
        assert!(err < d * 0.2, "relocked at {relock}, want {shifted}");
        assert_eq!(tracker.lock_losses(), 1);
        assert_eq!(tracker.relocks(), 1);
    }

    #[test]
    fn transient_dip_recovers_without_losing_the_lock() {
        let cfg = InFrameConfig::small_test();
        let d = cfg.tau as f64 / cfg.refresh_hz;
        let mut tracker = PhaseTracker::locked_at(&cfg, TrackerPolicy::default(), 0.0);
        let _ = feed(&mut tracker, 0.0, 0, 24, d);
        // A short occluded burst: crisp collapses everywhere for a few
        // captures, then the channel comes back at the same phase.
        let mut events = Vec::new();
        for j in 24..33 {
            let t = j as f64 / 30.0;
            if let Some(e) = tracker.observe(t, 0.3) {
                events.push(e);
            }
        }
        for j in 33..60 {
            let t = j as f64 / 30.0;
            let folded = (t % d + d) % d;
            let crisp = if folded / d < 0.5 { 6.0 } else { 1.2 };
            if let Some(e) = tracker.observe(t, crisp) {
                events.push(e);
            }
        }
        assert!(
            events.contains(&TrackerEvent::Suspect),
            "dip must be noticed: {events:?}"
        );
        assert!(
            events.contains(&TrackerEvent::Recovered),
            "must recover in place: {events:?}"
        );
        assert_eq!(tracker.lock_losses(), 0, "no re-acquisition needed");
        assert_eq!(tracker.state(), LockState::Locked);
    }

    #[test]
    fn reacquisition_is_bounded_after_fault_clearance() {
        let cfg = InFrameConfig::small_test();
        let d = cfg.tau as f64 / cfg.refresh_hz;
        let policy = TrackerPolicy::default();
        let mut tracker = PhaseTracker::locked_at(&cfg, policy.clone(), 0.0);
        let _ = feed(&mut tracker, 0.0, 0, 24, d);
        // A long flat-channel fault: the tracker drops the lock mid-fault
        // and keeps re-clearing its polluted window.
        for j in 24..120 {
            let _ = tracker.observe(j as f64 / 30.0, 0.2);
        }
        assert_eq!(tracker.state(), LockState::Reacquiring);
        // Once the channel clears, the relock needs at most
        // 2×min_captures + min_captures observations (worst-case window
        // pollution + a fresh fill) — 8 cycles at ~3 captures/cycle.
        let mut relock_obs = None;
        for (n, j) in (120..120 + 3 * policy.min_captures + 1).enumerate() {
            let t = j as f64 / 30.0;
            let folded = (t % d + d) % d;
            let crisp = if folded / d < 0.5 { 6.0 } else { 1.2 };
            if let Some(TrackerEvent::Locked { .. }) = tracker.observe(t, crisp) {
                relock_obs = Some(n + 1);
                break;
            }
        }
        let n = relock_obs.expect("must relock after clearance");
        assert!(n <= 3 * policy.min_captures, "relock took {n} captures");
    }
}
