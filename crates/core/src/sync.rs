//! Blind cycle synchronization.
//!
//! The streaming [`crate::Demultiplexer`] assigns captures to data cycles
//! by timestamp, which assumes the receiver knows the sender's cycle
//! phase. Real deployments don't get that for free — the paper cites
//! LightSync for the general unsynchronized-link problem. This module
//! recovers the cycle phase *from the captures themselves*:
//!
//! Captures taken in the first (stable) half of a cycle show crisp
//! chessboards (high block scores); captures during the transition half
//! show faded ones. Score a window of captures, fold capture times by the
//! known cycle duration, and the phase that maximizes mean score over the
//! "stable" half-window is the sender's cycle origin. The cycle duration
//! itself is known from the (public) configuration — only the origin is
//! blind.

use crate::config::InFrameConfig;
use serde::{Deserialize, Serialize};

/// One observation for the estimator: a capture's time and a scalar
/// "pattern crispness" (e.g. the mean of the top-quartile block scores).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncObservation {
    /// Capture midpoint in receiver time, seconds.
    pub t_mid: f64,
    /// Aggregate pattern score of the capture.
    pub crispness: f64,
}

/// Result of a phase estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncEstimate {
    /// Estimated cycle origin in `[0, cycle_duration)` — subtract from
    /// capture times before cycle assignment.
    pub phase: f64,
    /// Contrast of the folded score profile (peak mean / trough mean);
    /// values near 1 mean the estimate is unreliable (e.g. an idle
    /// channel).
    pub confidence: f64,
}

/// Estimates the sender's cycle phase from scored captures.
///
/// Needs observations spanning at least a few cycles; 8–10 captures are
/// plenty in practice (the camera sees 2.5–3 captures per cycle).
#[derive(Debug, Clone)]
pub struct CycleSynchronizer {
    cycle_duration: f64,
    observations: Vec<SyncObservation>,
    /// Number of trial phases evaluated over one cycle.
    resolution: usize,
}

impl CycleSynchronizer {
    /// Creates a synchronizer for the configuration.
    pub fn new(config: &InFrameConfig) -> Self {
        Self {
            cycle_duration: config.tau as f64 / config.refresh_hz,
            observations: Vec::new(),
            resolution: 48,
        }
    }

    /// The cycle duration being assumed, seconds.
    pub fn cycle_duration(&self) -> f64 {
        self.cycle_duration
    }

    /// Records one scored capture.
    pub fn observe(&mut self, t_mid: f64, crispness: f64) {
        self.observations.push(SyncObservation { t_mid, crispness });
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Estimates the phase, or `None` with fewer than 4 observations.
    ///
    /// For each trial phase the observations are folded into the cycle and
    /// split into the stable half (`[0, 0.45)` of the cycle, where the
    /// demultiplexer scores captures) and the transition half; the trial
    /// maximizing the stable-half mean is returned.
    pub fn estimate(&self) -> Option<SyncEstimate> {
        if self.observations.len() < 4 {
            return None;
        }
        let d = self.cycle_duration;
        // Evaluate the folded stable-half mean at each trial phase.
        let mut means = vec![f64::NEG_INFINITY; self.resolution];
        let mut worst_mean = f64::INFINITY;
        let mut best_mean = f64::NEG_INFINITY;
        for (i, mean_slot) in means.iter_mut().enumerate() {
            let trial = d * i as f64 / self.resolution as f64;
            let mut stable_sum = 0.0;
            let mut stable_n = 0u32;
            for obs in &self.observations {
                let folded = ((obs.t_mid - trial) % d + d) % d;
                if folded / d < 0.45 {
                    stable_sum += obs.crispness;
                    stable_n += 1;
                }
            }
            if stable_n == 0 {
                continue;
            }
            let mean = stable_sum / stable_n as f64;
            *mean_slot = mean;
            best_mean = best_mean.max(mean);
            worst_mean = worst_mean.min(mean);
        }
        if !best_mean.is_finite() {
            return None;
        }
        // A 30 FPS camera folds to only a few positions per cycle, so the
        // optimum is a plateau, not a point: take the circular centre of
        // the longest near-best run.
        let near: Vec<bool> = means
            .iter()
            .map(|&m| m >= best_mean - (best_mean - worst_mean).abs() * 0.02 - 1e-12)
            .collect();
        let n = self.resolution;
        let mut best_run = (0usize, 0usize); // (start, len)
        let mut i = 0;
        while i < n {
            if near[i] {
                // Walk the run circularly (but at most n steps).
                let mut len = 0;
                while len < n && near[(i + len) % n] {
                    len += 1;
                }
                if len > best_run.1 {
                    best_run = (i, len);
                }
                i += len.max(1);
            } else {
                i += 1;
            }
        }
        let centre = (best_run.0 + best_run.1 / 2) % n;
        let best_phase = d * centre as f64 / n as f64;
        let confidence = if worst_mean > 1e-12 {
            best_mean / worst_mean
        } else {
            f64::INFINITY
        };
        Some(SyncEstimate {
            phase: best_phase,
            confidence,
        })
    }

    /// Convenience: aggregate block scores into a crispness value — the
    /// mean of the top quartile (robust to frames where most blocks carry
    /// bit 0).
    pub fn crispness_of_scores(scores: &[f32]) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f32> = scores.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("scores must not be NaN"));
        let quartile = (sorted.len() / 4).max(1);
        sorted[..quartile].iter().map(|&v| v as f64).sum::<f64>() / quartile as f64
    }

    /// The sharper sync signal for real channels: the mean normalized
    /// distance of Block scores from the decision threshold.
    ///
    /// Stable-half captures are bimodal (scores near 0 or near the clean
    /// amplitude, both far from `T`); transition-half captures put the
    /// Blocks that flip next cycle at intermediate amplitudes near `T` —
    /// so this statistic dips in the transition half even when plenty of
    /// crisp stable bits remain. Distances are capped at `T + m` so one
    /// very strong block cannot mask many ambiguous ones.
    pub fn decisiveness_of_scores(scores: &[f32], threshold: f32, margin: f32) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        let _ = margin;
        let cap = threshold as f64;
        scores
            .iter()
            .map(|&s| ((s - threshold).abs() as f64).min(cap) / cap)
            .sum::<f64>()
            / scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InFrameConfig;

    fn synchronizer() -> CycleSynchronizer {
        CycleSynchronizer::new(&InFrameConfig::small_test()) // τ=12 → 0.1 s
    }

    /// Synthetic channel: crispness is high in the first half of the true
    /// cycle, low in the second.
    fn observe_synthetic(sync: &mut CycleSynchronizer, true_phase: f64, captures: usize) {
        let d = sync.cycle_duration();
        for j in 0..captures {
            let t = j as f64 * (1.0 / 30.0); // 30 FPS camera
            let folded = ((t - true_phase) % d + d) % d;
            let crisp = if folded / d < 0.5 { 6.0 } else { 1.5 };
            sync.observe(t, crisp);
        }
    }

    #[test]
    fn recovers_known_phase() {
        for true_phase in [0.0, 0.02, 0.05, 0.083] {
            let mut sync = synchronizer();
            observe_synthetic(&mut sync, true_phase, 40);
            let est = sync.estimate().expect("enough observations");
            let d = sync.cycle_duration();
            // Phase error measured circularly.
            let err = {
                let e = (est.phase - true_phase).abs() % d;
                e.min(d - e)
            };
            assert!(
                err < d * 0.15,
                "phase {true_phase}: estimated {} (err {err})",
                est.phase
            );
            assert!(est.confidence > 1.5, "confidence {}", est.confidence);
        }
    }

    #[test]
    fn too_few_observations_is_none() {
        let mut sync = synchronizer();
        sync.observe(0.0, 5.0);
        sync.observe(0.03, 5.0);
        assert!(sync.estimate().is_none());
        assert_eq!(sync.len(), 2);
        assert!(!sync.is_empty());
    }

    #[test]
    fn flat_scores_report_low_confidence() {
        let mut sync = synchronizer();
        for j in 0..30 {
            sync.observe(j as f64 / 30.0, 3.0); // idle channel: flat
        }
        let est = sync.estimate().expect("enough observations");
        assert!(
            est.confidence < 1.2,
            "flat profile must not look confident: {}",
            est.confidence
        );
    }

    #[test]
    fn crispness_uses_top_quartile() {
        // Mostly 0-blocks with a few strong 1-blocks: crispness tracks the
        // strong ones.
        let mut scores = vec![0.2f32; 12];
        scores.extend([6.0, 6.2, 5.8, 6.1]);
        let c = CycleSynchronizer::crispness_of_scores(&scores);
        assert!(c > 5.5, "crispness {c}");
        assert_eq!(CycleSynchronizer::crispness_of_scores(&[]), 0.0);
    }

    #[test]
    fn decisiveness_separates_stable_from_transition() {
        // Bimodal (stable) scores sit far from the threshold on both
        // sides; mid-transition scores hug it.
        let stable = vec![0.2f32, 0.3, 6.1, 6.3, 0.1, 5.9];
        let d1 = CycleSynchronizer::decisiveness_of_scores(&stable, 2.0, 1.0);
        let transition = vec![0.2f32, 2.1, 2.5, 6.3, 1.8, 2.9];
        let d2 = CycleSynchronizer::decisiveness_of_scores(&transition, 2.0, 1.0);
        assert!(d1 > d2 * 1.5, "stable {d1} vs transition {d2}");
        assert_eq!(
            CycleSynchronizer::decisiveness_of_scores(&[], 2.0, 1.0),
            0.0
        );
    }

    #[test]
    fn end_to_end_with_real_scores() {
        // Score real captures rendered with a known (nonzero) phase and
        // recover it.
        use crate::dataframe::DataFrame;
        use crate::demux::Demultiplexer;
        use crate::layout::DataLayout;
        use crate::pattern::{complementary_pair, Complementation};
        use inframe_frame::geometry::Homography;
        use inframe_frame::Plane;

        let cfg = InFrameConfig::small_test();
        let layout = DataLayout::from_config(&cfg);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % 2 == 0)
            .collect();
        let data = DataFrame::encode(&layout, &payload, cfg.coding);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let (crisp_frame, _) = complementary_pair(
            &layout,
            &video,
            &data,
            cfg.delta,
            Complementation::Code,
            |bx, by| {
                if data.bit(bx, by) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let faded = video.clone(); // transition-half capture: washed out

        let demux = Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        let mut sync = CycleSynchronizer::new(&cfg);
        let d = sync.cycle_duration();
        let true_phase = 0.04;
        for j in 0..36 {
            let t = j as f64 / 30.0;
            let folded = ((t - true_phase) % d + d) % d;
            let capture = if folded / d < 0.5 {
                &crisp_frame
            } else {
                &faded
            };
            let scores = demux.score_capture(capture);
            sync.observe(t, CycleSynchronizer::crispness_of_scores(&scores));
        }
        let est = sync.estimate().unwrap();
        let err = {
            let e = (est.phase - true_phase).abs() % d;
            e.min(d - e)
        };
        assert!(err < d * 0.15, "estimated {} err {err}", est.phase);
    }
}
