//! Data frames: payload bits → per-Block bits and back.
//!
//! Encoding (paper §3.3): payload bits fill the first `m²−1` Block slots of
//! each GOB; the last slot carries the XOR parity. The alternative
//! Reed–Solomon mode packs the whole Block grid into bytes protected by
//! RS(n, k) with undecodable Blocks as erasures — the paper's "more
//! sophisticated error correction codes … for larger GOB" future work.

use crate::config::CodingMode;
use crate::layout::DataLayout;
use inframe_code::parity::{gob_check, gob_encode, GobStats, GobStatus};
use inframe_code::rs::ReedSolomon;
use serde::{Deserialize, Serialize};

/// One data frame: a bit per Block, in grid coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataFrame {
    blocks_x: usize,
    blocks_y: usize,
    /// Row-major Block bits.
    bits: Vec<bool>,
}

impl DataFrame {
    /// An all-zero data frame (no pattern anywhere) — what the sender emits
    /// when paused or idle.
    pub fn zero(layout: &DataLayout) -> Self {
        Self {
            blocks_x: layout.blocks_x,
            blocks_y: layout.blocks_y,
            bits: vec![false; layout.num_blocks()],
        }
    }

    /// Encodes payload bits into a data frame under the given coding mode.
    ///
    /// * `Parity` — `payload.len()` must equal
    ///   [`DataLayout::payload_bits_parity`].
    /// * `ReedSolomon` — payload must be `payload_bytes_rs(layout) * 8`
    ///   bits.
    ///
    /// # Panics
    /// Panics on payload length mismatch.
    pub fn encode(layout: &DataLayout, payload: &[bool], coding: CodingMode) -> Self {
        match coding {
            CodingMode::Parity => Self::encode_parity(layout, payload),
            CodingMode::ReedSolomon { parity_bytes } => {
                Self::encode_rs(layout, payload, parity_bytes)
            }
        }
    }

    fn encode_parity(layout: &DataLayout, payload: &[bool]) -> Self {
        assert_eq!(
            payload.len(),
            layout.payload_bits_parity(),
            "payload must carry exactly the parity-mode capacity"
        );
        let per_gob = layout.blocks_per_gob() - 1;
        let mut channel_bits = Vec::with_capacity(layout.num_blocks());
        for gob_payload in payload.chunks(per_gob) {
            channel_bits.extend(gob_encode(gob_payload));
        }
        Self::from_channel_bits(layout, &channel_bits)
    }

    fn encode_rs(layout: &DataLayout, payload: &[bool], parity_bytes: usize) -> Self {
        let (k, codewords) = rs_geometry(layout, parity_bytes);
        assert_eq!(
            payload.len(),
            k * codewords * 8,
            "payload must carry exactly the RS-mode capacity"
        );
        let msg_bytes = pack_bits(payload);
        let n = k + parity_bytes;
        let rs = ReedSolomon::new(n, k).expect("validated RS parameters");
        let mut coded = Vec::with_capacity(n * codewords);
        for chunk in msg_bytes.chunks(k) {
            coded.extend(rs.encode(chunk).expect("length checked"));
        }
        let mut channel_bits = unpack_bits(&coded);
        channel_bits.truncate(layout.num_blocks());
        // Pad any leftover blocks (grid bits not covered by whole
        // codewords) with zeros.
        channel_bits.resize(layout.num_blocks(), false);
        Self::from_channel_bits(layout, &channel_bits)
    }

    fn from_channel_bits(layout: &DataLayout, channel_bits: &[bool]) -> Self {
        assert_eq!(channel_bits.len(), layout.num_blocks());
        let mut bits = vec![false; layout.num_blocks()];
        for (idx, &b) in channel_bits.iter().enumerate() {
            let (bx, by) = layout.block_at_channel_index(idx);
            bits[by * layout.blocks_x + bx] = b;
        }
        Self {
            blocks_x: layout.blocks_x,
            blocks_y: layout.blocks_y,
            bits,
        }
    }

    /// The bit of Block `(bx, by)`.
    ///
    /// # Panics
    /// Panics for out-of-range coordinates.
    pub fn bit(&self, bx: usize, by: usize) -> bool {
        assert!(
            bx < self.blocks_x && by < self.blocks_y,
            "block out of range"
        );
        self.bits[by * self.blocks_x + bx]
    }

    /// Grid width in Blocks.
    pub fn blocks_x(&self) -> usize {
        self.blocks_x
    }

    /// Grid height in Blocks.
    pub fn blocks_y(&self) -> usize {
        self.blocks_y
    }

    /// Fraction of Blocks carrying a `1`.
    pub fn ones_fraction(&self) -> f64 {
        self.bits.iter().filter(|&&b| b).count() as f64 / self.bits.len() as f64
    }
}

/// RS-mode geometry: bytes per codeword message (`k`) and number of whole
/// codewords fitting in the Block grid.
pub fn rs_geometry(layout: &DataLayout, parity_bytes: usize) -> (usize, usize) {
    let total_bytes = layout.num_blocks() / 8;
    let n = (parity_bytes + 2).clamp(16, 255).min(total_bytes);
    let k = n - parity_bytes;
    assert!(k >= 1, "parity bytes leave no payload");
    let codewords = total_bytes / n;
    assert!(codewords >= 1, "grid too small for one RS codeword");
    (k, codewords)
}

/// RS-mode payload capacity in bits.
pub fn payload_bits_rs(layout: &DataLayout, parity_bytes: usize) -> usize {
    let (k, codewords) = rs_geometry(layout, parity_bytes);
    k * codewords * 8
}

/// Decodes received per-Block verdicts back into payload bits.
///
/// `received` gives, per Block grid coordinate (row-major), `Some(bit)` for
/// a decoded Block or `None` for an undecodable one.
///
/// Returns the recovered payload (only bits from clean GOBs / corrected
/// codewords; failed units contribute `None`s) and the GOB statistics that
/// Figure 7 reports.
pub fn decode(
    layout: &DataLayout,
    received: &[Option<bool>],
    coding: CodingMode,
) -> (Vec<Option<bool>>, GobStats) {
    assert_eq!(
        received.len(),
        layout.num_blocks(),
        "verdict length mismatch"
    );
    // Reorder into channel order.
    let channel: Vec<Option<bool>> = (0..layout.num_blocks())
        .map(|idx| {
            let (bx, by) = layout.block_at_channel_index(idx);
            received[by * layout.blocks_x + bx]
        })
        .collect();
    match coding {
        CodingMode::Parity => decode_parity(layout, &channel),
        CodingMode::ReedSolomon { parity_bytes } => decode_rs(layout, &channel, parity_bytes),
    }
}

fn decode_parity(layout: &DataLayout, channel: &[Option<bool>]) -> (Vec<Option<bool>>, GobStats) {
    let per_gob = layout.blocks_per_gob();
    let mut stats = GobStats::default();
    let mut payload = Vec::with_capacity(layout.payload_bits_parity());
    for gob in channel.chunks(per_gob) {
        let (status, bits) = gob_check(gob);
        stats.record(status);
        match (status, bits) {
            (GobStatus::Ok, Some(bits)) => payload.extend(bits.into_iter().map(Some)),
            _ => payload.extend(std::iter::repeat_n(None, per_gob - 1)),
        }
    }
    (payload, stats)
}

fn decode_rs(
    layout: &DataLayout,
    channel: &[Option<bool>],
    parity_bytes: usize,
) -> (Vec<Option<bool>>, GobStats) {
    let (k, codewords) = rs_geometry(layout, parity_bytes);
    let n = k + parity_bytes;
    let rs = ReedSolomon::new(n, k).expect("validated RS parameters");
    // Bits → bytes with erasure tracking: a byte is an erasure if any of
    // its bits is undecodable.
    let total_bytes = layout.num_blocks() / 8;
    let mut bytes = vec![0u8; total_bytes];
    let mut erased = vec![false; total_bytes];
    for (i, byte) in bytes.iter_mut().enumerate() {
        for j in 0..8 {
            match channel[i * 8 + j] {
                Some(true) => *byte |= 1 << (7 - j),
                Some(false) => {}
                None => erased[i] = true,
            }
        }
    }
    // GobStats reinterpretation for RS mode: one "GOB" = one codeword;
    // available = corrected successfully, erroneous = correction failed.
    let mut stats = GobStats::default();
    let mut payload = Vec::with_capacity(k * codewords * 8);
    for c in 0..codewords {
        let cw = &bytes[c * n..(c + 1) * n];
        let erasures: Vec<usize> = (0..n).filter(|&i| erased[c * n + i]).collect();
        match rs.decode(cw, &erasures) {
            Ok(msg) => {
                stats.record(GobStatus::Ok);
                payload.extend(unpack_bits(&msg).into_iter().map(Some));
            }
            Err(_) => {
                stats.record(GobStatus::Erroneous);
                payload.extend(std::iter::repeat_n(None, k * 8));
            }
        }
    }
    (payload, stats)
}

/// Packs bits (MSB-first) into bytes; the final partial byte is
/// zero-padded.
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (7 - i % 8);
        }
    }
    out
}

/// Unpacks bytes into bits, MSB-first.
pub fn unpack_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).map(move |i| (b >> (7 - i)) & 1 == 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InFrameConfig;
    use inframe_code::prbs::Xoshiro256;
    use proptest::prelude::*;

    fn layout() -> DataLayout {
        DataLayout::from_config(&InFrameConfig::small_test())
    }

    fn random_payload(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n).map(|_| rng.next_bit()).collect()
    }

    #[test]
    fn zero_frame_has_no_ones() {
        let l = layout();
        let f = DataFrame::zero(&l);
        assert_eq!(f.ones_fraction(), 0.0);
        assert_eq!(f.blocks_x(), l.blocks_x);
    }

    #[test]
    fn parity_roundtrip_clean_channel() {
        let l = layout();
        let payload = random_payload(l.payload_bits_parity(), 1);
        let frame = DataFrame::encode(&l, &payload, CodingMode::Parity);
        // Perfect reception: read every block bit back.
        let received: Vec<Option<bool>> = (0..l.num_blocks())
            .map(|i| {
                let (bx, by) = (i % l.blocks_x, i / l.blocks_x);
                Some(frame.bit(bx, by))
            })
            .collect();
        let (decoded, stats) = decode(&l, &received, CodingMode::Parity);
        assert_eq!(stats.available_ratio(), 1.0);
        assert_eq!(stats.error_rate(), 0.0);
        let bits: Vec<bool> = decoded.into_iter().map(|b| b.unwrap()).collect();
        assert_eq!(bits, payload);
    }

    #[test]
    fn parity_flags_flipped_block() {
        let l = layout();
        let payload = random_payload(l.payload_bits_parity(), 2);
        let frame = DataFrame::encode(&l, &payload, CodingMode::Parity);
        let mut received: Vec<Option<bool>> = (0..l.num_blocks())
            .map(|i| Some(frame.bit(i % l.blocks_x, i / l.blocks_x)))
            .collect();
        received[0] = Some(!received[0].unwrap());
        let (_, stats) = decode(&l, &received, CodingMode::Parity);
        assert_eq!(stats.erroneous, 1);
        assert_eq!(stats.available_ratio(), 1.0);
    }

    #[test]
    fn parity_marks_missing_block_unavailable() {
        let l = layout();
        let payload = random_payload(l.payload_bits_parity(), 3);
        let frame = DataFrame::encode(&l, &payload, CodingMode::Parity);
        let mut received: Vec<Option<bool>> = (0..l.num_blocks())
            .map(|i| Some(frame.bit(i % l.blocks_x, i / l.blocks_x)))
            .collect();
        received[5] = None;
        let (decoded, stats) = decode(&l, &received, CodingMode::Parity);
        assert_eq!(stats.unavailable, 1);
        assert!(decoded.iter().any(|b| b.is_none()));
    }

    #[test]
    fn rs_roundtrip_clean_channel() {
        let l = layout();
        let parity_bytes = 4;
        let cap = payload_bits_rs(&l, parity_bytes);
        assert!(cap > 0);
        let payload = random_payload(cap, 4);
        let coding = CodingMode::ReedSolomon { parity_bytes };
        let frame = DataFrame::encode(&l, &payload, coding);
        let received: Vec<Option<bool>> = (0..l.num_blocks())
            .map(|i| Some(frame.bit(i % l.blocks_x, i / l.blocks_x)))
            .collect();
        let (decoded, stats) = decode(&l, &received, coding);
        assert_eq!(stats.error_rate(), 0.0);
        let bits: Vec<bool> = decoded.into_iter().map(|b| b.unwrap()).collect();
        assert_eq!(bits, payload);
    }

    #[test]
    fn rs_corrects_missing_blocks() {
        let l = layout();
        let parity_bytes = 6;
        let coding = CodingMode::ReedSolomon { parity_bytes };
        let payload = random_payload(payload_bits_rs(&l, parity_bytes), 5);
        let frame = DataFrame::encode(&l, &payload, coding);
        let mut received: Vec<Option<bool>> = (0..l.num_blocks())
            .map(|i| Some(frame.bit(i % l.blocks_x, i / l.blocks_x)))
            .collect();
        // Knock out a contiguous run of blocks: within RS erasure budget
        // (6 parity bytes → up to 6 erased bytes per codeword).
        for r in received.iter_mut().take(16) {
            *r = None;
        }
        let (decoded, _) = decode(&l, &received, coding);
        let bits: Vec<bool> = decoded.into_iter().map(|b| b.unwrap()).collect();
        assert_eq!(bits, payload, "RS must heal the erased run");
    }

    #[test]
    fn rs_capacity_is_below_parity_grid_but_corrects_more() {
        let l = layout();
        // Sanity: capacities are positive and RS trades capacity for
        // correction.
        let parity_cap = l.payload_bits_parity();
        let rs_cap = payload_bits_rs(&l, 4);
        assert!(parity_cap > 0 && rs_cap > 0);
    }

    #[test]
    fn bit_packing_roundtrip_exact_bytes() {
        let bits = unpack_bits(&[0xA5, 0x3C]);
        assert_eq!(pack_bits(&bits), vec![0xA5, 0x3C]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn wrong_payload_length_panics() {
        let l = layout();
        let _ = DataFrame::encode(&l, &[true; 3], CodingMode::Parity);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn parity_roundtrip_random(seed in any::<u64>()) {
            let l = layout();
            let payload = random_payload(l.payload_bits_parity(), seed);
            let frame = DataFrame::encode(&l, &payload, CodingMode::Parity);
            let received: Vec<Option<bool>> = (0..l.num_blocks())
                .map(|i| Some(frame.bit(i % l.blocks_x, i / l.blocks_x)))
                .collect();
            let (decoded, stats) = decode(&l, &received, CodingMode::Parity);
            prop_assert_eq!(stats.total(), l.num_gobs() as u64);
            let bits: Vec<bool> = decoded.into_iter().map(|b| b.unwrap()).collect();
            prop_assert_eq!(bits, payload);
        }

        #[test]
        fn pack_unpack_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
            prop_assert_eq!(pack_bits(&unpack_bits(&bytes)), bytes);
        }
    }
}
