//! RGB multiplexing.
//!
//! The paper's evaluation videos are grayscale, and the core pipeline
//! operates on luma, but real content is color. Per §3.3 the chessboard
//! perturbation is applied to **all three channels identically** (a pure
//! luminance pattern — chroma untouched), which keeps the embedded data
//! invisible to color perception and lets a receiver that only looks at
//! luma decode unchanged. This module lifts the luma multiplexer to
//! [`inframe_frame::RgbFrame`]s and proves the equivalence.

use crate::dataframe::DataFrame;
use crate::layout::DataLayout;
use crate::pattern::{pair_offsets, Complementation};
use inframe_frame::{arith, Plane, RgbFrame};

/// Renders the complementary pair for an RGB video frame: the (luma-derived)
/// offsets are added to / subtracted from every channel.
///
/// Returns `(V + P, V − P)` as RGB frames, channels clamped to the code
/// range.
pub fn complementary_pair_rgb(
    layout: &DataLayout,
    video: &RgbFrame,
    data: &DataFrame,
    delta: f32,
    complementation: Complementation,
    envelope_amplitude: impl FnMut(usize, usize) -> f32,
) -> (RgbFrame, RgbFrame) {
    // Offsets are computed against the luma plane so local amplitude
    // clamping matches what the (luma) receiver will see.
    let luma = video.luma();
    let (p_plus, p_minus) = pair_offsets(
        layout,
        &luma,
        data,
        delta,
        complementation,
        envelope_amplitude,
    );
    let apply = |frame: &RgbFrame, offsets: &Plane<f32>, sign: f32| {
        let mut out = frame.clone();
        out.for_each_plane_mut(|ch| {
            *ch = arith::add_scaled(ch, offsets, sign).expect("same shape by construction");
        });
        out.clamp_code_range();
        out
    };
    (apply(video, &p_plus, 1.0), apply(video, &p_minus, -1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CodingMode, InFrameConfig};

    fn setup() -> (InFrameConfig, DataLayout, DataFrame) {
        let cfg = InFrameConfig::small_test();
        let layout = DataLayout::from_config(&cfg);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % 2 == 0)
            .collect();
        let data = DataFrame::encode(&layout, &payload, CodingMode::Parity);
        (cfg, layout, data)
    }

    fn amp(data: &DataFrame) -> impl FnMut(usize, usize) -> f32 + '_ {
        move |bx, by| if data.bit(bx, by) { 1.0 } else { 0.0 }
    }

    #[test]
    fn rgb_pair_luma_matches_luma_pipeline() {
        let (cfg, layout, data) = setup();
        // A mid-gray color frame (not neutral: distinct channels).
        let video = RgbFrame::solid(cfg.display_w, cfg.display_h, [110.0, 130.0, 150.0]);
        let (plus_rgb, minus_rgb) = complementary_pair_rgb(
            &layout,
            &video,
            &data,
            cfg.delta,
            Complementation::Code,
            amp(&data),
        );
        // The luma of the RGB pair equals running the luma pipeline on the
        // video's luma (BT.601 weights sum to 1, so adding P to every
        // channel adds P to luma).
        let luma_video = video.luma();
        let (plus_l, minus_l) = crate::pattern::complementary_pair(
            &layout,
            &luma_video,
            &data,
            cfg.delta,
            Complementation::Code,
            amp(&data),
        );
        let d_plus = arith::mae(&plus_rgb.luma(), &plus_l).unwrap();
        let d_minus = arith::mae(&minus_rgb.luma(), &minus_l).unwrap();
        assert!(d_plus < 1e-3, "plus luma diff {d_plus}");
        assert!(d_minus < 1e-3, "minus luma diff {d_minus}");
    }

    #[test]
    fn chroma_is_untouched() {
        let (cfg, layout, data) = setup();
        let video = RgbFrame::solid(cfg.display_w, cfg.display_h, [100.0, 140.0, 90.0]);
        let (plus, _) = complementary_pair_rgb(
            &layout,
            &video,
            &data,
            cfg.delta,
            Complementation::Code,
            amp(&data),
        );
        // Per-pixel chroma (Cb, Cr) stays constant: the same offset on all
        // channels cancels in the color-difference terms.
        for (x, y, _) in video.r.iter_xy().take(4000) {
            let (_, cb0, cr0) = inframe_frame::color::rgb_to_ycbcr(
                video.r.get(x, y),
                video.g.get(x, y),
                video.b.get(x, y),
            );
            let (_, cb1, cr1) = inframe_frame::color::rgb_to_ycbcr(
                plus.r.get(x, y),
                plus.g.get(x, y),
                plus.b.get(x, y),
            );
            assert!((cb0 - cb1).abs() < 1e-2, "Cb moved at ({x},{y})");
            assert!((cr0 - cr1).abs() < 1e-2, "Cr moved at ({x},{y})");
        }
    }

    #[test]
    fn rgb_pair_decodes_via_luma_receiver() {
        use crate::demux::Demultiplexer;
        use inframe_frame::geometry::Homography;

        let (cfg, layout, data) = setup();
        let video = RgbFrame::solid(cfg.display_w, cfg.display_h, [120.0, 127.0, 134.0]);
        let (plus, _) = complementary_pair_rgb(
            &layout,
            &video,
            &data,
            cfg.delta,
            Complementation::Code,
            amp(&data),
        );
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        demux.push_capture(&plus.luma(), 0.01);
        let decoded = demux.finish().unwrap();
        assert_eq!(decoded.stats.error_rate(), 0.0);
        assert!(decoded.stats.available_ratio() > 0.99);
        // Bits match the encoded frame.
        let truth: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % 2 == 0)
            .collect();
        let bits: Vec<bool> = decoded.payload.iter().map(|b| b.unwrap()).collect();
        assert_eq!(bits, truth);
    }

    #[test]
    fn bright_channel_clamps_without_breaking_the_pair() {
        let (cfg, layout, data) = setup();
        // Red near the rail: offsets clamp per the luma plan, channels clip
        // at 255 after application.
        let video = RgbFrame::solid(cfg.display_w, cfg.display_h, [250.0, 127.0, 127.0]);
        let (plus, minus) = complementary_pair_rgb(
            &layout,
            &video,
            &data,
            cfg.delta,
            Complementation::Code,
            amp(&data),
        );
        assert!(plus.r.max_sample() <= 255.0);
        assert!(minus.r.min_sample() >= 0.0);
    }
}
