//! The InFrame receiver: captured frames in, decoded data frames out.
//!
//! Demultiplexing follows §3.3 of the paper: the receiver evaluates the
//! induced noise of the chessboard pattern per Block. Each captured Block
//! is smoothed, the smoothed content subtracted from the original (leaving
//! the high-frequency residual that carries the chessboard plus fine video
//! texture and sensor noise), and the residual is then **demodulated
//! against the known chessboard template** — the spatial-phase-aware way
//! of "checking the induced noise level" that also performs the paper's
//! mean-difference removal: video texture is uncorrelated with the
//! template, so its mean contribution cancels, while the chessboard adds
//! coherently.
//!
//! Scores are aggregated across all captures of a data cycle (the camera
//! sees each cycle 2–4 times), keeping the most confident capture per
//! Block; captures whose exposure straddled a complementary pair show a
//! washed-out pattern and lose. A threshold `T` then decides the bit;
//! Blocks whose best score falls inside the dead zone `T ± margin` are
//! declared undecodable and make their GOB unavailable.

use crate::config::{InFrameConfig, KernelBackend};
use crate::dataframe;
use crate::layout::DataLayout;
use crate::metrics::ThroughputMeter;
use crate::parallel::ParallelEngine;
use inframe_code::parity::GobStats;
use inframe_frame::geometry::Homography;
use inframe_frame::integral::{
    box_blur_fast_into, build_highpass_band, highpass_row_into, prime_highpass_columns,
    BlurScratch, QRowPrefix,
};
use inframe_frame::qplane::{self, horizontal_window_sums_band, QPlane};
use inframe_frame::simd;
use inframe_frame::Plane;
use inframe_obs::{names, Telemetry};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

/// Demodulation result of one Block in one capture.
///
/// Replaces the former `f32::NEG_INFINITY` sentinel: a Block whose
/// template carries no sensor pixels (degenerate projection) — or one
/// never scored inside a cycle — is an explicit [`BlockScore::Unreadable`]
/// instead of a magic float that could leak into comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BlockScore {
    /// Demodulated chessboard amplitude (≥ 0, code values).
    Readable(f32),
    /// The Block could not be demodulated from this capture.
    Unreadable,
}

impl BlockScore {
    /// The score value, if readable.
    pub fn value(self) -> Option<f32> {
        match self {
            BlockScore::Readable(v) => Some(v),
            BlockScore::Unreadable => None,
        }
    }

    /// Keeps the more confident of `self` and `other` (readable beats
    /// unreadable; higher score beats lower).
    pub(crate) fn merge_max(&mut self, other: BlockScore) {
        match (*self, other) {
            (_, BlockScore::Unreadable) => {}
            (BlockScore::Unreadable, s) => *self = s,
            (BlockScore::Readable(b), BlockScore::Readable(s)) if s > b => {
                *self = BlockScore::Readable(s);
            }
            _ => {}
        }
    }
}

/// One decoded data cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodedDataFrame {
    /// Data cycle index.
    pub cycle: u64,
    /// Recovered payload bits; `None` where the covering GOB/codeword
    /// failed.
    pub payload: Vec<Option<bool>>,
    /// GOB statistics (Figure 7's availability and error rate).
    pub stats: GobStats,
    /// Number of captures that contributed.
    pub captures_used: u32,
}

impl DecodedDataFrame {
    /// Number of payload bits actually recovered.
    pub fn recovered_bits(&self) -> usize {
        self.payload.iter().filter(|b| b.is_some()).count()
    }
}

/// Per-Block sensor-space region plus its demodulation template.
/// `pub(crate)` so the batched scorer (`crate::batch`) can replay the
/// same regions against shared sweeps.
#[derive(Debug, Clone)]
pub(crate) struct BlockRegion {
    pub(crate) x: usize,
    pub(crate) y: usize,
    /// The ±1 chessboard template over the region (0 where the sensor
    /// pixel maps outside the Block). Reference-backend representation.
    pub(crate) template: Plane<f32>,
    /// Run-length compressed template for the quantized backend.
    pub(crate) qt: QTemplate,
}

/// Run-length compressed chessboard template: per row, the signed runs of
/// nonzero template cells plus their merged extents, and per demodulation
/// slice the precomputed static weight (nonzero-cell count).
///
/// With this, [`demodulate_quantized`] evaluates `Σ hp·t` as a handful of
/// integral-image row-segment sums per template row (one per chessboard
/// column stripe) and `Σ hp²` as one segment sum per merged span —
/// instead of re-walking every sensor pixel of every Block per capture.
#[derive(Debug, Clone, Default)]
pub(crate) struct QTemplate {
    /// Per template row: half-open index range into `runs`.
    row_runs: Vec<(u32, u32)>,
    /// Per template row: half-open index range into `spans`.
    row_spans: Vec<(u32, u32)>,
    /// Signed runs `(x0, x1, sign)`, x region-relative, half-open.
    runs: Vec<(u16, u16, i8)>,
    /// Maximal nonzero intervals `(x0, x1)` per row (energy sums).
    spans: Vec<(u16, u16)>,
    /// Rows per demodulation slice (`(h/4).max(2)`, as in [`demodulate`]).
    slice_h: usize,
    /// Static weight (`Σ |t|`) per slice.
    pub(crate) slice_weights: Vec<f64>,
    /// Flattened absolute [`QRowPrefix`] table indices, one `(lo, hi)`
    /// pair per run, grouped by slice — the gather-friendly layout
    /// [`inframe_frame::simd::signed_segment_sum_i32`] consumes. Built
    /// for a specific sensor stride; a capture of any other shape falls
    /// back to the per-run `row_sum` loop.
    g_run_lo: Vec<u32>,
    /// Upper table index per run (`g_run_lo[i]..g_run_hi[i]`).
    g_run_hi: Vec<u32>,
    /// Run sign as ±1, parallel to `g_run_lo`.
    g_run_sign: Vec<i32>,
    /// Lower table index per merged span (energy sums).
    g_span_lo: Vec<u32>,
    /// Upper table index per merged span.
    g_span_hi: Vec<u32>,
    /// Per slice: half-open index range into the flattened run arrays.
    slice_runs: Vec<(u32, u32)>,
    /// Per slice: half-open index range into the flattened span arrays.
    slice_spans: Vec<(u32, u32)>,
    /// The `sensor_w + 1` table stride the absolute indices assume
    /// (0 = not built; gather path disabled).
    gather_stride: usize,
}

impl QTemplate {
    /// Flattens the run-length template into absolute prefix-table
    /// indices for one `(region, sensor)` placement. `stride` is the
    /// [`QRowPrefix`] row stride (`sensor_w + 1`).
    fn build_gather(&mut self, region_x: usize, region_y: usize, stride: usize) {
        let h = self.row_runs.len();
        // Absolute indices must round-trip through u32 gather lanes.
        if (region_y + h) * stride + region_x >= u32::MAX as usize {
            return;
        }
        self.gather_stride = stride;
        let num_slices = self.slice_weights.len();
        for s in 0..num_slices {
            let run_start = self.g_run_lo.len() as u32;
            let span_start = self.g_span_lo.len() as u32;
            let y1 = ((s + 1) * self.slice_h).min(h);
            for dy in s * self.slice_h..y1 {
                let base = (region_y + dy) * stride + region_x;
                let (r0, r1) = self.row_runs[dy];
                for &(x0, x1, sign) in &self.runs[r0 as usize..r1 as usize] {
                    self.g_run_lo.push((base + x0 as usize) as u32);
                    self.g_run_hi.push((base + x1 as usize) as u32);
                    self.g_run_sign.push(sign as i32);
                }
                let (s0, s1) = self.row_spans[dy];
                for &(x0, x1) in &self.spans[s0 as usize..s1 as usize] {
                    self.g_span_lo.push((base + x0 as usize) as u32);
                    self.g_span_hi.push((base + x1 as usize) as u32);
                }
            }
            self.slice_runs
                .push((run_start, self.g_run_lo.len() as u32));
            self.slice_spans
                .push((span_start, self.g_span_lo.len() as u32));
        }
    }
}

/// Builds the run-length template representation from the dense `±1/0`
/// template plane.
fn build_qtemplate(template: &Plane<f32>) -> QTemplate {
    let (w, h) = template.shape();
    let slice_h = (h / 4).max(2);
    let num_slices = h.div_ceil(slice_h);
    let mut qt = QTemplate {
        slice_h,
        slice_weights: vec![0.0; num_slices],
        ..QTemplate::default()
    };
    for dy in 0..h {
        let run_start = qt.runs.len() as u32;
        let span_start = qt.spans.len() as u32;
        let row = template.row(dy);
        let mut x = 0;
        while x < w {
            let sign = row[x];
            if sign == 0.0 {
                x += 1;
                continue;
            }
            let x0 = x;
            while x < w && row[x] == sign {
                x += 1;
            }
            qt.runs
                .push((x0 as u16, x as u16, if sign > 0.0 { 1 } else { -1 }));
            qt.slice_weights[dy / slice_h] += (x - x0) as f64;
            let extend = qt.spans.len() as u32 > span_start
                && qt.spans.last().is_some_and(|s| s.1 as usize == x0);
            if extend {
                qt.spans.last_mut().expect("just checked").1 = x as u16;
            } else {
                qt.spans.push((x0 as u16, x as u16));
            }
        }
        qt.row_runs.push((run_start, qt.runs.len() as u32));
        qt.row_spans.push((span_start, qt.spans.len() as u32));
    }
    qt
}

/// Immutable per-geometry receiver state: every Block's sensor region and
/// demodulation template, plus the derived smoothing radius.
///
/// Building this costs one inverse-homography evaluation per sensor pixel
/// of every Block — by far the receiver's most expensive setup step — so
/// it is computed once per `(config, registration, sensor)` geometry and
/// shared via `Arc` between demultiplexers (e.g. parallel ablation runs
/// over the same setup).
#[derive(Debug)]
pub struct RegionCache {
    pub(crate) regions: Vec<BlockRegion>,
    /// Row-major scoring program for the single-worker direct sweep.
    pub(crate) program: RowProgram,
    /// Smoothing radius for the high-pass prefilter, sensor pixels.
    smooth_radius: usize,
    sensor_w: usize,
    sensor_h: usize,
}

/// The per-Block templates re-bucketed by **sensor row**: for each row,
/// every run/span segment any region reads there, with absolute sensor
/// columns and a flat per-`(region, slice)` accumulator index.
///
/// The single-worker quantized path sweeps the capture once in row order,
/// computes each high-pass prefix row into L1-resident scratch
/// ([`highpass_row_into`]) and applies that row's program entries into the
/// slice accumulators — the full prefix tables (12 bytes/px of write
/// traffic per capture) are never materialized. Accumulation order differs
/// from the per-region path (row-major vs region-major), but `i64`
/// addition over the same exact segment sums is associative, so the
/// resulting slice sums — and the scores — are bit-identical.
#[derive(Debug, Default)]
pub(crate) struct RowProgram {
    /// Per sensor row `0..rows_used`: half-open ranges `(runs, spans)`
    /// into the flattened arrays below.
    pub(crate) rows: Vec<(u32, u32, u32, u32)>,
    /// `(x0, x1, tag)` — absolute half-open sensor columns of a signed
    /// template run; `tag` is the accumulator index with the run's sign
    /// in the top bit (set = negative).
    pub(crate) runs: Vec<(u32, u32, u32)>,
    /// `(x0, x1, acc)` — absolute columns of an energy span.
    pub(crate) spans: Vec<(u32, u32, u32)>,
    /// Per region: first accumulator slot (a region's slices are
    /// contiguous).
    pub(crate) slice_base: Vec<u32>,
    /// Accumulator slots across all regions (`Σ slices`).
    pub(crate) total_slices: usize,
}

impl RowProgram {
    fn build(regions: &[BlockRegion]) -> Self {
        let mut slice_base = Vec::with_capacity(regions.len());
        let mut total_slices = 0usize;
        for rg in regions {
            slice_base.push(total_slices as u32);
            total_slices += rg.qt.slice_weights.len();
        }
        let rows_used = regions
            .iter()
            .map(|rg| rg.y + rg.qt.row_runs.len())
            .max()
            .unwrap_or(0);
        // Build-time bucketing by row; flattened below so the hot sweep
        // walks two contiguous arrays.
        let mut by_row_runs: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); rows_used];
        let mut by_row_spans: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); rows_used];
        for (ri, rg) in regions.iter().enumerate() {
            let qt = &rg.qt;
            for dy in 0..qt.row_runs.len() {
                let y = rg.y + dy;
                let acc = slice_base[ri] + (dy / qt.slice_h) as u32;
                let (r0, r1) = qt.row_runs[dy];
                for &(x0, x1, sign) in &qt.runs[r0 as usize..r1 as usize] {
                    let tag = acc | if sign < 0 { 1 << 31 } else { 0 };
                    by_row_runs[y].push((
                        (rg.x + x0 as usize) as u32,
                        (rg.x + x1 as usize) as u32,
                        tag,
                    ));
                }
                let (s0, s1) = qt.row_spans[dy];
                for &(x0, x1) in &qt.spans[s0 as usize..s1 as usize] {
                    by_row_spans[y].push((
                        (rg.x + x0 as usize) as u32,
                        (rg.x + x1 as usize) as u32,
                        acc,
                    ));
                }
            }
        }
        let mut program = RowProgram {
            rows: Vec::with_capacity(rows_used),
            runs: Vec::with_capacity(by_row_runs.iter().map(Vec::len).sum()),
            spans: Vec::with_capacity(by_row_spans.iter().map(Vec::len).sum()),
            slice_base,
            total_slices,
        };
        for (rr, rs) in by_row_runs.into_iter().zip(by_row_spans) {
            let r0 = program.runs.len() as u32;
            let s0 = program.spans.len() as u32;
            program.runs.extend(rr);
            program.spans.extend(rs);
            program.rows.push((
                r0,
                program.runs.len() as u32,
                s0,
                program.spans.len() as u32,
            ));
        }
        program
    }
}

impl RegionCache {
    /// Precomputes regions and templates for one geometry.
    ///
    /// # Panics
    /// Panics if the registration is singular or any Block projects to a
    /// degenerate sensor region.
    pub fn build(
        config: &InFrameConfig,
        registration: &Homography,
        sensor_w: usize,
        sensor_h: usize,
    ) -> Arc<Self> {
        config.validate();
        let layout = DataLayout::from_config(config);
        let inverse = registration
            .inverse()
            .expect("registration homography must be invertible");
        // The chessboard cell size on the sensor sets the smoothing scale.
        let scale = estimate_scale(registration);
        let cell_sensor = (layout.pixel_size as f64 * scale).max(1.0);
        let smooth_radius = (cell_sensor.round() as usize).clamp(1, 8);
        let mut regions = Vec::with_capacity(layout.num_blocks());
        for by in 0..layout.blocks_y {
            for bx in 0..layout.blocks_x {
                let region =
                    build_region(&layout, registration, &inverse, bx, by, sensor_w, sensor_h);
                regions.push(region);
            }
        }
        let program = RowProgram::build(&regions);
        Arc::new(Self {
            regions,
            program,
            smooth_radius,
            sensor_w,
            sensor_h,
        })
    }

    /// Number of Block regions (`layout.num_blocks()`).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The high-pass smoothing radius, sensor pixels.
    pub fn smooth_radius(&self) -> usize {
        self.smooth_radius
    }

    /// The sensor dimensions this cache was built for.
    pub fn sensor_shape(&self) -> (usize, usize) {
        (self.sensor_w, self.sensor_h)
    }
}

/// The streaming demultiplexer.
pub struct Demultiplexer {
    config: InFrameConfig,
    layout: DataLayout,
    cache: Arc<RegionCache>,
    engine: Arc<ParallelEngine>,
    cycle_duration: f64,
    current: Option<CycleAccumulator>,
    /// Reused high-pass buffer (one sensor frame).
    smoothed: Plane<f32>,
    /// Reused blur working memory.
    scratch: BlurScratch,
    /// Reused per-capture score buffer (one slot per Block) — refilled in
    /// place by [`ParallelEngine::map_into`], so scoring a capture
    /// allocates nothing in steady state.
    score_buf: Vec<BlockScore>,
    /// Retired `best` vector of the previously finished cycle, recycled
    /// into the next [`CycleAccumulator`].
    retired_best: Vec<BlockScore>,
    /// Fixed-point working set, allocated only on the quantized backend.
    quant: Option<QuantState>,
    meter: ThroughputMeter,
    obs: DemuxObs,
}

/// Receiver-side telemetry instruments, registered once per
/// demultiplexer. All hot-path updates are relaxed atomics, preserving
/// the zero-steady-state-allocation guarantee.
#[derive(Debug, Clone, Default)]
struct DemuxObs {
    telemetry: Telemetry,
    captures: inframe_obs::Counter,
    aborted: inframe_obs::Counter,
    score_ns: inframe_obs::Histogram,
    /// Milli-ns per sensor pixel per scored capture (see
    /// [`names::kern`] for the unit rationale).
    ns_per_px: inframe_obs::Histogram,
    margin_milli: inframe_obs::Histogram,
    band_rows: inframe_obs::ShardedCounter,
    chan_cycles: inframe_obs::Counter,
    gob_ok: inframe_obs::Counter,
    gob_erroneous: inframe_obs::Counter,
    gob_unavailable: inframe_obs::Counter,
}

impl DemuxObs {
    fn new(telemetry: &Telemetry) -> Self {
        Self {
            captures: telemetry.counter(names::demux::CAPTURES),
            aborted: telemetry.counter(names::demux::ABORTED),
            score_ns: telemetry.histogram(names::demux::SCORE_NS),
            ns_per_px: telemetry.histogram(names::kern::DEMUX_NS_PER_PX),
            margin_milli: telemetry.histogram(names::demux::MARGIN_MILLI),
            band_rows: telemetry.sharded_counter(names::demux::BAND_ROWS),
            chan_cycles: telemetry.counter(names::chan::CYCLES),
            gob_ok: telemetry.counter(names::chan::GOB_OK),
            gob_erroneous: telemetry.counter(names::chan::GOB_ERRONEOUS),
            gob_unavailable: telemetry.counter(names::chan::GOB_UNAVAILABLE),
            telemetry: telemetry.clone(),
        }
    }
}

/// Reused fixed-point buffers of the quantized scoring path. The
/// smoothed and residual planes are never materialized: each band worker
/// quantizes its rows and computes their horizontal window sums (stage
/// 1), then fuses vertical windowing, subtraction and the row-prefix
/// build in one sweep (stage 2, [`build_highpass_band`]).
#[derive(Debug)]
struct QuantState {
    capture: QPlane,
    /// Horizontal window sums of the quantized capture (stage 1 output;
    /// stage 2 reads across band edges, so it lives outside the bands).
    rowsum: Vec<i32>,
    /// Per-band vertical running-sum scratch, keyed by band index. The
    /// mutex is uncontended by construction (each band has exactly one
    /// worker); it exists to keep the scoring closure `Fn`.
    cols: Vec<Mutex<Vec<i32>>>,
    /// Row-prefix tables over the high-pass residual (multi-worker and
    /// mismatched-shape captures only; the single-worker direct sweep
    /// never touches them).
    prefix: QRowPrefix,
    /// Direct-sweep slice accumulators (`Σ hp·t` per `(region, slice)`).
    acc_s: Vec<i64>,
    /// Direct-sweep energy accumulators (`Σ hp²`).
    acc_q: Vec<i64>,
    /// One high-pass prefix row (`sensor_w + 1`) of direct-sweep scratch.
    row_s: Vec<i32>,
    /// Squared-prefix counterpart of `row_s`.
    row_q: Vec<i64>,
}

struct CycleAccumulator {
    cycle: u64,
    /// Best score seen per Block, row-major.
    best: Vec<BlockScore>,
    captures: u32,
}

impl Demultiplexer {
    /// Creates a receiver scoring on [`ParallelEngine::from_env`] workers
    /// (set `INFRAME_WORKERS` to override the count).
    ///
    /// * `registration` — the display→sensor homography (known from setup
    ///   or a registration pass; the paper's fixed lab geometry makes this
    ///   a constant).
    /// * `sensor_w`, `sensor_h` — captured frame dimensions.
    ///
    /// # Panics
    /// Panics if the registration is singular or any Block projects to a
    /// degenerate sensor region.
    pub fn new(
        config: InFrameConfig,
        registration: &Homography,
        sensor_w: usize,
        sensor_h: usize,
    ) -> Self {
        let cache = RegionCache::build(&config, registration, sensor_w, sensor_h);
        Self::with_cache(config, cache, Arc::new(ParallelEngine::from_env()))
    }

    /// Creates a receiver from a prebuilt [`RegionCache`] (shared across
    /// demultiplexers of the same geometry) and an explicit engine.
    /// Decoded output is bit-identical for every worker count.
    pub fn with_cache(
        config: InFrameConfig,
        cache: Arc<RegionCache>,
        engine: Arc<ParallelEngine>,
    ) -> Self {
        config.validate();
        let (sensor_w, sensor_h) = cache.sensor_shape();
        let meter = ThroughputMeter::new(engine.workers());
        let quant = (config.kernel == KernelBackend::Quantized).then(|| QuantState {
            capture: QPlane::new(sensor_w, sensor_h),
            rowsum: vec![0; sensor_w * sensor_h],
            cols: (0..engine.workers())
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            prefix: QRowPrefix::default(),
            acc_s: vec![0; cache.program.total_slices],
            acc_q: vec![0; cache.program.total_slices],
            row_s: vec![0; sensor_w + 1],
            row_q: vec![0; sensor_w + 1],
        });
        Self {
            cycle_duration: config.tau as f64 / config.refresh_hz,
            layout: DataLayout::from_config(&config),
            config,
            cache,
            engine,
            current: None,
            smoothed: Plane::filled(sensor_w, sensor_h, 0.0),
            scratch: BlurScratch::default(),
            score_buf: Vec::new(),
            retired_best: Vec::new(),
            quant,
            meter,
            obs: DemuxObs::default(),
        }
    }

    /// Attaches telemetry: capture/score instruments, threshold-margin
    /// histograms, the `chan.*` GOB accounting, and per-cycle decode
    /// events go live. Constructors default to the disabled handle (one
    /// branch per instrumented site).
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.obs = DemuxObs::new(telemetry);
        self
    }

    /// The resolved layout.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// The shared per-geometry region/template cache.
    pub fn region_cache(&self) -> &Arc<RegionCache> {
        &self.cache
    }

    /// The scoring engine.
    pub fn engine(&self) -> &Arc<ParallelEngine> {
        &self.engine
    }

    /// Live demux performance: captures/s and worker utilization.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Duration of one data cycle, seconds.
    pub fn cycle_duration(&self) -> f64 {
        self.cycle_duration
    }

    /// Feeds one captured frame. `t_mid` is the capture's temporal centre
    /// (exposure midpoint of the frame) in display time. Returns a decoded
    /// data frame whenever a cycle completes.
    pub fn push_capture(&mut self, capture: &Plane<f32>, t_mid: f64) -> Option<DecodedDataFrame> {
        let cycle = (t_mid / self.cycle_duration).floor().max(0.0) as u64;
        let mut completed = None;
        let flush = matches!(&self.current, Some(acc) if acc.cycle != cycle);
        if flush {
            completed = self.finish();
        }
        // Captures from the second half of a cycle see the smoothing
        // envelope ramping toward the *next* data frame (§3.2): a 0-Block
        // whose bit flips next cycle already shows a growing chessboard.
        // Only first-half captures carry the current frame cleanly; the
        // cycle length τ is chosen so at least one 30 FPS capture always
        // lands there.
        let phase = (t_mid / self.cycle_duration).fract();
        let scored = phase < 0.45;
        if scored {
            self.score_capture_pooled(capture);
        }
        if self.current.is_none() {
            // Recycle the previous cycle's best vector: cycle turnover is
            // allocation-free once the first cycle has been finished.
            let mut best = std::mem::take(&mut self.retired_best);
            best.clear();
            best.resize(self.layout.num_blocks(), BlockScore::Unreadable);
            self.current = Some(CycleAccumulator {
                cycle,
                best,
                captures: 0,
            });
        }
        let acc = self.current.as_mut().expect("accumulator just ensured");
        acc.captures += 1;
        if scored {
            for (best, &score) in acc.best.iter_mut().zip(&self.score_buf) {
                best.merge_max(score);
            }
        }
        completed
    }

    /// Scores one capture into the reused `score_buf` on the configured
    /// backend: one shared high-pass per capture, then per-Block
    /// demodulation fanned out over the workers via
    /// [`ParallelEngine::map_into`]. Allocation-free in steady state.
    fn score_capture_pooled(&mut self, capture: &Plane<f32>) {
        let started = Instant::now();
        let busy_before = self.engine.busy();
        self.score_buf.clear();
        self.score_buf
            .resize(self.cache.regions.len(), BlockScore::Unreadable);
        match self.config.kernel {
            KernelBackend::Reference => {
                box_blur_fast_into(
                    capture,
                    self.cache.smooth_radius,
                    &mut self.scratch,
                    &mut self.smoothed,
                );
                let smoothed = &self.smoothed;
                self.engine
                    .map_into(&self.cache.regions, &mut self.score_buf, |_, region| {
                        demodulate(capture, smoothed, region)
                    });
            }
            KernelBackend::Quantized => {
                let q = self
                    .quant
                    .as_mut()
                    .expect("quantized state is allocated at construction");
                let (w, h) = (capture.width(), capture.height());
                let r = self.cache.smooth_radius;
                if q.capture.shape() != (w, h) {
                    q.capture.reshape(w, h);
                }
                if q.rowsum.len() != w * h {
                    q.rowsum.clear();
                    q.rowsum.resize(w * h, 0);
                }
                // Stage 1 (band-parallel): quantize the capture and take
                // each row's horizontal window sums — both row-local.
                let level = simd::active_level();
                self.engine.for_each_row_band2(
                    h,
                    w,
                    q.capture.samples_mut(),
                    w,
                    &mut q.rowsum,
                    |_, rows, cap, rs| {
                        // Row-interleaved so the window sums read the
                        // just-quantized row while it is still in L1.
                        for (i, y) in rows.enumerate() {
                            let dst = &mut cap[i * w..(i + 1) * w];
                            simd::quantize_slice(level, capture.row(y), dst);
                            horizontal_window_sums_band(dst, w, r, &mut rs[i * w..(i + 1) * w]);
                        }
                    },
                );
                if self.engine.workers() == 1 && (w, h) == self.cache.sensor_shape() {
                    // Direct row sweep: compute each high-pass prefix row
                    // into one reused `w + 1` scratch row and fold the
                    // row's template segments straight into per-(region,
                    // slice) accumulators — the prefix tables are never
                    // materialized, eliminating their 12 bytes/px of
                    // write traffic per capture. Exact i64 sums in a
                    // different (row-major) order, so the scores stay
                    // bit-identical to the table path.
                    let mut col = q.cols[0].lock().expect("col scratch lock");
                    let prog = &self.cache.program;
                    direct_sweep(
                        prog,
                        &q.capture,
                        &q.rowsum,
                        r,
                        &mut col,
                        &mut q.row_s,
                        &mut q.row_q,
                        &mut q.acc_s,
                        &mut q.acc_q,
                    );
                    self.obs.band_rows.add(0, prog.rows.len() as u64);
                    for (ri, region) in self.cache.regions.iter().enumerate() {
                        let base = prog.slice_base[ri] as usize;
                        let n = region.qt.slice_weights.len();
                        self.score_buf[ri] = score_from_slices(
                            &region.qt,
                            &q.acc_s[base..base + n],
                            &q.acc_q[base..base + n],
                        );
                    }
                } else {
                    q.prefix.reshape(w, h);
                    // Stage 2 (band-parallel): fused vertical window,
                    // residual `capture − blur(capture)` and row-prefix
                    // build — bit-identical to the blur→subtract→build
                    // composition and to every other band partition.
                    let qcap = &q.capture;
                    let rowsum = &q.rowsum;
                    let cols = &q.cols;
                    let (sum, sq) = q.prefix.tables_mut();
                    let stride = w + 1;
                    let band_rows = &self.obs.band_rows;
                    self.engine.for_each_row_band2(
                        h,
                        stride,
                        sum,
                        stride,
                        sq,
                        |band, rows, bs, bq| {
                            band_rows.add(band, rows.len() as u64);
                            let mut col = cols[band].lock().expect("col scratch lock");
                            build_highpass_band(bs, bq, qcap, rowsum, r, rows, &mut col);
                        },
                    );
                    let prefix = &q.prefix;
                    self.engine
                        .map_into(&self.cache.regions, &mut self.score_buf, |_, region| {
                            demodulate_quantized(prefix, region)
                        });
                }
            }
        }
        let busy = self.engine.busy().saturating_sub(busy_before);
        let elapsed = started.elapsed();
        self.meter.record_frame(elapsed, busy);
        self.obs.captures.incr();
        self.obs.score_ns.record_ns(elapsed);
        let px = (capture.width() * capture.height()) as u128;
        if let Some(milli_ns) = elapsed.as_nanos().saturating_mul(1000).checked_div(px) {
            self.obs.ns_per_px.record(milli_ns as u64);
        }
    }

    /// Per-Block scores of the most recently scored capture (empty before
    /// the first in-phase capture). Exposed so equivalence tests can
    /// compare raw backend scores without re-running the blur.
    pub fn last_scores(&self) -> &[BlockScore] {
        &self.score_buf
    }

    /// Flushes the in-progress cycle (call at end of stream).
    pub fn finish(&mut self) -> Option<DecodedDataFrame> {
        let mut acc = self.current.take()?;
        let t = self.config.threshold;
        let m = self.config.margin;
        let verdicts: Vec<Option<bool>> = acc
            .best
            .iter()
            .map(|score| match score.value() {
                None => None,
                Some(s) if s > t + m => Some(true),
                Some(s) if s < t - m => Some(false),
                Some(_) => None,
            })
            .collect();
        // Threshold-distance telemetry: how much margin each readable
        // Block's decision had. A healthy channel is strongly bimodal
        // (large distances); scores crowding the dead zone are the
        // leading indicator of availability collapse.
        for score in &acc.best {
            if let Some(s) = score.value() {
                self.obs
                    .margin_milli
                    .record(((s - t).abs() * 1000.0) as u64);
            }
        }
        self.retired_best = std::mem::take(&mut acc.best);
        let (payload, stats) = dataframe::decode(&self.layout, &verdicts, self.config.coding);
        self.obs.chan_cycles.incr();
        self.obs.gob_ok.add(stats.available - stats.erroneous);
        self.obs.gob_erroneous.add(stats.erroneous);
        self.obs.gob_unavailable.add(stats.unavailable);
        self.obs.telemetry.event(inframe_obs::Event::CycleDecoded {
            cycle: acc.cycle,
            ok: (stats.available - stats.erroneous) as u32,
            erroneous: stats.erroneous as u32,
            unavailable: stats.unavailable as u32,
            captures: acc.captures,
        });
        Some(DecodedDataFrame {
            cycle: acc.cycle,
            payload,
            stats,
            captures_used: acc.captures,
        })
    }

    /// Discards the in-progress cycle without decoding it. A receiver
    /// that loses cycle lock calls this: the accumulated scores were
    /// folded with a phase no longer trusted, and decoding them would
    /// emit garbage verdicts.
    pub fn abort_cycle(&mut self) {
        if let Some(acc) = self.current.take() {
            self.retired_best = acc.best;
            self.obs.aborted.incr();
        }
    }

    /// Raw per-Block scores of a single capture — exposed for calibration
    /// and the threshold ablation. Always runs the reference kernels (it
    /// is the oracle); Blocks with no usable sensor pixels report `0.0`.
    /// Thin allocating wrapper over [`Demultiplexer::score_capture_into`].
    pub fn score_capture(&mut self, capture: &Plane<f32>) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.cache.regions.len());
        self.score_capture_into(capture, &mut out);
        out
    }

    /// [`Demultiplexer::score_capture`] writing into a caller-provided
    /// scratch vector (cleared first) and reusing the receiver's blur
    /// buffers — allocation-free once `out`'s capacity covers the Block
    /// count, which is what lets the session layer score acquisition
    /// probes at the streaming rate.
    pub fn score_capture_into(&mut self, capture: &Plane<f32>, out: &mut Vec<f32>) {
        box_blur_fast_into(
            capture,
            self.cache.smooth_radius,
            &mut self.scratch,
            &mut self.smoothed,
        );
        out.clear();
        out.extend(self.cache.regions.iter().map(|r| {
            demodulate(capture, &self.smoothed, r)
                .value()
                .unwrap_or(0.0)
        }));
    }
}

/// One full direct row sweep: computes each fused high-pass prefix row
/// into L1-resident scratch and folds the row program's segments into
/// the per-`(region, slice)` accumulators. Shared verbatim by the
/// single-worker streaming path and the batched scorer
/// (`crate::batch`), which replays it once per distinct photometric
/// variant — keeping the two bit-identical by construction.
#[allow(clippy::too_many_arguments)] // scratch-threading seam; all slices
pub(crate) fn direct_sweep(
    prog: &RowProgram,
    qcap: &QPlane,
    rowsum: &[i32],
    r: usize,
    col: &mut Vec<i32>,
    row_s: &mut [i32],
    row_q: &mut [i64],
    acc_s: &mut [i64],
    acc_q: &mut [i64],
) {
    let (w, h) = qcap.shape();
    prime_highpass_columns(rowsum, w, h, r, 0, col);
    acc_s.fill(0);
    acc_q.fill(0);
    let level = simd::active_level();
    for (y, &(r0, r1, s0, s1)) in prog.rows.iter().enumerate() {
        highpass_row_into(qcap, rowsum, r, y, col, row_s, row_q);
        simd::sweep_row_segments(
            level,
            row_s,
            row_q,
            &prog.runs[r0 as usize..r1 as usize],
            &prog.spans[s0 as usize..s1 as usize],
            acc_s,
            acc_q,
        );
    }
}

/// Demodulated chessboard amplitude of one Block region: twice the
/// template-weighted mean of the high-pass residual, i.e. approximately the
/// captured peak-to-peak chessboard contrast in code values.
/// The region is demodulated in **horizontal slices**, accumulating the
/// absolute correlation per slice. A rolling-shutter camera can catch the
/// `V+D` frame in the top of a Block and the `V−D` frame in the bottom
/// (the strobe index flips at some row); a whole-block correlation would
/// cancel there, while per-slice magnitudes survive with only the boundary
/// slice lost — the receiver-side rolling-shutter resilience of §3.3.
fn demodulate(capture: &Plane<f32>, smoothed: &Plane<f32>, region: &BlockRegion) -> BlockScore {
    demodulate_noised(capture, smoothed, region, 0.0)
}

/// [`demodulate`] with an extra per-cell expected noise power folded into
/// each slice's energy term — how the batched scorer models a receiver's
/// sensor-noise class without perturbing pixels: extra incoherent energy
/// raises the noise floor (and so deterministically lowers the score)
/// exactly as white residual noise of that power would in expectation.
/// `noise_cell_sq = 0.0` adds literal `+0.0` per slice, so the result is
/// bit-identical to the unnoised path.
pub(crate) fn demodulate_noised(
    capture: &Plane<f32>,
    smoothed: &Plane<f32>,
    region: &BlockRegion,
    noise_cell_sq: f64,
) -> BlockScore {
    let t = &region.template;
    let h = t.height();
    // Slices of ~1/4 block height (at least 2 rows) balance sign-flip
    // resilience against the positive bias |noise| picks up per slice.
    let slice_h = (h / 4).max(2);
    let mut total = 0.0f64;
    let mut total_weight = 0.0f64;
    let mut y0 = 0;
    while y0 < h {
        let y1 = (y0 + slice_h).min(h);
        let mut acc = 0.0f64;
        let mut energy = 0.0f64;
        let mut weight = 0.0f64;
        for dy in y0..y1 {
            for dx in 0..t.width() {
                let tv = t.get(dx, dy);
                if tv == 0.0 {
                    continue;
                }
                let x = region.x + dx;
                let y = region.y + dy;
                let hp = (capture.get(x, y) - smoothed.get(x, y)) as f64;
                acc += hp * tv as f64;
                energy += hp * hp;
                weight += tv.abs() as f64;
            }
        }
        let energy = energy + noise_cell_sq * weight;
        // Noise-floor subtraction — the paper's "remove the mean absolute
        // difference": content that is incoherent with the template (video
        // texture, sensor noise) contributes E|Σ hpᵢ| ≈ √(2/π · Σ hpᵢ²) to
        // the slice magnitude. The coherent (template-aligned) part of the
        // energy is excluded first so a clean chessboard is not penalized
        // for its own power.
        let incoherent = if weight > 0.0 {
            (energy - acc * acc / weight).max(0.0)
        } else {
            0.0
        };
        let noise_floor = (2.0 / std::f64::consts::PI * incoherent).sqrt();
        total += (acc.abs() - noise_floor).max(0.0);
        total_weight += weight;
        y0 = y1;
    }
    if total_weight == 0.0 {
        BlockScore::Unreadable
    } else {
        BlockScore::Readable((2.0 * total / total_weight) as f32)
    }
}

/// Quantized-backend demodulation: the same per-slice correlate /
/// noise-floor-subtract formula as [`demodulate`], but with `Σ hp·t` and
/// `Σ hp²` pulled from the high-pass residual's [`QRowPrefix`] via the
/// region's run-length template — a handful of O(1) row-segment lookups
/// per template row instead of a walk over every sensor pixel.
///
/// The integer segment sums are **exact**, so the result is independent
/// of how Blocks are partitioned across workers (PR 1's bit-identical
/// guarantee carries over to the quantized path by construction).
fn demodulate_quantized(integral: &QRowPrefix, region: &BlockRegion) -> BlockScore {
    let qt = &region.qt;
    let h = qt.row_runs.len();
    // The flattened gather indices bake in a specific sensor stride; use
    // them (and the wide segment-sum kernels) only when this capture's
    // prefix table matches the geometry the cache was built for.
    let gather = qt.gather_stride == integral.shape().0 + 1;
    // A Block has at most ~6 rolling-shutter slices (`slice_h = h/4`,
    // floored at 2 rows); the batched gathers fill both stack arrays in
    // one validated kernel call each instead of two calls per slice.
    const MAX_SLICES: usize = 16;
    let num_slices = qt.slice_weights.len();
    assert!(num_slices <= MAX_SLICES, "unexpected slice count");
    let mut accs = [0i64; MAX_SLICES];
    let mut energies = [0i64; MAX_SLICES];
    if gather {
        let level = simd::active_level();
        let (sum_tab, sq_tab) = integral.tables();
        simd::signed_segment_sums_sliced(
            level,
            sum_tab,
            &qt.g_run_lo,
            &qt.g_run_hi,
            &qt.g_run_sign,
            &qt.slice_runs,
            &mut accs[..num_slices],
        );
        simd::segment_sums_sliced(
            level,
            sq_tab,
            &qt.g_span_lo,
            &qt.g_span_hi,
            &qt.slice_spans,
            &mut energies[..num_slices],
        );
    } else {
        for dy in 0..h {
            let slice = dy / qt.slice_h;
            let y = region.y + dy;
            let (r0, r1) = qt.row_runs[dy];
            for &(x0, x1, sign) in &qt.runs[r0 as usize..r1 as usize] {
                let s = integral.row_sum(y, region.x + x0 as usize, region.x + x1 as usize);
                accs[slice] += if sign > 0 { s } else { -s };
            }
            let (s0, s1) = qt.row_spans[dy];
            for &(x0, x1) in &qt.spans[s0 as usize..s1 as usize] {
                energies[slice] +=
                    integral.row_sum_sq(y, region.x + x0 as usize, region.x + x1 as usize);
            }
        }
    }
    score_from_slices(qt, &accs[..num_slices], &energies[..num_slices])
}

/// Folds exact per-slice integer sums (`Σ hp·t` and `Σ hp²`, Q8.7 raw
/// units) into a Block score — the shared back end of
/// [`demodulate_quantized`] and the direct row sweep. Same per-slice
/// correlate / noise-floor-subtract formula as [`demodulate`].
fn score_from_slices(qt: &QTemplate, accs: &[i64], energies: &[i64]) -> BlockScore {
    score_from_slices_noised(qt, accs, energies, 0)
}

/// [`score_from_slices`] with a per-cell expected noise power (in
/// squared Q8.7 raw units) added to each slice's energy — the quantized
/// twin of [`demodulate_noised`]'s noise-as-class model, kept in the
/// integer domain so noise classes fold into exact i64 sums.
/// `noise_raw_sq = 0` is bit-identical to the unnoised path.
pub(crate) fn score_from_slices_noised(
    qt: &QTemplate,
    accs: &[i64],
    energies: &[i64],
    noise_raw_sq: i64,
) -> BlockScore {
    // Q8.7 raw → code values; energies carry two factors of the scale.
    let scale = qplane::LSB as f64;
    let scale_sq = scale * scale;
    let mut total = 0.0f64;
    let mut total_weight = 0.0f64;
    for (slice, (&acc_raw, &energy_raw)) in accs.iter().zip(energies).enumerate() {
        let weight = qt.slice_weights[slice];
        // Slice weights are integral (run-length counts), so the noise
        // energy lands as an exact i64 before any float rounding.
        let energy_raw = energy_raw + noise_raw_sq * weight as i64;
        let acc = acc_raw as f64 * scale;
        let energy = energy_raw as f64 * scale_sq;
        let incoherent = if weight > 0.0 {
            (energy - acc * acc / weight).max(0.0)
        } else {
            0.0
        };
        let noise_floor = (2.0 / std::f64::consts::PI * incoherent).sqrt();
        total += (acc.abs() - noise_floor).max(0.0);
        total_weight += weight;
    }
    if total_weight == 0.0 {
        BlockScore::Unreadable
    } else {
        BlockScore::Readable((2.0 * total / total_weight) as f32)
    }
}

/// Mean linear scale factor of a homography near the display centre — used
/// to size the receiver's smoothing radius.
fn estimate_scale(h: &Homography) -> f64 {
    let (x0, y0) = h.apply(100.0, 100.0).unwrap_or((0.0, 0.0));
    let (x1, _) = h.apply(101.0, 100.0).unwrap_or((1.0, 0.0));
    let (_, y2) = h.apply(100.0, 101.0).unwrap_or((0.0, 1.0));
    (((x1 - x0).abs() + (y2 - y0).abs()) / 2.0).max(1e-6)
}

/// Builds the sensor region and chessboard template for one Block.
fn build_region(
    layout: &DataLayout,
    registration: &Homography,
    inverse: &Homography,
    bx: usize,
    by: usize,
    sensor_w: usize,
    sensor_h: usize,
) -> BlockRegion {
    let r = layout.block_rect(bx, by);
    let corners = [
        (r.x as f64, r.y as f64),
        ((r.x + r.w) as f64, r.y as f64),
        ((r.x + r.w) as f64, (r.y + r.h) as f64),
        (r.x as f64, (r.y + r.h) as f64),
    ];
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for (cx, cy) in corners {
        let (sx, sy) = registration
            .apply(cx, cy)
            .expect("registration must not map blocks to infinity");
        min_x = min_x.min(sx);
        min_y = min_y.min(sy);
        max_x = max_x.max(sx);
        max_y = max_y.max(sy);
    }
    // Inset to avoid bleed from neighbouring blocks, then clamp to the
    // sensor.
    let inset_x = ((max_x - min_x) * 0.10).max(1.0);
    let inset_y = ((max_y - min_y) * 0.10).max(1.0);
    let x0 = ((min_x + inset_x).floor().max(0.0)) as usize;
    let y0 = ((min_y + inset_y).floor().max(0.0)) as usize;
    let x1 = ((max_x - inset_x).ceil().min(sensor_w as f64)) as usize;
    let y1 = ((max_y - inset_y).ceil().min(sensor_h as f64)) as usize;
    assert!(
        x1 > x0 + 1 && y1 > y0 + 1,
        "block ({bx},{by}) projects to a degenerate sensor region"
    );
    // Template: per sensor pixel, map its centre back to display space and
    // take the chessboard parity of its super-Pixel. Pattern value is δ on
    // odd-parity Pixels, 0 on even: after mean removal that is ±δ/2, so
    // the template is +1 (odd) / −1 (even).
    let cell = layout.pixel_size as f64;
    let template = Plane::from_fn(x1 - x0, y1 - y0, |dx, dy| {
        let sx = (x0 + dx) as f64 + 0.5;
        let sy = (y0 + dy) as f64 + 0.5;
        match inverse.apply(sx, sy) {
            Some((ux, uy)) => {
                let lx = ux - r.x as f64;
                let ly = uy - r.y as f64;
                if lx < 0.0 || ly < 0.0 || lx >= r.w as f64 || ly >= r.h as f64 {
                    0.0
                } else {
                    let pi = (lx / cell).floor() as i64;
                    let pj = (ly / cell).floor() as i64;
                    if (pi + pj).rem_euclid(2) == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                }
            }
            None => 0.0,
        }
    });
    let mut qt = build_qtemplate(&template);
    qt.build_gather(x0, y0, sensor_w + 1);
    BlockRegion {
        x: x0,
        y: y0,
        template,
        qt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodingMode;
    use crate::dataframe::DataFrame;
    use crate::pattern::{self, Complementation};

    fn paper_small() -> InFrameConfig {
        InFrameConfig::small_test()
    }

    fn encode_frame(cfg: &InFrameConfig, key: usize) -> (DataLayout, DataFrame, Vec<bool>) {
        let layout = DataLayout::from_config(cfg);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % key == 0)
            .collect();
        let frame = DataFrame::encode(&layout, &payload, CodingMode::Parity);
        (layout, frame, payload)
    }

    fn render_plus(
        cfg: &InFrameConfig,
        layout: &DataLayout,
        frame: &DataFrame,
        video: &Plane<f32>,
    ) -> Plane<f32> {
        let (plus, _) = pattern::complementary_pair(
            layout,
            video,
            frame,
            cfg.delta,
            Complementation::Code,
            |bx, by| {
                if frame.bit(bx, by) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        plus
    }

    #[test]
    fn demux_decodes_synthetic_clean_captures() {
        let cfg = paper_small();
        let (layout, frame, payload) = encode_frame(&cfg, 3);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let plus = render_plus(&cfg, &layout, &frame, &video);
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        assert!(demux.push_capture(&plus, 0.01).is_none());
        assert!(demux.push_capture(&plus, 0.05).is_none());
        let decoded = demux
            .push_capture(&video, demux.cycle_duration() + 0.01)
            .expect("first cycle completes");
        assert_eq!(decoded.cycle, 0);
        assert_eq!(decoded.captures_used, 2);
        assert_eq!(decoded.stats.available_ratio(), 1.0);
        assert_eq!(decoded.stats.error_rate(), 0.0);
        let bits: Vec<bool> = decoded.payload.iter().map(|b| b.unwrap()).collect();
        assert_eq!(bits, payload);
    }

    #[test]
    fn minus_frame_decodes_identically() {
        // The demodulator takes |·|, so V−D captures decode the same way.
        let cfg = paper_small();
        let (layout, frame, payload) = encode_frame(&cfg, 2);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let (_, minus) = pattern::complementary_pair(
            &layout,
            &video,
            &frame,
            cfg.delta,
            Complementation::Code,
            |bx, by| {
                if frame.bit(bx, by) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        demux.push_capture(&minus, 0.01);
        let decoded = demux.finish().unwrap();
        let bits: Vec<bool> = decoded.payload.iter().map(|b| b.unwrap()).collect();
        assert_eq!(bits, payload);
    }

    #[test]
    fn clean_scores_separate_clearly() {
        // Scores of 1-blocks sit near δ; 0-blocks near zero — the dead
        // zone between them is wide at δ = 20.
        let cfg = paper_small();
        let (layout, frame, _) = encode_frame(&cfg, 2);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let plus = render_plus(&cfg, &layout, &frame, &video);
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        let scores = demux.score_capture(&plus);
        for (i, &score) in scores.iter().enumerate() {
            let (bx, by) = (i % layout.blocks_x, i / layout.blocks_x);
            if frame.bit(bx, by) {
                assert!(score > 12.0, "1-block ({bx},{by}) score {score}");
            } else {
                assert!(score < 2.0, "0-block ({bx},{by}) score {score}");
            }
        }
    }

    #[test]
    fn washed_out_capture_scores_near_zero() {
        // A capture that integrated across a complementary pair sees plain
        // video: every block scores ~0 → all-zero frame decodes (parity of
        // zeros holds), no spurious 1s.
        let cfg = paper_small();
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        demux.push_capture(&video, 0.01);
        let decoded = demux.finish().unwrap();
        assert_eq!(decoded.stats.available_ratio(), 1.0);
        let zeros = decoded
            .payload
            .iter()
            .filter(|b| **b == Some(false))
            .count();
        assert_eq!(zeros, decoded.payload.len());
    }

    #[test]
    fn half_contrast_lands_in_dead_zone() {
        // A capture with the pattern at a small fraction of δ (e.g. a
        // mostly-cancelled straddle) must be declared undecodable, not
        // guessed.
        let cfg = paper_small();
        let (layout, frame, _) = encode_frame(&cfg, 2);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let faint = pattern::complementary_pair(
            &layout,
            &video,
            &frame,
            cfg.delta,
            Complementation::Code,
            |bx, by| {
                if frame.bit(bx, by) {
                    0.1 // ~10% residual contrast → score ≈ 2 ≈ T
                } else {
                    0.0
                }
            },
        )
        .0;
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        demux.push_capture(&faint, 0.01);
        let decoded = demux.finish().unwrap();
        assert!(
            decoded.stats.unavailable > 0,
            "faint pattern must produce unavailable GOBs, got {:?}",
            decoded.stats
        );
    }

    #[test]
    fn instrumented_demux_reports_channel_accounting() {
        let cfg = paper_small();
        let (layout, frame, _) = encode_frame(&cfg, 3);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let plus = render_plus(&cfg, &layout, &frame, &video);
        let tele = Telemetry::new();
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h)
                .with_telemetry(&tele);
        demux.push_capture(&plus, 0.01);
        demux.push_capture(&plus, 0.02);
        let decoded = demux.finish().unwrap();
        let s = tele.summary();
        assert_eq!(s.counter(names::demux::CAPTURES), 2);
        assert_eq!(s.counter(names::chan::CYCLES), 1);
        assert_eq!(
            s.channel().total_gobs(),
            decoded.stats.available + decoded.stats.unavailable
        );
        assert_eq!(s.histogram(names::demux::SCORE_NS).unwrap().count, 2);
        assert!(s.histogram(names::demux::MARGIN_MILLI).unwrap().count > 0);
        assert!(tele
            .recorder_dump()
            .iter()
            .any(|r| matches!(r.event, inframe_obs::Event::CycleDecoded { cycle: 0, .. })));
    }

    #[test]
    fn finish_on_empty_stream_is_none() {
        let cfg = paper_small();
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        assert!(demux.finish().is_none());
    }

    #[test]
    fn registration_scales_block_regions() {
        // 2/3-resolution sensor (the paper's 1920→1280 ratio): decoding
        // must survive the downsample.
        use inframe_frame::resample::downsample_area;

        let cfg = paper_small();
        let (layout, frame, payload) = encode_frame(&cfg, 4);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let plus = render_plus(&cfg, &layout, &frame, &video);
        let sw = cfg.display_w * 2 / 3;
        let sh = cfg.display_h * 2 / 3;
        let captured = downsample_area(&plus, sw, sh);
        let reg = Homography::scale(
            sw as f64 / cfg.display_w as f64,
            sh as f64 / cfg.display_h as f64,
        );
        let mut demux = Demultiplexer::new(cfg, &reg, sw, sh);
        demux.push_capture(&captured, 0.01);
        let decoded = demux.finish().unwrap();
        assert!(
            decoded.stats.available_ratio() > 0.9,
            "availability {}",
            decoded.stats.available_ratio()
        );
        let mut correct = 0;
        let mut total = 0;
        for (bit, truth) in decoded.payload.iter().zip(&payload) {
            if let Some(b) = bit {
                total += 1;
                if b == truth {
                    correct += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            correct as f64 / total as f64 > 0.97,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn textured_video_confuses_some_blocks() {
        // High-contrast texture at the chessboard scale raises 0-block
        // scores: the root cause of Figure 7's lower availability on real
        // video.
        let cfg = paper_small();
        let (_, _, _) = encode_frame(&cfg, 2);
        let noisy_video = Plane::from_fn(cfg.display_w, cfg.display_h, |x, y| {
            let h = (x as u64)
                .wrapping_mul(2654435761)
                .wrapping_add((y as u64).wrapping_mul(40503));
            80.0 + ((h >> 3) % 120) as f32
        });
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        let scores = demux.score_capture(&noisy_video);
        let max = scores.iter().cloned().fold(0.0f32, f32::max);
        assert!(
            max > 0.5,
            "texture must raise scores above the clean floor, max {max}"
        );
    }
}
