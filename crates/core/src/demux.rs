//! The InFrame receiver: captured frames in, decoded data frames out.
//!
//! Demultiplexing follows §3.3 of the paper: the receiver evaluates the
//! induced noise of the chessboard pattern per Block. Each captured Block
//! is smoothed, the smoothed content subtracted from the original (leaving
//! the high-frequency residual that carries the chessboard plus fine video
//! texture and sensor noise), and the residual is then **demodulated
//! against the known chessboard template** — the spatial-phase-aware way
//! of "checking the induced noise level" that also performs the paper's
//! mean-difference removal: video texture is uncorrelated with the
//! template, so its mean contribution cancels, while the chessboard adds
//! coherently.
//!
//! Scores are aggregated across all captures of a data cycle (the camera
//! sees each cycle 2–4 times), keeping the most confident capture per
//! Block; captures whose exposure straddled a complementary pair show a
//! washed-out pattern and lose. A threshold `T` then decides the bit;
//! Blocks whose best score falls inside the dead zone `T ± margin` are
//! declared undecodable and make their GOB unavailable.

use crate::config::InFrameConfig;
use crate::dataframe;
use crate::layout::DataLayout;
use crate::metrics::ThroughputMeter;
use crate::parallel::ParallelEngine;
use inframe_code::parity::GobStats;
use inframe_frame::geometry::Homography;
use inframe_frame::integral::{box_blur_fast, box_blur_fast_into, BlurScratch};
use inframe_frame::Plane;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// One decoded data cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodedDataFrame {
    /// Data cycle index.
    pub cycle: u64,
    /// Recovered payload bits; `None` where the covering GOB/codeword
    /// failed.
    pub payload: Vec<Option<bool>>,
    /// GOB statistics (Figure 7's availability and error rate).
    pub stats: GobStats,
    /// Number of captures that contributed.
    pub captures_used: u32,
}

impl DecodedDataFrame {
    /// Number of payload bits actually recovered.
    pub fn recovered_bits(&self) -> usize {
        self.payload.iter().filter(|b| b.is_some()).count()
    }
}

/// Per-Block sensor-space region plus its demodulation template.
#[derive(Debug, Clone)]
struct BlockRegion {
    x: usize,
    y: usize,
    /// The ±1 chessboard template over the region (0 where the sensor
    /// pixel maps outside the Block).
    template: Plane<f32>,
}

/// Immutable per-geometry receiver state: every Block's sensor region and
/// demodulation template, plus the derived smoothing radius.
///
/// Building this costs one inverse-homography evaluation per sensor pixel
/// of every Block — by far the receiver's most expensive setup step — so
/// it is computed once per `(config, registration, sensor)` geometry and
/// shared via `Arc` between demultiplexers (e.g. parallel ablation runs
/// over the same setup).
#[derive(Debug)]
pub struct RegionCache {
    regions: Vec<BlockRegion>,
    /// Smoothing radius for the high-pass prefilter, sensor pixels.
    smooth_radius: usize,
    sensor_w: usize,
    sensor_h: usize,
}

impl RegionCache {
    /// Precomputes regions and templates for one geometry.
    ///
    /// # Panics
    /// Panics if the registration is singular or any Block projects to a
    /// degenerate sensor region.
    pub fn build(
        config: &InFrameConfig,
        registration: &Homography,
        sensor_w: usize,
        sensor_h: usize,
    ) -> Arc<Self> {
        config.validate();
        let layout = DataLayout::from_config(config);
        let inverse = registration
            .inverse()
            .expect("registration homography must be invertible");
        // The chessboard cell size on the sensor sets the smoothing scale.
        let scale = estimate_scale(registration);
        let cell_sensor = (layout.pixel_size as f64 * scale).max(1.0);
        let smooth_radius = (cell_sensor.round() as usize).clamp(1, 8);
        let mut regions = Vec::with_capacity(layout.num_blocks());
        for by in 0..layout.blocks_y {
            for bx in 0..layout.blocks_x {
                let region =
                    build_region(&layout, registration, &inverse, bx, by, sensor_w, sensor_h);
                regions.push(region);
            }
        }
        Arc::new(Self {
            regions,
            smooth_radius,
            sensor_w,
            sensor_h,
        })
    }

    /// Number of Block regions (`layout.num_blocks()`).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The high-pass smoothing radius, sensor pixels.
    pub fn smooth_radius(&self) -> usize {
        self.smooth_radius
    }

    /// The sensor dimensions this cache was built for.
    pub fn sensor_shape(&self) -> (usize, usize) {
        (self.sensor_w, self.sensor_h)
    }
}

/// The streaming demultiplexer.
pub struct Demultiplexer {
    config: InFrameConfig,
    layout: DataLayout,
    cache: Arc<RegionCache>,
    engine: Arc<ParallelEngine>,
    cycle_duration: f64,
    current: Option<CycleAccumulator>,
    /// Reused high-pass buffer (one sensor frame).
    smoothed: Plane<f32>,
    /// Reused blur working memory.
    scratch: BlurScratch,
    meter: ThroughputMeter,
}

struct CycleAccumulator {
    cycle: u64,
    /// Best (maximum) score seen per Block, row-major.
    best: Vec<f32>,
    captures: u32,
}

impl Demultiplexer {
    /// Creates a receiver scoring on [`ParallelEngine::from_env`] workers
    /// (set `INFRAME_WORKERS` to override the count).
    ///
    /// * `registration` — the display→sensor homography (known from setup
    ///   or a registration pass; the paper's fixed lab geometry makes this
    ///   a constant).
    /// * `sensor_w`, `sensor_h` — captured frame dimensions.
    ///
    /// # Panics
    /// Panics if the registration is singular or any Block projects to a
    /// degenerate sensor region.
    pub fn new(
        config: InFrameConfig,
        registration: &Homography,
        sensor_w: usize,
        sensor_h: usize,
    ) -> Self {
        let cache = RegionCache::build(&config, registration, sensor_w, sensor_h);
        Self::with_cache(config, cache, Arc::new(ParallelEngine::from_env()))
    }

    /// Creates a receiver from a prebuilt [`RegionCache`] (shared across
    /// demultiplexers of the same geometry) and an explicit engine.
    /// Decoded output is bit-identical for every worker count.
    pub fn with_cache(
        config: InFrameConfig,
        cache: Arc<RegionCache>,
        engine: Arc<ParallelEngine>,
    ) -> Self {
        config.validate();
        let (sensor_w, sensor_h) = cache.sensor_shape();
        let meter = ThroughputMeter::new(engine.workers());
        Self {
            cycle_duration: config.tau as f64 / config.refresh_hz,
            layout: DataLayout::from_config(&config),
            config,
            cache,
            engine,
            current: None,
            smoothed: Plane::filled(sensor_w, sensor_h, 0.0),
            scratch: BlurScratch::default(),
            meter,
        }
    }

    /// The resolved layout.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// The shared per-geometry region/template cache.
    pub fn region_cache(&self) -> &Arc<RegionCache> {
        &self.cache
    }

    /// The scoring engine.
    pub fn engine(&self) -> &Arc<ParallelEngine> {
        &self.engine
    }

    /// Live demux performance: captures/s and worker utilization.
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Duration of one data cycle, seconds.
    pub fn cycle_duration(&self) -> f64 {
        self.cycle_duration
    }

    /// Feeds one captured frame. `t_mid` is the capture's temporal centre
    /// (exposure midpoint of the frame) in display time. Returns a decoded
    /// data frame whenever a cycle completes.
    pub fn push_capture(&mut self, capture: &Plane<f32>, t_mid: f64) -> Option<DecodedDataFrame> {
        let cycle = (t_mid / self.cycle_duration).floor().max(0.0) as u64;
        let mut completed = None;
        let flush = matches!(&self.current, Some(acc) if acc.cycle != cycle);
        if flush {
            completed = self.finish();
        }
        // Captures from the second half of a cycle see the smoothing
        // envelope ramping toward the *next* data frame (§3.2): a 0-Block
        // whose bit flips next cycle already shows a growing chessboard.
        // Only first-half captures carry the current frame cleanly; the
        // cycle length τ is chosen so at least one 30 FPS capture always
        // lands there.
        let phase = (t_mid / self.cycle_duration).fract();
        let scores = if phase < 0.45 {
            Some(self.score_capture_pooled(capture))
        } else {
            None
        };
        let acc = self.current.get_or_insert_with(|| CycleAccumulator {
            cycle,
            best: vec![f32::NEG_INFINITY; self.layout.num_blocks()],
            captures: 0,
        });
        acc.captures += 1;
        if let Some(scores) = scores {
            for (best, score) in acc.best.iter_mut().zip(scores) {
                if score > *best {
                    *best = score;
                }
            }
        }
        completed
    }

    /// Scores one capture on the engine, reusing the demultiplexer's blur
    /// buffers: one shared high-pass per capture, then per-Block
    /// demodulation fanned out over the workers. Allocation-free after the
    /// first call apart from the returned score vector.
    fn score_capture_pooled(&mut self, capture: &Plane<f32>) -> Vec<f32> {
        let started = Instant::now();
        let busy_before = self.engine.busy();
        box_blur_fast_into(
            capture,
            self.cache.smooth_radius,
            &mut self.scratch,
            &mut self.smoothed,
        );
        let smoothed = &self.smoothed;
        let scores = self.engine.map(&self.cache.regions, |_, region| {
            demodulate(capture, smoothed, region)
        });
        let busy = self.engine.busy().saturating_sub(busy_before);
        self.meter.record_frame(started.elapsed(), busy);
        scores
    }

    /// Flushes the in-progress cycle (call at end of stream).
    pub fn finish(&mut self) -> Option<DecodedDataFrame> {
        let acc = self.current.take()?;
        let t = self.config.threshold;
        let m = self.config.margin;
        let verdicts: Vec<Option<bool>> = acc
            .best
            .iter()
            .map(|&score| {
                if score == f32::NEG_INFINITY {
                    None
                } else if score > t + m {
                    Some(true)
                } else if score < t - m {
                    Some(false)
                } else {
                    None
                }
            })
            .collect();
        let (payload, stats) = dataframe::decode(&self.layout, &verdicts, self.config.coding);
        Some(DecodedDataFrame {
            cycle: acc.cycle,
            payload,
            stats,
            captures_used: acc.captures,
        })
    }

    /// Raw per-Block scores of a single capture — exposed for calibration
    /// and the threshold ablation.
    pub fn score_capture(&self, capture: &Plane<f32>) -> Vec<f32> {
        let smoothed = box_blur_fast(capture, self.cache.smooth_radius);
        self.cache
            .regions
            .iter()
            .map(|r| demodulate(capture, &smoothed, r))
            .collect()
    }
}

/// Demodulated chessboard amplitude of one Block region: twice the
/// template-weighted mean of the high-pass residual, i.e. approximately the
/// captured peak-to-peak chessboard contrast in code values.
/// The region is demodulated in **horizontal slices**, accumulating the
/// absolute correlation per slice. A rolling-shutter camera can catch the
/// `V+D` frame in the top of a Block and the `V−D` frame in the bottom
/// (the strobe index flips at some row); a whole-block correlation would
/// cancel there, while per-slice magnitudes survive with only the boundary
/// slice lost — the receiver-side rolling-shutter resilience of §3.3.
fn demodulate(capture: &Plane<f32>, smoothed: &Plane<f32>, region: &BlockRegion) -> f32 {
    let t = &region.template;
    let h = t.height();
    // Slices of ~1/4 block height (at least 2 rows) balance sign-flip
    // resilience against the positive bias |noise| picks up per slice.
    let slice_h = (h / 4).max(2);
    let mut total = 0.0f64;
    let mut total_weight = 0.0f64;
    let mut y0 = 0;
    while y0 < h {
        let y1 = (y0 + slice_h).min(h);
        let mut acc = 0.0f64;
        let mut energy = 0.0f64;
        let mut weight = 0.0f64;
        for dy in y0..y1 {
            for dx in 0..t.width() {
                let tv = t.get(dx, dy);
                if tv == 0.0 {
                    continue;
                }
                let x = region.x + dx;
                let y = region.y + dy;
                let hp = (capture.get(x, y) - smoothed.get(x, y)) as f64;
                acc += hp * tv as f64;
                energy += hp * hp;
                weight += tv.abs() as f64;
            }
        }
        // Noise-floor subtraction — the paper's "remove the mean absolute
        // difference": content that is incoherent with the template (video
        // texture, sensor noise) contributes E|Σ hpᵢ| ≈ √(2/π · Σ hpᵢ²) to
        // the slice magnitude. The coherent (template-aligned) part of the
        // energy is excluded first so a clean chessboard is not penalized
        // for its own power.
        let incoherent = if weight > 0.0 {
            (energy - acc * acc / weight).max(0.0)
        } else {
            0.0
        };
        let noise_floor = (2.0 / std::f64::consts::PI * incoherent).sqrt();
        total += (acc.abs() - noise_floor).max(0.0);
        total_weight += weight;
        y0 = y1;
    }
    if total_weight == 0.0 {
        0.0
    } else {
        (2.0 * total / total_weight) as f32
    }
}

/// Mean linear scale factor of a homography near the display centre — used
/// to size the receiver's smoothing radius.
fn estimate_scale(h: &Homography) -> f64 {
    let (x0, y0) = h.apply(100.0, 100.0).unwrap_or((0.0, 0.0));
    let (x1, _) = h.apply(101.0, 100.0).unwrap_or((1.0, 0.0));
    let (_, y2) = h.apply(100.0, 101.0).unwrap_or((0.0, 1.0));
    (((x1 - x0).abs() + (y2 - y0).abs()) / 2.0).max(1e-6)
}

/// Builds the sensor region and chessboard template for one Block.
fn build_region(
    layout: &DataLayout,
    registration: &Homography,
    inverse: &Homography,
    bx: usize,
    by: usize,
    sensor_w: usize,
    sensor_h: usize,
) -> BlockRegion {
    let r = layout.block_rect(bx, by);
    let corners = [
        (r.x as f64, r.y as f64),
        ((r.x + r.w) as f64, r.y as f64),
        ((r.x + r.w) as f64, (r.y + r.h) as f64),
        (r.x as f64, (r.y + r.h) as f64),
    ];
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for (cx, cy) in corners {
        let (sx, sy) = registration
            .apply(cx, cy)
            .expect("registration must not map blocks to infinity");
        min_x = min_x.min(sx);
        min_y = min_y.min(sy);
        max_x = max_x.max(sx);
        max_y = max_y.max(sy);
    }
    // Inset to avoid bleed from neighbouring blocks, then clamp to the
    // sensor.
    let inset_x = ((max_x - min_x) * 0.10).max(1.0);
    let inset_y = ((max_y - min_y) * 0.10).max(1.0);
    let x0 = ((min_x + inset_x).floor().max(0.0)) as usize;
    let y0 = ((min_y + inset_y).floor().max(0.0)) as usize;
    let x1 = ((max_x - inset_x).ceil().min(sensor_w as f64)) as usize;
    let y1 = ((max_y - inset_y).ceil().min(sensor_h as f64)) as usize;
    assert!(
        x1 > x0 + 1 && y1 > y0 + 1,
        "block ({bx},{by}) projects to a degenerate sensor region"
    );
    // Template: per sensor pixel, map its centre back to display space and
    // take the chessboard parity of its super-Pixel. Pattern value is δ on
    // odd-parity Pixels, 0 on even: after mean removal that is ±δ/2, so
    // the template is +1 (odd) / −1 (even).
    let cell = layout.pixel_size as f64;
    let template = Plane::from_fn(x1 - x0, y1 - y0, |dx, dy| {
        let sx = (x0 + dx) as f64 + 0.5;
        let sy = (y0 + dy) as f64 + 0.5;
        match inverse.apply(sx, sy) {
            Some((ux, uy)) => {
                let lx = ux - r.x as f64;
                let ly = uy - r.y as f64;
                if lx < 0.0 || ly < 0.0 || lx >= r.w as f64 || ly >= r.h as f64 {
                    0.0
                } else {
                    let pi = (lx / cell).floor() as i64;
                    let pj = (ly / cell).floor() as i64;
                    if (pi + pj).rem_euclid(2) == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                }
            }
            None => 0.0,
        }
    });
    BlockRegion {
        x: x0,
        y: y0,
        template,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodingMode;
    use crate::dataframe::DataFrame;
    use crate::pattern::{self, Complementation};

    fn paper_small() -> InFrameConfig {
        InFrameConfig::small_test()
    }

    fn encode_frame(cfg: &InFrameConfig, key: usize) -> (DataLayout, DataFrame, Vec<bool>) {
        let layout = DataLayout::from_config(cfg);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % key == 0)
            .collect();
        let frame = DataFrame::encode(&layout, &payload, CodingMode::Parity);
        (layout, frame, payload)
    }

    fn render_plus(
        cfg: &InFrameConfig,
        layout: &DataLayout,
        frame: &DataFrame,
        video: &Plane<f32>,
    ) -> Plane<f32> {
        let (plus, _) = pattern::complementary_pair(
            layout,
            video,
            frame,
            cfg.delta,
            Complementation::Code,
            |bx, by| {
                if frame.bit(bx, by) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        plus
    }

    #[test]
    fn demux_decodes_synthetic_clean_captures() {
        let cfg = paper_small();
        let (layout, frame, payload) = encode_frame(&cfg, 3);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let plus = render_plus(&cfg, &layout, &frame, &video);
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        assert!(demux.push_capture(&plus, 0.01).is_none());
        assert!(demux.push_capture(&plus, 0.05).is_none());
        let decoded = demux
            .push_capture(&video, demux.cycle_duration() + 0.01)
            .expect("first cycle completes");
        assert_eq!(decoded.cycle, 0);
        assert_eq!(decoded.captures_used, 2);
        assert_eq!(decoded.stats.available_ratio(), 1.0);
        assert_eq!(decoded.stats.error_rate(), 0.0);
        let bits: Vec<bool> = decoded.payload.iter().map(|b| b.unwrap()).collect();
        assert_eq!(bits, payload);
    }

    #[test]
    fn minus_frame_decodes_identically() {
        // The demodulator takes |·|, so V−D captures decode the same way.
        let cfg = paper_small();
        let (layout, frame, payload) = encode_frame(&cfg, 2);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let (_, minus) = pattern::complementary_pair(
            &layout,
            &video,
            &frame,
            cfg.delta,
            Complementation::Code,
            |bx, by| {
                if frame.bit(bx, by) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        demux.push_capture(&minus, 0.01);
        let decoded = demux.finish().unwrap();
        let bits: Vec<bool> = decoded.payload.iter().map(|b| b.unwrap()).collect();
        assert_eq!(bits, payload);
    }

    #[test]
    fn clean_scores_separate_clearly() {
        // Scores of 1-blocks sit near δ; 0-blocks near zero — the dead
        // zone between them is wide at δ = 20.
        let cfg = paper_small();
        let (layout, frame, _) = encode_frame(&cfg, 2);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let plus = render_plus(&cfg, &layout, &frame, &video);
        let demux = Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        let scores = demux.score_capture(&plus);
        for (i, &score) in scores.iter().enumerate() {
            let (bx, by) = (i % layout.blocks_x, i / layout.blocks_x);
            if frame.bit(bx, by) {
                assert!(score > 12.0, "1-block ({bx},{by}) score {score}");
            } else {
                assert!(score < 2.0, "0-block ({bx},{by}) score {score}");
            }
        }
    }

    #[test]
    fn washed_out_capture_scores_near_zero() {
        // A capture that integrated across a complementary pair sees plain
        // video: every block scores ~0 → all-zero frame decodes (parity of
        // zeros holds), no spurious 1s.
        let cfg = paper_small();
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        demux.push_capture(&video, 0.01);
        let decoded = demux.finish().unwrap();
        assert_eq!(decoded.stats.available_ratio(), 1.0);
        let zeros = decoded
            .payload
            .iter()
            .filter(|b| **b == Some(false))
            .count();
        assert_eq!(zeros, decoded.payload.len());
    }

    #[test]
    fn half_contrast_lands_in_dead_zone() {
        // A capture with the pattern at a small fraction of δ (e.g. a
        // mostly-cancelled straddle) must be declared undecodable, not
        // guessed.
        let cfg = paper_small();
        let (layout, frame, _) = encode_frame(&cfg, 2);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let faint = pattern::complementary_pair(
            &layout,
            &video,
            &frame,
            cfg.delta,
            Complementation::Code,
            |bx, by| {
                if frame.bit(bx, by) {
                    0.1 // ~10% residual contrast → score ≈ 2 ≈ T
                } else {
                    0.0
                }
            },
        )
        .0;
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        demux.push_capture(&faint, 0.01);
        let decoded = demux.finish().unwrap();
        assert!(
            decoded.stats.unavailable > 0,
            "faint pattern must produce unavailable GOBs, got {:?}",
            decoded.stats
        );
    }

    #[test]
    fn finish_on_empty_stream_is_none() {
        let cfg = paper_small();
        let mut demux =
            Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        assert!(demux.finish().is_none());
    }

    #[test]
    fn registration_scales_block_regions() {
        // 2/3-resolution sensor (the paper's 1920→1280 ratio): decoding
        // must survive the downsample.
        use inframe_frame::resample::downsample_area;

        let cfg = paper_small();
        let (layout, frame, payload) = encode_frame(&cfg, 4);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        let plus = render_plus(&cfg, &layout, &frame, &video);
        let sw = cfg.display_w * 2 / 3;
        let sh = cfg.display_h * 2 / 3;
        let captured = downsample_area(&plus, sw, sh);
        let reg = Homography::scale(
            sw as f64 / cfg.display_w as f64,
            sh as f64 / cfg.display_h as f64,
        );
        let mut demux = Demultiplexer::new(cfg, &reg, sw, sh);
        demux.push_capture(&captured, 0.01);
        let decoded = demux.finish().unwrap();
        assert!(
            decoded.stats.available_ratio() > 0.9,
            "availability {}",
            decoded.stats.available_ratio()
        );
        let mut correct = 0;
        let mut total = 0;
        for (bit, truth) in decoded.payload.iter().zip(&payload) {
            if let Some(b) = bit {
                total += 1;
                if b == truth {
                    correct += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            correct as f64 / total as f64 > 0.97,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn textured_video_confuses_some_blocks() {
        // High-contrast texture at the chessboard scale raises 0-block
        // scores: the root cause of Figure 7's lower availability on real
        // video.
        let cfg = paper_small();
        let (_, _, _) = encode_frame(&cfg, 2);
        let noisy_video = Plane::from_fn(cfg.display_w, cfg.display_h, |x, y| {
            let h = (x as u64)
                .wrapping_mul(2654435761)
                .wrapping_add((y as u64).wrapping_mul(40503));
            80.0 + ((h >> 3) % 120) as f32
        });
        let demux = Demultiplexer::new(cfg, &Homography::identity(), cfg.display_w, cfg.display_h);
        let scores = demux.score_capture(&noisy_video);
        let max = scores.iter().cloned().fold(0.0f32, f32::max);
        assert!(
            max > 0.5,
            "texture must raise scores above the clean floor, max {max}"
        );
    }
}
