//! Chessboard pattern rendering and local amplitude adjustment.
//!
//! A `1` Block adds a chessboard of super-Pixels at amplitude δ to `V+D`
//! frames and subtracts it from `V−D` frames; a `0` Block leaves the video
//! unchanged (§3.3). Because multiplexed pixel values must stay inside
//! `[0, 255]`, bright/dark areas get a locally reduced amplitude — applied
//! identically to both frames of a complementary pair so the pair still
//! averages to `V`.
//!
//! Two complementation rules are provided:
//!
//! * [`Complementation::Code`] — the paper's definition (`v_p + v_p* =
//!   2v`, §3.2): symmetric in code values. Because the display EOTF is
//!   convex, the *light* average of such a pair sits slightly above the
//!   original, and that offset is modulated by the smoothing envelope —
//!   a residual low-frequency ripple.
//! * [`Complementation::Luminance`] — symmetric in linear light: the code
//!   offsets are chosen so the pair's emitted light averages to exactly
//!   the original's. This is what a production implementation would ship
//!   (and what the workspace defaults to); the ripple ablation quantifies
//!   the difference.

use crate::dataframe::DataFrame;
use crate::layout::DataLayout;
use crate::parallel::ParallelEngine;
use inframe_frame::color;
use inframe_frame::qplane;
use inframe_frame::simd;
use inframe_frame::Plane;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// How complementary frame pairs are balanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Complementation {
    /// Symmetric in code values (`(v+p) + (v−p) = 2v`), the paper's §3.2
    /// definition.
    Code,
    /// Symmetric in emitted linear light (the pair averages to the
    /// original luminance exactly).
    Luminance,
}

/// The per-pixel offsets `(P⁺, P⁻)` such that the displayed pair is
/// `(V + P⁺, V − P⁻)`.
///
/// `envelope_amplitude(bx, by)` returns the per-Block amplitude fraction
/// in `[0, 1]` for the current iteration (1.0 for a stable `1` bit, 0.0
/// for a stable `0`, intermediate during smoothed transitions).
pub fn pair_offsets(
    layout: &DataLayout,
    video: &Plane<f32>,
    data: &DataFrame,
    delta: f32,
    complementation: Complementation,
    envelope_amplitude: impl FnMut(usize, usize) -> f32,
) -> (Plane<f32>, Plane<f32>) {
    let mut plus = Plane::<f32>::filled(video.width(), video.height(), 0.0);
    let mut minus = Plane::<f32>::filled(video.width(), video.height(), 0.0);
    pair_offsets_into(
        layout,
        video,
        data,
        delta,
        complementation,
        envelope_amplitude,
        &ParallelEngine::sequential(),
        &mut plus,
        &mut minus,
    );
    (plus, minus)
}

/// Allocation-free, band-parallel form of [`pair_offsets`]: renders the
/// offsets into caller-provided planes using `engine`'s workers.
///
/// The envelope closure is stateful (`FnMut`), so amplitudes are sampled
/// once on the calling thread — in the same `(by, bx)` row-major order the
/// sequential renderer uses — before the per-pixel work is banded across
/// workers. Every pixel is a pure function of `(x, y, video)`, so the
/// output is **bit-identical for every worker count**.
///
/// # Panics
/// Panics if `plus` or `minus` is not shaped like `video`.
#[allow(clippy::too_many_arguments)]
pub fn pair_offsets_into(
    layout: &DataLayout,
    video: &Plane<f32>,
    data: &DataFrame,
    delta: f32,
    complementation: Complementation,
    envelope_amplitude: impl FnMut(usize, usize) -> f32,
    engine: &ParallelEngine,
    plus: &mut Plane<f32>,
    minus: &mut Plane<f32>,
) {
    let _ = &data; // bits arrive through the envelope closure
    let mut amps = Vec::new();
    sample_amplitudes(layout, envelope_amplitude, &mut amps);
    render_offsets_with_amps(
        layout,
        video,
        delta,
        complementation,
        &amps,
        engine,
        plus,
        minus,
    );
}

/// Samples the per-Block envelope amplitudes into `amps` (reused,
/// row-major `(by, bx)` order — the order every renderer assumes). The
/// closure is stateful (`FnMut`), so this always runs on the calling
/// thread; the streaming multiplexer keeps one `amps` vector alive so
/// pair turnover allocates nothing.
pub fn sample_amplitudes(
    layout: &DataLayout,
    mut envelope_amplitude: impl FnMut(usize, usize) -> f32,
    amps: &mut Vec<f32>,
) {
    amps.clear();
    amps.reserve(layout.blocks_x * layout.blocks_y);
    for by in 0..layout.blocks_y {
        for bx in 0..layout.blocks_x {
            let a = envelope_amplitude(bx, by);
            debug_assert!(
                a <= 1.0 + 1e-6,
                "envelope amplitude out of range at ({bx},{by})"
            );
            amps.push(a);
        }
    }
}

/// Band-parallel offset renderer over presampled amplitudes — the core of
/// [`pair_offsets_into`], split out so callers with a long-lived amplitude
/// buffer render with zero per-pair allocations.
///
/// # Panics
/// Panics if `plus`/`minus` are not shaped like `video` or `amps` does not
/// cover the block grid.
#[allow(clippy::too_many_arguments)]
pub fn render_offsets_with_amps(
    layout: &DataLayout,
    video: &Plane<f32>,
    delta: f32,
    complementation: Complementation,
    amps: &[f32],
    engine: &ParallelEngine,
    plus: &mut Plane<f32>,
    minus: &mut Plane<f32>,
) {
    assert_eq!(plus.shape(), video.shape(), "plus plane must match video");
    assert_eq!(minus.shape(), video.shape(), "minus plane must match video");
    assert_eq!(
        amps.len(),
        layout.blocks_x * layout.blocks_y,
        "one amplitude per Block"
    );
    plus.samples_mut().fill(0.0);
    minus.samples_mut().fill(0.0);
    let width = video.width();
    engine.for_each_band_pair(plus, minus, |rows, band_plus, band_minus| {
        render_band(
            layout,
            video,
            delta,
            complementation,
            amps,
            rows,
            width,
            band_plus,
            band_minus,
        );
    });
}

/// Renders the offset pair for the display rows `rows` into two band
/// slices whose row 0 is display row `rows.start`.
#[allow(clippy::too_many_arguments)]
fn render_band(
    layout: &DataLayout,
    video: &Plane<f32>,
    delta: f32,
    complementation: Complementation,
    amps: &[f32],
    rows: Range<usize>,
    width: usize,
    plus: &mut [f32],
    minus: &mut [f32],
) {
    let cell = layout.pixel_size;
    for by in 0..layout.blocks_y {
        // All blocks of a block-row share one vertical extent; clip it to
        // the band before visiting the row's blocks.
        let row_rect = layout.block_rect(0, by);
        let y_lo = row_rect.y.max(rows.start);
        let y_hi = (row_rect.y + row_rect.h).min(rows.end);
        if y_lo >= y_hi {
            continue;
        }
        for bx in 0..layout.blocks_x {
            let a = amps[by * layout.blocks_x + bx];
            if a <= 0.0 {
                continue;
            }
            let rect = layout.block_rect(bx, by);
            for y in y_lo..y_hi {
                let row_off = (y - rows.start) * width;
                let pj = (y - rect.y) / cell;
                for x in rect.x..rect.x + rect.w {
                    let pi = (x - rect.x) / cell;
                    // Paper: δ where Pixel (i+j) is odd, 0 otherwise.
                    if (pi + pj) % 2 != 1 {
                        continue;
                    }
                    let v = video.get(x, y);
                    // Local adjustment: the full swing must fit in
                    // [0, 255] on both frames of the pair.
                    let amp = (delta * a).min(255.0 - v).min(v).max(0.0);
                    if amp <= 0.0 {
                        continue;
                    }
                    match complementation {
                        Complementation::Code => {
                            plus[row_off + x] = amp;
                            minus[row_off + x] = amp;
                        }
                        Complementation::Luminance => {
                            // Light-symmetric offsets: move ±λ in linear
                            // light around L(v), where λ is half the light
                            // swing of the code-symmetric pair — same
                            // detectability, zero mean-light shift.
                            let l_mid = color::code_to_linear(v);
                            let l_hi = color::code_to_linear(v + amp);
                            let l_lo = color::code_to_linear(v - amp);
                            let lambda = ((l_hi - l_lo) / 2.0).min(l_mid).min(1.0 - l_mid);
                            let code_hi = color::linear_to_code(l_mid + lambda);
                            let code_lo = color::linear_to_code(l_mid - lambda);
                            plus[row_off + x] = (code_hi - v).max(0.0);
                            minus[row_off + x] = (v - code_lo).max(0.0);
                        }
                    }
                }
            }
        }
    }
}

/// Amplitude quantization steps of the [`ChessLut`] (envelope fractions
/// `[0, 1]` map to `0..=LUT_AMP_STEPS`). At 1024 steps and δ ≤ 50 the
/// worst-case amplitude snap is δ/2048 < 0.025 code values — 3 Q8.7 LSB,
/// invisible next to the ±20 chessboard swing.
pub const LUT_AMP_STEPS: usize = 1024;

/// One amplitude step's lookup tables: Q8.7 offsets `(P⁺, P⁻)` indexed by
/// the 8-bit video code value.
#[derive(Debug, Clone)]
pub struct LutTable {
    /// `P⁺` offset per video code value, Q8.7.
    pub plus: [i16; 256],
    /// `P⁻` offset per video code value, Q8.7.
    pub minus: [i16; 256],
    /// `dequantize(plus)`, precomputed so the SIMD render gather adds
    /// exactly the values the scalar path dequantizes per pixel.
    pub plus_f32: [f32; 256],
    /// `dequantize(minus)`, same contract.
    pub minus_f32: [f32; 256],
}

/// Precomputed per-(amplitude step, video code) chessboard delta tables —
/// the quantized render backend.
///
/// The expensive part of [`render_band`] is [`Complementation::Luminance`]:
/// five sRGB transfer evaluations (`powf`) per chessboard pixel, every
/// pair. But the offsets depend only on `(amplitude, video code)`, the
/// envelope takes a handful of distinct amplitudes per configuration
/// (stable 0/1 plus the τ/2 transition samples), and video codes are
/// 8-bit — so the SRRC temporal envelope collapses to a table lookup and
/// a Q8.7 add per pixel. Tables are built lazily per amplitude step
/// (256 entries each) and cached for the multiplexer's lifetime.
#[derive(Debug, Clone)]
pub struct ChessLut {
    delta: f32,
    complementation: Complementation,
    tables: Vec<Option<Box<LutTable>>>,
}

impl ChessLut {
    /// Creates an empty cache for the given amplitude/complementation.
    pub fn new(delta: f32, complementation: Complementation) -> Self {
        Self {
            delta,
            complementation,
            tables: vec![None; LUT_AMP_STEPS + 1],
        }
    }

    /// Quantizes an envelope amplitude fraction to its step index.
    #[inline]
    pub fn amp_step(a: f32) -> u16 {
        (a.clamp(0.0, 1.0) * LUT_AMP_STEPS as f32).round() as u16
    }

    /// Builds the table for `step` if missing (idempotent; call for every
    /// step a frame needs before fanning rendering out over workers).
    pub fn ensure_step(&mut self, step: u16) {
        let slot = &mut self.tables[step as usize];
        if slot.is_some() {
            return;
        }
        let a = step as f32 / LUT_AMP_STEPS as f32;
        let mut table = Box::new(LutTable {
            plus: [0; 256],
            minus: [0; 256],
            plus_f32: [0.0; 256],
            minus_f32: [0.0; 256],
        });
        for code in 0..256usize {
            let v = code as f32;
            // Same local range adjustment as `render_band`.
            let amp = (self.delta * a).min(255.0 - v).min(v).max(0.0);
            if amp <= 0.0 {
                continue;
            }
            let (p, m) = match self.complementation {
                Complementation::Code => (amp, amp),
                Complementation::Luminance => {
                    let l_mid = color::code_to_linear(v);
                    let l_hi = color::code_to_linear(v + amp);
                    let l_lo = color::code_to_linear(v - amp);
                    let lambda = ((l_hi - l_lo) / 2.0).min(l_mid).min(1.0 - l_mid);
                    let code_hi = color::linear_to_code(l_mid + lambda);
                    let code_lo = color::linear_to_code(l_mid - lambda);
                    ((code_hi - v).max(0.0), (v - code_lo).max(0.0))
                }
            };
            table.plus[code] = qplane::quantize(p);
            table.minus[code] = qplane::quantize(m);
            table.plus_f32[code] = qplane::dequantize(table.plus[code]);
            table.minus_f32[code] = qplane::dequantize(table.minus[code]);
        }
        *slot = Some(table);
    }

    /// The table for `step`.
    ///
    /// # Panics
    /// Panics if [`ChessLut::ensure_step`] was not called for `step`.
    #[inline]
    pub fn table(&self, step: u16) -> &LutTable {
        self.tables[step as usize]
            .as_deref()
            .expect("ensure_step must precede table lookups")
    }
}

/// Renders one displayed frame `V ± P` directly (fused video copy + LUT
/// add) — the quantized backend's replacement for offset rendering plus
/// full-frame [`inframe_frame::arith`] add/sub.
///
/// `steps[by·blocks_x + bx]` is the Block's quantized envelope amplitude
/// (see [`ChessLut::amp_step`]); every step referenced must have been
/// built via [`ChessLut::ensure_step`]. Each band walks its rows once,
/// writing every output pixel exactly once: margins and even-parity
/// chessboard cells are straight copies of the video row, odd-parity
/// cells of active Blocks go through [`simd::lut_apply_span`] (AVX2
/// hardware gather, SSE2 manual gather, or the scalar oracle — all
/// bit-identical). The single-write row-major pass both halves the
/// bytes written over the data rectangle (no copy-then-overwrite) and
/// streams each video row through cache once instead of revisiting the
/// band per Block column. Output is **bit-identical for every worker
/// count and SIMD level** (pure per-pixel function).
///
/// # Panics
/// Panics if shapes mismatch or a referenced step was never built.
pub fn render_frame_lut(
    layout: &DataLayout,
    video: &Plane<f32>,
    plus_frame: bool,
    steps: &[u16],
    lut: &ChessLut,
    engine: &ParallelEngine,
    out: &mut Plane<f32>,
) {
    assert_eq!(out.shape(), video.shape(), "output must match video");
    assert_eq!(
        steps.len(),
        layout.blocks_x * layout.blocks_y,
        "one amplitude step per Block"
    );
    let width = video.width();
    let cell = layout.pixel_size;
    let bp = layout.block_px();
    let grid_y0 = layout.origin_y;
    let grid_y1 = grid_y0 + layout.blocks_y * bp;
    let level = simd::active_level();
    engine.for_each_band(out, |rows, band| {
        let vsrc = video.samples();
        for y in rows.clone() {
            let row_off = (y - rows.start) * width;
            let dst = &mut band[row_off..row_off + width];
            let vrow = &vsrc[y * width..(y + 1) * width];
            if y < grid_y0 || y >= grid_y1 {
                dst.copy_from_slice(vrow);
                continue;
            }
            let by = (y - grid_y0) / bp;
            let pj = ((y - grid_y0) % bp) / cell;
            let row_steps = &steps[by * layout.blocks_x..(by + 1) * layout.blocks_x];
            let mut cursor = 0usize;
            for (bx, &step) in row_steps.iter().enumerate() {
                let xa = layout.origin_x + bx * bp;
                if xa > cursor {
                    dst[cursor..xa].copy_from_slice(&vrow[cursor..xa]);
                }
                cursor = xa + bp;
                if step == 0 {
                    dst[xa..cursor].copy_from_slice(&vrow[xa..cursor]);
                    continue;
                }
                let table = lut.table(step);
                let table = if plus_frame {
                    &table.plus_f32
                } else {
                    &table.minus_f32
                };
                for pi in 0..layout.block_size {
                    let x0 = xa + pi * cell;
                    // Paper: δ where Pixel (i+j) is odd, 0 otherwise.
                    if (pi + pj) % 2 == 1 {
                        simd::lut_apply_span(
                            level,
                            &vrow[x0..x0 + cell],
                            table,
                            plus_frame,
                            &mut dst[x0..x0 + cell],
                        );
                    } else {
                        dst[x0..x0 + cell].copy_from_slice(&vrow[x0..x0 + cell]);
                    }
                }
            }
            if cursor < width {
                dst[cursor..width].copy_from_slice(&vrow[cursor..width]);
            }
        }
    });
}

/// Renders the complementary pair `(V + P⁺, V − P⁻)` for one iteration.
pub fn complementary_pair(
    layout: &DataLayout,
    video: &Plane<f32>,
    data: &DataFrame,
    delta: f32,
    complementation: Complementation,
    envelope_amplitude: impl FnMut(usize, usize) -> f32,
) -> (Plane<f32>, Plane<f32>) {
    let (p_plus, p_minus) = pair_offsets(
        layout,
        video,
        data,
        delta,
        complementation,
        envelope_amplitude,
    );
    let plus = inframe_frame::arith::add(video, &p_plus).expect("same shape by construction");
    let minus = inframe_frame::arith::sub(video, &p_minus).expect("same shape by construction");
    (plus, minus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CodingMode, InFrameConfig};

    fn setup() -> (DataLayout, DataFrame) {
        let cfg = InFrameConfig::small_test();
        let layout = DataLayout::from_config(&cfg);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % 2 == 0)
            .collect();
        let frame = DataFrame::encode(&layout, &payload, CodingMode::Parity);
        (layout, frame)
    }

    fn full_amplitude(data: &DataFrame) -> impl FnMut(usize, usize) -> f32 + '_ {
        move |bx, by| if data.bit(bx, by) { 1.0 } else { 0.0 }
    }

    #[test]
    fn code_pair_averages_back_to_video_exactly() {
        let (layout, data) = setup();
        let video = Plane::from_fn(192, 144, |x, y| 60.0 + ((x + y) % 100) as f32);
        let (plus, minus) = complementary_pair(
            &layout,
            &video,
            &data,
            20.0,
            Complementation::Code,
            full_amplitude(&data),
        );
        for (x, y, v) in video.iter_xy() {
            let avg = (plus.get(x, y) + minus.get(x, y)) / 2.0;
            assert!((avg - v).abs() < 1e-4, "({x},{y})");
        }
    }

    #[test]
    fn luminance_pair_averages_to_video_light() {
        let (layout, data) = setup();
        let video = Plane::filled(192, 144, 180.0);
        let (plus, minus) = complementary_pair(
            &layout,
            &video,
            &data,
            30.0,
            Complementation::Luminance,
            full_amplitude(&data),
        );
        for (x, y, v) in video.iter_xy() {
            let l_avg = (color::code_to_linear(plus.get(x, y))
                + color::code_to_linear(minus.get(x, y)))
                / 2.0;
            let l_orig = color::code_to_linear(v);
            assert!(
                (l_avg - l_orig).abs() < 2e-3,
                "light shift at ({x},{y}): {l_avg} vs {l_orig}"
            );
        }
    }

    #[test]
    fn code_pair_shifts_light_upward_on_bright_content() {
        // The convexity ripple the Luminance mode eliminates.
        let (layout, data) = setup();
        let video = Plane::filled(192, 144, 180.0);
        let (plus, minus) = complementary_pair(
            &layout,
            &video,
            &data,
            30.0,
            Complementation::Code,
            full_amplitude(&data),
        );
        let mut max_shift = 0.0f32;
        for (x, y, v) in video.iter_xy() {
            let l_avg = (color::code_to_linear(plus.get(x, y))
                + color::code_to_linear(minus.get(x, y)))
                / 2.0;
            max_shift = max_shift.max(l_avg - color::code_to_linear(v));
        }
        assert!(max_shift > 1e-3, "code pairs must show the light shift");
    }

    #[test]
    fn both_frames_stay_in_code_range() {
        let (layout, data) = setup();
        let video = Plane::from_fn(192, 144, |x, _| if x % 2 == 0 { 3.0 } else { 252.0 });
        for mode in [Complementation::Code, Complementation::Luminance] {
            let (plus, minus) =
                complementary_pair(&layout, &video, &data, 20.0, mode, full_amplitude(&data));
            assert!(plus.max_sample() <= 255.0 + 1e-3);
            assert!(plus.min_sample() >= -1e-3);
            assert!(minus.max_sample() <= 255.0 + 1e-3);
            assert!(minus.min_sample() >= -1e-3);
        }
    }

    #[test]
    fn one_blocks_carry_chessboard_zero_blocks_do_not() {
        let (layout, data) = setup();
        let video = Plane::filled(192, 144, 127.0);
        let (p, _) = pair_offsets(
            &layout,
            &video,
            &data,
            20.0,
            Complementation::Code,
            full_amplitude(&data),
        );
        let mut found_one = false;
        let mut found_zero = false;
        for by in 0..layout.blocks_y {
            for bx in 0..layout.blocks_x {
                let rect = layout.block_rect(bx, by);
                let region = p.crop(rect.x, rect.y, rect.w, rect.h).unwrap();
                let energy: f32 = region.samples().iter().sum();
                if data.bit(bx, by) {
                    assert!(energy > 0.0, "1-block ({bx},{by}) must perturb");
                    found_one = true;
                } else {
                    assert_eq!(energy, 0.0, "0-block ({bx},{by}) must be silent");
                    found_zero = true;
                }
            }
        }
        assert!(found_one && found_zero);
    }

    #[test]
    fn chessboard_cells_have_pixel_granularity() {
        let (layout, data) = setup();
        let video = Plane::filled(192, 144, 127.0);
        let (p, _) = pair_offsets(
            &layout,
            &video,
            &data,
            20.0,
            Complementation::Code,
            full_amplitude(&data),
        );
        let (bx, by) = (0..layout.blocks_y)
            .flat_map(|by| (0..layout.blocks_x).map(move |bx| (bx, by)))
            .find(|&(bx, by)| data.bit(bx, by))
            .expect("some 1 block exists");
        let rect = layout.block_rect(bx, by);
        let cell = layout.pixel_size;
        let base = p.get(rect.x + cell, rect.y); // Pixel (1,0): odd → δ
        for dy in 0..cell {
            for dx in 0..cell {
                assert_eq!(p.get(rect.x + cell + dx, rect.y + dy), base);
            }
        }
        assert_eq!(base, 20.0);
        assert_eq!(p.get(rect.x, rect.y), 0.0);
    }

    #[test]
    fn envelope_scales_amplitude() {
        let (layout, data) = setup();
        let video = Plane::filled(192, 144, 127.0);
        let (half, _) = pair_offsets(
            &layout,
            &video,
            &data,
            20.0,
            Complementation::Code,
            |bx, by| {
                if data.bit(bx, by) {
                    0.5
                } else {
                    0.0
                }
            },
        );
        let (full, _) = pair_offsets(
            &layout,
            &video,
            &data,
            20.0,
            Complementation::Code,
            full_amplitude(&data),
        );
        assert!((half.max_sample() - 10.0).abs() < 1e-4);
        assert!((full.max_sample() - 20.0).abs() < 1e-4);
    }

    #[test]
    fn bright_areas_get_reduced_amplitude() {
        let (layout, data) = setup();
        let video = Plane::filled(192, 144, 250.0);
        let (p, _) = pair_offsets(
            &layout,
            &video,
            &data,
            20.0,
            Complementation::Code,
            full_amplitude(&data),
        );
        // Amplitude capped at 255 − 250 = 5.
        assert!(p.max_sample() <= 5.0 + 1e-4);
    }

    #[test]
    fn lut_render_matches_reference_pair_within_half_lsb() {
        // The fused LUT renderer must agree with pair_offsets + add/sub on
        // integer-valued video (the only values the sender ever feeds it)
        // to within Q8.7 quantization of the offsets.
        let (layout, data) = setup();
        let video = Plane::from_fn(192, 144, |x, y| ((x * 7 + y * 13) % 256) as f32);
        let engine = ParallelEngine::sequential();
        for mode in [Complementation::Code, Complementation::Luminance] {
            let (p_plus, p_minus) =
                pair_offsets(&layout, &video, &data, 20.0, mode, full_amplitude(&data));
            let ref_plus = inframe_frame::arith::add(&video, &p_plus).unwrap();
            let ref_minus = inframe_frame::arith::sub(&video, &p_minus).unwrap();

            let mut amps = Vec::new();
            sample_amplitudes(&layout, full_amplitude(&data), &mut amps);
            let steps: Vec<u16> = amps.iter().map(|&a| ChessLut::amp_step(a)).collect();
            let mut lut = ChessLut::new(20.0, mode);
            for &s in &steps {
                lut.ensure_step(s);
            }
            let mut lut_plus = Plane::filled(192, 144, -1.0);
            let mut lut_minus = Plane::filled(192, 144, -1.0);
            render_frame_lut(&layout, &video, true, &steps, &lut, &engine, &mut lut_plus);
            render_frame_lut(
                &layout,
                &video,
                false,
                &steps,
                &lut,
                &engine,
                &mut lut_minus,
            );

            let half_lsb = qplane::LSB / 2.0 + 1e-6;
            for (x, y, r) in ref_plus.iter_xy() {
                assert!(
                    (lut_plus.get(x, y) - r).abs() <= half_lsb,
                    "{mode:?} plus ({x},{y}): {} vs {r}",
                    lut_plus.get(x, y)
                );
            }
            for (x, y, r) in ref_minus.iter_xy() {
                assert!(
                    (lut_minus.get(x, y) - r).abs() <= half_lsb,
                    "{mode:?} minus ({x},{y}): {} vs {r}",
                    lut_minus.get(x, y)
                );
            }
        }
    }

    #[test]
    fn lut_render_handles_fractional_envelope_amplitudes() {
        // Mid-transition amplitudes go through amp_step quantization; at
        // 1024 steps the amplitude snap is ≤ δ/2048, so the rendered frame
        // stays within (δ/2048 + half an LSB) of the reference.
        let (layout, data) = setup();
        let video = Plane::filled(192, 144, 127.0);
        let engine = ParallelEngine::new(3);
        let frac = |data: &DataFrame| {
            let d = data.clone();
            move |bx: usize, by: usize| if d.bit(bx, by) { 0.37 } else { 0.0 }
        };
        let (p_plus, _) = pair_offsets(
            &layout,
            &video,
            &data,
            20.0,
            Complementation::Luminance,
            frac(&data),
        );
        let ref_plus = inframe_frame::arith::add(&video, &p_plus).unwrap();

        let mut amps = Vec::new();
        sample_amplitudes(&layout, frac(&data), &mut amps);
        let steps: Vec<u16> = amps.iter().map(|&a| ChessLut::amp_step(a)).collect();
        let mut lut = ChessLut::new(20.0, Complementation::Luminance);
        for &s in &steps {
            lut.ensure_step(s);
        }
        let mut lut_plus = Plane::filled(192, 144, 0.0);
        render_frame_lut(&layout, &video, true, &steps, &lut, &engine, &mut lut_plus);

        let tol = 20.0 / (2.0 * LUT_AMP_STEPS as f32) + qplane::LSB / 2.0 + 1e-5;
        for (x, y, r) in ref_plus.iter_xy() {
            assert!(
                (lut_plus.get(x, y) - r).abs() <= tol,
                "({x},{y}): {} vs {r}",
                lut_plus.get(x, y)
            );
        }
    }

    #[test]
    fn lut_render_is_identical_across_worker_counts() {
        let (layout, data) = setup();
        let video = Plane::from_fn(192, 144, |x, y| ((x * 3 + y * 5) % 256) as f32);
        let mut amps = Vec::new();
        sample_amplitudes(&layout, full_amplitude(&data), &mut amps);
        let steps: Vec<u16> = amps.iter().map(|&a| ChessLut::amp_step(a)).collect();
        let mut lut = ChessLut::new(20.0, Complementation::Luminance);
        for &s in &steps {
            lut.ensure_step(s);
        }
        let render = |workers: usize| {
            let engine = ParallelEngine::new(workers);
            let mut out = Plane::filled(192, 144, 0.0);
            render_frame_lut(&layout, &video, true, &steps, &lut, &engine, &mut out);
            out
        };
        let reference = render(1);
        for workers in [2usize, 4, 6] {
            assert_eq!(render(workers), reference, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "ensure_step must precede")]
    fn lut_table_lookup_requires_ensure() {
        let lut = ChessLut::new(20.0, Complementation::Code);
        let _ = lut.table(512);
    }

    #[test]
    fn luminance_mode_has_comparable_detectability() {
        // The light swing (what the camera sees) is the same for both
        // modes by construction.
        let (layout, data) = setup();
        let video = Plane::filled(192, 144, 127.0);
        let swing = |mode| {
            let (plus, minus) =
                complementary_pair(&layout, &video, &data, 20.0, mode, full_amplitude(&data));
            let mut max = 0.0f32;
            for (x, y, _) in video.iter_xy() {
                let s =
                    color::code_to_linear(plus.get(x, y)) - color::code_to_linear(minus.get(x, y));
                max = max.max(s);
            }
            max
        };
        let code = swing(Complementation::Code);
        let lum = swing(Complementation::Luminance);
        assert!((code - lum).abs() < 0.05 * code, "swings {code} vs {lum}");
    }
}
