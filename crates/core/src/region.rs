//! Spatial sub-channel tiling: a rectangular partition of the GOB grid.
//!
//! A [`RegionMap`] splits the data frame into `tiles_x × tiles_y`
//! rectangular regions of whole GOBs. Each region is an independent
//! sub-channel: it owns a contiguous run of payload bits per GOB (Parity
//! coding lays the `m²−1` payload bits of every GOB contiguously in
//! channel order), so a region's payload can be gathered out of — and
//! scattered back into — the full-frame cycle payload without touching
//! any other region's bits. The network layer (`inframe-net`) gives every
//! region its own carousel shard and δ controller; an occluded receiver
//! loses exactly the occluded regions' bits and keeps decoding the rest.
//!
//! Region payload slicing is defined for [`crate::config::CodingMode::Parity`]
//! only: Reed–Solomon coding interleaves codewords across the whole
//! frame, so its payload bits have no per-GOB locality to tile.

use crate::layout::DataLayout;
use serde::{Deserialize, Serialize};

/// A rectangular tiling of the GOB grid into independent sub-channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMap {
    tiles_x: usize,
    tiles_y: usize,
    gobs_x: usize,
    gobs_y: usize,
    /// Payload bits per GOB (`m² − 1` under Parity coding).
    bits_per_gob: usize,
    /// GOB indices (row-major over the GOB grid) of each region,
    /// concatenated; region `r` owns `gob_index[gob_start[r]..gob_start[r+1]]`.
    gob_index: Vec<u32>,
    gob_start: Vec<u32>,
}

impl RegionMap {
    /// Tiles the layout's GOB grid into `tiles_x × tiles_y` regions.
    ///
    /// # Panics
    /// Panics when a tile count is zero or does not divide the GOB grid
    /// evenly — uneven tiles would give regions different symbol
    /// geometries and break carousel shard alignment.
    pub fn new(layout: &DataLayout, tiles_x: usize, tiles_y: usize) -> Self {
        let (gobs_x, gobs_y) = layout.gob_grid();
        assert!(tiles_x > 0 && tiles_y > 0, "tile counts must be positive");
        assert!(
            gobs_x % tiles_x == 0 && gobs_y % tiles_y == 0,
            "tiles {tiles_x}×{tiles_y} do not divide the {gobs_x}×{gobs_y} GOB grid"
        );
        let (tw, th) = (gobs_x / tiles_x, gobs_y / tiles_y);
        let mut gob_index = Vec::with_capacity(gobs_x * gobs_y);
        let mut gob_start = Vec::with_capacity(tiles_x * tiles_y + 1);
        gob_start.push(0);
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                for gy in ty * th..(ty + 1) * th {
                    for gx in tx * tw..(tx + 1) * tw {
                        gob_index.push((gy * gobs_x + gx) as u32);
                    }
                }
                gob_start.push(gob_index.len() as u32);
            }
        }
        Self {
            tiles_x,
            tiles_y,
            gobs_x,
            gobs_y,
            bits_per_gob: layout.blocks_per_gob() - 1,
            gob_index,
            gob_start,
        }
    }

    /// A single region covering the whole frame (the degenerate tiling).
    pub fn whole_frame(layout: &DataLayout) -> Self {
        Self::new(layout, 1, 1)
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// Tile grid dimensions `(tiles_x, tiles_y)`.
    pub fn tile_grid(&self) -> (usize, usize) {
        (self.tiles_x, self.tiles_y)
    }

    /// GOBs per region (equal across regions by construction).
    pub fn gobs_per_region(&self) -> usize {
        self.gob_index.len() / self.num_regions()
    }

    /// Payload bits each region carries per cycle (Parity coding).
    pub fn region_payload_bits(&self) -> usize {
        self.gobs_per_region() * self.bits_per_gob
    }

    /// The GOB indices (row-major over the GOB grid) owned by `region`.
    pub fn region_gobs(&self, region: usize) -> &[u32] {
        let lo = self.gob_start[region] as usize;
        let hi = self.gob_start[region + 1] as usize;
        &self.gob_index[lo..hi]
    }

    /// The region owning GOB `gob` (row-major GOB-grid index).
    pub fn region_of_gob(&self, gob: usize) -> usize {
        let (tw, th) = (self.gobs_x / self.tiles_x, self.gobs_y / self.tiles_y);
        let (gx, gy) = (gob % self.gobs_x, gob / self.gobs_x);
        (gy / th) * self.tiles_x + gx / tw
    }

    /// Gathers `region`'s payload bits out of a full-frame cycle payload
    /// (channel order, Parity coding) into `out`. `out` is cleared and
    /// refilled; with its capacity warm this performs no allocation.
    ///
    /// # Panics
    /// Panics when `full` is not a whole frame of payload bits.
    pub fn gather<T: Copy>(&self, full: &[T], region: usize, out: &mut Vec<T>) {
        assert_eq!(
            full.len(),
            self.gob_index.len() * self.bits_per_gob,
            "payload is not a full frame"
        );
        out.clear();
        for &g in self.region_gobs(region) {
            let lo = g as usize * self.bits_per_gob;
            out.extend_from_slice(&full[lo..lo + self.bits_per_gob]);
        }
    }

    /// Scatters `region`'s payload bits into a full-frame cycle payload
    /// (inverse of [`RegionMap::gather`]).
    ///
    /// # Panics
    /// Panics on a wrong-sized region payload or full-frame buffer.
    pub fn scatter<T: Copy>(&self, region_payload: &[T], region: usize, full: &mut [T]) {
        assert_eq!(
            region_payload.len(),
            self.region_payload_bits(),
            "region payload has the wrong size"
        );
        assert_eq!(
            full.len(),
            self.gob_index.len() * self.bits_per_gob,
            "payload is not a full frame"
        );
        for (i, &g) in self.region_gobs(region).iter().enumerate() {
            let src = i * self.bits_per_gob;
            let dst = g as usize * self.bits_per_gob;
            full[dst..dst + self.bits_per_gob]
                .copy_from_slice(&region_payload[src..src + self.bits_per_gob]);
        }
    }

    /// Expands per-region amplitude scales into per-Block scales
    /// (row-major over the Block grid), for
    /// [`crate::multiplex::Multiplexer::set_block_amp_scales`]. Scales are
    /// clamped to `[0, 1]` — regions may only back *off* from the global
    /// δ, never exceed the HVS ceiling.
    ///
    /// # Panics
    /// Panics when `scales` has one entry per region missing or spare.
    pub fn block_scales(&self, layout: &DataLayout, scales: &[f32], out: &mut Vec<f32>) {
        assert_eq!(scales.len(), self.num_regions(), "one scale per region");
        let m = layout.gob_size;
        out.clear();
        out.reserve(layout.num_blocks());
        for by in 0..layout.blocks_y {
            for bx in 0..layout.blocks_x {
                let gob = (by / m) * self.gobs_x + bx / m;
                out.push(scales[self.region_of_gob(gob)].clamp(0.0, 1.0));
            }
        }
    }

    /// Per-region GOB availability computed from a decoded cycle payload
    /// (channel order): a GOB whose payload run survived intact counts as
    /// available, a GOB with any erased bit as unavailable. Parity-level
    /// error attribution stays with the frame-wide
    /// [`inframe_code::parity::GobStats`]; this split drives the
    /// per-region δ controllers.
    pub fn region_availability(&self, full: &[Option<bool>], region: usize) -> (u64, u64) {
        let (mut ok, mut lost) = (0u64, 0u64);
        for &g in self.region_gobs(region) {
            let lo = g as usize * self.bits_per_gob;
            if full[lo..lo + self.bits_per_gob].iter().all(Option::is_some) {
                ok += 1;
            } else {
                lost += 1;
            }
        }
        (ok, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InFrameConfig;

    fn layout() -> DataLayout {
        // paper(): 50×30 blocks, gob_size 2 → 25×15 GOBs.
        DataLayout::from_config(&InFrameConfig::paper())
    }

    #[test]
    fn tiling_partitions_the_gob_grid() {
        let l = layout();
        let map = RegionMap::new(&l, 5, 3);
        assert_eq!(map.num_regions(), 15);
        assert_eq!(map.gobs_per_region(), 25);
        let mut seen = vec![false; l.num_gobs()];
        for r in 0..map.num_regions() {
            for &g in map.region_gobs(r) {
                assert!(!seen[g as usize], "GOB {g} in two regions");
                seen[g as usize] = true;
                assert_eq!(map.region_of_gob(g as usize), r);
            }
        }
        assert!(seen.iter().all(|&s| s), "every GOB covered");
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let l = layout();
        let map = RegionMap::new(&l, 5, 5);
        let full: Vec<u32> = (0..l.payload_bits_parity() as u32).collect();
        let mut rebuilt = vec![0u32; full.len()];
        let mut buf = Vec::new();
        for r in 0..map.num_regions() {
            map.gather(&full, r, &mut buf);
            assert_eq!(buf.len(), map.region_payload_bits());
            map.scatter(&buf, r, &mut rebuilt);
        }
        assert_eq!(rebuilt, full);
    }

    #[test]
    fn region_payload_bits_sum_to_frame() {
        let l = layout();
        for (tx, ty) in [(1, 1), (5, 3), (25, 15)] {
            let map = RegionMap::new(&l, tx, ty);
            assert_eq!(
                map.region_payload_bits() * map.num_regions(),
                l.payload_bits_parity()
            );
        }
    }

    #[test]
    fn block_scales_follow_region_of_block() {
        let l = layout();
        let map = RegionMap::new(&l, 5, 3);
        let scales: Vec<f32> = (0..map.num_regions()).map(|r| r as f32 / 20.0).collect();
        let mut blocks = Vec::new();
        map.block_scales(&l, &scales, &mut blocks);
        assert_eq!(blocks.len(), l.num_blocks());
        let m = l.gob_size;
        let (gobs_x, _) = l.gob_grid();
        for by in 0..l.blocks_y {
            for bx in 0..l.blocks_x {
                let gob = (by / m) * gobs_x + bx / m;
                let r = map.region_of_gob(gob);
                assert_eq!(blocks[by * l.blocks_x + bx], scales[r]);
            }
        }
    }

    #[test]
    fn availability_split_counts_erased_gobs() {
        let l = layout();
        let map = RegionMap::new(&l, 5, 3);
        let mut full: Vec<Option<bool>> = vec![Some(true); l.payload_bits_parity()];
        // Erase one bit in the first GOB of region 7.
        let g = map.region_gobs(7)[0] as usize;
        full[g * (l.blocks_per_gob() - 1)] = None;
        let (ok, lost) = map.region_availability(&full, 7);
        assert_eq!(lost, 1);
        assert_eq!(ok as usize, map.gobs_per_region() - 1);
        let (ok0, lost0) = map.region_availability(&full, 0);
        assert_eq!((ok0 as usize, lost0), (map.gobs_per_region(), 0));
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn uneven_tiling_rejected() {
        RegionMap::new(&layout(), 7, 3);
    }
}
