//! Frame multiplexing: the complementary-frame schedule of Figure 2.
//!
//! A 30 FPS video frame is duplicated four times at 120 Hz; data cycles of
//! τ displayed frames run on their own cadence, each frame alternating
//! `V + P` / `V − P`. Within a cycle the per-Block amplitude follows the
//! smoothing envelope: constant for stable bits, ramping over the second
//! half of the cycle when the bit flips at the next cycle boundary.

use crate::config::{InFrameConfig, KernelBackend};
use crate::dataframe::DataFrame;
use crate::layout::DataLayout;
use crate::parallel::ParallelEngine;
use crate::pattern;
use crate::pattern::ChessLut;
use inframe_dsp::envelope::Envelope;
use inframe_frame::Plane;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Sign of the perturbation in a displayed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameSign {
    /// `V + P`.
    Plus,
    /// `V − P`.
    Minus,
}

/// Schedule metadata of one displayed frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameSlot {
    /// Global displayed-frame index.
    pub display_index: u64,
    /// Video frame index (`display_index / 4`).
    pub video_index: u64,
    /// Data cycle index (`display_index / τ`).
    pub cycle_index: u64,
    /// Position within the cycle, `0 .. τ`.
    pub k: u32,
    /// Complementary-pair index within the cycle (`k / 2`).
    pub pair: u32,
    /// Whether this frame adds or subtracts the perturbation.
    pub sign: FrameSign,
    /// Start time of the frame on the display, seconds.
    pub t_start: f64,
}

/// Computes the slot for displayed frame `f` under config `c`.
pub fn slot(c: &InFrameConfig, f: u64) -> FrameSlot {
    let tau = c.tau as u64;
    let k = (f % tau) as u32;
    FrameSlot {
        display_index: f,
        video_index: f / InFrameConfig::DUPLICATES_PER_VIDEO_FRAME as u64,
        cycle_index: f / tau,
        k,
        pair: k / 2,
        sign: if k.is_multiple_of(2) {
            FrameSign::Plus
        } else {
            FrameSign::Minus
        },
        t_start: f as f64 / c.refresh_hz,
    }
}

/// Core of the multiplexer: renders the displayed frame for a slot given
/// the video frame and the current/next data frames.
///
/// The offset pair for the current `(video_index, cycle, pair)` is rendered
/// once into two long-lived planes and reused by the minus frame of the
/// pair — no per-frame buffer clones anywhere on this path.
pub struct Multiplexer {
    config: InFrameConfig,
    layout: DataLayout,
    envelope: Envelope,
    engine: Arc<ParallelEngine>,
    /// Which `(video_index, cycle_index, pair, scale_epoch)` the offset
    /// planes hold.
    cache_key: Option<(u64, u64, u32, u64)>,
    p_plus: Plane<f32>,
    p_minus: Plane<f32>,
    /// Reused per-Block envelope amplitude buffer (row-major).
    amps: Vec<f32>,
    /// Per-Block amplitude scales (row-major; empty ⇒ all 1.0). Spatial
    /// sub-channels back individual regions off from the global δ here.
    scales: Vec<f32>,
    /// Bumped whenever `scales` changes, invalidating both render caches.
    scale_epoch: u64,
    /// Which `(cycle_index, pair, scale_epoch)` the quantized amplitude
    /// steps hold.
    steps_key: Option<(u64, u32, u64)>,
    /// Reused quantized amplitude steps (row-major, Quantized backend).
    steps: Vec<u16>,
    /// Chessboard delta LUT cache (Quantized backend).
    lut: ChessLut,
}

impl Multiplexer {
    /// Creates a multiplexer that renders inline on the calling thread.
    pub fn new(config: InFrameConfig) -> Self {
        Self::with_engine(config, Arc::new(ParallelEngine::sequential()))
    }

    /// Creates a multiplexer that renders on `engine`'s band workers.
    /// Output is bit-identical to [`Multiplexer::new`] for any worker
    /// count.
    pub fn with_engine(config: InFrameConfig, engine: Arc<ParallelEngine>) -> Self {
        config.validate();
        Self {
            layout: DataLayout::from_config(&config),
            envelope: Envelope::new(config.pairs_per_cycle(), config.envelope),
            engine,
            cache_key: None,
            p_plus: Plane::filled(config.display_w, config.display_h, 0.0),
            p_minus: Plane::filled(config.display_w, config.display_h, 0.0),
            amps: Vec::new(),
            scales: Vec::new(),
            scale_epoch: 0,
            steps_key: None,
            steps: Vec::new(),
            lut: ChessLut::new(config.delta, config.complementation),
            config,
        }
    }

    /// The resolved layout.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// The configuration.
    pub fn config(&self) -> &InFrameConfig {
        &self.config
    }

    /// The render engine.
    pub fn engine(&self) -> &Arc<ParallelEngine> {
        &self.engine
    }

    /// Renders displayed frame `slot` by multiplexing `video` with the
    /// current data frame `cur` (and `next`, for transition shaping).
    pub fn render(
        &mut self,
        s: &FrameSlot,
        video: &Plane<f32>,
        cur: &DataFrame,
        next: &DataFrame,
    ) -> Plane<f32> {
        let mut out = Plane::filled(video.width(), video.height(), 0.0);
        self.render_into(s, video, cur, next, &mut out);
        out
    }

    /// Allocation-free form of [`Multiplexer::render`]: writes the
    /// displayed frame into `out` (typically a
    /// [`inframe_frame::pool::FramePool`] checkout).
    ///
    /// # Panics
    /// Panics if `out` or `video` is not display-shaped.
    pub fn render_into(
        &mut self,
        s: &FrameSlot,
        video: &Plane<f32>,
        cur: &DataFrame,
        next: &DataFrame,
        out: &mut Plane<f32>,
    ) {
        match self.config.kernel {
            KernelBackend::Reference => {
                self.ensure_offsets(s, video, cur, next);
                match s.sign {
                    FrameSign::Plus => inframe_frame::arith::add_into(video, &self.p_plus, out)
                        .expect("same shape by construction"),
                    FrameSign::Minus => inframe_frame::arith::sub_into(video, &self.p_minus, out)
                        .expect("same shape by construction"),
                }
            }
            KernelBackend::Quantized => {
                self.ensure_steps(s, cur, next);
                pattern::render_frame_lut(
                    &self.layout,
                    video,
                    s.sign == FrameSign::Plus,
                    &self.steps,
                    &self.lut,
                    &self.engine,
                    out,
                );
            }
        }
    }

    /// Sets per-Block amplitude scales (row-major over the Block grid),
    /// multiplied into the envelope amplitude of every Block. Scales are
    /// clamped to `[0, 1]`: spatial sub-channels may back a region off
    /// from the global δ but never exceed the HVS-assessed ceiling. Both
    /// backend caches are invalidated; the scale buffer is reused, so
    /// steady-state scale updates allocate nothing after the first call.
    ///
    /// # Panics
    /// Panics unless `scales` has one entry per Block.
    pub fn set_block_amp_scales(&mut self, scales: &[f32]) {
        assert_eq!(
            scales.len(),
            self.layout.num_blocks(),
            "one amplitude scale per Block"
        );
        self.scales.clear();
        self.scales.extend(scales.iter().map(|s| s.clamp(0.0, 1.0)));
        self.scale_epoch += 1;
    }

    /// Clears per-Block amplitude scales (back to uniform full δ).
    pub fn clear_block_amp_scales(&mut self) {
        if !self.scales.is_empty() {
            self.scales.clear();
            self.scale_epoch += 1;
        }
    }

    /// Re-points the multiplexer at a new (δ, τ) operating point:
    /// rebuilds the smoothing envelope and the chessboard LUT and
    /// invalidates both backend render caches. Must only be called at a
    /// cycle boundary (`k == 0`) — mid-cycle the envelope phase would
    /// jump visibly. No-op when the operating point is unchanged.
    pub fn set_modulation(&mut self, delta: f32, tau: u32) {
        if self.config.delta == delta && self.config.tau == tau {
            return;
        }
        self.config.delta = delta;
        self.config.tau = tau;
        self.config.validate();
        self.envelope = Envelope::new(self.config.pairs_per_cycle(), self.config.envelope);
        self.lut = ChessLut::new(delta, self.config.complementation);
        self.cache_key = None;
        self.steps_key = None;
        self.scale_epoch += 1;
    }

    /// The maximum per-pair envelope amplitude step across a cycle — feeds
    /// the phantom-array term of the HVS assessment.
    pub fn max_envelope_step(&self) -> f64 {
        let pairs = self.config.pairs_per_cycle() as usize;
        // Worst case: a 0→1 flip sampled at each pair of the cycle.
        let mut max_step = 0.0f64;
        let mut prev = self.envelope.amplitude(0, false, true);
        for k in 1..pairs as u32 {
            let a = self.envelope.amplitude(k, false, true);
            max_step = max_step.max((a - prev).abs());
            prev = a;
        }
        // Plus the boundary step into the next cycle (amplitude 1.0).
        max_step.max((1.0 - prev).abs())
    }

    /// Ensures `p_plus`/`p_minus` hold the offsets for `s`'s pair,
    /// re-rendering only at pair boundaries.
    fn ensure_offsets(
        &mut self,
        s: &FrameSlot,
        video: &Plane<f32>,
        cur: &DataFrame,
        next: &DataFrame,
    ) {
        let key = (s.video_index, s.cycle_index, s.pair, self.scale_epoch);
        if self.cache_key == Some(key) {
            return;
        }
        let env = &self.envelope;
        let pair = s.pair;
        let scales = &self.scales;
        let bxs = self.layout.blocks_x;
        pattern::sample_amplitudes(
            &self.layout,
            |bx, by| {
                let scale = if scales.is_empty() {
                    1.0
                } else {
                    scales[by * bxs + bx]
                };
                env.amplitude(pair, cur.bit(bx, by), next.bit(bx, by)) as f32 * scale
            },
            &mut self.amps,
        );
        pattern::render_offsets_with_amps(
            &self.layout,
            video,
            self.config.delta,
            self.config.complementation,
            &self.amps,
            &self.engine,
            &mut self.p_plus,
            &mut self.p_minus,
        );
        self.cache_key = Some(key);
    }

    /// Quantized-path sibling of [`Multiplexer::ensure_offsets`]: ensures
    /// `steps` holds the per-Block amplitude steps for `s`'s pair and that
    /// the LUT has a table for each referenced step. Resampling touches
    /// one envelope evaluation per Block (≈1500 at paper scale) and the
    /// table build is amortized across the multiplexer's lifetime, so
    /// steady-state pair turnover costs neither per-pixel math nor heap
    /// allocations.
    fn ensure_steps(&mut self, s: &FrameSlot, cur: &DataFrame, next: &DataFrame) {
        let key = (s.cycle_index, s.pair, self.scale_epoch);
        if self.steps_key == Some(key) {
            return;
        }
        let env = &self.envelope;
        let pair = s.pair;
        let scales = &self.scales;
        let bxs = self.layout.blocks_x;
        pattern::sample_amplitudes(
            &self.layout,
            |bx, by| {
                let scale = if scales.is_empty() {
                    1.0
                } else {
                    scales[by * bxs + bx]
                };
                env.amplitude(pair, cur.bit(bx, by), next.bit(bx, by)) as f32 * scale
            },
            &mut self.amps,
        );
        self.steps.clear();
        self.steps
            .extend(self.amps.iter().map(|&a| ChessLut::amp_step(a)));
        for i in 0..self.steps.len() {
            self.lut.ensure_step(self.steps[i]);
        }
        self.steps_key = Some(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodingMode;

    fn cfg() -> InFrameConfig {
        // Code-symmetric pairs make the arithmetic in these tests exact.
        InFrameConfig {
            complementation: crate::pattern::Complementation::Code,
            ..InFrameConfig::small_test()
        }
    }

    fn frames(c: &InFrameConfig, seed: u64) -> (DataFrame, DataFrame) {
        let layout = DataLayout::from_config(c);
        let mk = |s: u64| {
            let payload: Vec<bool> = (0..layout.payload_bits_parity())
                .map(|i| {
                    (i as u64)
                        .wrapping_mul(2654435761)
                        .wrapping_add(s)
                        .is_multiple_of(3)
                })
                .collect();
            DataFrame::encode(&layout, &payload, CodingMode::Parity)
        };
        (mk(seed), mk(seed + 1))
    }

    #[test]
    fn slot_schedule_matches_figure2() {
        let c = cfg(); // tau = 12
        let s0 = slot(&c, 0);
        assert_eq!(s0.video_index, 0);
        assert_eq!(s0.cycle_index, 0);
        assert_eq!(s0.sign, FrameSign::Plus);
        let s1 = slot(&c, 1);
        assert_eq!(s1.sign, FrameSign::Minus);
        assert_eq!(s1.pair, 0);
        // Video frame advances every 4 displayed frames.
        assert_eq!(slot(&c, 4).video_index, 1);
        // Cycle advances every tau displayed frames.
        assert_eq!(slot(&c, 12).cycle_index, 1);
        assert_eq!(slot(&c, 12).k, 0);
        // Timing.
        assert!((slot(&c, 6).t_start - 0.05).abs() < 1e-12);
    }

    #[test]
    fn complementary_pair_cancels() {
        let c = cfg();
        let mut m = Multiplexer::new(c);
        let (cur, next) = frames(&c, 1);
        let video = Plane::filled(c.display_w, c.display_h, 127.0);
        let plus = m.render(&slot(&c, 0), &video, &cur, &next);
        let minus = m.render(&slot(&c, 1), &video, &cur, &next);
        for (x, y, v) in video.iter_xy() {
            let avg = (plus.get(x, y) + minus.get(x, y)) / 2.0;
            assert!((avg - v).abs() < 1e-4);
        }
    }

    #[test]
    fn stable_bits_have_full_amplitude_through_cycle() {
        let c = cfg();
        let mut m = Multiplexer::new(c);
        let layout = *m.layout();
        let (cur, _) = frames(&c, 3);
        let video = Plane::filled(c.display_w, c.display_h, 127.0);
        // Same data frame as cur and next: no transitions anywhere.
        for f in 0..c.tau as u64 {
            let s = slot(&c, f);
            let out = m.render(&s, &video, &cur, &cur);
            // Find a 1-block and check its amplitude is full δ.
            let (bx, by) = (0..layout.blocks_y)
                .flat_map(|by| (0..layout.blocks_x).map(move |bx| (bx, by)))
                .find(|&(bx, by)| cur.bit(bx, by))
                .expect("a 1 block exists");
            let rect = layout.block_rect(bx, by);
            // Pixel (1,0) is odd → perturbed.
            let v = out.get(rect.x + layout.pixel_size, rect.y);
            let expect = match s.sign {
                FrameSign::Plus => 147.0,
                FrameSign::Minus => 107.0,
            };
            assert!((v - expect).abs() < 1e-3, "frame {f}: {v} vs {expect}");
        }
    }

    #[test]
    fn transitions_ramp_in_second_half_of_cycle() {
        let c = cfg(); // tau = 12 → 6 pairs
        let mut m = Multiplexer::new(c);
        let layout = *m.layout();
        let video = Plane::filled(c.display_w, c.display_h, 127.0);
        // cur all-ones is not encodable via parity; construct via encode of
        // all-true payload (parity bits follow automatically).
        let all1: Vec<bool> = vec![true; layout.payload_bits_parity()];
        let cur = DataFrame::encode(&layout, &all1, CodingMode::Parity);
        let zero = DataFrame::zero(&layout);
        // Pick a block that is 1 in cur (payload slot, since parity of
        // 1,1,1 is 1, actually all blocks are 1 here).
        let rect = layout.block_rect(0, 0);
        let probe = |out: &Plane<f32>| (out.get(rect.x + layout.pixel_size, rect.y) - 127.0).abs();
        // First half of cycle: full amplitude.
        let early = m.render(&slot(&c, 0), &video, &cur, &zero);
        assert!((probe(&early) - 20.0).abs() < 1e-3);
        // Last pair: nearly faded out.
        let late = m.render(&slot(&c, (c.tau - 2) as u64), &video, &cur, &zero);
        assert!(probe(&late) < 1.0, "late amplitude {}", probe(&late));
        // Monotone decay across pairs.
        let mut prev = f32::INFINITY;
        for pair in 0..c.pairs_per_cycle() {
            let out = m.render(&slot(&c, (pair * 2) as u64), &video, &cur, &zero);
            let a = probe(&out);
            assert!(a <= prev + 1e-4, "pair {pair}");
            prev = a;
        }
    }

    #[test]
    fn envelope_step_is_bounded_for_srrc() {
        let c = cfg();
        let m = Multiplexer::new(c);
        let step = m.max_envelope_step();
        assert!(step > 0.0 && step < 1.0, "step {step}");
        // Compare with a stair envelope: abrupt single step of 1.0.
        let mut c2 = c;
        c2.envelope = inframe_dsp::envelope::TransitionShape::Stair { steps: 1 };
        let m2 = Multiplexer::new(c2);
        assert!(m2.max_envelope_step() >= step);
    }

    #[test]
    fn quantized_backend_matches_reference_render() {
        // Same slots, same data, both complementation modes: the LUT
        // backend must agree with the reference within the amplitude-step
        // snap plus half a Q8.7 LSB.
        for mode in [
            crate::pattern::Complementation::Code,
            crate::pattern::Complementation::Luminance,
        ] {
            let reference = InFrameConfig {
                complementation: mode,
                kernel: KernelBackend::Reference,
                ..InFrameConfig::small_test()
            };
            let quantized = InFrameConfig {
                kernel: KernelBackend::Quantized,
                ..reference
            };
            let mut mr = Multiplexer::new(reference);
            let mut mq = Multiplexer::new(quantized);
            let (cur, next) = frames(&reference, 17);
            let video = Plane::from_fn(reference.display_w, reference.display_h, |x, y| {
                ((x * 11 + y * 3) % 256) as f32
            });
            let tol = reference.delta / (2.0 * crate::pattern::LUT_AMP_STEPS as f32)
                + inframe_frame::qplane::LSB / 2.0
                + 1e-5;
            for f in 0..reference.tau as u64 {
                let s = slot(&reference, f);
                let r = mr.render(&s, &video, &cur, &next);
                let q = mq.render(&s, &video, &cur, &next);
                for (x, y, rv) in r.iter_xy() {
                    assert!(
                        (q.get(x, y) - rv).abs() <= tol,
                        "{mode:?} frame {f} ({x},{y}): {} vs {rv}",
                        q.get(x, y)
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_pair_cancels_exactly_in_code_mode() {
        let c = InFrameConfig {
            kernel: KernelBackend::Quantized,
            ..cfg()
        };
        let mut m = Multiplexer::new(c);
        let (cur, next) = frames(&c, 5);
        let video = Plane::from_fn(c.display_w, c.display_h, |x, y| ((x + 2 * y) % 256) as f32);
        let plus = m.render(&slot(&c, 0), &video, &cur, &next);
        let minus = m.render(&slot(&c, 1), &video, &cur, &next);
        for (x, y, v) in video.iter_xy() {
            // Code-symmetric LUT entries are shared between the signs, so
            // the pair averages back to V bit-exactly.
            assert_eq!((plus.get(x, y) + minus.get(x, y)) / 2.0, v, "({x},{y})");
        }
    }

    #[test]
    fn block_amp_scales_shape_both_backends() {
        for kernel in [KernelBackend::Reference, KernelBackend::Quantized] {
            let c = InFrameConfig { kernel, ..cfg() };
            let mut m = Multiplexer::new(c);
            let layout = *m.layout();
            let all1: Vec<bool> = vec![true; layout.payload_bits_parity()];
            let cur = DataFrame::encode(&layout, &all1, CodingMode::Parity);
            let video = Plane::filled(c.display_w, c.display_h, 127.0);
            let s = slot(&c, 0);
            // Baseline render at full amplitude, then scale block (0,0)
            // to half: the cache must invalidate and the perturbation at
            // that block must halve while an unscaled block keeps full δ.
            let full = m.render(&s, &video, &cur, &cur);
            let mut scales = vec![1.0f32; layout.num_blocks()];
            scales[0] = 0.5;
            m.set_block_amp_scales(&scales);
            let scaled = m.render(&s, &video, &cur, &cur);
            let probe = |out: &Plane<f32>, bx: usize, by: usize| {
                let r = layout.block_rect(bx, by);
                (out.get(r.x + layout.pixel_size, r.y) - 127.0).abs()
            };
            assert!((probe(&full, 0, 0) - c.delta).abs() < 0.1, "{kernel:?}");
            assert!(
                (probe(&scaled, 0, 0) - c.delta * 0.5).abs() < 0.1,
                "{kernel:?}: scaled block at {}",
                probe(&scaled, 0, 0)
            );
            assert!(
                (probe(&scaled, 1, 1) - c.delta).abs() < 0.1,
                "{kernel:?}: unscaled block keeps full amplitude"
            );
            // Clearing restores the uniform render bit-exactly.
            m.clear_block_amp_scales();
            let restored = m.render(&s, &video, &cur, &cur);
            for (x, y, v) in full.iter_xy() {
                assert_eq!(restored.get(x, y), v, "{kernel:?} ({x},{y})");
            }
        }
    }

    #[test]
    fn cache_is_consistent_across_signs() {
        let c = cfg();
        let mut m = Multiplexer::new(c);
        let (cur, next) = frames(&c, 9);
        let video = Plane::from_fn(c.display_w, c.display_h, |x, y| ((x * y) % 200) as f32);
        let plus = m.render(&slot(&c, 2), &video, &cur, &next);
        let minus = m.render(&slot(&c, 3), &video, &cur, &next);
        // plus + minus = 2 video exactly (same perturbation used).
        for (x, y, v) in video.iter_xy() {
            assert!((plus.get(x, y) + minus.get(x, y) - 2.0 * v).abs() < 1e-4);
        }
    }
}
