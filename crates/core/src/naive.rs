//! The naive multiplexing designs of Figure 3 — the strawmen whose flicker
//! motivated the complementary-frame design.
//!
//! All schemes assume a 120 Hz display fed by a 30 FPS video. Data frames
//! here are full chessboard overlays at amplitude δ (no complementary
//! inverse, no smoothing): exactly the "distinctive data frames" the paper
//! describes inserting.

use crate::dataframe::DataFrame;
use crate::layout::DataLayout;
use crate::pattern::{self, Complementation};
use inframe_frame::Plane;
use serde::{Deserialize, Serialize};

/// The displayed-frame schedules of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NaiveScheme {
    /// Figure 3(b): plain video, every slot shows `V` (the control).
    VideoOnly,
    /// Figure 3(c): `V, D, D, D` — three distinct data frames after each
    /// video frame.
    ThreeDataFrames,
    /// Figure 3(d): `V, D, V, D` — alternating video and data.
    Alternating,
    /// The `V V D D` option (V:D = 2:2).
    TwoTwo,
    /// The `V V V D` option (V:D = 3:1).
    ThreeOne,
    /// InFrame's schedule for comparison: `V+D, V−D, V+D, V−D`.
    Complementary,
}

impl NaiveScheme {
    /// All schemes, in Figure 3 order (plus InFrame).
    pub fn all() -> [NaiveScheme; 6] {
        [
            NaiveScheme::VideoOnly,
            NaiveScheme::ThreeDataFrames,
            NaiveScheme::Alternating,
            NaiveScheme::TwoTwo,
            NaiveScheme::ThreeOne,
            NaiveScheme::Complementary,
        ]
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            NaiveScheme::VideoOnly => "video only (control)",
            NaiveScheme::ThreeDataFrames => "naive V,D1,D2,D3",
            NaiveScheme::Alternating => "naive V,D,V,D",
            NaiveScheme::TwoTwo => "naive V,V,D,D",
            NaiveScheme::ThreeOne => "naive V,V,V,D",
            NaiveScheme::Complementary => "InFrame V±D",
        }
    }

    /// Renders the four displayed frames for one video frame.
    ///
    /// `data` drives which Blocks carry the chessboard; naive schemes show
    /// the pattern *instead of* complementary-pair modulation: a data slot
    /// displays `V + P` with no compensating `V − P`.
    pub fn render_group(
        &self,
        layout: &DataLayout,
        video: &Plane<f32>,
        data: &DataFrame,
        delta: f32,
    ) -> Vec<Plane<f32>> {
        let amp = |bx: usize, by: usize| if data.bit(bx, by) { 1.0 } else { 0.0 };
        // Naive designs predate the luminance balancing: code-symmetric.
        let (p_plus, p_minus) =
            pattern::pair_offsets(layout, video, data, delta, Complementation::Code, amp);
        let v_plus = inframe_frame::arith::add(video, &p_plus).expect("same shape by construction");
        let v_minus =
            inframe_frame::arith::sub(video, &p_minus).expect("same shape by construction");
        match self {
            NaiveScheme::VideoOnly => vec![video.clone(); 4],
            NaiveScheme::ThreeDataFrames => {
                vec![video.clone(), v_plus.clone(), v_plus.clone(), v_plus]
            }
            NaiveScheme::Alternating => {
                vec![video.clone(), v_plus.clone(), video.clone(), v_plus]
            }
            NaiveScheme::TwoTwo => {
                vec![video.clone(), video.clone(), v_plus.clone(), v_plus]
            }
            NaiveScheme::ThreeOne => {
                vec![video.clone(), video.clone(), video.clone(), v_plus]
            }
            NaiveScheme::Complementary => {
                vec![v_plus.clone(), v_minus.clone(), v_plus, v_minus]
            }
        }
    }

    /// The fundamental frequency (Hz) of the luminance disturbance this
    /// scheme injects on a 120 Hz display — the quantity that decides
    /// whether flicker fusion hides it.
    pub fn disturbance_frequency(&self, refresh_hz: f64) -> f64 {
        match self {
            NaiveScheme::VideoOnly => 0.0,
            // Patterns repeating within the 4-frame group:
            NaiveScheme::ThreeDataFrames => refresh_hz / 4.0, // V vs DDD, 30 Hz
            NaiveScheme::Alternating => refresh_hz / 2.0,     // 60 Hz
            NaiveScheme::TwoTwo => refresh_hz / 4.0,          // 30 Hz
            NaiveScheme::ThreeOne => refresh_hz / 4.0,        // 30 Hz
            NaiveScheme::Complementary => refresh_hz / 2.0,   // 60 Hz
        }
    }

    /// Whether the scheme biases the perceived mean luminance (a DC shift
    /// the viewer sees as color distortion even without flicker) — true for
    /// every uncompensated insertion.
    pub fn shifts_mean_luminance(&self) -> bool {
        !matches!(self, NaiveScheme::VideoOnly | NaiveScheme::Complementary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CodingMode, InFrameConfig};

    fn setup() -> (DataLayout, DataFrame, Plane<f32>) {
        let cfg = InFrameConfig::small_test();
        let layout = DataLayout::from_config(&cfg);
        let payload: Vec<bool> = (0..layout.payload_bits_parity())
            .map(|i| i % 2 == 0)
            .collect();
        let data = DataFrame::encode(&layout, &payload, CodingMode::Parity);
        let video = Plane::filled(cfg.display_w, cfg.display_h, 127.0);
        (layout, data, video)
    }

    #[test]
    fn every_scheme_renders_four_frames() {
        let (layout, data, video) = setup();
        for scheme in NaiveScheme::all() {
            let group = scheme.render_group(&layout, &video, &data, 20.0);
            assert_eq!(group.len(), 4, "{}", scheme.label());
            for f in &group {
                assert_eq!(f.shape(), video.shape());
            }
        }
    }

    #[test]
    fn only_complementary_preserves_mean_exactly() {
        let (layout, data, video) = setup();
        for scheme in NaiveScheme::all() {
            let group = scheme.render_group(&layout, &video, &data, 20.0);
            let mean: f64 = group.iter().map(|f| f.mean()).sum::<f64>() / group.len() as f64;
            let shift = (mean - video.mean()).abs();
            if scheme.shifts_mean_luminance() {
                assert!(
                    shift > 0.05,
                    "{} must shift mean, got {shift}",
                    scheme.label()
                );
            } else {
                assert!(
                    shift < 1e-3,
                    "{} must not shift mean, got {shift}",
                    scheme.label()
                );
            }
        }
    }

    #[test]
    fn naive_disturbances_fall_below_cff() {
        // At 120 Hz: three of the naive schemes disturb at 30 Hz — below
        // the 40–50 Hz CFF, hence visible. InFrame disturbs at 60 Hz.
        assert_eq!(NaiveScheme::TwoTwo.disturbance_frequency(120.0), 30.0);
        assert_eq!(
            NaiveScheme::ThreeDataFrames.disturbance_frequency(120.0),
            30.0
        );
        assert_eq!(NaiveScheme::ThreeOne.disturbance_frequency(120.0), 30.0);
        assert_eq!(
            NaiveScheme::Complementary.disturbance_frequency(120.0),
            60.0
        );
    }

    #[test]
    fn video_only_group_is_unmodified() {
        let (layout, data, video) = setup();
        let group = NaiveScheme::VideoOnly.render_group(&layout, &video, &data, 20.0);
        for f in group {
            assert_eq!(f, video);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            NaiveScheme::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
